#include "baseline/dac20.hpp"

#include <stdexcept>

#include "baseline/loop_breaking.hpp"
#include "rcnet/paths.hpp"
#include "sim/wire_analysis.hpp"
#include "tensor/serialize.hpp"

namespace gnntrans::baseline {

std::vector<std::vector<float>> dac20_features(const rcnet::RcNet& net,
                                               const features::NetContext& context) {
  // Everything below is computed on the loop-broken tree — the baseline's
  // defining approximation.
  const rcnet::RcNet tree = break_loops(net);
  const sim::WireAnalysis wa = sim::analyze_wire(tree);

  constexpr double kF = 1e15, kS = 1e12, kR = 1e-3;
  const double net_res = tree.total_resistance();
  const double net_cap = tree.total_ground_cap();

  std::vector<std::vector<float>> rows;
  rows.reserve(wa.paths.size());
  for (std::size_t q = 0; q < wa.paths.size(); ++q) {
    const rcnet::WirePath& path = wa.paths[q];
    const features::SinkLoad& load = context.loads[q];

    double path_cap = 0.0;
    for (rcnet::NodeId v : path.nodes) path_cap += tree.ground_cap[v];

    std::vector<float> row(kDac20FeatureCount, 0.0f);
    std::size_t i = 0;
    row[i++] = static_cast<float>(context.input_slew * kS);
    row[i++] = static_cast<float>(context.driver_resistance * kR);
    row[i++] = static_cast<float>(context.driver_strength);
    row[i++] = static_cast<float>(context.driver_function);
    row[i++] = static_cast<float>(load.drive_strength);
    row[i++] = static_cast<float>(load.function);
    row[i++] = static_cast<float>(load.input_cap * kF);
    row[i++] = static_cast<float>(wa.moments.m1[path.sink] * kS);
    row[i++] = static_cast<float>(wa.d2m[path.sink] * kS);
    const double m1 = wa.moments.m1[path.sink];
    row[i++] = static_cast<float>(
        std::sqrt(std::max(0.0, 2.0 * wa.moments.m2[path.sink] - m1 * m1)) * kS);
    row[i++] = static_cast<float>(path.path_resistance(tree) * kR);
    row[i++] = static_cast<float>(path_cap * kF);
    row[i++] = static_cast<float>(path.nodes.size());
    row[i++] = static_cast<float>(tree.sinks.size());
    row[i++] = static_cast<float>(net_res * kR);
    row[i++] = static_cast<float>(net_cap * kF);
    row[i++] = static_cast<float>(wa.downstream_cap[tree.source] * kF);
    rows.push_back(std::move(row));
  }
  return rows;
}

void Dac20Estimator::train(const std::vector<features::WireRecord>& records,
                           const GbdtConfig& config) {
  std::vector<std::vector<float>> x;
  std::vector<double> slew_y, delay_y;
  for (const features::WireRecord& rec : records) {
    std::vector<std::vector<float>> rows = dac20_features(rec.net, rec.context);
    for (std::size_t q = 0; q < rows.size(); ++q) {
      x.push_back(std::move(rows[q]));
      // Labels in ps keep the squared-loss landscape well-scaled.
      slew_y.push_back(rec.slew_labels[q] * 1e12);
      delay_y.push_back(rec.delay_labels[q] * 1e12);
    }
  }
  if (x.empty()) throw std::invalid_argument("Dac20Estimator: no training paths");
  slew_model_.fit(x, slew_y, config);
  delay_model_.fit(x, delay_y, config);
  trained_ = true;
}

std::vector<PathTiming> Dac20Estimator::estimate(
    const rcnet::RcNet& net, const features::NetContext& context) const {
  if (!trained_) throw std::logic_error("Dac20Estimator: train() first");
  const std::vector<std::vector<float>> rows = dac20_features(net, context);

  std::vector<PathTiming> out;
  out.reserve(rows.size());
  for (std::size_t q = 0; q < rows.size(); ++q) {
    PathTiming pt;
    pt.sink = net.sinks[q];
    pt.slew = slew_model_.predict(rows[q]) * 1e-12;
    pt.delay = delay_model_.predict(rows[q]) * 1e-12;
    out.push_back(pt);
  }
  return out;
}

void Dac20Estimator::save(std::ostream& out) const {
  tensor::write_header(out, "DAC20_MODEL", 1);
  slew_model_.save(out);
  delay_model_.save(out);
}

void Dac20Estimator::load(std::istream& in) {
  tensor::check_header(in, "DAC20_MODEL", 1);
  slew_model_.load(in);
  delay_model_.load(in);
  trained_ = true;
}

}  // namespace gnntrans::baseline
