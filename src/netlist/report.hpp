/// \file report.hpp
/// Timing reports: critical path extraction and a PrimeTime-style textual
/// report_timing view over an StaResult.
///
/// The STA records, per instance, the fanin net that determined its arrival;
/// tracing those links from an endpoint back to a launch FF yields the
/// critical path with its per-stage gate/wire delay breakdown — the report a
/// designer reads when deciding what to optimize (the paper's motivating
/// incremental-optimization loop consumes exactly this).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"
#include "netlist/sta.hpp"

namespace gnntrans::netlist {

/// One stage of a traced path.
struct PathStage {
  InstanceId instance = 0;
  double gate_delay = 0.0;   ///< seconds through this instance
  double wire_delay = 0.0;   ///< seconds to the *next* stage's input (0 at end)
  std::uint32_t net = Design::kNoNet;  ///< net to the next stage
  double arrival = 0.0;      ///< cumulative arrival at this instance's output
};

/// A traced source-to-endpoint critical path.
struct TimingPath {
  InstanceId endpoint = 0;
  double arrival = 0.0;  ///< endpoint arrival (D pin)
  /// Required time / slack at the endpoint, from the StaResult backward pass
  /// (0 when the result predates required/slack propagation).
  double required = 0.0;
  double slack = 0.0;
  /// Stages, launch FF first, endpoint last.
  std::vector<PathStage> stages;
};

/// Traces the critical path into \p endpoint from \p sta.
/// Precondition: sta was produced by run_sta over \p design.
[[nodiscard]] TimingPath trace_critical_path(const Design& design,
                                             const StaResult& sta,
                                             InstanceId endpoint);

/// The \p k worst (latest-arrival) endpoint paths, worst first.
[[nodiscard]] std::vector<TimingPath> worst_paths(const Design& design,
                                                  const StaResult& sta,
                                                  std::size_t k);

/// Formats one path like a sign-off report_timing block.
[[nodiscard]] std::string format_path(const Design& design,
                                      const cell::CellLibrary& library,
                                      const TimingPath& path);

/// Writes the \p k worst paths to \p out.
void write_timing_report(std::ostream& out, const Design& design,
                         const cell::CellLibrary& library, const StaResult& sta,
                         std::size_t k);

}  // namespace gnntrans::netlist
