# Empty compiler generated dependencies file for gnntrans_sim.
# This may be replaced when dependencies are built.
