/// \file incremental.hpp
/// Event-driven incremental STA: the ECO what-if engine.
///
/// The paper's closing claim is that a fast wire estimator enables
/// *incremental* timing optimization of routed designs. This engine supplies
/// the other half of that loop: after an edit, a dirty-pin forward frontier
/// re-times only the affected fanout cone (arrival/slew/taint), and a reverse
/// frontier restores required times and slacks only where downstream timing or
/// fanout structure actually changed — so each what-if costs a cone, not a
/// full-design pass.
///
/// Supported edits (the classic ECO moves):
///   - swap_cell: resize/substitute an instance (drive strength, function)
///   - reroute_net: replace a net's extracted RC parasitics in place
///   - insert_buffer: splice a buffer into a net, splitting its sinks
///
/// Invariant (fuzzed in tests/test_eco.cpp): with the default
/// StaConfig::incremental_tolerance of 0, after ANY sequence of edits every
/// arrival, slew, required time, slack, and settled flag is *bitwise* equal to
/// a fresh full run_sta over the mutated design with the same wire source.
/// The frontier stops exactly where a recomputed value reproduces the stored
/// bits, which is always safe: identical inputs through the same deterministic
/// wire source and NLDM arithmetic yield identical outputs downstream.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"

namespace gnntrans::netlist {

/// Owns a mutable copy of the design plus per-pin timing state.
class IncrementalSta {
 public:
  /// Runs the initial full analysis.
  IncrementalSta(Design design, const cell::CellLibrary& library,
                 WireTimingSource& wire_source, StaConfig config = {});

  /// Current timing (always consistent with the current design state).
  [[nodiscard]] const StaResult& result() const noexcept { return result_; }
  [[nodiscard]] const Design& design() const noexcept { return design_; }
  [[nodiscard]] const StaConfig& config() const noexcept { return config_; }

  /// Swaps \p instance to \p new_cell_index and re-times its cone.
  /// Returns the number of instances re-evaluated by the forward frontier.
  std::size_t swap_cell(InstanceId instance, std::uint32_t new_cell_index);

  /// Replaces net \p net_index's parasitics with \p new_rc (the ECO reroute
  /// move). new_rc must be structurally valid with exactly one sink per load;
  /// its name becomes the net's name (keep it unchanged to stay aligned with
  /// SPEF / estimator context lookups). Returns instances re-evaluated.
  std::size_t reroute_net(std::uint32_t net_index, rcnet::RcNet new_rc);

  /// Splices a buffer into net \p net_index: the loads at \p sink_positions
  /// move behind a new instance of \p buffer_cell_index (a single-input
  /// combinational cell), which becomes the last load of the rerouted
  /// original net and drives \p new_net_rc. \p rerouted_rc replaces the
  /// original net's parasitics (one sink per remaining load + one for the
  /// buffer input, in that order); \p new_net_rc needs one sink per spliced
  /// load, in their original relative order. Instance levels are recomputed
  /// (longest-path depth), which only re-orders evaluation, never timing.
  /// Returns instances re-evaluated; the new buffer's InstanceId is
  /// design().cell_count() - 1 afterwards.
  std::size_t insert_buffer(std::uint32_t net_index,
                            std::uint32_t buffer_cell_index,
                            std::span<const std::uint32_t> sink_positions,
                            rcnet::RcNet rerouted_rc, rcnet::RcNet new_net_rc);

  /// Worst endpoint arrival / worst (most negative) endpoint slack.
  [[nodiscard]] double worst_arrival() const;
  [[nodiscard]] double worst_slack() const;

  /// Total instances re-evaluated across all edits (cone-size accounting),
  /// and the split of the most recent edit: forward-frontier re-evaluations
  /// vs reverse-frontier required-time updates.
  [[nodiscard]] std::size_t total_reevaluations() const noexcept {
    return total_reevaluations_;
  }
  [[nodiscard]] std::size_t last_forward_retimed() const noexcept {
    return last_forward_retimed_;
  }
  [[nodiscard]] std::size_t last_required_updates() const noexcept {
    return last_required_updates_;
  }

 private:
  /// Recomputes one instance's output timing and, if changed (or its driven
  /// net is marked dirty), re-times the driven net and refreshes the stored
  /// per-sink contributions. Returns true when anything observable changed.
  bool reevaluate(InstanceId v);

  /// Refreshes in_arrival/in_slew/in_settled/critical bookkeeping of \p load
  /// from the stored per-net contributions, scanning fanin pins in run_sta's
  /// scatter order so max-ties break identically.
  void refresh_input(InstanceId load);

  /// Re-times net \p net_idx with the driver's current output and rewrites
  /// its contributions (and the per-net unsettled tally).
  void retime_net(std::uint32_t net_idx);

  /// Runs the forward frontier from the seeded queue, then the reverse
  /// required/slack frontier from everything the forward pass touched, then
  /// refreshes the endpoint summaries. Returns forward re-evaluations.
  std::size_t propagate();

  /// Recomputes instance levels as longest-path depths and re-sorts every
  /// fanin pin list (scatter order depends on levels). Needed after edits
  /// that add instances; levels only order evaluation, they carry no timing.
  void relevel();

  /// Sorts \p load's fanin pins into run_sta scatter order:
  /// (driver level, net index, sink position) ascending.
  void sort_fanin_pins(InstanceId load);

  Design design_;
  const cell::CellLibrary& library_;
  WireTimingSource& wire_source_;
  StaConfig config_;
  StaResult result_;

  /// Per-net per-sink contribution at each load pin.
  struct Contribution {
    double arrival = -1.0;    ///< driver arrival + wire delay
    double slew = 0.0;        ///< sink slew
    double wire_delay = 0.0;  ///< the wire source's delay for this sink
    bool sink_settled = true; ///< the wire source's own settledness
    bool settled = true;      ///< sink_settled && driver's arrival_settled
  };
  std::vector<std::vector<Contribution>> net_contrib_;  ///< [net][sink]
  std::vector<std::size_t> net_unsettled_;  ///< sinks with !sink_settled, per net
  std::vector<std::uint8_t> net_dirty_;     ///< wire must be re-timed regardless

  /// Per-instance resolved input (max over contributions, run_sta order).
  std::vector<double> in_arrival_;
  std::vector<double> in_slew_;
  std::vector<std::uint8_t> in_settled_;
  std::vector<std::uint8_t> is_startpoint_;
  /// Nets feeding each instance: (net index, sink position), kept sorted in
  /// run_sta scatter order.
  struct FaninPin {
    std::uint32_t net = 0;
    std::uint32_t sink = 0;
  };
  std::vector<std::vector<FaninPin>> fanin_pins_;

  // Frontier scratch (persist across edits to avoid reallocation).
  std::vector<InstanceId> forward_seeds_;
  std::vector<std::uint8_t> touched_;     ///< forward- or reverse-updated
  std::vector<InstanceId> touched_list_;

  std::size_t total_reevaluations_ = 0;
  std::size_t last_forward_retimed_ = 0;
  std::size_t last_required_updates_ = 0;
};

/// One randomized ECO edit, as applied by apply_random_edit — the shared
/// driver behind the `eco` CLI subcommand, the equivalence fuzzer, and
/// bench_eco, so all three exercise the same edit distribution.
struct EcoEdit {
  enum class Kind : std::uint8_t { kSwapCell, kRerouteNet, kInsertBuffer };
  Kind kind = Kind::kSwapCell;
  InstanceId instance = 0;      ///< swapped instance or inserted buffer
  std::uint32_t cell_index = 0; ///< replacement / buffer cell
  std::uint32_t net = 0;        ///< rerouted or split net
  std::size_t retimed = 0;      ///< forward re-evaluations this edit cost
  std::size_t required_updates = 0;  ///< reverse-frontier updates

  [[nodiscard]] const char* kind_name() const noexcept;
  [[nodiscard]] std::string describe() const;
};

/// Applies one seeded random edit to \p sta: a same-arity cell swap, a net
/// reroute with freshly generated parasitics, or a buffer insertion splitting
/// a random subset of a net's sinks. \p net_config shapes generated
/// parasitics. Deterministic in (\p rng state, current design state).
[[nodiscard]] EcoEdit apply_random_edit(IncrementalSta& sta,
                                        const cell::CellLibrary& library,
                                        std::mt19937_64& rng,
                                        const rcnet::NetGenConfig& net_config);

}  // namespace gnntrans::netlist
