# Empty compiler generated dependencies file for gnntrans_nn.
# This may be replaced when dependencies are built.
