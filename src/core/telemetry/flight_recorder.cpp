#include "core/telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/telemetry/log.hpp"

namespace gnntrans::telemetry {

namespace detail {

void write_slot(FlightSlot& slot, const FlightRecord& record) noexcept {
  std::uint64_t words[kFlightWords];
  std::memcpy(words, &record, sizeof(record));
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);  // odd: mid-write
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kFlightWords; ++w)
    slot.words[w].store(words[w], std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);  // even: stable
}

bool read_slot(const FlightSlot& slot, FlightRecord* out) noexcept {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // mid-write
    std::uint64_t words[kFlightWords];
    for (std::size_t w = 0; w < kFlightWords; ++w)
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1) continue;
    std::memcpy(out, words, sizeof(FlightRecord));
    return out->seq != 0;
  }
  return false;
}

}  // namespace detail

namespace {

using detail::FlightSlot;

constexpr std::size_t kPinnedSlots = 64;   ///< per-thread pinned-ring capacity
constexpr std::size_t kMaxRings = 256;     ///< recording-thread hard cap

std::atomic<std::uint64_t> g_next_flight_recorder_id{1};

// ---------------------------------------------------------------------------
// Async-signal-safe formatting: the signal path may not allocate or call
// stdio, so JSON is assembled with these and flushed through write(2).

char* append_raw(char* p, char* end, std::string_view s) noexcept {
  const std::size_t n =
      std::min<std::size_t>(s.size(), static_cast<std::size_t>(end - p));
  std::memcpy(p, s.data(), n);
  return p + n;
}

char* append_u64(char* p, char* end, std::uint64_t v) noexcept {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && p < end) *p++ = digits[--n];
  return p;
}

/// Microsecond values with one decimal: 12.3 — enough resolution for a
/// flight log, no float formatting in signal context.
char* append_us(char* p, char* end, float us) noexcept {
  if (!(us >= 0.0f)) us = 0.0f;  // also catches NaN
  const std::uint64_t tenths = static_cast<std::uint64_t>(us * 10.0f + 0.5f);
  p = append_u64(p, end, tenths / 10);
  p = append_raw(p, end, ".");
  return append_u64(p, end, tenths % 10);
}

/// Name bytes that could break the JSON string (or a terminal) become '_';
/// proper escaping needs allocation, which the signal path cannot do.
char* append_sanitized(char* p, char* end, const char* s,
                       std::size_t cap) noexcept {
  for (std::size_t i = 0; i < cap && s[i] != '\0' && p < end; ++i) {
    const char c = s[i];
    *p++ = (c >= 0x20 && c != '"' && c != '\\' && c != 0x7f) ? c : '_';
  }
  return p;
}

void write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;  // EINTR in a signal handler: give up, don't loop
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// One record as a JSON object into \p buf; returns the byte count.
std::size_t format_record(const FlightRecord& r, char* buf,
                          std::size_t cap) noexcept {
  char* p = buf;
  char* end = buf + cap - 1;
  p = append_raw(p, end, "{\"seq\":");
  p = append_u64(p, end, r.seq);
  p = append_raw(p, end, ",\"net\":\"");
  p = append_sanitized(p, end, r.net, sizeof(r.net));
  p = append_raw(p, end, "\",\"outcome\":\"");
  p = append_sanitized(p, end, r.outcome, sizeof(r.outcome));
  p = append_raw(p, end, "\",\"error\":\"");
  p = append_sanitized(p, end, r.error, sizeof(r.error));
  p = append_raw(p, end, "\",\"thread\":");
  p = append_u64(p, end, r.thread_id);
  p = append_raw(p, end, ",\"total_us\":");
  p = append_us(p, end, r.total_us);
  p = append_raw(p, end, ",\"featurize_us\":");
  p = append_us(p, end, r.featurize_us);
  p = append_raw(p, end, ",\"forward_us\":");
  p = append_us(p, end, r.forward_us);
  p = append_raw(p, end, ",\"fallback_us\":");
  p = append_us(p, end, r.fallback_us);
  p = append_raw(p, end, ",\"arena_peak_bytes\":");
  p = append_u64(p, end, r.arena_peak_bytes);
  p = append_raw(p, end, ",\"slow\":");
  p = append_raw(p, end, r.slow ? "true" : "false");
  p = append_raw(p, end, ",\"pinned\":");
  p = append_raw(p, end, r.pinned ? "true" : "false");
  p = append_raw(p, end, "}");
  return static_cast<std::size_t>(p - buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// Rings

struct FlightRecorder::Ring {
  Ring(std::size_t capacity, std::uint32_t tid)
      : thread_id(tid), recent(capacity) {}

  const std::uint32_t thread_id;
  std::atomic<std::uint64_t> head{0};         ///< main-ring appends
  std::atomic<std::uint64_t> pinned_head{0};  ///< pinned-ring appends
  std::vector<FlightSlot> recent;
  std::array<FlightSlot, kPinnedSlots> pinned;
};

struct FlightRecorder::Impl {
  const std::uint64_t id = g_next_flight_recorder_id.fetch_add(1);
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<std::uint64_t> overflow_dropped{0};  ///< > kMaxRings threads
  std::atomic<std::size_t> ring_capacity{256};

  // Ring registry: a fixed array of atomic pointers so the signal-handler
  // reader never takes a lock. The mutex only serializes slot assignment
  // between registering threads (never held on read or record paths).
  std::mutex register_mutex;
  std::atomic<std::size_t> ring_count{0};
  std::array<std::atomic<Ring*>, kMaxRings> rings{};
};

FlightRecorder::Impl& FlightRecorder::impl() const noexcept {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing) return *existing;
  auto* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh, std::memory_order_acq_rel))
    return *fresh;
  delete fresh;
  return *existing;
}

FlightRecorder::FlightRecorder() = default;

FlightRecorder::~FlightRecorder() {
  Impl* im = impl_.load(std::memory_order_acquire);
  if (!im) return;
  const std::size_t count =
      std::min(im->ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r)
    delete im->rings[r].load(std::memory_order_acquire);
  delete im;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked singleton
  return *recorder;
}

void FlightRecorder::set_ring_capacity(std::size_t records) {
  impl().ring_capacity.store(std::max<std::size_t>(8, records),
                             std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() noexcept {
  // Cache keyed by recorder id (never reused), like TraceRecorder's rings.
  thread_local std::vector<std::pair<std::uint64_t, Ring*>> t_cache;
  Impl& im = impl();
  for (const auto& [id, ring] : t_cache)
    if (id == im.id) return ring;
  try {
    const std::lock_guard<std::mutex> lock(im.register_mutex);
    const std::size_t slot = im.ring_count.load(std::memory_order_relaxed);
    if (slot >= kMaxRings) return nullptr;
    auto ring = std::make_unique<Ring>(
        im.ring_capacity.load(std::memory_order_relaxed), this_thread_id());
    im.rings[slot].store(ring.get(), std::memory_order_release);
    im.ring_count.store(slot + 1, std::memory_order_release);
    Ring* raw = ring.release();  // owned by the registry from here
    t_cache.emplace_back(im.id, raw);
    return raw;
  } catch (...) {
    return nullptr;
  }
}

void FlightRecorder::record(const FlightRecord& record) noexcept {
  if (!enabled()) return;
  Impl& im = impl();
  Ring* ring = ring_for_this_thread();
  if (!ring) {
    im.overflow_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FlightRecord rec = record;
  rec.seq = im.next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.thread_id = ring->thread_id;
  // Pin on slow/degraded, or when the caller asked explicitly (quality drift
  // and shadow-outlier events arrive pre-flagged).
  const bool want_pin = record.pinned != 0;
  rec.pinned = 0;
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  detail::write_slot(ring->recent[h % ring->recent.size()], rec);
  ring->head.store(h + 1, std::memory_order_release);
  if (want_pin || rec.slow || rec.degraded) {
    rec.pinned = 1;
    const std::uint64_t p = ring->pinned_head.load(std::memory_order_relaxed);
    detail::write_slot(ring->pinned[p % kPinnedSlots], rec);
    ring->pinned_head.store(p + 1, std::memory_order_release);
  }
}

void FlightRecorder::write_json(std::ostream& out,
                                const JsonFilter& filter) const {
  Impl& im = impl();
  std::vector<FlightRecord> recent, pinned;
  const std::size_t count =
      std::min(im.ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = im.rings[r].load(std::memory_order_acquire);
    if (!ring) continue;
    FlightRecord rec;
    for (const FlightSlot& slot : ring->recent)
      if (detail::read_slot(slot, &rec)) recent.push_back(rec);
    for (const FlightSlot& slot : ring->pinned)
      if (detail::read_slot(slot, &rec)) pinned.push_back(rec);
  }
  const auto by_seq = [](const FlightRecord& a, const FlightRecord& b) {
    return a.seq < b.seq;
  };
  std::sort(recent.begin(), recent.end(), by_seq);
  std::sort(pinned.begin(), pinned.end(), by_seq);
  const auto apply_filter = [&filter](std::vector<FlightRecord>& records) {
    if (!filter.net.empty())
      records.erase(std::remove_if(records.begin(), records.end(),
                                   [&filter](const FlightRecord& r) {
                                     return filter.net != r.net;
                                   }),
                    records.end());
    if (filter.limit > 0 && records.size() > filter.limit)
      records.erase(records.begin(),
                    records.end() - static_cast<std::ptrdiff_t>(filter.limit));
  };
  apply_filter(recent);
  apply_filter(pinned);

  // Both dump paths share format_record, so /flight and the crash dump have
  // one shape; its sanitizer keeps hostile name bytes out of the JSON.
  const auto emit = [&out](const std::vector<FlightRecord>& records) {
    bool first = true;
    char buf[512];
    for (const FlightRecord& r : records) {
      if (!first) out << ",";
      first = false;
      const std::size_t n = format_record(r, buf, sizeof(buf));
      out.write(buf, static_cast<std::streamsize>(n));
    }
  };
  out << "{\"recorded\":" << recorded_total()
      << ",\"dropped\":" << dropped_total() << ",\"records\":[";
  emit(recent);
  out << "],\"pinned\":[";
  emit(pinned);
  out << "]}";
}

void FlightRecorder::write_json_fd(int fd) const noexcept {
  Impl& im = impl();
  char buf[512];
  char* p = buf;
  p = append_raw(p, buf + sizeof(buf), "{\"recorded\":");
  p = append_u64(p, buf + sizeof(buf), recorded_total());
  p = append_raw(p, buf + sizeof(buf), ",\"dropped\":");
  p = append_u64(p, buf + sizeof(buf), dropped_total());
  p = append_raw(p, buf + sizeof(buf), ",\"records\":[");
  write_all(fd, buf, static_cast<std::size_t>(p - buf));

  const std::size_t count =
      std::min(im.ring_count.load(std::memory_order_acquire), kMaxRings);
  const auto emit_ring = [&](const FlightSlot* slots, std::size_t n,
                             bool* first) {
    FlightRecord rec;
    for (std::size_t s = 0; s < n; ++s) {
      if (!detail::read_slot(slots[s], &rec)) continue;
      char line[512];
      std::size_t len = 0;
      if (!*first) line[len++] = ',';
      *first = false;
      len += format_record(rec, line + len, sizeof(line) - len);
      write_all(fd, line, len);
    }
  };
  bool first = true;
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = im.rings[r].load(std::memory_order_acquire);
    if (ring) emit_ring(ring->recent.data(), ring->recent.size(), &first);
  }
  write_all(fd, "],\"pinned\":[", 12);
  first = true;
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = im.rings[r].load(std::memory_order_acquire);
    if (ring) emit_ring(ring->pinned.data(), kPinnedSlots, &first);
  }
  write_all(fd, "]}\n", 3);
}

std::uint64_t FlightRecorder::recorded_total() const noexcept {
  Impl& im = impl();
  std::uint64_t total = 0;
  const std::size_t count =
      std::min(im.ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r)
    if (const Ring* ring = im.rings[r].load(std::memory_order_acquire))
      total += ring->head.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FlightRecorder::dropped_total() const noexcept {
  Impl& im = impl();
  std::uint64_t dropped = im.overflow_dropped.load(std::memory_order_relaxed);
  const std::size_t count =
      std::min(im.ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = im.rings[r].load(std::memory_order_acquire);
    if (!ring) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->recent.size()) dropped += head - ring->recent.size();
  }
  return dropped;
}

void FlightRecorder::clear() noexcept {
  Impl& im = impl();
  const FlightRecord empty;
  const std::size_t count =
      std::min(im.ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    Ring* ring = im.rings[r].load(std::memory_order_acquire);
    if (!ring) continue;
    for (FlightSlot& slot : ring->recent) detail::write_slot(slot, empty);
    for (FlightSlot& slot : ring->pinned) detail::write_slot(slot, empty);
    ring->head.store(0, std::memory_order_relaxed);
    ring->pinned_head.store(0, std::memory_order_relaxed);
  }
  im.next_seq.store(0, std::memory_order_relaxed);
  im.overflow_dropped.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Fatal-signal dump

namespace {

char g_flight_dump_path[512] = {0};  ///< static storage: no allocation in handler
int g_flight_signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};

extern "C" void flight_signal_handler(int signum) {
  const int fd = ::open(g_flight_dump_path, O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd >= 0) {
    FlightRecorder::global().write_json_fd(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies with the original signal (core dump, wait status).
  ::raise(signum);
}

}  // namespace

void install_flight_signal_dump(const char* path) {
  std::snprintf(g_flight_dump_path, sizeof(g_flight_dump_path), "%s", path);
  struct sigaction action {};
  action.sa_handler = flight_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  for (const int signum : g_flight_signals)
    ::sigaction(signum, &action, nullptr);
  GNNTRANS_LOG_DEBUG("flight", "fatal-signal flight dump -> %s", path);
}

}  // namespace gnntrans::telemetry
