// Finite-difference gradient verification for every differentiable op and for
// the composite layers used by the models. This is the load-bearing test file
// for training correctness: any backward-formula bug fails here.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>

#include "nn/layers.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace gnntrans::tensor;

/// Central-difference check of d(loss)/d(param) for every element of every
/// parameter. `loss_fn` must re-run the full forward pass on each call.
void check_gradients(const std::function<Tensor()>& loss_fn,
                     std::vector<Tensor> params, float eps = 1e-2f,
                     float tol = 2e-2f) {
  // Analytic gradients.
  for (Tensor& p : params) p.zero_grad();
  Tensor loss = loss_fn();
  loss.backward();

  std::vector<std::vector<float>> analytic;
  for (Tensor& p : params) {
    ASSERT_FALSE(p.grad().empty());
    analytic.emplace_back(p.grad().begin(), p.grad().end());
  }

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = params[pi];
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float saved = p.values()[i];
      float plus, minus;
      {
        NoGradGuard guard;
        p.values()[i] = saved + eps;
        plus = loss_fn().item();
        p.values()[i] = saved - eps;
        minus = loss_fn().item();
        p.values()[i] = saved;
      }
      const float numeric = (plus - minus) / (2 * eps);
      const float exact = analytic[pi][i];
      const float denom = std::max({1.0f, std::abs(numeric), std::abs(exact)});
      EXPECT_NEAR(numeric / denom, exact / denom, tol)
          << "param " << pi << " element " << i;
    }
  }
}

Tensor rand_tensor(std::size_t r, std::size_t c, std::mt19937_64& rng,
                   bool grad = true) {
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  Tensor t(r, c, grad);
  for (float& v : t.values()) v = dist(rng);
  return t;
}

TEST(GradCheck, Matmul) {
  std::mt19937_64 rng(1);
  Tensor a = rand_tensor(3, 4, rng), b = rand_tensor(4, 2, rng);
  check_gradients([&] { return sum_all(matmul(a, b)); }, {a, b});
}

TEST(GradCheck, MatmulNt) {
  std::mt19937_64 rng(2);
  Tensor a = rand_tensor(3, 4, rng), b = rand_tensor(5, 4, rng);
  check_gradients([&] { return sum_all(mul(matmul_nt(a, b), matmul_nt(a, b))); },
                  {a, b});
}

TEST(GradCheck, Transpose) {
  std::mt19937_64 rng(3);
  Tensor a = rand_tensor(3, 4, rng);
  Tensor w = rand_tensor(3, 4, rng);
  check_gradients([&] { return sum_all(mul(transpose(a), transpose(w))); }, {a, w});
}

TEST(GradCheck, AddSubMulScale) {
  std::mt19937_64 rng(4);
  Tensor a = rand_tensor(3, 3, rng), b = rand_tensor(3, 3, rng);
  check_gradients(
      [&] { return sum_all(mul(add(a, b), sub(scale(a, 0.5f), b))); }, {a, b});
}

TEST(GradCheck, AddRowBroadcast) {
  std::mt19937_64 rng(5);
  Tensor a = rand_tensor(4, 3, rng), bias = rand_tensor(1, 3, rng);
  check_gradients(
      [&] {
        const Tensor y = add_row_broadcast(a, bias);
        return sum_all(mul(y, y));
      },
      {a, bias});
}

TEST(GradCheck, OuterSum) {
  std::mt19937_64 rng(6);
  Tensor s = rand_tensor(4, 1, rng), t = rand_tensor(3, 1, rng);
  check_gradients(
      [&] {
        const Tensor e = outer_sum(s, t);
        return sum_all(mul(e, e));
      },
      {s, t});
}

TEST(GradCheck, ReluAtNonKinkPoints) {
  std::mt19937_64 rng(7);
  Tensor a = rand_tensor(4, 4, rng);
  // Keep values away from the kink so finite differences are valid.
  for (float& v : a.values())
    if (std::abs(v) < 0.1f) v = 0.3f;
  check_gradients([&] { return sum_all(mul(relu(a), relu(a))); }, {a});
}

TEST(GradCheck, LeakyRelu) {
  std::mt19937_64 rng(8);
  Tensor a = rand_tensor(4, 4, rng);
  for (float& v : a.values())
    if (std::abs(v) < 0.1f) v = -0.4f;
  check_gradients([&] { return sum_all(mul(leaky_relu(a), leaky_relu(a))); }, {a});
}

TEST(GradCheck, SigmoidAndTanh) {
  std::mt19937_64 rng(9);
  Tensor a = rand_tensor(3, 3, rng);
  check_gradients([&] { return sum_all(mul(sigmoid(a), tanh_op(a))); }, {a},
                  5e-3f);
}

TEST(GradCheck, SoftmaxRows) {
  std::mt19937_64 rng(10);
  Tensor a = rand_tensor(3, 5, rng);
  Tensor w = rand_tensor(3, 5, rng);
  check_gradients([&] { return sum_all(mul(softmax_rows(a), w)); }, {a}, 5e-3f);
}

TEST(GradCheck, MaskedSoftmaxRows) {
  std::mt19937_64 rng(11);
  Tensor a = rand_tensor(3, 4, rng);
  Tensor w = rand_tensor(3, 4, rng);
  const std::vector<std::uint8_t> mask{1, 1, 0, 1,  0, 1, 1, 0,  1, 0, 0, 1};
  check_gradients([&] { return sum_all(mul(masked_softmax_rows(a, mask), w)); },
                  {a}, 5e-3f);
}

TEST(GradCheck, ConcatCols) {
  std::mt19937_64 rng(12);
  Tensor a = rand_tensor(3, 2, rng), b = rand_tensor(3, 4, rng),
         c = rand_tensor(3, 1, rng);
  check_gradients(
      [&] {
        const Tensor y = concat_cols({a, b, c});
        return sum_all(mul(y, y));
      },
      {a, b, c});
}

TEST(GradCheck, GatherRows) {
  std::mt19937_64 rng(13);
  Tensor a = rand_tensor(4, 3, rng);
  const std::vector<std::uint32_t> idx{0, 2, 2, 3};
  check_gradients(
      [&] {
        const Tensor y = gather_rows(a, idx);
        return sum_all(mul(y, y));
      },
      {a});
}

TEST(GradCheck, Spmm) {
  std::mt19937_64 rng(14);
  GraphMatrix m(3, 4);
  m.add(0, 1, 0.7f);
  m.add(0, 3, -0.5f);
  m.add(1, 0, 1.2f);
  m.add(2, 2, 0.4f);
  m.add(2, 3, 0.9f);
  Tensor x = rand_tensor(4, 3, rng);
  check_gradients(
      [&] {
        const Tensor y = spmm(m, x);
        return sum_all(mul(y, y));
      },
      {x});
}

TEST(GradCheck, MseLoss) {
  std::mt19937_64 rng(15);
  Tensor pred = rand_tensor(5, 1, rng);
  Tensor target = rand_tensor(5, 1, rng, /*grad=*/false);
  check_gradients([&] { return mse_loss(pred, target); }, {pred});
}

TEST(GradCheck, MeanAll) {
  std::mt19937_64 rng(16);
  Tensor a = rand_tensor(4, 4, rng);
  check_gradients([&] { return mean_all(mul(a, a)); }, {a});
}

// ---- Composite layers: gradients flow through entire blocks ----

TEST(GradCheck, LinearLayer) {
  std::mt19937_64 rng(20);
  gnntrans::nn::Linear layer(4, 3, rng);
  Tensor x = rand_tensor(5, 4, rng, /*grad=*/false);
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  check_gradients(
      [&] {
        const Tensor y = layer.forward(x);
        return sum_all(mul(y, y));
      },
      params);
}

TEST(GradCheck, MlpTwoHidden) {
  std::mt19937_64 rng(21);
  gnntrans::nn::Mlp mlp({3, 6, 6, 1}, rng);
  Tensor x = rand_tensor(4, 3, rng, /*grad=*/false);
  std::vector<Tensor> params;
  mlp.collect_parameters(params);
  // Wider tolerance: hidden ReLU kinks make central differences noisy.
  check_gradients([&] { return sum_all(mlp.forward(x)); }, params, 5e-3f, 8e-2f);
}

TEST(GradCheck, SageConv) {
  std::mt19937_64 rng(22);
  gnntrans::nn::SageConv conv(3, 4, rng);
  GraphMatrix agg(4, 4);
  agg.add(0, 1, 1.0f);
  agg.add(1, 0, 0.5f);
  agg.add(1, 2, 0.5f);
  agg.add(2, 1, 0.6f);
  agg.add(3, 2, 1.0f);
  Tensor x = rand_tensor(4, 3, rng, /*grad=*/false);
  std::vector<Tensor> params;
  conv.collect_parameters(params);
  check_gradients(
      [&] {
        const Tensor y = conv.forward(x, agg);
        return sum_all(mul(y, y));
      },
      params, 1e-2f, 3e-2f);
}

TEST(GradCheck, SelfAttentionGlobal) {
  std::mt19937_64 rng(23);
  gnntrans::nn::SelfAttentionLayer attn(4, 2, rng);
  Tensor x = rand_tensor(5, 4, rng, /*grad=*/false);
  std::vector<Tensor> params;
  attn.collect_parameters(params);
  static const std::vector<std::uint8_t> kNoMask;
  check_gradients(
      [&] {
        const Tensor y = attn.forward(x, kNoMask);
        return sum_all(mul(y, y));
      },
      params, 5e-3f, 3e-2f);
}

TEST(GradCheck, GatLayer) {
  std::mt19937_64 rng(24);
  gnntrans::nn::GatLayer gat(3, 4, 2, rng);
  Tensor x = rand_tensor(4, 3, rng, /*grad=*/false);
  std::vector<std::uint8_t> mask(16, 0);
  for (std::size_t i = 0; i < 4; ++i) mask[i * 4 + i] = 1;
  mask[0 * 4 + 1] = mask[1 * 4 + 0] = 1;
  mask[2 * 4 + 3] = mask[3 * 4 + 2] = 1;
  std::vector<Tensor> params;
  gat.collect_parameters(params);
  check_gradients(
      [&] {
        const Tensor y = gat.forward(x, mask);
        return sum_all(mul(y, y));
      },
      params, 5e-3f, 4e-2f);
}

TEST(GradCheck, GcniiLayer) {
  std::mt19937_64 rng(25);
  gnntrans::nn::GcniiLayer layer(4, 0.1f, 0.4f, rng);
  GraphMatrix prop(3, 3);
  prop.add(0, 0, 0.5f);
  prop.add(0, 1, 0.5f);
  prop.add(1, 1, 0.4f);
  prop.add(1, 0, 0.3f);
  prop.add(1, 2, 0.3f);
  prop.add(2, 2, 0.6f);
  prop.add(2, 1, 0.4f);
  Tensor x = rand_tensor(3, 4, rng, /*grad=*/false);
  Tensor x0 = rand_tensor(3, 4, rng, /*grad=*/false);
  std::vector<Tensor> params;
  layer.collect_parameters(params);
  check_gradients(
      [&] {
        const Tensor y = layer.forward(x, x0, prop);
        return sum_all(mul(y, y));
      },
      params, 1e-2f, 3e-2f);
}

TEST(GradCheck, FeedForward) {
  std::mt19937_64 rng(26);
  gnntrans::nn::FeedForward ffn(4, 8, rng);
  Tensor x = rand_tensor(3, 4, rng, /*grad=*/false);
  std::vector<Tensor> params;
  ffn.collect_parameters(params);
  check_gradients(
      [&] {
        const Tensor y = ffn.forward(x);
        return sum_all(mul(y, y));
      },
      params, 1e-2f, 3e-2f);
}

}  // namespace
