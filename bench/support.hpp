/// \file support.hpp
/// Shared experiment protocol for the paper-reproduction benches: CPU-scaled
/// sizes, per-benchmark dataset construction, model-zoo training, and table
/// printing. Every bench binary reproducing a paper table/figure builds on
/// this so the protocol (splits, seeds, scaling) is identical across tables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/dac20.hpp"
#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"

namespace gnntrans::bench {

/// CPU-scaled experiment sizes. The paper trains on ~1M nets with 4 V100s for
/// 19h; these defaults target minutes on one CPU core while preserving the
/// protocol. GNNTRANS_BENCH_SCALE (float env var) scales net counts.
struct Scale {
  double factor = 1.0;              ///< from GNNTRANS_BENCH_SCALE
  std::size_t train_nets_per_design = 165;
  std::size_t test_nets_per_design = 120;
  std::size_t epochs = 32;
  std::size_t hidden_dim = 16;
  std::size_t heads = 4;
  std::size_t mlp_hidden = 32;
  /// Paper layer counts divided by 5: GNNTrans L1=20,L2=10 -> 4,2;
  /// baselines L=20 -> 4.
  std::size_t gnn_layers = 4;
  std::size_t transformer_layers = 2;
  std::size_t baseline_layers = 4;
  std::size_t sim_steps = 800;

  /// Reads GNNTRANS_BENCH_SCALE and applies it to net counts.
  static Scale from_env();
};

/// Labeled wire records for one paper benchmark (Table II row).
struct BenchmarkData {
  netlist::BenchmarkSpec spec;
  std::vector<features::WireRecord> records;
};

/// Generates per-benchmark standalone-net datasets following Table II: one
/// record set per benchmark, non-tree fraction taken from the spec, contexts
/// randomized, labels from the golden timer.
std::vector<BenchmarkData> build_wire_datasets(const Scale& scale,
                                               const cell::CellLibrary& library);

/// Pools the records of all training benchmarks.
std::vector<features::WireRecord> pool_training_records(
    const std::vector<BenchmarkData>& datasets);

/// One trained wire-timing predictor (neural or DAC'20) with a uniform
/// evaluation interface.
class ZooEntry {
 public:
  virtual ~ZooEntry() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Seconds-space (slew R^2, delay R^2) on the given records.
  virtual std::pair<double, double> evaluate(
      const std::vector<features::WireRecord>& records) const = 0;
};

/// Trains the full comparison zoo of Tables III/IV: DAC20, GCNII, GraphSage,
/// GAT, Trans. (graph transformer), GNNTrans — in paper column order.
std::vector<std::unique_ptr<ZooEntry>> train_zoo(
    const Scale& scale, const std::vector<features::WireRecord>& train_records,
    bool verbose = true);

/// Trains only the GNNTrans estimator with the given layer plan.
core::WireTimingEstimator train_gnntrans(
    const Scale& scale, const std::vector<features::WireRecord>& train_records,
    std::size_t l1, std::size_t l2, nn::ModelConfig overrides = {});

/// Filters records to non-tree nets only.
std::vector<features::WireRecord> non_tree_only(
    const std::vector<features::WireRecord>& records);

// ---- Table printing ----

/// Fixed-width table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);
  void print_header() const;
  void print_row(const std::vector<std::string>& cells) const;
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_pair(double a, double b, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace gnntrans::bench
