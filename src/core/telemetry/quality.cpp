#include "core/telemetry/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/telemetry/flight_recorder.hpp"
#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"

namespace gnntrans::telemetry {
namespace {

// Same pure-hash pipeline as core::FaultInjector: FNV-1a over the key,
// splitmix64 finalizer over the mix. A decision is a pure function of
// (seed, name), which is what makes the sampled-net set invariant under
// thread count and batch splitting.
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = kFnvBasis;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t rate_to_threshold(double rate) noexcept {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(rate * 18446744073709551615.0);
}

double threshold_to_rate(std::uint64_t threshold) noexcept {
  if (threshold == ~0ull) return 1.0;
  return static_cast<double>(threshold) / 18446744073709551615.0;
}

// Relative residual as a percent of the analytic reference. The floor keeps
// near-zero references (degenerate stub nets) from manufacturing huge
// percentages out of sub-femtosecond absolute noise.
double relative_pct(double model, double reference) noexcept {
  const double denom = std::max(std::abs(reference), 1e-15);
  return 100.0 * std::abs(model - reference) / denom;
}

// Residual histogram ladder, percent of reference: 0.1% .. 500%.
std::vector<double> residual_pct_bounds() {
  return {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0};
}

// Registry handles for the shadow-scoring metrics; function-local statics so
// the registry exists first and registration happens exactly once.
struct QualityMetrics {
  Counter shadowed_nets;
  Counter shadowed_sinks;
  Gauge effective_rate;
  Gauge overhead_pct;
  Gauge worst_psi;
  Gauge delay_p99_pct;
  Gauge degraded;
  Histogram delay_tree;
  Histogram delay_nontree;
  Histogram slew_tree;
  Histogram slew_nontree;

  static const QualityMetrics& get() {
    static QualityMetrics m{
        MetricsRegistry::global().counter(
            "gnntrans_quality_shadowed_nets_total",
            "Served nets re-timed by the analytic shadow scorer"),
        MetricsRegistry::global().counter(
            "gnntrans_quality_shadowed_sinks_total",
            "Sink residuals recorded by the shadow scorer"),
        MetricsRegistry::global().gauge(
            "gnntrans_quality_effective_shadow_rate",
            "Shadow sampling rate after overhead backoff"),
        MetricsRegistry::global().gauge(
            "gnntrans_quality_shadow_overhead_pct",
            "EWMA of shadow cost as percent of serving wall time"),
        MetricsRegistry::global().gauge(
            "gnntrans_quality_worst_psi",
            "Largest per-feature population stability index"),
        MetricsRegistry::global().gauge(
            "gnntrans_quality_delay_residual_p99_pct",
            "p99 relative delay residual (model vs analytic), percent"),
        MetricsRegistry::global().gauge(
            "gnntrans_quality_degraded",
            "1 when PSI or residual bounds are crossed, else 0"),
        MetricsRegistry::global().histogram(
            "gnntrans_quality_delay_residual_tree_pct", residual_pct_bounds(),
            "Relative delay residual on tree nets, percent"),
        MetricsRegistry::global().histogram(
            "gnntrans_quality_delay_residual_nontree_pct",
            residual_pct_bounds(),
            "Relative delay residual on non-tree nets, percent"),
        MetricsRegistry::global().histogram(
            "gnntrans_quality_slew_residual_tree_pct", residual_pct_bounds(),
            "Relative slew residual on tree nets, percent"),
        MetricsRegistry::global().histogram(
            "gnntrans_quality_slew_residual_nontree_pct",
            residual_pct_bounds(),
            "Relative slew residual on non-tree nets, percent"),
    };
    return m;
  }
};

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\' || u < 0x20) {
      out += '_';
    } else {
      out += c;
    }
  }
  out += '"';
}

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in, const char* what) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error(std::string("quality baseline: truncated ") + what);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogSketch

std::size_t LogSketch::bucket_of(double value) noexcept {
  if (std::isnan(value)) return kMagnitudeBuckets;  // zero bucket
  const double mag = std::abs(value);
  if (mag < std::ldexp(1.0, kMinExp)) return kMagnitudeBuckets;
  int exp = 0;
  std::frexp(mag, &exp);
  // frexp returns mag = f * 2^exp with f in [0.5, 1), so mag lives in
  // [2^(exp-1), 2^exp) — our bucket exponent is exp - 1.
  int e = exp - 1;
  e = std::clamp(e, kMinExp, kMaxExp);
  const auto offset = static_cast<std::size_t>(e - kMinExp);
  if (value < 0.0) return kMagnitudeBuckets - 1 - offset;
  return kMagnitudeBuckets + 1 + offset;
}

double LogSketch::bucket_lower(std::size_t index) noexcept {
  if (index == kMagnitudeBuckets) return -std::ldexp(1.0, kMinExp);
  if (index < kMagnitudeBuckets) {
    // Negative side: index 0 holds the most negative values. The bucket
    // covers (-2^(e+1), -2^e]; its lower bound is -2^(e+1).
    const int e = kMinExp + static_cast<int>(kMagnitudeBuckets - 1 - index);
    return -std::ldexp(1.0, e + 1);
  }
  const int e = kMinExp + static_cast<int>(index - kMagnitudeBuckets - 1);
  return std::ldexp(1.0, e);
}

double LogSketch::bucket_upper(std::size_t index) noexcept {
  if (index == kMagnitudeBuckets) return std::ldexp(1.0, kMinExp);
  if (index < kMagnitudeBuckets) {
    const int e = kMinExp + static_cast<int>(kMagnitudeBuckets - 1 - index);
    return -std::ldexp(1.0, e);
  }
  const int e = kMinExp + static_cast<int>(index - kMagnitudeBuckets - 1);
  return std::ldexp(1.0, e + 1);
}

void LogSketch::observe(double value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
}

void LogSketch::merge(const LogSketch& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
}

void LogSketch::reset() noexcept {
  counts_.fill(0);
  count_ = 0;
}

double LogSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = counts_[i];
    if (n == 0) continue;
    if (static_cast<double>(cumulative + n) >= target) {
      const double into =
          std::clamp((target - static_cast<double>(cumulative)) /
                         static_cast<double>(n),
                     0.0, 1.0);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      return lo + into * (hi - lo);
    }
    cumulative += n;
  }
  // All mass below target only happens through rounding; report the top of
  // the highest occupied bucket.
  for (std::size_t i = kBucketCount; i-- > 0;) {
    if (counts_[i] != 0) return bucket_upper(i);
  }
  return 0.0;
}

void LogSketch::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&count_), sizeof(count_));
  out.write(reinterpret_cast<const char*>(counts_.data()),
            static_cast<std::streamsize>(sizeof(std::uint64_t) * kBucketCount));
}

void LogSketch::load(std::istream& in) {
  in.read(reinterpret_cast<char*>(&count_), sizeof(count_));
  in.read(reinterpret_cast<char*>(counts_.data()),
          static_cast<std::streamsize>(sizeof(std::uint64_t) * kBucketCount));
  if (!in) throw std::runtime_error("quality sketch: truncated stream");
}

double population_stability_index(const LogSketch& baseline,
                                  const LogSketch& live, double epsilon) {
  if (baseline.count() == 0 || live.count() == 0) return 0.0;
  const double base_total = static_cast<double>(baseline.count());
  const double live_total = static_cast<double>(live.count());
  double psi = 0.0;
  for (std::size_t i = 0; i < LogSketch::kBucketCount; ++i) {
    const double p =
        std::max(static_cast<double>(baseline.buckets()[i]) / base_total,
                 epsilon);
    const double q =
        std::max(static_cast<double>(live.buckets()[i]) / live_total, epsilon);
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

// ---------------------------------------------------------------------------
// FeatureBaseline

namespace {
constexpr std::uint32_t kBaselineMagic = 0x51424153;  // "SABQ" LE -> "QBAS"
constexpr std::uint32_t kBaselineVersion = 1;
}  // namespace

void FeatureBaseline::observe(std::size_t feature, double value) {
  if (feature >= sketches.size()) {
    throw std::out_of_range("FeatureBaseline::observe: feature index");
  }
  sketches[feature].observe(value);
}

void FeatureBaseline::save(std::ostream& out) const {
  if (names.size() != sketches.size()) {
    throw std::logic_error("FeatureBaseline::save: names/sketches mismatch");
  }
  write_u32(out, kBaselineMagic);
  write_u32(out, kBaselineVersion);
  write_u32(out, static_cast<std::uint32_t>(LogSketch::kBucketCount));
  write_u32(out, static_cast<std::uint32_t>(sketches.size()));
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    write_u32(out, static_cast<std::uint32_t>(names[i].size()));
    out.write(names[i].data(), static_cast<std::streamsize>(names[i].size()));
    sketches[i].save(out);
  }
}

void FeatureBaseline::load(std::istream& in) {
  if (read_u32(in, "magic") != kBaselineMagic) {
    throw std::runtime_error("quality baseline: bad magic");
  }
  if (read_u32(in, "version") != kBaselineVersion) {
    throw std::runtime_error("quality baseline: unknown block version");
  }
  if (read_u32(in, "bucket count") != LogSketch::kBucketCount) {
    throw std::runtime_error("quality baseline: sketch layout mismatch");
  }
  const std::uint32_t n = read_u32(in, "feature count");
  if (n > 4096) throw std::runtime_error("quality baseline: feature count implausible");
  names.assign(n, std::string());
  sketches.assign(n, LogSketch());
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = read_u32(in, "name length");
    if (len > 256) throw std::runtime_error("quality baseline: name length implausible");
    names[i].resize(len);
    in.read(names[i].data(), static_cast<std::streamsize>(len));
    if (!in) throw std::runtime_error("quality baseline: truncated name");
    sketches[i].load(in);
  }
}

// ---------------------------------------------------------------------------
// QualityMonitor

QualityMonitor& QualityMonitor::global() {
  static QualityMonitor monitor;
  return monitor;
}

void QualityMonitor::configure(const QualityConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  for (auto& sketch : live_features_) sketch.reset();
  delay_resid_tree_.reset();
  delay_resid_nontree_.reset();
  slew_resid_tree_.reset();
  slew_resid_nontree_.reset();
  std::fill(psi_alerted_.begin(), psi_alerted_.end(), std::uint8_t{0});
  shadowed_nets_.store(0, std::memory_order_relaxed);
  shadowed_sinks_.store(0, std::memory_order_relaxed);
  overhead_ewma_pct_.store(0.0, std::memory_order_relaxed);
  cost_batches_.store(0, std::memory_order_relaxed);
  shadow_seed_.store(config.shadow_seed, std::memory_order_relaxed);
  // Through the setter so the effective-rate gauge reflects the pinned rate
  // even when the overhead controller never runs (budget 0).
  set_effective_rate(config.shadow_rate);
  active_.store(config.shadow_rate > 0.0, std::memory_order_release);
}

QualityConfig QualityMonitor::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

bool QualityMonitor::should_shadow(std::string_view net_name) const noexcept {
  if (!active_.load(std::memory_order_acquire)) return false;
  const std::uint64_t threshold =
      shadow_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  const std::uint64_t seed = shadow_seed_.load(std::memory_order_relaxed);
  return mix(seed ^ fnv1a(net_name)) <= threshold;
}

double QualityMonitor::effective_rate() const noexcept {
  return threshold_to_rate(shadow_threshold_.load(std::memory_order_relaxed));
}

void QualityMonitor::set_effective_rate(double rate) noexcept {
  shadow_threshold_.store(rate_to_threshold(rate), std::memory_order_relaxed);
  QualityMetrics::get().effective_rate.set(rate);
}

void QualityMonitor::install_baseline(FeatureBaseline baseline) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baseline);
  live_features_.assign(baseline_.feature_count(), LogSketch());
  psi_alerted_.assign(baseline_.feature_count(), 0);
}

bool QualityMonitor::has_baseline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !baseline_.empty();
}

void QualityMonitor::observe_features(const float* values, std::size_t rows,
                                      std::size_t cols,
                                      std::size_t base_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (base_index + cols > live_features_.size()) return;  // no baseline yet
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = values + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      live_features_[base_index + c].observe(static_cast<double>(row[c]));
    }
  }
}

void QualityMonitor::record_residual(bool non_tree, double delay_model,
                                     double delay_ref, double slew_model,
                                     double slew_ref) {
  const double delay_pct = relative_pct(delay_model, delay_ref);
  const double slew_pct = relative_pct(slew_model, slew_ref);
  const auto& metrics = QualityMetrics::get();
  metrics.shadowed_sinks.inc();
  if (non_tree) {
    metrics.delay_nontree.observe(delay_pct);
    metrics.slew_nontree.observe(slew_pct);
  } else {
    metrics.delay_tree.observe(delay_pct);
    metrics.slew_tree.observe(slew_pct);
  }
  shadowed_sinks_.fetch_add(1, std::memory_order_relaxed);

  bool outlier = false;
  double alert_pct = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (non_tree) {
      delay_resid_nontree_.observe(delay_pct);
      slew_resid_nontree_.observe(slew_pct);
    } else {
      delay_resid_tree_.observe(delay_pct);
      slew_resid_tree_.observe(slew_pct);
    }
    alert_pct = config_.residual_alert_pct;
    outlier = alert_pct > 0.0 && delay_pct > 2.0 * alert_pct;
  }
  if (outlier) {
    // Pin extreme disagreements so they survive ring wrap for post-mortems.
    FlightRecord rec;
    rec.set_net("shadow_outlier");
    rec.set_outcome(non_tree ? "resid_nontree" : "resid_tree");
    rec.total_us = static_cast<float>(delay_pct);
    rec.pinned = 1;
    FlightRecorder::global().record(rec);
  }
}

void QualityMonitor::count_shadowed_net() noexcept {
  QualityMetrics::get().shadowed_nets.inc();
  shadowed_nets_.fetch_add(1, std::memory_order_relaxed);
}

void QualityMonitor::observe_shadow_cost(double shadow_seconds,
                                         double batch_seconds) noexcept {
  if (!active_.load(std::memory_order_acquire)) return;
  if (!(batch_seconds > 0.0)) return;
  // Warm-up guard (the trace sampler's PR-9 bug class): the first batches
  // after configure() time one-off setup — residual-sketch and live-feature
  // buffer first touch, cold allocator paths inside the shadow's feature
  // re-extraction — so their measured cost is wildly unrepresentative of
  // steady state. Seeding the EWMA with it throttled a fresh server's shadow
  // rate to ~configured/64 before real evidence existed. Discard these
  // observations entirely; the controller engages on warmed traffic.
  if (cost_batches_.fetch_add(1, std::memory_order_relaxed) <
      kShadowCostWarmupBatches)
    return;
  const double pct =
      100.0 * std::max(shadow_seconds, 0.0) / batch_seconds;
  // Same EWMA shape as the trace sampler's budget controller.
  const double prev = overhead_ewma_pct_.load(std::memory_order_relaxed);
  const double ewma = prev == 0.0 ? pct : 0.7 * prev + 0.3 * pct;
  overhead_ewma_pct_.store(ewma, std::memory_order_relaxed);
  QualityMetrics::get().overhead_pct.set(ewma);

  double budget = 0.0;
  double configured = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    budget = config_.overhead_budget_pct;
    configured = config_.shadow_rate;
  }
  if (budget <= 0.0) return;  // controller disabled: rate stays pinned
  const double current = effective_rate();
  if (ewma > budget) {
    // Over budget: scale the rate down proportionally (at least halve).
    const double scaled = current * std::min(0.5, budget / ewma);
    set_effective_rate(std::max(scaled, configured / 64.0));
  } else if (ewma < 0.5 * budget && current < configured) {
    // Comfortably under budget: recover toward the configured rate.
    set_effective_rate(std::min(configured, std::max(current * 2.0,
                                                     configured / 64.0)));
  }
}

QualityState QualityMonitor::compute_state() {
  QualityState state;
  state.shadowed_nets = shadowed_nets_.load(std::memory_order_relaxed);
  state.shadowed_sinks = shadowed_sinks_.load(std::memory_order_relaxed);
  state.effective_rate = effective_rate();
  state.shadow_overhead_pct =
      overhead_ewma_pct_.load(std::memory_order_relaxed);

  QualityConfig cfg;
  std::vector<std::size_t> newly_alerted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cfg = config_;

    LogSketch delay_all = delay_resid_tree_;
    delay_all.merge(delay_resid_nontree_);
    LogSketch slew_all = slew_resid_tree_;
    slew_all.merge(slew_resid_nontree_);
    state.delay_p50_pct = delay_all.quantile(0.50);
    state.delay_p99_pct = delay_all.quantile(0.99);
    state.slew_p50_pct = slew_all.quantile(0.50);
    state.slew_p99_pct = slew_all.quantile(0.99);

    state.features.reserve(baseline_.feature_count());
    for (std::size_t i = 0; i < baseline_.feature_count(); ++i) {
      FeatureDrift drift;
      drift.name = baseline_.names[i];
      drift.live_count = live_features_[i].count();
      if (drift.live_count >= cfg.min_samples) {
        drift.psi =
            population_stability_index(baseline_.sketches[i], live_features_[i]);
      }
      if (drift.psi > state.worst_psi) {
        state.worst_psi = drift.psi;
        state.worst_feature = drift.name;
      }
      if (cfg.psi_alert > 0.0 && drift.psi > cfg.psi_alert &&
          psi_alerted_[i] == 0) {
        psi_alerted_[i] = 1;
        newly_alerted.push_back(i);
      }
      state.features.push_back(std::move(drift));
    }

    const std::uint64_t residual_count =
        delay_all.count();  // already tree + non-tree
    if (cfg.psi_alert > 0.0 && state.worst_psi > cfg.psi_alert) {
      state.degraded = true;
      state.degraded_reason = "feature_psi " + state.worst_feature;
    } else if (cfg.residual_alert_pct > 0.0 &&
               residual_count >= cfg.min_samples &&
               state.delay_p99_pct > cfg.residual_alert_pct) {
      state.degraded = true;
      state.degraded_reason = "delay_residual_p99";
    }
  }

  const auto& metrics = QualityMetrics::get();
  metrics.worst_psi.set(state.worst_psi);
  metrics.delay_p99_pct.set(state.delay_p99_pct);
  metrics.degraded.set(state.degraded ? 1.0 : 0.0);
  for (const auto& drift : state.features) {
    MetricsRegistry::global()
        .gauge("gnntrans_quality_feature_psi_" + drift.name,
               "Population stability index vs training baseline")
        .set(drift.psi);
  }
  for (const std::size_t i : newly_alerted) {
    const std::string& name = state.features[i].name;
    GNNTRANS_LOG_WARN("quality", "feature '%s' PSI %.3f crossed alert %.3f",
                      name.c_str(), state.features[i].psi, cfg.psi_alert);
    FlightRecord rec;
    rec.set_net(name);
    rec.set_outcome("feature_drift");
    rec.total_us = static_cast<float>(state.features[i].psi * 1000.0);
    rec.pinned = 1;
    FlightRecorder::global().record(rec);
  }
  return state;
}

bool QualityMonitor::degraded(std::string* reason) {
  if (!active_.load(std::memory_order_acquire)) return false;
  const QualityState state = compute_state();
  if (state.degraded && reason != nullptr) *reason = state.degraded_reason;
  return state.degraded;
}

std::string QualityMonitor::state_json() {
  const QualityState state = compute_state();
  std::string out;
  out.reserve(1024);
  out += "{\"shadowed_nets\":";
  append_json_number(out, static_cast<double>(state.shadowed_nets));
  out += ",\"shadowed_sinks\":";
  append_json_number(out, static_cast<double>(state.shadowed_sinks));
  out += ",\"effective_rate\":";
  append_json_number(out, state.effective_rate);
  out += ",\"shadow_overhead_pct\":";
  append_json_number(out, state.shadow_overhead_pct);
  out += ",\"residuals\":{\"delay_p50_pct\":";
  append_json_number(out, state.delay_p50_pct);
  out += ",\"delay_p99_pct\":";
  append_json_number(out, state.delay_p99_pct);
  out += ",\"slew_p50_pct\":";
  append_json_number(out, state.slew_p50_pct);
  out += ",\"slew_p99_pct\":";
  append_json_number(out, state.slew_p99_pct);
  out += "},\"worst_psi\":";
  append_json_number(out, state.worst_psi);
  out += ",\"worst_feature\":";
  append_json_string(out, state.worst_feature);
  out += ",\"degraded\":";
  out += state.degraded ? "true" : "false";
  out += ",\"degraded_reason\":";
  append_json_string(out, state.degraded_reason);
  out += ",\"features\":[";
  bool first = true;
  for (const auto& drift : state.features) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, drift.name);
    out += ",\"psi\":";
    append_json_number(out, drift.psi);
    out += ",\"live_count\":";
    append_json_number(out, static_cast<double>(drift.live_count));
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace gnntrans::telemetry
