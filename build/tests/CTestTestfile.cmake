# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_rcnet[1]_include.cmake")
include("/root/repo/build/tests/test_spef[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_awe[1]_include.cmake")
include("/root/repo/build/tests/test_ceff[1]_include.cmake")
include("/root/repo/build/tests/test_cell[1]_include.cmake")
include("/root/repo/build/tests/test_liberty[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_report_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_autograd[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
