// Tests for the synchronous data-parallel trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/parallel.hpp"
#include "features/dataset.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::core;

std::vector<nn::GraphSample> samples_for_test(std::size_t n, std::uint64_t seed,
                                              features::Standardizer& std_) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = n;
  cfg.seed = seed;
  cfg.sim_config.steps = 200;
  const auto records = features::generate_wire_records(cfg, lib);
  std_.fit(records);
  return features::make_samples(records, std_);
}

std::unique_ptr<nn::WireModel> fresh_model() {
  nn::ModelConfig mc;
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  mc.hidden_dim = 8;
  mc.gnn_layers = 2;
  mc.transformer_layers = 1;
  mc.heads = 2;
  mc.mlp_hidden = 16;
  return nn::make_model(nn::ModelKind::kGnnTrans, mc);
}

TEST(ParallelTrainer, LossDecreasesWithTwoWorkers) {
  features::Standardizer std_;
  const auto samples = samples_for_test(24, 71, std_);
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  cfg.workers = 2;
  cfg.base.epochs = 10;
  const TrainReport report = train_model_parallel(*model, samples, cfg);
  ASSERT_EQ(report.epoch_loss.size(), 10u);
  EXPECT_LT(report.epoch_loss.back(), 0.6 * report.epoch_loss.front());
}

TEST(ParallelTrainer, DeterministicAcrossRuns) {
  features::Standardizer std_;
  const auto samples = samples_for_test(12, 73, std_);
  ParallelTrainConfig cfg;
  cfg.workers = 3;
  cfg.base.epochs = 3;

  auto m1 = fresh_model();
  auto m2 = fresh_model();
  const TrainReport r1 = train_model_parallel(*m1, samples, cfg);
  const TrainReport r2 = train_model_parallel(*m2, samples, cfg);
  ASSERT_EQ(r1.epoch_loss.size(), r2.epoch_loss.size());
  for (std::size_t e = 0; e < r1.epoch_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(r1.epoch_loss[e], r2.epoch_loss[e]);
  // Trained weights must match too.
  const auto p1 = m1->parameters();
  const auto p2 = m2->parameters();
  for (std::size_t i = 0; i < p1.size(); ++i)
    for (std::size_t j = 0; j < p1[i].size(); ++j)
      EXPECT_EQ(p1[i].values()[j], p2[i].values()[j]);
}

TEST(ParallelTrainer, SingleWorkerStillTrains) {
  features::Standardizer std_;
  const auto samples = samples_for_test(12, 77, std_);
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  cfg.workers = 1;
  cfg.base.epochs = 8;
  const TrainReport report = train_model_parallel(*model, samples, cfg);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(ParallelTrainer, WorkerCountDoesNotBreakConvergence) {
  // Different worker counts take different step sequences but must both
  // reach a working model.
  features::Standardizer std_;
  const auto samples = samples_for_test(24, 79, std_);
  for (std::size_t workers : {2u, 4u}) {
    auto model = fresh_model();
    ParallelTrainConfig cfg;
    cfg.workers = workers;
    cfg.base.epochs = 12;
    const TrainReport report = train_model_parallel(*model, samples, cfg);
    EXPECT_LT(report.epoch_loss.back(), 0.5) << workers << " workers";
    // Model outputs stay finite.
    const nn::WirePrediction pred = model->forward(samples.front());
    for (std::size_t q = 0; q < samples.front().path_count; ++q)
      EXPECT_TRUE(std::isfinite(pred.delay(q, 0)));
  }
}

TEST(ParallelTrainer, EmptySampleListIsNoop) {
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  const TrainReport report = train_model_parallel(*model, {}, cfg);
  EXPECT_TRUE(report.epoch_loss.empty());
}

}  // namespace
