#include "tensor/optim.hpp"

#include <cmath>
#include <stdexcept>

namespace gnntrans::tensor {

Adam::Adam(std::vector<Tensor> parameters, Config config)
    : params_(std::move(parameters)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    if (!p.defined() || !p.requires_grad())
      throw std::invalid_argument("Adam: parameter without requires_grad");
    m_.emplace_back(p.size(), 0.0f);
    v_.emplace_back(p.size(), 0.0f);
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;  // never touched by backward
    auto values = p.values();
    auto grads = p.grad();
    for (std::size_t j = 0; j < values.size(); ++j) {
      float g = grads[j];
      if (config_.weight_decay > 0.0f)
        values[j] -= config_.learning_rate * config_.weight_decay * values[j];
      m_[i][j] = config_.beta1 * m_[i][j] + (1.0f - config_.beta1) * g;
      v_[i][j] = config_.beta2 * v_[i][j] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m_[i][j] / bc1;
      const float v_hat = v_[i][j] / bc2;
      values[j] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

void Adam::zero_grad() noexcept {
  for (Tensor& p : params_) p.zero_grad();
}

double clip_grad_norm(std::vector<Tensor>& parameters, double max_norm) {
  double total = 0.0;
  for (Tensor& p : parameters)
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    const float factor = static_cast<float>(max_norm / total);
    for (Tensor& p : parameters)
      for (float& g : p.grad()) g *= factor;
  }
  return total;
}

}  // namespace gnntrans::tensor
