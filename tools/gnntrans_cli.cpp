// gnntrans_cli — command-line front end for the wire timing estimator.
//
// Subcommands:
//   generate  --nets N [--seed S] [--non-tree F] --spef OUT
//       Emit synthetic extracted parasitics (SPEF).
//   design    [--seed S] [--cells N] --verilog OUT --spef OUT
//       Emit a routed-design handoff pair (structural Verilog + SPEF).
//   libgen    --liberty OUT
//       Dump the default cell library in the Liberty subset.
//   train     --spef IN --model OUT [--epochs E] [--arch NAME] [--seed S]
//       Label the given nets with the golden timer and train an estimator.
//       Arch: gnntrans (default), graphsage, gcnii, gat, transformer.
//   eval      --spef IN --model IN
//       Score a trained model against golden timing on the given nets.
//   predict   --spef IN --model IN [--threads T] [--batch B]
//       Per-path slew/delay report for every net (no golden timing).
//       Inference runs through the batched serving path: nets are grouped
//       into batches of B (default 64) and fanned out over T workers
//       (default 1); a throughput/latency summary goes to stderr.
//   sta       --verilog IN --spef IN [--model IN] [--threads T] [--paths K]
//       Full-design arrival report; wire timing from the golden simulator,
//       or from the trained model when --model is given. With a model,
//       --threads T parallelizes wire inference within each topological
//       level (identical arrivals for any T). --paths K appends a sign-off
//       style report of the K worst paths.
//   serve     --model IN [--port P] [--addr A] [--threads T] [--batch B]
//             [--flush-ms F] [--queue Q] [--max-conns C] [--duration-s D]
//             [--max-requests N]
//       Network serving front-end: listen on A:P (default 127.0.0.1, port 0 =
//       ephemeral, logged) for length-prefixed binary timing requests
//       (serve/protocol.hpp), coalesce them across clients into batches of up
//       to B flushed every F ms, and answer through estimate_batch on T
//       workers. Admission is bounded by Q queued requests (overflow gets a
//       typed kOverloaded reject) and C concurrent connections. Runs until
//       SIGINT/SIGTERM (graceful drain: flush in-flight, answer, close), or
//       for D seconds, or until N requests were admitted. The serving
//       robustness flags below apply per batch; --deadline-ms is ignored
//       (deadlines arrive per-request on the wire). --autoscale on resizes
//       the pool from offered load *plus* queue backlog.
//   eco       [--seed S] [--edits N] [--startpoints P --levels L --width W]
//             [--steps T] [--model IN] [--verify on|off] [--paths K]
//       ECO what-if driver: generate a design, apply N seeded random edits
//       (cell swaps, net reroutes, buffer insertions) through the
//       incremental engine, and after every edit verify the incrementally
//       maintained arrivals/slews/required-times/slacks are bitwise equal
//       to a fresh full run_sta over the mutated design (--verify off
//       skips the check). Reports retimed-instances per edit; exits 2 on
//       any mismatch. Wire timing from the golden simulator (--steps sets
//       its resolution) or a trained model with --model.
//
// Serving robustness flags (predict, and sta with --model):
//   --fallback P        analytic (default) degrades model-failed nets to the
//                       Elmore/D2M baseline; none returns zeroed estimates
//   --deadline-ms D     batch latency budget; nets started past it skip the
//                       model and degrade (0 = off, default)
//   --slow-ms S         WARN-log any net slower than S ms with its per-stage
//                       breakdown (0 = off, default)
//   --fault-inject P    deterministically inject faults into a fraction P of
//                       (site, net) decisions — testing/chaos knob, default 0
//   --fault-seed S      seed for the fault-injection hash (default 1)
//   --autoscale on      resize the worker pool between batches from the
//                       serving latency histogram (hysteresis controller;
//                       results stay bitwise-identical to any pinned count)
//   --min-threads N     autoscaler floor (default 1)
//   --max-threads N     autoscaler ceiling (default 0 = hardware threads)
//   --cache-mb N        byte budget (MiB) of the content-addressed estimate
//                       cache; identical (parasitics, context) pairs are
//                       served from stored model results, bitwise-identical
//                       values tagged "cached" (default 64; 0 disables).
//                       Also applies to serve.
//   --cache-off on      disable the estimate cache (same as --cache-mb 0)
//
// Model-quality flags (predict, sta/eco with --model):
//   --shadow-rate R     shadow-score fraction R of model-served nets against
//                       the analytic Elmore/D2M baseline (deterministic
//                       pure-hash sample; 0 = off, default). Residuals and
//                       per-feature PSI export as gnntrans_quality_* metrics,
//                       the /quality endpoint, and the stats-interval lines.
//   --shadow-seed S     seed for the shadow sampling hash (default 1)
//   --shadow-budget P   shadow-cost budget as a percent of serving wall time;
//                       the effective rate backs off between batches to stay
//                       under (0 = no backoff, fully deterministic; default 0)
//   --psi-alert X       a feature PSI above X flips /readyz to 503
//                       (default 0.25)
//   --residual-alert P  shadow delay-residual p99 above P percent flips
//                       /readyz to 503 (default 50)
//
// Telemetry flags (any subcommand; most useful on predict/sta/train):
//   --log-level L       trace|debug|info|warn|error|off (default info)
//   --log-json FILE     mirror log records to FILE as JSON lines
//   --metrics-out FILE  write a metrics snapshot on success; .json extension
//                       selects JSON, anything else Prometheus text
//   --trace-out FILE    record TraceSpans and write Chrome trace JSON on
//                       success (open in chrome://tracing or Perfetto)
//   --trace-sample N    span sampling floor: record 1 in N spans (default 1);
//                       the overhead controller may raise the effective N
//   --trace-budget P    tracing overhead budget as a percent of serving wall
//                       time (default 2); the sampler backs off to stay under
//   --trace-rate R      request head-sampling rate in [0,1] (default 1/64):
//                       fraction of serve requests that get a full stage-
//                       clock trace, /tracez retention, and flow events
//   --trace-seed N      head-sampling hash seed (varies which requests are
//                       picked without changing the rate)
//   --obs-port P        serve GET /metrics /metrics.json /healthz /readyz
//                       /buildinfo /flight /quality /tracez on P while the
//                       command runs (0 = ephemeral; the bound port is logged)
//   --obs-addr A        bind address for --obs-port (default 127.0.0.1)
//   --flight-out FILE   write the flight-recorder JSON on exit; also installs
//                       a fatal-signal handler that dumps the black box
//   --stats-interval S  log serving-stat deltas (nets/s, fallback %, p50/p99)
//                       every S seconds while the command runs (0 = off)
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "cell/liberty.hpp"
#include "core/autoscaler.hpp"
#include "core/estimate_cache.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/metrics.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/report.hpp"
#include "netlist/sta.hpp"
#include "netlist/verilog.hpp"
#include "rcnet/generate.hpp"
#include "rcnet/spef.hpp"
#include "serve/server.hpp"

using namespace gnntrans;

namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      values_[argv[i] + 2] = argv[i + 1];
    }
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) {
      GNNTRANS_LOG_ERROR("cli", "missing --%s", key.c_str());
      std::exit(1);
    }
    return *v;
  }
  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<rcnet::RcNet> load_spef(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    GNNTRANS_LOG_ERROR("spef", "cannot open %s", path.c_str());
    std::exit(2);
  }
  rcnet::SpefParseResult result = rcnet::parse_spef(in);
  for (const std::string& w : result.warnings)
    GNNTRANS_LOG_WARN("spef", "%s", w.c_str());
  if (result.nets.empty()) {
    GNNTRANS_LOG_ERROR("spef", "no nets in %s", path.c_str());
    std::exit(2);
  }
  return result.nets;
}

/// Opens \p path for writing or exits 2 with a logged error.
std::ofstream open_output(const std::string& path, const char* component) {
  std::ofstream out(path);
  if (!out) {
    GNNTRANS_LOG_ERROR(component, "cannot open %s for write", path.c_str());
    std::exit(2);
  }
  return out;
}

/// Deterministic per-net context: seeded by the net name so predict/eval of
/// the same file always time the same scenario.
features::NetContext context_for(const cell::CellLibrary& library,
                                 const rcnet::RcNet& net) {
  std::mt19937_64 rng(std::hash<std::string>{}(net.name));
  return features::random_context(library, net, rng);
}

std::vector<features::WireRecord> label_nets(const std::vector<rcnet::RcNet>& nets,
                                             const cell::CellLibrary& library) {
  sim::GoldenTimer timer{sim::TransientConfig{}};
  std::vector<features::WireRecord> records;
  records.reserve(nets.size());
  for (const rcnet::RcNet& net : nets) {
    if (!net.validate().empty()) continue;
    records.push_back(
        features::make_record(net, context_for(library, net), timer));
  }
  GNNTRANS_LOG_INFO("label", "labeled %zu nets with the golden timer (%.2f s)",
                    records.size(), timer.stats().wall_seconds);
  return records;
}

nn::ModelKind arch_from_name(const std::string& name) {
  if (name == "gnntrans") return nn::ModelKind::kGnnTrans;
  if (name == "graphsage") return nn::ModelKind::kGraphSage;
  if (name == "gcnii") return nn::ModelKind::kGcnii;
  if (name == "gat") return nn::ModelKind::kGat;
  if (name == "transformer") return nn::ModelKind::kGraphTransformer;
  GNNTRANS_LOG_ERROR("cli", "unknown --arch '%s'", name.c_str());
  std::exit(1);
}

int cmd_generate(const Args& args) {
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = args.get_double("non-tree", cfg.non_tree_fraction);
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_long("seed", 1)));
  const long count = args.get_long("nets", 100);

  std::vector<rcnet::RcNet> nets;
  nets.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i)
    nets.push_back(rcnet::generate_net(cfg, rng, "net" + std::to_string(i)));

  const std::string path = args.require("spef");
  std::ofstream out = open_output(path, "spef");
  out.precision(17);
  rcnet::write_spef(out, nets);
  std::printf("wrote %ld nets to %s\n", count, path.c_str());
  return 0;
}

int cmd_design(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  netlist::DesignGenConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const long cells = args.get_long("cells", 300);
  cfg.levels = 6;
  cfg.cells_per_level =
      std::max<std::uint32_t>(3, static_cast<std::uint32_t>(cells * 0.8 / cfg.levels));
  cfg.startpoints =
      std::max<std::uint32_t>(4, static_cast<std::uint32_t>(cells * 0.12));
  const netlist::Design design =
      netlist::generate_design(cfg, library, "cli_design");

  {
    std::ofstream out = open_output(args.require("verilog"), "verilog");
    netlist::write_verilog(out, design, library);
  }
  {
    std::vector<rcnet::RcNet> nets;
    for (const netlist::DesignNet& net : design.nets) nets.push_back(net.rc);
    std::ofstream out = open_output(args.require("spef"), "spef");
    out.precision(17);
    rcnet::write_spef(out, nets);
  }
  std::printf("wrote design '%s': %zu cells, %zu nets, %zu endpoints\n",
              design.name.c_str(), design.cell_count(), design.net_count(),
              design.endpoints.size());
  return 0;
}

int cmd_libgen(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  std::ofstream out = open_output(args.require("liberty"), "liberty");
  cell::write_liberty(out, library);
  std::printf("wrote %zu cells\n", library.size());
  return 0;
}

/// Loads a model checkpoint, installs its quality baseline into the global
/// monitor (so --shadow-rate can compute feature PSI), and flips readiness.
/// Reports an unsupported checkpoint version through its typed error code
/// instead of a generic parse failure.
core::WireTimingEstimator load_model_file(const std::string& path) {
  try {
    core::WireTimingEstimator estimator =
        core::WireTimingEstimator::load_file(path);
    estimator.install_quality_baseline();
    telemetry::set_model_ready(true);
    return estimator;
  } catch (const core::UnsupportedCheckpointError& e) {
    GNNTRANS_LOG_ERROR("cli", "%s: [%s] %s", path.c_str(),
                       core::to_string(e.status().code()),
                       e.status().message().c_str());
    std::exit(2);
  }
}

int cmd_train(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  const auto records = label_nets(load_spef(args.require("spef")), library);

  core::WireTimingEstimator::Options opt;
  opt.kind = arch_from_name(args.get("arch").value_or("gnntrans"));
  opt.model.hidden_dim = static_cast<std::size_t>(args.get_long("hidden", 16));
  opt.model.gnn_layers = static_cast<std::size_t>(args.get_long("l1", 4));
  opt.model.transformer_layers = static_cast<std::size_t>(args.get_long("l2", 2));
  opt.model.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  opt.train.epochs = static_cast<std::size_t>(args.get_long("epochs", 30));
  opt.train.on_epoch = [](std::size_t epoch, double loss) {
    GNNTRANS_LOG_INFO("train", "epoch %zu loss %.5f", epoch, loss);
  };
  const auto estimator = core::WireTimingEstimator::train(records, opt);
  estimator.install_quality_baseline();
  telemetry::set_model_ready(true);
  estimator.save_file(args.require("model"));
  std::printf("trained %s (%zu parameters) in %.1f s -> %s\n",
              estimator.model().name().c_str(),
              estimator.model().parameter_count(),
              estimator.train_report().wall_seconds,
              args.require("model").c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  const auto estimator = load_model_file(args.require("model"));
  const auto records = label_nets(load_spef(args.require("spef")), library);
  const core::Evaluation eval = estimator.evaluate(records);
  std::printf("nets: %zu paths: %zu\n", records.size(), eval.path_count);
  std::printf("slew  R^2 %.4f   max |err| %.2f ps\n", eval.slew_r2,
              eval.slew_max_abs * 1e12);
  std::printf("delay R^2 %.4f   max |err| %.2f ps\n", eval.delay_r2,
              eval.delay_max_abs * 1e12);
  std::printf("inference: %.3f s total\n", eval.inference_seconds);
  return 0;
}

/// Reads the shared serving-robustness flags into \p options and arms the
/// global fault injector when --fault-inject is nonzero.
void apply_serving_flags(const Args& args, core::BatchOptions& options) {
  const std::string policy = args.get("fallback").value_or("analytic");
  if (policy == "analytic") {
    options.fallback = core::FallbackPolicy::kAnalytic;
  } else if (policy == "none") {
    options.fallback = core::FallbackPolicy::kNone;
  } else {
    GNNTRANS_LOG_ERROR("cli", "unknown --fallback '%s' (analytic|none)",
                       policy.c_str());
    std::exit(1);
  }
  options.deadline_seconds = args.get_double("deadline-ms", 0.0) * 1e-3;
  options.slow_net_warn_seconds = args.get_double("slow-ms", 0.0) * 1e-3;

  const double fault_p = args.get_double("fault-inject", 0.0);
  if (fault_p > 0.0) {
    core::FaultInjector::Config cfg;
    cfg.probability = fault_p;
    cfg.seed = static_cast<std::uint64_t>(args.get_long("fault-seed", 1));
    core::FaultInjector::global().configure(cfg);
    GNNTRANS_LOG_WARN("cli", "fault injection armed: p=%.4f seed=%llu",
                      fault_p,
                      static_cast<unsigned long long>(cfg.seed));
  }

  // Model-quality monitoring: shadow scoring + drift alerting. Configured
  // alongside the other serving knobs so every model-serving subcommand
  // (predict, sta/eco --model) takes the same flags.
  const double shadow_rate = args.get_double("shadow-rate", 0.0);
  if (shadow_rate > 0.0) {
    telemetry::QualityConfig qcfg;
    qcfg.shadow_rate = shadow_rate;
    qcfg.shadow_seed = static_cast<std::uint64_t>(args.get_long("shadow-seed", 1));
    qcfg.overhead_budget_pct = args.get_double("shadow-budget", 0.0);
    qcfg.psi_alert = args.get_double("psi-alert", qcfg.psi_alert);
    qcfg.residual_alert_pct =
        args.get_double("residual-alert", qcfg.residual_alert_pct);
    telemetry::QualityMonitor::global().configure(qcfg);
    GNNTRANS_LOG_INFO("cli",
                      "shadow scoring armed: rate=%.4f seed=%llu budget=%.1f%% "
                      "psi-alert=%.2f residual-alert=%.0f%%",
                      shadow_rate,
                      static_cast<unsigned long long>(qcfg.shadow_seed),
                      qcfg.overhead_budget_pct, qcfg.psi_alert,
                      qcfg.residual_alert_pct);
  } else if (args.get("shadow-seed") || args.get("shadow-budget") ||
             args.get("psi-alert") || args.get("residual-alert")) {
    GNNTRANS_LOG_WARN("cli", "quality flags have no effect without "
                             "--shadow-rate > 0");
  }
}

/// Reads --autoscale / --min-threads / --max-threads. Returns nullopt when
/// autoscaling is off (the default); exits 1 on a malformed --autoscale value.
std::optional<core::AutoscalerConfig> autoscale_config_from(const Args& args) {
  const std::string v = args.get("autoscale").value_or("off");
  const bool on = v == "on" || v == "1" || v == "true";
  if (!on && v != "off" && v != "0" && v != "false") {
    GNNTRANS_LOG_ERROR("cli", "unknown --autoscale '%s' (on|off)", v.c_str());
    std::exit(1);
  }
  if (!on) {
    if (args.get("min-threads") || args.get("max-threads"))
      GNNTRANS_LOG_WARN(
          "cli", "--min-threads/--max-threads have no effect without "
                 "--autoscale on");
    return std::nullopt;
  }
  core::AutoscalerConfig cfg;
  cfg.min_threads =
      static_cast<std::size_t>(std::max(1L, args.get_long("min-threads", 1)));
  cfg.max_threads =
      static_cast<std::size_t>(std::max(0L, args.get_long("max-threads", 0)));
  return cfg;
}

/// Reads --cache-mb / --cache-off. The content-addressed estimate cache is on
/// by default (64 MiB) for every model-serving subcommand; nullopt means
/// caching is disabled. Exits 1 on a malformed --cache-off value.
std::optional<core::EstimateCacheConfig> cache_config_from(const Args& args) {
  const std::string off = args.get("cache-off").value_or("off");
  const bool disabled = off == "on" || off == "1" || off == "true";
  if (!disabled && off != "off" && off != "0" && off != "false") {
    GNNTRANS_LOG_ERROR("cli", "unknown --cache-off '%s' (on|off)", off.c_str());
    std::exit(1);
  }
  const long mb = args.get_long("cache-mb", 64);
  if (disabled || mb <= 0) {
    if (disabled && args.get("cache-mb"))
      GNNTRANS_LOG_WARN("cli", "--cache-mb has no effect with --cache-off on");
    return std::nullopt;
  }
  core::EstimateCacheConfig cfg;
  cfg.capacity_bytes = static_cast<std::size_t>(mb) << 20;
  return cfg;
}

/// One summary line of cache effectiveness after a run (hit rate is the
/// headline; evictions reveal an undersized --cache-mb).
void log_cache_stats(const core::EstimateCache& cache) {
  const core::EstimateCacheStats s = cache.stats();
  GNNTRANS_LOG_INFO(
      "serving",
      "estimate cache: %.1f%% hit rate (%llu hits, %llu misses), %llu "
      "entries / %.1f MiB resident, %llu evictions",
      100.0 * s.hit_rate(), static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.entries),
      static_cast<double>(s.resident_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(s.evictions));
}

int cmd_predict(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  const auto estimator = load_model_file(args.require("model"));
  const auto nets = load_spef(args.require("spef"));
  auto threads =
      static_cast<std::size_t>(std::max(1L, args.get_long("threads", 1)));
  const auto batch_size =
      static_cast<std::size_t>(std::max(1L, args.get_long("batch", 64)));
  std::optional<core::PoolAutoscaler> autoscaler;
  if (const auto acfg = autoscale_config_from(args)) {
    autoscaler.emplace(*acfg);
    threads = std::clamp(threads, autoscaler->config().min_threads,
                         autoscaler->config().max_threads);
  }

  std::vector<const rcnet::RcNet*> valid;
  std::vector<features::NetContext> contexts;
  for (const rcnet::RcNet& net : nets) {
    if (!net.validate().empty()) continue;
    valid.push_back(&net);
    contexts.push_back(context_for(library, net));
  }

  // Serve through the batched path: one pool + per-worker workspaces reused
  // across batches, so arenas stay warm for the whole file.
  core::ThreadPool pool(threads);
  std::vector<nn::Workspace> workspaces;
  core::BatchOptions options;
  options.pool = threads > 1 ? &pool : nullptr;
  options.threads = threads;
  options.workspaces = &workspaces;
  apply_serving_flags(args, options);
  std::unique_ptr<core::EstimateCache> cache;
  if (const auto ccfg = cache_config_from(args)) {
    cache = std::make_unique<core::EstimateCache>(*ccfg);
    options.cache = cache.get();
  }
  core::InferenceStats total;

  std::printf("%-16s %-6s %12s %12s  %s\n", "net", "sink", "delay(ps)",
              "slew(ps)", "source");
  for (std::size_t begin = 0; begin < valid.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, valid.size() - begin);
    if (autoscaler) {
      // Pool and per-worker workspaces resize in lockstep; stale workspaces
      // would pin their peak arena memory forever.
      const core::AutoscaleDecision d = autoscaler->decide(count, threads);
      if (d.resized()) {
        threads = d.target;
        pool.resize(threads);
        if (workspaces.size() > threads) workspaces.resize(threads);
        options.pool = threads > 1 ? &pool : nullptr;
        options.threads = threads;
      }
    }
    std::vector<core::NetBatchItem> items(count);
    for (std::size_t i = 0; i < count; ++i)
      items[i] = {valid[begin + i], &contexts[begin + i]};
    core::InferenceStats stats;
    const auto batches = estimator.estimate_batch(items, options, &stats);
    if (autoscaler) autoscaler->observe(stats);
    total.merge(stats);
    for (std::size_t i = 0; i < count; ++i)
      for (const core::PathEstimate& pe : batches[i])
        std::printf("%-16s %-6u %12.2f %12.2f  %s\n",
                    valid[begin + i]->name.c_str(), pe.sink, pe.delay * 1e12,
                    pe.slew * 1e12, core::to_string(pe.provenance));
  }
  GNNTRANS_LOG_INFO("serving", "%s", total.summary().c_str());
  if (cache) log_cache_stats(*cache);
  return 0;
}

int cmd_sta(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  const std::string verilog_path = args.require("verilog");
  std::ifstream vin(verilog_path);
  if (!vin) {
    GNNTRANS_LOG_ERROR("verilog", "cannot open %s", verilog_path.c_str());
    return 2;
  }
  netlist::VerilogParseResult parsed = netlist::parse_verilog(vin, library);
  for (const std::string& w : parsed.warnings)
    GNNTRANS_LOG_WARN("verilog", "%s", w.c_str());

  const auto spef_nets = load_spef(args.require("spef"));
  std::vector<std::string> warnings;
  netlist::attach_spef(parsed.design, spef_nets, &warnings);
  for (const std::string& w : warnings)
    GNNTRANS_LOG_WARN("sta", "%s", w.c_str());
  if (const auto errors = parsed.design.validate(); !errors.empty()) {
    GNNTRANS_LOG_ERROR("sta", "design invalid: %s", errors.front().c_str());
    return 2;
  }

  netlist::StaResult sta;
  std::string source_name;
  std::optional<core::WireTimingEstimator> estimator;
  if (const auto model_path = args.get("model")) {
    const auto threads =
        static_cast<std::size_t>(std::max(1L, args.get_long("threads", 1)));
    estimator = load_model_file(*model_path);
    core::EstimatorWireSource source(*estimator, parsed.design, library,
                                     threads);
    core::BatchOptions serving;
    apply_serving_flags(args, serving);
    source.set_serving_options(serving);
    if (const auto acfg = autoscale_config_from(args))
      source.enable_autoscale(*acfg);
    if (const auto ccfg = cache_config_from(args)) source.enable_cache(*ccfg);
    sta = netlist::run_sta(parsed.design, library, source);
    source_name = source.name();
    GNNTRANS_LOG_INFO("serving", "%s", source.stats().summary().c_str());
    if (source.cache()) log_cache_stats(*source.cache());
  } else {
    netlist::GoldenWireSource source{sim::TransientConfig{}};
    sta = netlist::run_sta(parsed.design, library, source);
    source_name = source.name();
  }

  std::printf("wire timing source: %s\n", source_name.c_str());
  std::printf("gate %.3f s + wire %.3f s\n", sta.gate_seconds, sta.wire_seconds);
  std::printf("%-10s %14s\n", "endpoint", "arrival(ps)");
  for (std::size_t e = 0; e < parsed.design.endpoints.size(); ++e)
    std::printf("u%-9u %14.2f\n", parsed.design.endpoints[e],
                sta.endpoint_arrival[e] * 1e12);

  const long report_paths = args.get_long("paths", 0);
  if (report_paths > 0) {
    std::ostringstream report;
    netlist::write_timing_report(report, parsed.design, library, sta,
                                 static_cast<std::size_t>(report_paths));
    std::printf("\n%s", report.str().c_str());
  }
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void handle_serve_signal(int) { g_serve_stop = 1; }

int cmd_serve(const Args& args) {
  const auto estimator = load_model_file(args.require("model"));

  serve::NetServerConfig cfg;
  cfg.addr = args.get("addr").value_or(cfg.addr);
  cfg.port = static_cast<std::uint16_t>(args.get_long("port", 0));
  cfg.threads =
      static_cast<std::size_t>(std::max(1L, args.get_long("threads", 1)));
  cfg.batch_max =
      static_cast<std::size_t>(std::max(1L, args.get_long("batch", 64)));
  cfg.flush_age_seconds = std::max(0.0, args.get_double("flush-ms", 2.0)) * 1e-3;
  cfg.queue_capacity =
      static_cast<std::size_t>(std::max(1L, args.get_long("queue", 1024)));
  cfg.max_connections =
      static_cast<std::size_t>(std::max(1L, args.get_long("max-conns", 64)));
  apply_serving_flags(args, cfg.batch);
  // The batch deadline is owned by the server: each request carries its own
  // budget on the wire and the batcher propagates the tightest one.
  cfg.batch.deadline_seconds = 0.0;
  if (const auto ccfg = cache_config_from(args))
    cfg.cache_bytes = ccfg->capacity_bytes;
  if (const auto acfg = autoscale_config_from(args)) {
    cfg.enable_autoscale = true;
    cfg.autoscale = *acfg;
    cfg.threads = std::clamp(cfg.threads, acfg->min_threads,
                             acfg->max_threads == 0
                                 ? core::ThreadPool::hardware_threads()
                                 : acfg->max_threads);
  }

  serve::NetServer server(estimator, cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    GNNTRANS_LOG_ERROR("serve", "%s", e.what());
    return 2;
  }
  std::printf("serving wire timing on %s:%u (Ctrl-C drains and exits)\n",
              cfg.addr.c_str(), server.port());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);

  const double duration_s = args.get_double("duration-s", 0.0);
  const long max_requests = args.get_long("max-requests", 0);
  const auto started = std::chrono::steady_clock::now();
  while (!g_serve_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    if (duration_s > 0.0 && elapsed >= duration_s) break;
    if (max_requests > 0 &&
        server.ledger().requests_decoded.load() >=
            static_cast<std::uint64_t>(max_requests))
      break;
  }
  server.stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  const serve::NetServerLedger& ledger = server.ledger();
  const core::InferenceStats stats = server.stats();
  std::printf(
      "drained: %llu connections, %llu requests, %llu served, %llu rejected "
      "(%llu overload, %llu malformed, %llu deadline, %llu shutdown), %llu "
      "batches\n",
      static_cast<unsigned long long>(ledger.connections_accepted.load()),
      static_cast<unsigned long long>(ledger.requests_decoded.load()),
      static_cast<unsigned long long>(ledger.served.load()),
      static_cast<unsigned long long>(ledger.rejected_total()),
      static_cast<unsigned long long>(ledger.rejected_overload.load()),
      static_cast<unsigned long long>(ledger.rejected_malformed.load()),
      static_cast<unsigned long long>(ledger.rejected_deadline.load()),
      static_cast<unsigned long long>(ledger.rejected_shutdown.load()),
      static_cast<unsigned long long>(ledger.batches.load()));
  GNNTRANS_LOG_INFO("serving", "%s", stats.summary().c_str());
  if (server.cache()) log_cache_stats(*server.cache());
  return 0;
}

/// True when every per-instance timing quantity of \p a and \p b is bitwise
/// identical — the ECO equivalence contract (doubles compared by bit pattern,
/// so NaNs or signed zeros would not slip through a numeric ==).
bool bitwise_equal(const netlist::StaResult& a, const netlist::StaResult& b,
                   const char** what) {
  auto eq_d = [](const std::vector<double>& x, const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  if (!eq_d(a.arrival, b.arrival)) return *what = "arrival", false;
  if (!eq_d(a.slew, b.slew)) return *what = "slew", false;
  if (!eq_d(a.required, b.required)) return *what = "required", false;
  if (!eq_d(a.slack, b.slack)) return *what = "slack", false;
  if (a.arrival_settled != b.arrival_settled)
    return *what = "arrival_settled", false;
  if (!eq_d(a.endpoint_arrival, b.endpoint_arrival))
    return *what = "endpoint_arrival", false;
  if (!eq_d(a.endpoint_slack, b.endpoint_slack))
    return *what = "endpoint_slack", false;
  return true;
}

int cmd_eco(const Args& args) {
  const auto library = cell::CellLibrary::make_default();
  netlist::DesignGenConfig dcfg;
  dcfg.startpoints =
      static_cast<std::uint32_t>(std::max(1L, args.get_long("startpoints", 8)));
  dcfg.levels =
      static_cast<std::uint32_t>(std::max(1L, args.get_long("levels", 5)));
  dcfg.cells_per_level =
      static_cast<std::uint32_t>(std::max(1L, args.get_long("width", 10)));
  dcfg.seed = static_cast<std::uint64_t>(std::max(1L, args.get_long("seed", 1)));
  netlist::Design design = netlist::generate_design(dcfg, library, "eco");
  const long edits = std::max(1L, args.get_long("edits", 20));
  const bool verify = args.get("verify").value_or("on") != "off";

  std::unique_ptr<netlist::WireTimingSource> source;
  core::EstimatorWireSource* estimator_source = nullptr;
  std::optional<core::WireTimingEstimator> estimator;
  if (const auto model_path = args.get("model")) {
    estimator = load_model_file(*model_path);
    auto src = std::make_unique<core::EstimatorWireSource>(
        *estimator, design, library,
        static_cast<std::size_t>(std::max(1L, args.get_long("threads", 1))));
    core::BatchOptions serving;
    apply_serving_flags(args, serving);
    src->set_serving_options(serving);
    // ECO + caching compose for free: content addressing means an edit's
    // retimes miss (new parasitic bytes, new key) while untouched nets hit.
    if (const auto ccfg = cache_config_from(args)) src->enable_cache(*ccfg);
    estimator_source = src.get();
    source = std::move(src);
  } else {
    sim::TransientConfig tc;
    tc.steps = static_cast<std::size_t>(std::max(50L, args.get_long("steps", 300)));
    source = std::make_unique<netlist::GoldenWireSource>(tc);
  }

  // Default StaConfig: incremental_tolerance 0 == the bitwise contract.
  const netlist::StaConfig sta_config;
  // Pass a copy: the estimator stays bound to `design` through the
  // constructor's full STA, then gets re-pointed at the engine's own copy
  // (and again after edits that create nets).
  netlist::IncrementalSta inc(design, library, *source, sta_config);
  if (estimator_source) estimator_source->rebind(inc.design());

  std::mt19937_64 rng(dcfg.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::size_t total_retimed = 0;
  std::size_t total_required = 0;
  std::size_t mismatches = 0;

  // Live ECO observability: with --obs-port these counters and the per-edit
  // flight records make a running ECO session scrapable mid-flight, not just
  // summarized at exit.
  auto& registry = telemetry::MetricsRegistry::global();
  const telemetry::Counter eco_edits = registry.counter(
      "gnntrans_eco_edits_total", "ECO edits applied via the incremental engine");
  const telemetry::Counter eco_retimed = registry.counter(
      "gnntrans_eco_retimed_instances_total",
      "Instances retimed by incremental ECO updates");
  const telemetry::Counter eco_verify_failures = registry.counter(
      "gnntrans_eco_verify_failures_total",
      "ECO edits whose incremental result diverged from a full run_sta");
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();

  std::printf("%-5s %-52s %9s %9s\n", "edit", "description", "forward",
              "required");
  for (long i = 0; i < edits; ++i) {
    netlist::EcoEdit edit =
        netlist::apply_random_edit(inc, library, rng, dcfg.net_config);
    std::size_t fixup = 0;
    if (estimator_source && edit.kind == netlist::EcoEdit::Kind::kInsertBuffer) {
      // The splice created a net the source has never seen and changed the
      // load list of the original one; re-point the source and refresh both
      // nets so their stored timings reflect the rebound contexts.
      estimator_source->rebind(inc.design());
      const std::uint32_t touched[2] = {
          edit.net, static_cast<std::uint32_t>(inc.design().nets.size() - 1)};
      for (const std::uint32_t net_idx : touched) {
        rcnet::RcNet rc = inc.design().nets[net_idx].rc;
        fixup += inc.reroute_net(net_idx, std::move(rc));
      }
    }
    total_retimed += edit.retimed + fixup;
    total_required += edit.required_updates;
    eco_edits.inc();
    eco_retimed.inc(edit.retimed + fixup);
    if (flight.enabled()) {
      telemetry::FlightRecord fr;
      fr.set_net("eco_edit_" + std::to_string(i));
      fr.set_outcome(edit.kind_name());
      fr.total_us = static_cast<float>(edit.retimed + fixup);
      flight.record(fr);
    }
    std::printf("%-5ld %-52s %9zu %9zu\n", i, edit.describe().c_str(),
                edit.retimed + fixup, edit.required_updates);
    if (verify) {
      const netlist::StaResult full =
          netlist::run_sta(inc.design(), library, *source, sta_config);
      const char* what = "";
      if (!bitwise_equal(inc.result(), full, &what)) {
        ++mismatches;
        eco_verify_failures.inc();
        if (flight.enabled()) {
          telemetry::FlightRecord fr;
          fr.set_net("eco_edit_" + std::to_string(i));
          fr.set_outcome("eco_mismatch");
          fr.set_error(what);
          fr.degraded = 1;  // pins past ring wrap, like a degraded net
          flight.record(fr);
        }
        GNNTRANS_LOG_ERROR("eco",
                           "edit %ld (%s): incremental %s diverges from full "
                           "run_sta",
                           i, edit.kind_name(), what);
      }
    }
  }

  const std::size_t instances = inc.design().instances.size();
  const double mean_retimed =
      static_cast<double>(total_retimed) / static_cast<double>(edits);
  std::printf(
      "\n%zu instances; %ld edits; mean %.1f retimed + %.1f required-updates "
      "per edit (%.1f%% of design); worst arrival %.2f ps, worst slack %.2f "
      "ps\n",
      instances, edits, mean_retimed,
      static_cast<double>(total_required) / static_cast<double>(edits),
      100.0 * mean_retimed / static_cast<double>(instances),
      inc.worst_arrival() * 1e12, inc.worst_slack() * 1e12);
  if (verify)
    std::printf("verification: %ld/%ld edits bitwise-equal to full run_sta\n",
                edits - static_cast<long>(mismatches), edits);
  if (estimator_source && estimator_source->cache())
    log_cache_stats(*estimator_source->cache());

  const long report_paths = args.get_long("paths", 0);
  if (report_paths > 0) {
    std::ostringstream report;
    netlist::write_timing_report(report, inc.design(), library, inc.result(),
                                 static_cast<std::size_t>(report_paths));
    std::printf("\n%s", report.str().c_str());
  }
  return mismatches == 0 ? 0 : 2;
}

void usage() {
  GNNTRANS_LOG_ERROR(
      "cli",
      "usage: gnntrans_cli "
      "<generate|design|libgen|train|eval|predict|sta|serve|eco> "
      "[--flag value ...]; telemetry flags (any command): --log-level "
      "<trace|debug|info|warn|error|off> --log-json FILE --metrics-out FILE "
      "--trace-out FILE --trace-rate R --trace-seed N --obs-port P "
      "--flight-out FILE --stats-interval S "
      "(see the header comment of tools/gnntrans_cli.cpp for per-command "
      "flags)");
}

/// Applies --log-level / --log-json / --trace-out / --trace-sample /
/// --trace-budget / --trace-rate / --trace-seed / --flight-out before
/// command dispatch. Exits 1 on an unknown level name, 2 on an unwritable
/// log file.
void setup_telemetry(const Args& args) {
  if (const auto level_name = args.get("log-level")) {
    bool ok = false;
    const telemetry::LogLevel level = telemetry::parse_log_level(*level_name, &ok);
    if (!ok) {
      GNNTRANS_LOG_ERROR("cli", "unknown --log-level '%s'", level_name->c_str());
      std::exit(1);
    }
    telemetry::Logger::global().set_level(level);
  }
  if (const auto log_json = args.get("log-json")) {
    try {
      telemetry::Logger::global().add_sink(
          std::make_shared<telemetry::JsonLinesSink>(*log_json));
    } catch (const std::exception& e) {
      GNNTRANS_LOG_ERROR("cli", "%s", e.what());
      std::exit(2);
    }
  }
  telemetry::TraceConfig trace_cfg;
  trace_cfg.sample_every =
      static_cast<std::size_t>(std::max(1L, args.get_long("trace-sample", 1)));
  trace_cfg.overhead_budget_pct = args.get_double("trace-budget", 2.0);
  // Head sampling for request tracing: --trace-rate is the fraction of
  // requests that get a full stage-clock trace (clamped to [0,1]); the seed
  // varies which requests are picked without changing the rate.
  trace_cfg.head_sample_rate = std::clamp(
      args.get_double("trace-rate", trace_cfg.head_sample_rate), 0.0, 1.0);
  if (const long seed = args.get_long("trace-seed", 0); seed != 0)
    trace_cfg.head_seed = static_cast<std::uint64_t>(seed);
  telemetry::TraceRecorder::global().configure(trace_cfg);
  if (args.get("trace-out")) telemetry::TraceRecorder::global().enable();
  if (const auto flight_path = args.get("flight-out"))
    telemetry::install_flight_signal_dump(flight_path->c_str());
}

/// Live observability started from flags. The members shut themselves down
/// when this goes out of scope at the end of main(), after the command and
/// the telemetry flush have finished.
struct Observability {
  std::unique_ptr<telemetry::ObsServer> server;
  std::unique_ptr<telemetry::StatsReporter> reporter;
};

Observability start_observability(const Args& args) {
  Observability obs;
  if (args.get("obs-port")) {
    telemetry::ObsServerConfig cfg;
    cfg.addr = args.get("obs-addr").value_or(cfg.addr);
    cfg.port = static_cast<std::uint16_t>(args.get_long("obs-port", 0));
    obs.server = std::make_unique<telemetry::ObsServer>(cfg);
    try {
      obs.server->start();
    } catch (const std::exception& e) {
      GNNTRANS_LOG_ERROR("cli", "%s", e.what());
      std::exit(2);
    }
  } else if (args.get("obs-addr")) {
    GNNTRANS_LOG_WARN("cli", "--obs-addr has no effect without --obs-port");
  }
  const double interval = args.get_double("stats-interval", 0.0);
  if (interval > 0.0) {
    obs.reporter = std::make_unique<telemetry::StatsReporter>(
        telemetry::StatsReporterConfig{interval});
    obs.reporter->start();
  }
  return obs;
}

/// Writes --metrics-out / --trace-out files after a successful command.
/// Returns 2 if an output file cannot be written, 0 otherwise.
int flush_telemetry(const Args& args) {
  int rc = 0;
  if (const auto metrics_path = args.get("metrics-out")) {
    std::ofstream out(*metrics_path);
    if (!out) {
      GNNTRANS_LOG_ERROR("cli", "cannot open %s for write", metrics_path->c_str());
      rc = 2;
    } else {
      const auto& registry = telemetry::MetricsRegistry::global();
      const bool json = metrics_path->size() >= 5 &&
                        metrics_path->compare(metrics_path->size() - 5, 5,
                                              ".json") == 0;
      out << (json ? registry.json_text() : registry.prometheus_text());
      GNNTRANS_LOG_DEBUG("cli", "wrote metrics snapshot to %s",
                         metrics_path->c_str());
    }
  }
  if (const auto trace_path = args.get("trace-out")) {
    std::ofstream out(*trace_path);
    if (!out) {
      GNNTRANS_LOG_ERROR("cli", "cannot open %s for write", trace_path->c_str());
      rc = 2;
    } else {
      telemetry::TraceRecorder::global().write_chrome_json(out);
      GNNTRANS_LOG_DEBUG("cli", "wrote %zu trace events to %s",
                         telemetry::TraceRecorder::global().event_count(),
                         trace_path->c_str());
    }
  }
  if (const auto flight_path = args.get("flight-out")) {
    std::ofstream out(*flight_path);
    if (!out) {
      GNNTRANS_LOG_ERROR("cli", "cannot open %s for write", flight_path->c_str());
      rc = 2;
    } else {
      telemetry::FlightRecorder::global().write_json(out);
      GNNTRANS_LOG_DEBUG("cli", "wrote %llu flight records to %s",
                         static_cast<unsigned long long>(
                             telemetry::FlightRecorder::global().recorded_total()),
                         flight_path->c_str());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  setup_telemetry(args);
  const Observability obs = start_observability(args);
  int rc = -1;
  try {
    if (cmd == "generate") rc = cmd_generate(args);
    else if (cmd == "design") rc = cmd_design(args);
    else if (cmd == "libgen") rc = cmd_libgen(args);
    else if (cmd == "train") rc = cmd_train(args);
    else if (cmd == "eval") rc = cmd_eval(args);
    else if (cmd == "predict") rc = cmd_predict(args);
    else if (cmd == "sta") rc = cmd_sta(args);
    else if (cmd == "serve") rc = cmd_serve(args);
    else if (cmd == "eco") rc = cmd_eco(args);
  } catch (const std::exception& e) {
    GNNTRANS_LOG_ERROR("cli", "%s", e.what());
    return 2;
  }
  if (rc < 0) {
    usage();
    return 1;
  }
  if (rc == 0) {
    if (const int telemetry_rc = flush_telemetry(args); telemetry_rc != 0)
      return telemetry_rc;
  }
  return rc;
}
