#!/usr/bin/env python3
"""Validate a Chrome trace JSON file emitted by TraceRecorder.

The trace viewer is forgiving — a malformed flow event silently renders as
nothing, which is exactly how a broken request lane would go unnoticed. This
checker enforces the invariants the request-tracing pipeline promises:

  1. The document is ``{"traceEvents": [...]}`` and every event carries the
     required fields for its phase (``name``, ``ph``, ``ts``, ``pid``,
     ``tid``; ``dur`` for ``X``; ``id`` for flow/async phases).
  2. Durations and timestamps are non-negative, and each flow chain's
     timestamps are monotone non-decreasing in document order (the recorder
     stamps them from one monotonic clock).
  3. Flow chains pair up: every ``s`` (start) has exactly one matching ``f``
     (end, with ``bp":"e"``) on the same id, with only ``t`` steps between;
     an ``f`` or ``t`` without a prior ``s`` is an error.
  4. Async lanes pair up: ``b``/``e`` events nest per (id, name) and close.
  5. Flow ids are unique per chain: once a chain closes with ``f``, its id
     must not restart (ids are trace_ids; a reused one would merge two
     requests into one arrow).

Run standalone (``python3 tools/check_trace_events.py TRACE.json``) or as a
self-test on embedded good/bad fixtures (``--self-test``, wired as the
``trace_event_lint`` ctest). Exits non-zero listing every violation.
"""

import json
import pathlib
import sys

REQUIRED = ("name", "ph", "ts", "pid", "tid")
FLOW_PHASES = ("s", "t", "f")
ASYNC_PHASES = ("b", "e")


def check_events(events):
    errors = []
    # Per-flow-id chain state: None = never seen, "open" = s seen, "closed"
    # = f seen. Timestamps per open chain for monotonicity.
    flow_state = {}
    flow_last_ts = {}
    # Async nesting depth per (id, name).
    async_depth = {}

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        missing = [k for k in REQUIRED if k not in ev]
        if missing:
            errors.append(f"{where} (ph={ph!r}): missing fields {missing}")
            continue
        where = f"event {i} ({ev['name']!r}, ph={ph})"
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0, got {dur!r}")
        elif ph in FLOW_PHASES:
            flow_id = ev.get("id")
            if flow_id is None:
                errors.append(f"{where}: flow event without id")
                continue
            state = flow_state.get(flow_id)
            if ph == "s":
                if state == "open":
                    errors.append(f"{where}: flow id {flow_id} started twice")
                elif state == "closed":
                    errors.append(
                        f"{where}: flow id {flow_id} reused after its end "
                        "(ids must be unique per chain)"
                    )
                flow_state[flow_id] = "open"
                flow_last_ts[flow_id] = ts
                continue
            if state != "open":
                errors.append(
                    f"{where}: flow {ph!r} on id {flow_id} without an open 's'"
                )
                continue
            if ts < flow_last_ts[flow_id]:
                errors.append(
                    f"{where}: flow id {flow_id} ts {ts} went backwards "
                    f"(chain was at {flow_last_ts[flow_id]})"
                )
            flow_last_ts[flow_id] = ts
            if ph == "f":
                if ev.get("bp") != "e":
                    errors.append(
                        f"{where}: flow end must carry bp=\"e\" to bind to the "
                        "enclosing slice"
                    )
                flow_state[flow_id] = "closed"
        elif ph in ASYNC_PHASES:
            async_id = ev.get("id")
            if async_id is None:
                errors.append(f"{where}: async event without id")
                continue
            key = (async_id, ev["name"])
            depth = async_depth.get(key, 0)
            if ph == "b":
                async_depth[key] = depth + 1
            else:
                if depth == 0:
                    errors.append(
                        f"{where}: async 'e' on id {async_id} without a "
                        "matching 'b'"
                    )
                else:
                    async_depth[key] = depth - 1
        # Other phases (M metadata, counters, ...) are accepted untouched.

    for flow_id, state in sorted(flow_state.items(), key=lambda kv: str(kv[0])):
        if state == "open":
            errors.append(f"flow id {flow_id}: started ('s') but never ended ('f')")
    for (async_id, name), depth in sorted(
        async_depth.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
    ):
        if depth != 0:
            errors.append(
                f"async lane id={async_id} name={name!r}: {depth} unclosed 'b'"
            )
    return errors


def check_file(path: pathlib.Path):
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        return [f"{path}: document has no traceEvents array"]
    return check_events(events)


# --- Self-test fixtures -----------------------------------------------------

def _ev(ph, name="n", ts=0, **extra):
    ev = {"name": name, "ph": ph, "ts": ts, "pid": 1, "tid": 1}
    ev.update(extra)
    return ev


GOOD = [
    _ev("X", "net_model", 10, dur=5, id="0x2a"),
    _ev("s", "client_send", 0, id="0x2a"),
    _ev("t", "server_admit", 3, id="0x2a"),
    _ev("t", "batch_model", 9, id="0x2a"),
    _ev("f", "client_done", 20, id="0x2a", bp="e"),
    _ev("b", "request", 0, id="0x2a"),
    _ev("e", "request", 20, id="0x2a"),
    _ev("X", "untraced_span", 4, dur=2),
]

BAD_CASES = [
    ("flow end without start", [_ev("f", ts=1, id="0x1", bp="e")]),
    ("flow start without end", [_ev("s", ts=1, id="0x1")]),
    ("flow id reused after close",
     [_ev("s", ts=0, id="0x1"), _ev("f", ts=1, id="0x1", bp="e"),
      _ev("s", ts=2, id="0x1")]),
    ("flow timestamps backwards",
     [_ev("s", ts=5, id="0x1"), _ev("f", ts=2, id="0x1", bp="e")]),
    ("flow end missing bp",
     [_ev("s", ts=0, id="0x1"), _ev("f", ts=1, id="0x1")]),
    ("negative duration", [_ev("X", ts=1, dur=-4)]),
    ("async end without begin", [_ev("e", ts=1, id="0x1")]),
    ("async begin never closed", [_ev("b", ts=1, id="0x1")]),
    ("missing required field", [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]),
]


def self_test() -> int:
    failures = 0
    good_errors = check_events(json.loads(json.dumps(GOOD)))
    if good_errors:
        failures += 1
        print("self-test: good fixture flagged:")
        for e in good_errors:
            print(f"  {e}")
    for label, events in BAD_CASES:
        if not check_events(json.loads(json.dumps(events))):
            failures += 1
            print(f"self-test: bad fixture not flagged: {label}")
    if failures:
        print(f"trace event lint self-test: {failures} failure(s)")
        return 1
    print(f"trace event lint self-test: OK ({len(BAD_CASES)} bad fixtures "
          "flagged, good fixture clean)")
    return 0


def main(argv) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print("usage: check_trace_events.py <trace.json> | --self-test")
        return 2
    path = pathlib.Path(argv[1])
    errors = check_file(path)
    if errors:
        print(f"{path}: {len(errors)} violation(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"{path}: trace events OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
