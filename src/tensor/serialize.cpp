#include "tensor/serialize.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace gnntrans::tensor {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  write_pod<std::uint64_t>(out, t.rows());
  write_pod<std::uint64_t>(out, t.cols());
  out.write(reinterpret_cast<const char*>(t.values().data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& in, bool requires_grad) {
  const auto rows = read_pod<std::uint64_t>(in);
  const auto cols = read_pod<std::uint64_t>(in);
  if (rows > (1u << 24) || cols > (1u << 24))
    throw std::runtime_error("serialize: implausible tensor shape");
  Tensor t(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
           requires_grad);
  in.read(reinterpret_cast<char*>(t.values().data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!in) throw std::runtime_error("serialize: truncated tensor data");
  return t;
}

void write_header(std::ostream& out, const std::string& magic, std::uint32_t version) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(magic.size()));
  out.write(magic.data(), static_cast<std::streamsize>(magic.size()));
  write_pod<std::uint32_t>(out, version);
}

void check_header(std::istream& in, const std::string& magic,
                  std::uint32_t expected_version) {
  const auto version = read_header(in, magic);
  if (version != expected_version)
    throw std::runtime_error("serialize: unsupported version " +
                             std::to_string(version));
}

std::uint32_t read_header(std::istream& in, const std::string& magic) {
  const auto len = read_pod<std::uint32_t>(in);
  if (len != magic.size()) throw std::runtime_error("serialize: bad magic length");
  std::string found(len, '\0');
  in.read(found.data(), len);
  if (!in || found != magic) throw std::runtime_error("serialize: bad magic");
  return read_pod<std::uint32_t>(in);
}

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  write_pod<std::uint64_t>(out, values.size());
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

std::vector<double> read_doubles(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > (1u << 26)) throw std::runtime_error("serialize: implausible vector size");
  std::vector<double> values(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) throw std::runtime_error("serialize: truncated doubles");
  return values;
}

void write_u32(std::ostream& out, std::uint32_t value) { write_pod(out, value); }

std::uint32_t read_u32(std::istream& in) { return read_pod<std::uint32_t>(in); }

}  // namespace gnntrans::tensor
