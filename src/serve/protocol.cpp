#include "serve/protocol.hpp"

#include <cstring>

namespace gnntrans::serve {

namespace {

// ---- encoding ------------------------------------------------------------
// Little-endian byte-at-a-time writers: correct on any host endianness, and
// doubles travel as their raw IEEE-754 bits so values round-trip bitwise.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    put_u8(out, static_cast<std::uint8_t>(v >> shift));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    put_u8(out, static_cast<std::uint8_t>(v >> shift));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_header(std::string& out, std::uint8_t type, std::uint64_t request_id,
                std::uint32_t attempt, std::uint16_t flags = 0) {
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, type);
  put_u16(out, flags);
  put_u64(out, request_id);
  put_u32(out, attempt);
}

/// Prepends the length prefix once the payload is fully built.
std::string finish_frame(std::string payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

// ---- decoding ------------------------------------------------------------

/// Bounds-checked cursor over one payload. Every get_* fails soft (returns
/// false / sets fail_) once the payload is exhausted; callers check ok() at
/// the few points that matter and the final decode_* verifies both ok() and
/// full consumption.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return !fail_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t get_u16() {
    std::uint16_t v = get_u8();
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(get_u8()) << 8));
    return v;
  }

  std::uint32_t get_u32() {
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(get_u8()) << shift;
    return v;
  }

  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(get_u8()) << shift;
    return v;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_bytes(std::size_t n) {
    if (!need(n)) return {};
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// True iff \p count items of \p item_bytes each still fit — the check that
  /// stops a hostile count from sizing an allocation past the actual payload.
  [[nodiscard]] bool fits(std::uint64_t count, std::size_t item_bytes) {
    if (item_bytes != 0 && count > remaining() / item_bytes) {
      fail_ = true;
      return false;
    }
    return true;
  }

 private:
  bool need(std::size_t n) {
    if (fail_ || n > remaining()) {
      fail_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

core::Status malformed(const std::string& why) {
  return {core::ErrorCode::kMalformedFrame, why};
}

/// Parses and validates the shared header; fills id/attempt/flags, checks
/// type. Accepts versions kMinVersion..kVersion; v1 predates the flags field
/// (the bytes were "reserved"), so its flags are forced to 0 rather than
/// interpreted.
core::Status get_header(Reader& r, std::uint8_t want_type,
                        std::uint64_t* request_id, std::uint32_t* attempt,
                        std::uint16_t* flags) {
  const std::uint32_t magic = r.get_u32();
  const std::uint8_t version = r.get_u8();
  const std::uint8_t type = r.get_u8();
  *flags = r.get_u16();
  *request_id = r.get_u64();
  *attempt = r.get_u32();
  if (!r.ok()) return malformed("truncated header");
  if (magic != kMagic) return malformed("bad magic");
  if (version < kMinVersion || version > kVersion)
    return malformed("unsupported protocol version " + std::to_string(version));
  if (version < 2) {
    *flags = 0;
  } else if ((*flags & ~kFlagTraceContext) != 0) {
    return malformed("unknown header flags " + std::to_string(*flags));
  }
  if (type != want_type)
    return malformed("unexpected frame type " + std::to_string(type));
  return core::Status::ok_status();
}

/// Parses the 17-byte trace-context block announced by kFlagTraceContext.
core::Status get_trace_block(Reader& r, telemetry::TraceContext* trace) {
  trace->trace_id = r.get_u64();
  trace->span_id = r.get_u64();
  const std::uint8_t sampled = r.get_u8();
  if (!r.ok()) return malformed("truncated trace context");
  if (sampled > 1) return malformed("trace sampled flag out of range");
  trace->sampled = sampled == 1;
  return core::Status::ok_status();
}

}  // namespace

std::string encode_request(const RequestFrame& request) {
  const rcnet::RcNet& net = request.net;
  const features::NetContext& ctx = request.context;
  std::string p;
  p.reserve(64 + net.name.size() + 8 * net.ground_cap.size() +
            16 * net.resistors.size() + 20 * net.couplings.size() +
            4 * net.sinks.size() + 16 * ctx.loads.size());
  const bool traced = request.trace.valid();
  put_header(p, kTypeEstimateRequest, request.request_id, request.attempt,
             traced ? kFlagTraceContext : std::uint16_t{0});
  if (traced) {
    put_u64(p, request.trace.trace_id);
    put_u64(p, request.trace.span_id);
    put_u8(p, request.trace.sampled ? 1 : 0);
  }
  put_u32(p, request.deadline_us);

  // Truncate to what a u16 length can carry (net names never approach 64 KiB;
  // truncation beats an inconsistent length prefix).
  const std::string_view name = std::string_view(net.name).substr(0, 0xFFFF);
  put_u16(p, static_cast<std::uint16_t>(name.size()));
  p += name;
  put_u32(p, static_cast<std::uint32_t>(net.ground_cap.size()));
  put_u32(p, net.source);
  put_u32(p, static_cast<std::uint32_t>(net.sinks.size()));
  for (const rcnet::NodeId sink : net.sinks) put_u32(p, sink);
  for (const double cap : net.ground_cap) put_f64(p, cap);
  put_u32(p, static_cast<std::uint32_t>(net.resistors.size()));
  for (const rcnet::Resistor& res : net.resistors) {
    put_u32(p, res.a);
    put_u32(p, res.b);
    put_f64(p, res.ohms);
  }
  put_u32(p, static_cast<std::uint32_t>(net.couplings.size()));
  for (const rcnet::CouplingCap& cc : net.couplings) {
    put_u32(p, cc.victim_node);
    put_f64(p, cc.farads);
    put_u64(p, cc.aggressor_seed);
  }

  put_f64(p, ctx.input_slew);
  put_f64(p, ctx.driver_resistance);
  put_u32(p, ctx.driver_strength);
  put_u32(p, ctx.driver_function);
  put_u32(p, static_cast<std::uint32_t>(ctx.loads.size()));
  for (const features::SinkLoad& load : ctx.loads) {
    put_u32(p, load.drive_strength);
    put_u32(p, load.function);
    put_f64(p, load.input_cap);
  }
  return finish_frame(std::move(p));
}

std::string encode_response(const ResponseFrame& response) {
  std::string p;
  p.reserve(32 + response.message.size() + 21 * response.paths.size());
  put_header(p, kTypeEstimateResponse, response.request_id, response.attempt);
  put_u8(p, static_cast<std::uint8_t>(response.status));
  put_u8(p, static_cast<std::uint8_t>(response.provenance));
  const std::string_view msg =
      std::string_view(response.message).substr(0, 0xFFFF);
  put_u16(p, static_cast<std::uint16_t>(msg.size()));
  p += msg;
  put_u32(p, static_cast<std::uint32_t>(response.paths.size()));
  for (const core::PathEstimate& path : response.paths) {
    put_u32(p, path.sink);
    put_u8(p, static_cast<std::uint8_t>(path.provenance));
    put_f64(p, path.delay);
    put_f64(p, path.slew);
  }
  return finish_frame(std::move(p));
}

core::Status decode_request(std::string_view payload, RequestFrame* out) {
  *out = RequestFrame{};
  Reader r(payload);
  std::uint16_t flags = 0;
  if (core::Status s = get_header(r, kTypeEstimateRequest, &out->request_id,
                                  &out->attempt, &flags);
      !s.ok())
    return s;
  if (flags & kFlagTraceContext) {
    if (core::Status s = get_trace_block(r, &out->trace); !s.ok()) return s;
  }
  out->deadline_us = r.get_u32();

  rcnet::RcNet& net = out->net;
  const std::uint16_t name_len = r.get_u16();
  net.name = r.get_bytes(name_len);
  const std::uint32_t node_count = r.get_u32();
  net.source = r.get_u32();
  const std::uint32_t sink_count = r.get_u32();
  if (!r.ok()) return malformed("truncated request body");
  if (!r.fits(sink_count, 4)) return malformed("sink count exceeds payload");
  net.sinks.resize(sink_count);
  for (rcnet::NodeId& sink : net.sinks) sink = r.get_u32();
  if (!r.fits(node_count, 8)) return malformed("node count exceeds payload");
  net.ground_cap.resize(node_count);
  for (double& cap : net.ground_cap) cap = r.get_f64();
  const std::uint32_t resistor_count = r.get_u32();
  if (!r.fits(resistor_count, 16))
    return malformed("resistor count exceeds payload");
  net.resistors.resize(resistor_count);
  for (rcnet::Resistor& res : net.resistors) {
    res.a = r.get_u32();
    res.b = r.get_u32();
    res.ohms = r.get_f64();
  }
  const std::uint32_t coupling_count = r.get_u32();
  if (!r.fits(coupling_count, 20))
    return malformed("coupling count exceeds payload");
  net.couplings.resize(coupling_count);
  for (rcnet::CouplingCap& cc : net.couplings) {
    cc.victim_node = r.get_u32();
    cc.farads = r.get_f64();
    cc.aggressor_seed = r.get_u64();
  }

  features::NetContext& ctx = out->context;
  ctx.input_slew = r.get_f64();
  ctx.driver_resistance = r.get_f64();
  ctx.driver_strength = r.get_u32();
  ctx.driver_function = r.get_u32();
  const std::uint32_t load_count = r.get_u32();
  if (!r.fits(load_count, 16)) return malformed("load count exceeds payload");
  ctx.loads.resize(load_count);
  for (features::SinkLoad& load : ctx.loads) {
    load.drive_strength = r.get_u32();
    load.function = r.get_u32();
    load.input_cap = r.get_f64();
  }

  if (!r.ok()) return malformed("truncated request body");
  if (r.remaining() != 0)
    return malformed(std::to_string(r.remaining()) +
                     " trailing bytes after request body");
  return core::Status::ok_status();
}

core::Status decode_response(std::string_view payload, ResponseFrame* out) {
  *out = ResponseFrame{};
  Reader r(payload);
  std::uint16_t flags = 0;
  if (core::Status s = get_header(r, kTypeEstimateResponse, &out->request_id,
                                  &out->attempt, &flags);
      !s.ok())
    return s;
  // The trace block rides requests only; the client already owns the
  // context, so a response announcing one is a framing error.
  if (flags & kFlagTraceContext)
    return malformed("unexpected trace context on response");
  const std::uint8_t status = r.get_u8();
  const std::uint8_t provenance = r.get_u8();
  if (status >= core::kErrorCodeCount) return malformed("status out of range");
  if (provenance > static_cast<std::uint8_t>(core::EstimateProvenance::kCached))
    return malformed("provenance out of range");
  out->status = static_cast<core::ErrorCode>(status);
  out->provenance = static_cast<core::EstimateProvenance>(provenance);
  const std::uint16_t message_len = r.get_u16();
  out->message = r.get_bytes(message_len);
  const std::uint32_t path_count = r.get_u32();
  if (!r.ok()) return malformed("truncated response body");
  if (!r.fits(path_count, 21)) return malformed("path count exceeds payload");
  out->paths.resize(path_count);
  for (core::PathEstimate& path : out->paths) {
    path.sink = r.get_u32();
    const std::uint8_t pp = r.get_u8();
    if (pp > static_cast<std::uint8_t>(core::EstimateProvenance::kCached))
      return malformed("path provenance out of range");
    path.provenance = static_cast<core::EstimateProvenance>(pp);
    path.delay = r.get_f64();
    path.slew = r.get_f64();
  }
  if (!r.ok()) return malformed("truncated response body");
  if (r.remaining() != 0)
    return malformed(std::to_string(r.remaining()) +
                     " trailing bytes after response body");
  return core::Status::ok_status();
}

FrameStatus try_extract_frame(std::string& buffer, std::string* payload,
                              std::size_t max_frame_bytes) {
  if (buffer.size() < 4) return FrameStatus::kNeedMore;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i)
    length = (length << 8) |
             static_cast<std::uint8_t>(buffer[static_cast<std::size_t>(i)]);
  if (length > max_frame_bytes) return FrameStatus::kOversize;
  if (buffer.size() < 4 + static_cast<std::size_t>(length))
    return FrameStatus::kNeedMore;
  *payload = buffer.substr(4, length);
  buffer.erase(0, 4 + static_cast<std::size_t>(length));
  return FrameStatus::kFrame;
}

}  // namespace gnntrans::serve
