/// \file dataset.hpp
/// Training/evaluation records, feature & label standardization, and
/// conversion to model-ready GraphSamples.
///
/// Pipeline: generate nets -> time them with the golden timer (labels) ->
/// extract Table I features -> fit a Standardizer on the *training* records ->
/// standardize every record into GraphSamples. The standardizer travels with
/// the trained model (it is serialized into estimator checkpoints) so
/// inference on unseen designs applies identical scaling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "cell/library.hpp"
#include "features/features.hpp"
#include "netlist/design.hpp"
#include "nn/graph_sample.hpp"
#include "rcnet/generate.hpp"
#include "sim/golden.hpp"

namespace gnntrans::features {

/// One labeled net: everything needed to build a GraphSample.
struct WireRecord {
  rcnet::RcNet net;
  NetContext context;
  RawFeatures raw;
  std::vector<double> slew_labels;   ///< seconds, per path (sink order)
  std::vector<double> delay_labels;  ///< seconds, per path
  bool non_tree = false;
};

/// Times \p net with the golden timer and extracts features.
[[nodiscard]] WireRecord make_record(rcnet::RcNet net, NetContext context,
                                     sim::GoldenTimer& timer);

/// Column-wise z-score statistics for features and labels.
class Standardizer {
 public:
  /// Fits means/stds over the given (training) records. Degenerate columns
  /// (zero variance) get std 1 so they pass through unchanged.
  void fit(const std::vector<WireRecord>& records);

  /// Builds the standardized GraphSample of one record (fit() must have run).
  [[nodiscard]] nn::GraphSample make_sample(const WireRecord& record) const;

  /// Label space conversions (seconds <-> standardized units).
  [[nodiscard]] double standardize_slew(double seconds) const noexcept;
  [[nodiscard]] double standardize_delay(double seconds) const noexcept;
  [[nodiscard]] double unstandardize_slew(double z) const noexcept;
  [[nodiscard]] double unstandardize_delay(double z) const noexcept;

  void save(std::ostream& out) const;
  void load(std::istream& in);

  [[nodiscard]] bool fitted() const noexcept { return !x_mean_.empty(); }

 private:
  std::vector<double> x_mean_, x_std_;
  std::vector<double> h_mean_, h_std_;
  double slew_mean_ = 0.0, slew_std_ = 1.0;
  double delay_mean_ = 0.0, delay_std_ = 1.0;
};

/// Configuration of a standalone-net dataset (Tables III/IV protocol).
struct WireDatasetConfig {
  std::size_t net_count = 200;
  rcnet::NetGenConfig net_config;
  sim::TransientConfig sim_config;
  std::uint64_t seed = 1;
};

/// Generates nets, draws random contexts, and labels them with the golden
/// timer. Labels whose sinks did not settle are dropped with the whole record.
[[nodiscard]] std::vector<WireRecord> generate_wire_records(
    const WireDatasetConfig& config, const cell::CellLibrary& library);

/// Builds records for every net of a design, deriving each net's context from
/// its actual driver/load cells. When \p sta_slew (per-instance driver output
/// slew from a prior STA pass, e.g. StaResult::slew) is provided, each net is
/// timed under its true propagated input slew — matching how the estimator is
/// later deployed inside STA; otherwise the driver's NLDM output slew under a
/// nominal input transition is used.
[[nodiscard]] std::vector<WireRecord> records_from_design(
    const netlist::Design& design, const cell::CellLibrary& library,
    sim::GoldenTimer& timer, const std::vector<double>* sta_slew = nullptr);

/// Standardizes a batch of records into samples.
[[nodiscard]] std::vector<nn::GraphSample> make_samples(
    const std::vector<WireRecord>& records, const Standardizer& standardizer);

}  // namespace gnntrans::features
