#!/usr/bin/env python3
"""Lint the metric names registered in the C++ sources.

Every counter/gauge/histogram literal registered against the global
MetricsRegistry must

  1. start with the ``gnntrans_`` prefix, so scrapes from several tools on one
     host never collide, and
  2. survive ``sanitize_metric_name`` unchanged ([a-zA-Z0-9_:], non-digit
     first character) — a name that the exporter has to rewrite is a name
     that dashboards can never find under its source spelling,

  3. live in a known second-level namespace (``gnntrans_net_*``,
     ``gnntrans_serving_*``, …) so one-off spellings (``gnntrans_network_``,
     ``gnntrans_serve_``) cannot fragment a metric family across dashboards,
     and

  4. follow the Prometheus suffix convention: counters end in ``_total``,
     gauges and histograms do not.

Names built at runtime from a dynamic suffix (e.g. the per-feature
``"gnntrans_quality_feature_psi_" + name`` gauges) are checked on their
literal prefix, which the concatenation syntax exposes; the suffix rule is
skipped for those since the tail is dynamic.

Run standalone (``python3 tools/check_metric_names.py``) or via ctest
(registered as ``metric_name_lint`` with the ``quality`` label). Exits
non-zero listing every violation.
"""

import pathlib
import re
import sys

# .counter("name"...), .gauge("name"...), .histogram("name"...) — also matches
# a concatenation's literal prefix: .gauge("prefix_" + var ...).
REGISTRATION = re.compile(
    r"\.\s*(counter|gauge|histogram)\s*\(\s*\"((?:[^\"\\]|\\.)*)\"\s*(\+)?",
    re.DOTALL,
)

SANITARY = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# Known second-level namespaces (gnntrans_<ns>_...). Introducing a new one is
# fine — add it here deliberately, so near-miss spellings don't slip through.
NAMESPACES = (
    "cache", "client", "eco", "golden", "liberty", "net", "obs", "quality",
    "serving", "spef", "sta", "trace", "train", "verilog",
)

# Registrations that are deliberately hostile or synthetic (tests exercising
# the sanitizer itself, bench fixtures) live under these directories.
EXEMPT_DIRS = ("tests", "bench")


def scan(root: pathlib.Path):
    violations = []
    names = set()
    for path in sorted(root.rglob("*.cpp")) + sorted(root.rglob("*.hpp")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] in EXEMPT_DIRS:
            continue
        if "build" in rel.parts[0]:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in REGISTRATION.finditer(text):
            kind, name, concatenated = match.group(1), match.group(2), match.group(3)
            line = text.count("\n", 0, match.start()) + 1
            where = f"{rel}:{line}"
            if "\\" in name:
                violations.append(
                    f"{where}: {kind} name {name!r} contains escapes; metric "
                    "names must be plain literals"
                )
                continue
            if not name.startswith("gnntrans_"):
                violations.append(
                    f"{where}: {kind} name {name!r} lacks the gnntrans_ prefix"
                )
            if not SANITARY.fullmatch(name):
                violations.append(
                    f"{where}: {kind} name {name!r} would be rewritten by "
                    "sanitize_metric_name ([a-zA-Z0-9_:] only, non-digit first)"
                )
            if name.startswith("gnntrans_") and not any(
                name.startswith(f"gnntrans_{ns}_") for ns in NAMESPACES
            ):
                violations.append(
                    f"{where}: {kind} name {name!r} is outside every known "
                    "namespace (" + ", ".join(NAMESPACES) + "); add the "
                    "namespace to check_metric_names.py if it is intentional"
                )
            if not concatenated:
                if kind == "counter" and not name.endswith("_total"):
                    violations.append(
                        f"{where}: counter {name!r} must end in _total"
                    )
                if kind != "counter" and name.endswith("_total"):
                    violations.append(
                        f"{where}: {kind} {name!r} must not end in _total "
                        "(reserved for counters)"
                    )
                names.add(name)
    return violations, names


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    violations, names = scan(root)
    if violations:
        print(f"metric name lint: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"metric name lint: {len(names)} registered names OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
