// Reproduces Fig. 1 and Fig. 2 of the paper:
//  - Fig. 1: path counts on a small example netlist vs a small example wire.
//  - Fig. 2(a): #paths vs #gates on netlists (exponential growth).
//  - Fig. 2(b): #paths vs #caps on wires (stays tiny; histogram of counts).
#include <cstdio>
#include <random>

#include "cell/library.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"
#include "rcnet/stats.hpp"
#include "support.hpp"

using namespace gnntrans;

namespace {

void fig1_example() {
  std::printf("== Fig. 1: paths on a netlist vs paths on a wire ==\n");
  // A small layered netlist (11 gates) akin to Fig. 1(a).
  const auto lib = cell::CellLibrary::make_default();
  netlist::DesignGenConfig cfg;
  cfg.startpoints = 2;
  cfg.levels = 3;
  cfg.cells_per_level = 3;
  cfg.seed = 71;
  const netlist::Design d = netlist::generate_design(cfg, lib, "fig1a");
  std::printf("netlist: %zu gates -> %.0f source-to-endpoint paths\n",
              d.cell_count(), netlist::count_netlist_paths(d));

  // A wire RC net with 11 capacitances and 2 sinks, as in Fig. 1(b).
  std::mt19937_64 rng(7);
  rcnet::NetGenConfig ncfg;
  ncfg.min_nodes = 11;
  ncfg.max_nodes = 11;
  ncfg.min_sinks = 2;
  ncfg.max_sinks = 2;
  ncfg.non_tree_fraction = 0.0;
  const rcnet::RcNet net = rcnet::generate_net(ncfg, rng, "fig1b");
  std::printf("wire:    %zu caps  -> %llu wire paths\n\n", net.node_count(),
              static_cast<unsigned long long>(rcnet::count_simple_paths(net)));
}

void fig2a() {
  std::printf("== Fig. 2(a): #paths vs #gates on netlists ==\n");
  std::printf("%-10s %-12s %-16s\n", "#gates", "depth", "#paths");
  const auto lib = cell::CellLibrary::make_default();
  for (std::uint32_t width : {6u, 10u, 16u, 24u, 36u, 48u}) {
    netlist::DesignGenConfig cfg;
    cfg.startpoints = width / 2;
    cfg.levels = 4 + width / 8;
    cfg.cells_per_level = width;
    cfg.seed = 1000 + width;
    const netlist::Design d = netlist::generate_design(cfg, lib, "sweep");
    std::printf("%-10zu %-12u %-16.3g\n", d.cell_count(), cfg.levels,
                netlist::count_netlist_paths(d));
  }
  std::printf("\n");
}

void fig2b() {
  std::printf("== Fig. 2(b): #paths vs #caps on wires ==\n");
  std::printf("%-10s %-14s %-14s\n", "#caps", "mean #paths", "max #paths");
  std::mt19937_64 rng(42);
  for (std::uint32_t caps : {10u, 20u, 40u, 80u, 120u, 160u}) {
    rcnet::NetGenConfig cfg;
    cfg.min_nodes = caps;
    cfg.max_nodes = caps;
    std::uint64_t max_paths = 0;
    double sum = 0.0;
    const int samples = 200;
    for (int i = 0; i < samples; ++i) {
      const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "w");
      const std::uint64_t p = rcnet::count_simple_paths(net);
      max_paths = std::max(max_paths, p);
      sum += static_cast<double>(p);
    }
    std::printf("%-10u %-14.1f %-14llu\n", caps, sum / samples,
                static_cast<unsigned long long>(max_paths));
  }

  // Histogram over a large mixed population (the paper's bar chart).
  std::printf("\nhistogram of wire path counts (1000 nets, bucket width 10):\n");
  rcnet::NetGenConfig cfg;
  std::vector<rcnet::RcNet> nets;
  nets.reserve(1000);
  for (int i = 0; i < 1000; ++i) nets.push_back(rcnet::generate_net(cfg, rng, "h"));
  const rcnet::CollectionStats agg = rcnet::aggregate_stats(nets, 10);
  for (std::size_t b = 0; b < agg.path_histogram.size(); ++b)
    std::printf("  paths %3zu-%-3zu : %zu nets\n", b * 10, b * 10 + 9,
                agg.path_histogram[b]);
  std::printf("max paths on any wire: %llu (paper: 49)\n",
              static_cast<unsigned long long>(agg.max_simple_paths));
}

}  // namespace

int main() {
  std::printf("=== Fig. 1 / Fig. 2 reproduction ===\n\n");
  fig1_example();
  fig2a();
  fig2b();
  return 0;
}
