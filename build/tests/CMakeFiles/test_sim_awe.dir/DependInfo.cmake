
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_awe.cpp" "tests/CMakeFiles/test_sim_awe.dir/test_sim_awe.cpp.o" "gcc" "tests/CMakeFiles/test_sim_awe.dir/test_sim_awe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gnntrans_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gnntrans_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/gnntrans_features.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gnntrans_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gnntrans_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnntrans_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/gnntrans_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnntrans_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rcnet/CMakeFiles/gnntrans_rcnet.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnntrans_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
