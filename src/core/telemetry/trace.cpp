#include "core/telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"

namespace gnntrans::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// splitmix64 finalizer — the same pure-hash family FaultInjector and the
/// quality shadow sampler use, so head sampling is a deterministic function
/// of (seed, request_id) with no per-request state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Hard ceiling for the adaptive 1-in-N: beyond this, sampling is
/// effectively off and pushing N higher only loses resolution.
constexpr std::size_t kMaxSampleEvery = std::size_t{1} << 20;

struct SamplerGauges {
  Gauge rate = MetricsRegistry::global().gauge(
      "gnntrans_trace_effective_sample_rate",
      "Fraction of spans currently recorded (1/N after overhead adaptation)");
  Gauge cost = MetricsRegistry::global().gauge(
      "gnntrans_trace_span_cost_ns",
      "EWMA self-measured cost of recording one trace span, in ns");

  static const SamplerGauges& get() {
    static const SamplerGauges gauges;
    return gauges;
  }
};

}  // namespace

/// Per-thread event ring. The owner thread appends; json export and clear
/// lock the mutex, which the owner also takes per append — uncontended in
/// steady state, so the cost is a couple of ns and the structure is clean
/// under TSan.
struct TraceRecorder::Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : thread_id(tid), events(capacity) {}

  std::uint32_t thread_id = 0;
  mutable std::mutex mutex;
  std::vector<TraceEvent> events;  ///< fixed capacity, circular
  std::size_t next = 0;            ///< write cursor
  std::uint64_t written = 0;       ///< total appends since clear
};

struct TraceRecorder::Impl {
  const std::uint64_t id = g_next_recorder_id.fetch_add(1);
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex;  ///< guards rings vector growth
  std::vector<std::unique_ptr<Ring>> rings;
  std::size_t ring_capacity = 16384;
};

TraceRecorder::Impl& TraceRecorder::impl() const {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing) return *existing;
  auto* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel))
    return *fresh;
  delete fresh;
  return *existing;
}

TraceRecorder::~TraceRecorder() { delete impl_.load(); }

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::int64_t TraceRecorder::now_ns() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - impl().epoch)
      .count();
}

TraceRecorder::Ring& TraceRecorder::ring_for_this_thread() {
  // Cache keyed by recorder id: ids are never reused, so a stale cache entry
  // from a destroyed recorder can never alias a live one.
  thread_local std::vector<std::pair<std::uint64_t, Ring*>> t_cache;
  Impl& im = impl();
  for (const auto& [id, ring] : t_cache)
    if (id == im.id) return *ring;

  const std::lock_guard<std::mutex> lock(im.mutex);
  im.rings.push_back(
      std::make_unique<Ring>(im.ring_capacity, this_thread_id()));
  Ring* ring = im.rings.back().get();
  t_cache.emplace_back(im.id, ring);
  return *ring;
}

void TraceRecorder::record(std::string_view name, std::string_view category,
                           std::int64_t begin_ns, std::int64_t end_ns) noexcept {
  record_event(name, category, begin_ns, end_ns, TracePhase::kComplete, 0);
}

void TraceRecorder::record_flow(TracePhase phase, std::string_view name,
                                std::string_view category,
                                std::uint64_t flow_id) noexcept {
  if (!enabled()) return;
  const std::int64_t now = now_ns();
  record_event(name, category, now, now, phase, flow_id);
}

TraceContext TraceRecorder::head_sample(std::uint64_t request_id) noexcept {
  if (!enabled()) return {};
  const std::uint64_t seed = head_seed_.load(std::memory_order_relaxed);
  const std::uint64_t mixed = mix64(request_id ^ seed);
  TraceContext ctx;
  ctx.trace_id = mixed ? mixed : 1;
  // The overhead controller throttles head sampling by the same factor it
  // raised the span interval: if adapt() doubled effective_every, half the
  // previously-sampled requests stop tracing.
  const double base = static_cast<double>(base_every_.load(std::memory_order_relaxed));
  const double effective =
      static_cast<double>(effective_every_.load(std::memory_order_relaxed));
  double rate = head_rate_.load(std::memory_order_relaxed) * (base / effective);
  rate = std::clamp(rate, 0.0, 1.0);
  if (rate >= 1.0) {
    ctx.sampled = true;
  } else if (rate > 0.0) {
    // Map rate into the u64 range (FaultInjector-style threshold compare),
    // decided by a second independent hash so the sampling bit is not
    // correlated with the trace_id bits.
    const auto threshold =
        static_cast<std::uint64_t>(rate * 18446744073709551616.0);
    ctx.sampled = mix64(mixed ^ 0x517CC1B727220A95ull) < threshold;
  }
  if (ctx.sampled) ctx.span_id = next_span_id();
  return ctx;
}

void TraceRecorder::record_event(std::string_view name,
                                 std::string_view category,
                                 std::int64_t begin_ns, std::int64_t end_ns,
                                 TracePhase phase,
                                 std::uint64_t flow_id) noexcept {
  if (!enabled()) return;
  // Self-time every 64th record so adapt() knows the real per-span cost on
  // this machine under this contention; EWMA smooths scheduler noise. The
  // pre-increment makes call #64 the first probe, and the ring is acquired
  // before the clock starts: a thread's first record pays a one-off ring
  // allocation (~2 MB first touch) that must not seed the EWMA — a poisoned
  // first sample would make adapt() throttle head sampling to nothing.
  thread_local std::uint32_t t_probe = 0;
  const bool timed = (++t_probe & 63u) == 0;
  Ring& ring = ring_for_this_thread();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();

  {
    const std::lock_guard<std::mutex> lock(ring.mutex);
    TraceEvent& event = ring.events[ring.next];
    copy_truncated(event.name, sizeof(event.name), name);
    copy_truncated(event.category, sizeof(event.category), category);
    event.begin_ns = begin_ns;
    event.end_ns = phase == TracePhase::kComplete || phase == TracePhase::kAsync
                       ? end_ns
                       : begin_ns;
    event.flow_id = flow_id;
    event.thread_id = ring.thread_id;
    event.phase = phase;
    ring.next = (ring.next + 1) % ring.events.size();
    ++ring.written;
  }

  if (timed) {
    const double cost = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    double prev = span_cost_ns_.load(std::memory_order_relaxed);
    const double next = prev <= 0.0 ? cost : prev + (cost - prev) * 0.125;
    // Lost races just drop one probe; the EWMA doesn't care.
    span_cost_ns_.compare_exchange_weak(prev, next, std::memory_order_relaxed);
  }
}

void TraceRecorder::configure(TraceConfig config) noexcept {
  const std::size_t every =
      std::clamp<std::size_t>(config.sample_every, 1, kMaxSampleEvery);
  base_every_.store(every, std::memory_order_relaxed);
  effective_every_.store(every, std::memory_order_relaxed);
  budget_pct_.store(config.overhead_budget_pct, std::memory_order_relaxed);
  head_rate_.store(std::clamp(config.head_sample_rate, 0.0, 1.0),
                   std::memory_order_relaxed);
  head_seed_.store(config.head_seed, std::memory_order_relaxed);
}

TraceConfig TraceRecorder::config() const noexcept {
  return {base_every_.load(std::memory_order_relaxed),
          budget_pct_.load(std::memory_order_relaxed),
          head_rate_.load(std::memory_order_relaxed),
          head_seed_.load(std::memory_order_relaxed)};
}

bool TraceRecorder::should_sample() noexcept {
  if (!enabled()) return false;
  const std::size_t every = effective_every_.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  thread_local std::size_t t_countdown = 0;
  if (t_countdown == 0) {
    t_countdown = every - 1;
    return true;
  }
  --t_countdown;
  return false;
}

void TraceRecorder::adapt(double spans_per_unit, double unit_seconds) noexcept {
  if (!(spans_per_unit > 0.0) || !(unit_seconds > 0.0)) return;
  const double cost_ns = span_cost_ns_.load(std::memory_order_relaxed);
  if (cost_ns <= 0.0) return;  // nothing measured yet — keep the floor
  const double budget = budget_pct_.load(std::memory_order_relaxed);
  const std::size_t base = base_every_.load(std::memory_order_relaxed);

  std::size_t needed = 1;
  if (budget > 0.0) {
    // Overhead at N=1, as a percentage of the unit's wall time.
    const double full_pct =
        100.0 * spans_per_unit * cost_ns / (unit_seconds * 1e9);
    const double n = std::ceil(full_pct / budget);
    needed = n >= static_cast<double>(kMaxSampleEvery)
                 ? kMaxSampleEvery
                 : static_cast<std::size_t>(std::max(n, 1.0));
  } else {
    needed = kMaxSampleEvery;  // zero budget: record as little as allowed
  }
  const std::size_t effective = std::max(needed, base);
  effective_every_.store(effective, std::memory_order_relaxed);

  const SamplerGauges& gauges = SamplerGauges::get();
  gauges.rate.set(1.0 / static_cast<double>(effective));
  gauges.cost.set(cost_ns);
}

std::size_t TraceRecorder::event_count() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  std::size_t total = 0;
  for (const std::unique_ptr<Ring>& ring : im.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += std::min<std::uint64_t>(ring->written, ring->events.size());
  }
  return total;
}

std::uint64_t TraceRecorder::dropped_count() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  std::uint64_t dropped = 0;
  for (const std::unique_ptr<Ring>& ring : im.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->written > ring->events.size())
      dropped += ring->written - ring->events.size();
  }
  return dropped;
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::unique_ptr<Ring>& ring : im.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const std::size_t count =
        std::min<std::uint64_t>(ring->written, ring->events.size());
    // Oldest-first: when wrapped, the cursor points at the oldest event.
    const std::size_t start = ring->written > ring->events.size() ? ring->next : 0;
    for (std::size_t k = 0; k < count; ++k) {
      const TraceEvent& event =
          ring->events[(start + k) % ring->events.size()];
      char times[96];  // fixed %.3f keeps full µs resolution at any offset
      char id[40];
      id[0] = '\0';
      if (event.flow_id != 0)
        std::snprintf(id, sizeof(id), ",\"id\":\"0x%llx\"",
                      static_cast<unsigned long long>(event.flow_id));
      const char* header_tail =
          event.category[0] ? event.category : "default";
      // One stored event can expand to two JSON entries (async b/e pair).
      const auto emit = [&](char ph, std::int64_t ts_ns, bool with_dur,
                            const char* extra) {
        if (!first) out << ",";
        first = false;
        if (with_dur)
          std::snprintf(times, sizeof(times), "\"ts\":%.3f,\"dur\":%.3f",
                        static_cast<double>(ts_ns) / 1000.0,
                        static_cast<double>(event.end_ns - event.begin_ns) /
                            1000.0);
        else
          std::snprintf(times, sizeof(times), "\"ts\":%.3f",
                        static_cast<double>(ts_ns) / 1000.0);
        out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
            << json_escape(header_tail) << "\",\"ph\":\"" << ph
            << "\",\"pid\":1,\"tid\":" << event.thread_id << "," << times
            << id << extra << "}";
      };
      switch (event.phase) {
        case TracePhase::kComplete:
          emit('X', event.begin_ns, true, "");
          break;
        case TracePhase::kFlowStart:
          emit('s', event.begin_ns, false, "");
          break;
        case TracePhase::kFlowStep:
          emit('t', event.begin_ns, false, "");
          break;
        case TracePhase::kFlowEnd:
          // bp:e binds the arrow to the enclosing slice's end, which is how
          // chrome://tracing expects terminating flow events to land.
          emit('f', event.begin_ns, false, ",\"bp\":\"e\"");
          break;
        case TracePhase::kAsync:
          emit('b', event.begin_ns, false, "");
          emit('e', event.end_ns, false, "");
          break;
      }
    }
  }
  out << "]}";
}

void TraceRecorder::clear() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  for (const std::unique_ptr<Ring>& ring : im.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->written = 0;
  }
}

void TraceRecorder::set_ring_capacity(std::size_t events) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  im.ring_capacity = std::max<std::size_t>(16, events);
}

}  // namespace gnntrans::telemetry
