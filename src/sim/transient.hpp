/// \file transient.hpp
/// Golden transient simulation of RC nets (the PrimeTime-SI substitute).
///
/// Solves C dv/dt = -G v + b(t) by the trapezoidal rule with a single dense
/// Cholesky factorization. The driver is an ideal voltage ramp behind a drive
/// resistance; crosstalk ("SI mode") couples aggressor ramps through coupling
/// caps, injecting Cc * dVa/dt displacement current at victim nodes.
///
/// Timing measurements follow STA conventions:
///  - wire delay of a sink = t50(sink) - t50(source node waveform),
///  - slew = (t80 - t20) / 0.6 (linear extrapolation to the full swing).
/// Only rising transitions are simulated: a linear RC network is symmetric
/// under rise/fall, so fall timing is identical; rise/fall asymmetry enters
/// path timing through the driver cell, not the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::sim {

/// Crosstalk (SI) behaviour of aggressor nets.
struct SiConfig {
  bool enabled = true;
  double aggressor_slew_mean = 8.0e-11;  ///< seconds (20/80 convention)
  double aggressor_slew_sigma = 0.4;     ///< lognormal sigma
  /// Aggressor arrival is uniform in [0, window_scale * (ramp + max Elmore)].
  double window_scale = 1.2;
};

/// Simulation controls.
struct TransientConfig {
  double vdd = 0.8;                  ///< volts
  std::size_t steps = 1200;          ///< trapezoidal steps over the base window
  std::size_t max_extensions = 4;    ///< window doublings if sinks settle late
  double driver_resistance = 100.0;  ///< ohms, default drive strength
  SiConfig si;
};

/// Timing measured at one sink.
struct SinkTiming {
  rcnet::NodeId sink = 0;
  double delay = 0.0;  ///< seconds, t50-to-t50 from the source node
  double slew = 0.0;   ///< seconds, 20/80 extrapolated
  bool settled = false;  ///< crossed 80% of vdd inside the simulated window
};

/// Full result of simulating one net.
struct TransientResult {
  std::vector<SinkTiming> sinks;    ///< one entry per net sink, in sink order
  double source_slew = 0.0;         ///< slew measured at the source node
  double source_t50 = 0.0;          ///< absolute t50 of the source node
  std::size_t steps_executed = 0;   ///< total trapezoidal steps run
};

/// Simulates \p net driven with the given input slew (20/80 of the ideal ramp)
/// and drive resistance (overrides config.driver_resistance when > 0).
///
/// Precondition: net.validate() is empty.
[[nodiscard]] TransientResult simulate(const rcnet::RcNet& net,
                                       const TransientConfig& config,
                                       double input_slew,
                                       double driver_resistance = 0.0);

/// Samples a full waveform at one node (for tests and debugging plots).
struct Waveform {
  std::vector<double> time;
  std::vector<double> voltage;
};

/// As simulate(), but additionally returns the waveform at \p probe_node.
[[nodiscard]] std::pair<TransientResult, Waveform> simulate_with_probe(
    const rcnet::RcNet& net, const TransientConfig& config, double input_slew,
    rcnet::NodeId probe_node, double driver_resistance = 0.0);

}  // namespace gnntrans::sim
