# Empty dependencies file for incremental_optimization.
# This may be replaced when dependencies are built.
