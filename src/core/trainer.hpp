/// \file trainer.hpp
/// End-to-end training loop (paper Sec. IV): minimize MSE of standardized
/// slew + delay over nets with Adam, one net per step.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/graph_sample.hpp"
#include "nn/models.hpp"

namespace gnntrans::core {

/// Training hyperparameters.
struct TrainConfig {
  std::size_t epochs = 40;
  float learning_rate = 2e-3f;
  float lr_decay = 0.97f;        ///< multiplicative per-epoch decay
  double grad_clip = 5.0;
  float weight_decay = 0.0f;     ///< decoupled (AdamW-style) when > 0
  float slew_loss_weight = 1.0f;
  float delay_loss_weight = 1.0f;
  std::uint64_t shuffle_seed = 7;
  /// Fraction of samples held out for validation (0 disables validation and
  /// early stopping). Held-out samples never receive gradient updates.
  double validation_fraction = 0.0;
  /// Stop after this many consecutive epochs without validation improvement
  /// (0 disables). Requires validation_fraction > 0.
  std::size_t early_stop_patience = 0;
  /// Called after each epoch with (epoch, mean training loss); may be empty.
  std::function<void(std::size_t, double)> on_epoch;
};

/// Per-run report.
struct TrainReport {
  std::vector<double> epoch_loss;       ///< mean per-sample training loss
  std::vector<double> validation_loss;  ///< empty when validation disabled
  bool stopped_early = false;
  double wall_seconds = 0.0;
};

/// Trains \p model in place over \p samples.
TrainReport train_model(nn::WireModel& model,
                        const std::vector<nn::GraphSample>& samples,
                        const TrainConfig& config);

/// Model-vs-golden evaluation in *seconds* space.
struct Evaluation {
  double slew_r2 = 0.0;
  double delay_r2 = 0.0;
  double slew_max_abs = 0.0;   ///< seconds
  double delay_max_abs = 0.0;  ///< seconds
  std::size_t path_count = 0;
  double inference_seconds = 0.0;
};

/// Runs inference (no grad) over samples and scores against the golden labels.
/// \p unstandardize_slew / _delay convert model outputs back to seconds.
[[nodiscard]] Evaluation evaluate_model(
    const nn::WireModel& model, const std::vector<nn::GraphSample>& samples,
    const std::function<double(double)>& unstandardize_slew,
    const std::function<double(double)>& unstandardize_delay);

}  // namespace gnntrans::core
