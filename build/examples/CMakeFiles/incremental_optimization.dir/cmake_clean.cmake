file(REMOVE_RECURSE
  "CMakeFiles/incremental_optimization.dir/incremental_optimization.cpp.o"
  "CMakeFiles/incremental_optimization.dir/incremental_optimization.cpp.o.d"
  "incremental_optimization"
  "incremental_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
