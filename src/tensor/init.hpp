/// \file init.hpp
/// Parameter initialization (Xavier/Glorot and He) with explicit RNG so every
/// training run in tests and benches is reproducible.
#pragma once

#include <random>

#include "tensor/tensor.hpp"

namespace gnntrans::tensor {

/// Xavier-uniform initialized [rows, cols] parameter (requires_grad = true).
[[nodiscard]] Tensor xavier_uniform(std::size_t rows, std::size_t cols,
                                    std::mt19937_64& rng);

/// He-normal initialized [rows, cols] parameter (requires_grad = true); use
/// before ReLU-family nonlinearities.
[[nodiscard]] Tensor he_normal(std::size_t rows, std::size_t cols,
                               std::mt19937_64& rng);

/// Zero-initialized [rows, cols] parameter (requires_grad = true); biases.
[[nodiscard]] Tensor zeros_param(std::size_t rows, std::size_t cols);

}  // namespace gnntrans::tensor
