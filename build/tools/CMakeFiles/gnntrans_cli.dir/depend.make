# Empty dependencies file for gnntrans_cli.
# This may be replaced when dependencies are built.
