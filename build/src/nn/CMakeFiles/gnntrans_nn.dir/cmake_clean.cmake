file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_nn.dir/layers.cpp.o"
  "CMakeFiles/gnntrans_nn.dir/layers.cpp.o.d"
  "CMakeFiles/gnntrans_nn.dir/models.cpp.o"
  "CMakeFiles/gnntrans_nn.dir/models.cpp.o.d"
  "libgnntrans_nn.a"
  "libgnntrans_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
