
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/awe.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/awe.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/awe.cpp.o.d"
  "/root/repo/src/sim/ceff.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/ceff.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/ceff.cpp.o.d"
  "/root/repo/src/sim/golden.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/golden.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/golden.cpp.o.d"
  "/root/repo/src/sim/moments.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/moments.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/moments.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/transient.cpp.o.d"
  "/root/repo/src/sim/wire_analysis.cpp" "src/sim/CMakeFiles/gnntrans_sim.dir/wire_analysis.cpp.o" "gcc" "src/sim/CMakeFiles/gnntrans_sim.dir/wire_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/gnntrans_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rcnet/CMakeFiles/gnntrans_rcnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
