file(REMOVE_RECURSE
  "libgnntrans_tensor.a"
)
