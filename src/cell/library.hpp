/// \file library.hpp
/// Synthetic standard-cell library (the TSMC16 NLDM substitute, DESIGN.md §1).
///
/// A small family of combinational cells and a flip-flop, each at several
/// drive strengths, with physically-shaped NLDM surfaces: delay grows with
/// R_eff * C_load and with input slew; output slew tracks the RC corner.
/// The functional and drive encodings feed the paper's path features
/// ("dir./func. of drive cell" and "dir./func. of load cell", Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cell/nldm.hpp"

namespace gnntrans::cell {

/// Logical function of a cell (also its numeric feature encoding).
enum class CellFunction : std::uint32_t {
  kInv = 0,
  kBuf = 1,
  kNand2 = 2,
  kNor2 = 3,
  kAnd2 = 4,
  kOr2 = 5,
  kXor2 = 6,
  kAoi21 = 7,
  kMux2 = 8,
  kDff = 9,
};

[[nodiscard]] const char* to_string(CellFunction fn);
[[nodiscard]] bool is_sequential(CellFunction fn) noexcept;
/// Data input pin count (DFF counts its D pin).
[[nodiscard]] std::uint32_t input_count(CellFunction fn) noexcept;

/// One library cell.
struct Cell {
  std::string name;             ///< e.g. "NAND2_X2"
  CellFunction function = CellFunction::kInv;
  std::uint32_t drive_strength = 1;  ///< 1, 2, 4, 8
  double input_cap = 0.0;            ///< farads per input pin
  double drive_resistance = 0.0;     ///< ohms; drives the wire simulator
  TimingArc arc;                     ///< worst-case input-to-output arc
};

/// Immutable collection of cells.
class CellLibrary {
 public:
  /// Builds the default synthetic library (deterministic).
  [[nodiscard]] static CellLibrary make_default();

  /// Builds a library from externally characterized cells (e.g. Liberty).
  [[nodiscard]] static CellLibrary from_cells(std::vector<Cell> cells);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] const Cell& at(std::size_t index) const { return cells_.at(index); }
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// Indices of combinational cells / flip-flops.
  [[nodiscard]] const std::vector<std::size_t>& combinational() const noexcept {
    return combinational_;
  }
  [[nodiscard]] const std::vector<std::size_t>& sequential() const noexcept {
    return sequential_;
  }

 private:
  std::vector<Cell> cells_;
  std::vector<std::size_t> combinational_;
  std::vector<std::size_t> sequential_;
};

}  // namespace gnntrans::cell
