// Analytical wire-timing accuracy ladder — the paper's introductory premise:
// closed-form metrics are fast but inaccurate on complex (especially
// non-tree) nets, and increasing model complexity (Elmore -> D2M -> two-pole
// AWE) buys accuracy at rising cost without reaching sign-off quality. The
// learned estimator (Tables III/IV) then beats the whole ladder at
// AWE-class runtime.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "core/metrics.hpp"
#include "rcnet/generate.hpp"
#include "sim/awe.hpp"
#include "sim/moments.hpp"
#include "sim/transient.hpp"
#include "support.hpp"

using namespace gnntrans;

int main() {
  std::printf("=== Analytical metric ladder vs golden (intro premise) ===\n\n");

  std::mt19937_64 rng(2023);
  rcnet::NetGenConfig gen;
  gen.coupling_prob = 0.0;  // isolate the metric error from SI noise
  gen.non_tree_fraction = 0.5;

  sim::TransientConfig tc;
  tc.si.enabled = false;
  tc.steps = 1500;

  struct Bucket {
    std::vector<double> golden, elmore, d2m, awe;
  };
  Bucket tree, non_tree;
  double metric_seconds = 0.0, golden_seconds = 0.0;

  const int kNets = 250;
  for (int i = 0; i < kNets; ++i) {
    const rcnet::RcNet net = rcnet::generate_net(gen, rng, "n");

    const auto t0 = std::chrono::steady_clock::now();
    const sim::Moments moments = sim::compute_moments(net);
    const std::vector<double> d2m = sim::d2m_from_moments(moments);
    const auto awe = sim::awe_two_pole(moments);
    const auto t1 = std::chrono::steady_clock::now();
    // Near-step strong drive: golden measures the intrinsic wire response the
    // analytical metrics model.
    const auto golden = sim::simulate(net, tc, 1e-12, 1.0);
    const auto t2 = std::chrono::steady_clock::now();
    metric_seconds += std::chrono::duration<double>(t1 - t0).count();
    golden_seconds += std::chrono::duration<double>(t2 - t1).count();

    Bucket& bucket = net.is_tree() ? tree : non_tree;
    for (const sim::SinkTiming& st : golden.sinks) {
      if (!st.settled) continue;
      bucket.golden.push_back(st.delay);
      bucket.elmore.push_back(moments.m1[st.sink]);
      bucket.d2m.push_back(d2m[st.sink]);
      bucket.awe.push_back(awe[st.sink].delay);
    }
  }

  auto report = [](const char* label, const Bucket& bucket) {
    auto stats = [&](const std::vector<double>& pred) {
      const double r2 = core::r2_score(pred, bucket.golden);
      const double max_ps = core::max_abs_error(pred, bucket.golden) * 1e12;
      std::printf("  %10.4f R^2   %8.2f ps max err\n", r2, max_ps);
    };
    std::printf("%s (%zu paths):\n", label, bucket.golden.size());
    std::printf("  Elmore:");
    stats(bucket.elmore);
    std::printf("  D2M:   ");
    stats(bucket.d2m);
    std::printf("  AWE-2p:");
    stats(bucket.awe);
  };
  report("Tree nets", tree);
  report("Non-tree nets", non_tree);

  std::printf("\nruntime over %d nets: analytical %0.3f s vs golden transient %0.3f s "
              "(%.0fx)\n",
              kNets, metric_seconds, golden_seconds,
              golden_seconds / metric_seconds);
  std::printf(
      "\nExpected shape: every rung improves accuracy (Elmore overestimates, "
      "D2M undershoots,\nAWE tracks closest) but even AWE keeps a multi-ps "
      "tail — the gap the learned estimator closes\n(Tables III/IV) at "
      "comparable inference cost (bench_micro).\n");
  return 0;
}
