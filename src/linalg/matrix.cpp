#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace gnntrans::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double norm2(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc);
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace gnntrans::linalg
