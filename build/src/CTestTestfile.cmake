# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("rcnet")
subdirs("sim")
subdirs("cell")
subdirs("netlist")
subdirs("tensor")
subdirs("nn")
subdirs("baseline")
subdirs("features")
subdirs("core")
