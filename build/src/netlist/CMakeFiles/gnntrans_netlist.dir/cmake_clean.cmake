file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_netlist.dir/design.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/design.cpp.o.d"
  "CMakeFiles/gnntrans_netlist.dir/generate.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/generate.cpp.o.d"
  "CMakeFiles/gnntrans_netlist.dir/incremental.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/incremental.cpp.o.d"
  "CMakeFiles/gnntrans_netlist.dir/report.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/report.cpp.o.d"
  "CMakeFiles/gnntrans_netlist.dir/sta.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/sta.cpp.o.d"
  "CMakeFiles/gnntrans_netlist.dir/verilog.cpp.o"
  "CMakeFiles/gnntrans_netlist.dir/verilog.cpp.o.d"
  "libgnntrans_netlist.a"
  "libgnntrans_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
