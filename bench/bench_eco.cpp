// ECO what-if benchmark: incremental retime cost vs full-STA cost.
//
// Protocol: generate a levelized design, run the golden wire timer once to
// price a full run_sta pass, then drive the IncrementalSta engine through N
// seeded random ECO edits (cell swaps, net reroutes, buffer insertions) and
// record the per-edit wall time and cone size (forward re-evaluations +
// reverse required-time updates). The paper's incremental-optimization claim
// holds when the mean cone stays well below the design size and the mean
// edit cost stays well below a full pass.
//
// A machine-readable summary always lands in BENCH_eco.json next to
// BENCH_serving.json (override the path with --json-out). Flags:
//   --edits N          edit count (default 200)
//   --seed S           design + edit-stream seed (default 1)
//   --steps T          transient resolution of the golden timer (default 300)
//   --startpoints P --levels L --width W   design shape (default 10/6/12)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/telemetry/telemetry.hpp"
#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/sta.hpp"
#include "support.hpp"

using namespace gnntrans;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Quantile over a sorted sample (nearest-rank; 0 on empty).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct KindStats {
  std::size_t edits = 0;
  std::size_t cone_sum = 0;
  double seconds = 0.0;
};

struct BenchSummary {
  std::size_t instances = 0;
  std::size_t edits = 0;
  double full_sta_seconds = 0.0;
  double mean_edit_seconds = 0.0;
  double speedup = 0.0;  ///< full_sta_seconds / mean_edit_seconds
  double mean_cone = 0.0;
  double cone_fraction = 0.0;  ///< mean_cone / instances
  double cone_p50 = 0.0;
  double cone_p90 = 0.0;
  double cone_max = 0.0;
  double mean_required_updates = 0.0;
  KindStats swap, reroute, insert;
};

void write_summary_json(const std::string& path, const BenchSummary& s) {
  std::ofstream out(path);
  if (!out) {
    GNNTRANS_LOG_ERROR("bench", "cannot open %s for write", path.c_str());
    return;
  }
  auto kind_mean_cone = [](const KindStats& k) {
    return k.edits == 0 ? 0.0
                        : static_cast<double>(k.cone_sum) /
                              static_cast<double>(k.edits);
  };
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"instances\": %zu,\n"
                "  \"edits\": %zu,\n"
                "  \"full_sta_seconds\": %.6f,\n"
                "  \"mean_edit_seconds\": %.6f,\n"
                "  \"speedup_vs_full_sta\": %.2f,\n"
                "  \"mean_retimed_per_edit\": %.2f,\n"
                "  \"cone_fraction_of_design\": %.4f,\n"
                "  \"cone_p50\": %.1f,\n"
                "  \"cone_p90\": %.1f,\n"
                "  \"cone_max\": %.1f,\n"
                "  \"mean_required_updates\": %.2f,\n"
                "  \"swap_edits\": %zu,\n"
                "  \"swap_mean_cone\": %.2f,\n"
                "  \"reroute_edits\": %zu,\n"
                "  \"reroute_mean_cone\": %.2f,\n"
                "  \"insert_edits\": %zu,\n"
                "  \"insert_mean_cone\": %.2f\n"
                "}\n",
                s.instances, s.edits, s.full_sta_seconds, s.mean_edit_seconds,
                s.speedup, s.mean_cone, s.cone_fraction, s.cone_p50, s.cone_p90,
                s.cone_max, s.mean_required_updates, s.swap.edits,
                kind_mean_cone(s.swap), s.reroute.edits,
                kind_mean_cone(s.reroute), s.insert.edits,
                kind_mean_cone(s.insert));
  out << buf;
  GNNTRANS_LOG_INFO("bench", "wrote %s", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_eco.json";
  std::size_t edits = 200;
  std::uint64_t seed = 1;
  std::size_t steps = 300;
  netlist::DesignGenConfig dcfg;
  dcfg.startpoints = 10;
  dcfg.levels = 6;
  dcfg.cells_per_level = 12;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--json-out") == 0) json_path = argv[i + 1];
    else if (std::strcmp(argv[i], "--edits") == 0)
      edits = static_cast<std::size_t>(std::atol(argv[i + 1]));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = static_cast<std::uint64_t>(std::atol(argv[i + 1]));
    else if (std::strcmp(argv[i], "--steps") == 0)
      steps = static_cast<std::size_t>(std::atol(argv[i + 1]));
    else if (std::strcmp(argv[i], "--startpoints") == 0)
      dcfg.startpoints = static_cast<std::uint32_t>(std::atol(argv[i + 1]));
    else if (std::strcmp(argv[i], "--levels") == 0)
      dcfg.levels = static_cast<std::uint32_t>(std::atol(argv[i + 1]));
    else if (std::strcmp(argv[i], "--width") == 0)
      dcfg.cells_per_level = static_cast<std::uint32_t>(std::atol(argv[i + 1]));
  }
  dcfg.seed = seed;

  const auto library = cell::CellLibrary::make_default();
  netlist::Design design = netlist::generate_design(dcfg, library, "bench_eco");
  sim::TransientConfig tc;
  tc.steps = steps;
  netlist::GoldenWireSource source(tc);
  const netlist::StaConfig sta_config;

  // Price a full pass (the cost every what-if would pay without the engine).
  constexpr int kFullRuns = 3;
  const auto full_start = Clock::now();
  for (int r = 0; r < kFullRuns; ++r) {
    const netlist::StaResult full =
        netlist::run_sta(design, library, source, sta_config);
    (void)full;
  }
  const double full_seconds = seconds_since(full_start) / kFullRuns;

  netlist::IncrementalSta inc(std::move(design), library, source, sta_config);
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  BenchSummary summary;
  summary.edits = edits;
  summary.full_sta_seconds = full_seconds;

  std::vector<double> cones;
  cones.reserve(edits);
  double edit_seconds_total = 0.0;
  std::size_t required_total = 0;
  for (std::size_t i = 0; i < edits; ++i) {
    const auto edit_start = Clock::now();
    const netlist::EcoEdit edit =
        netlist::apply_random_edit(inc, library, rng, dcfg.net_config);
    const double edit_seconds = seconds_since(edit_start);
    edit_seconds_total += edit_seconds;
    required_total += edit.required_updates;
    cones.push_back(static_cast<double>(edit.retimed));
    KindStats& k = edit.kind == netlist::EcoEdit::Kind::kSwapCell
                       ? summary.swap
                       : edit.kind == netlist::EcoEdit::Kind::kRerouteNet
                             ? summary.reroute
                             : summary.insert;
    ++k.edits;
    k.cone_sum += edit.retimed;
    k.seconds += edit_seconds;
  }

  summary.instances = inc.design().instances.size();
  summary.mean_edit_seconds = edit_seconds_total / static_cast<double>(edits);
  summary.speedup = summary.mean_edit_seconds > 0.0
                        ? summary.full_sta_seconds / summary.mean_edit_seconds
                        : 0.0;
  double cone_sum = 0.0;
  for (const double c : cones) cone_sum += c;
  summary.mean_cone = cone_sum / static_cast<double>(edits);
  summary.cone_fraction =
      summary.mean_cone / static_cast<double>(summary.instances);
  std::sort(cones.begin(), cones.end());
  summary.cone_p50 = quantile(cones, 0.50);
  summary.cone_p90 = quantile(cones, 0.90);
  summary.cone_max = cones.empty() ? 0.0 : cones.back();
  summary.mean_required_updates =
      static_cast<double>(required_total) / static_cast<double>(edits);

  std::printf("design: %zu instances, %zu nets after %zu edits\n",
              summary.instances, inc.design().nets.size(), edits);
  std::printf("full run_sta: %.4f s/pass (golden, %zu steps)\n", full_seconds,
              steps);
  std::printf("incremental:  %.6f s/edit mean -> %.1fx vs full pass\n",
              summary.mean_edit_seconds, summary.speedup);
  std::printf("cone size:    mean %.1f (%.1f%% of design)  p50 %.0f  p90 %.0f"
              "  max %.0f\n",
              summary.mean_cone, 100.0 * summary.cone_fraction,
              summary.cone_p50, summary.cone_p90, summary.cone_max);
  std::printf("required:     mean %.1f reverse updates/edit\n",
              summary.mean_required_updates);
  auto print_kind = [](const char* name, const KindStats& k) {
    if (k.edits == 0) return;
    std::printf("  %-14s %4zu edits  mean cone %6.1f  mean %.6f s\n", name,
                k.edits, static_cast<double>(k.cone_sum) /
                             static_cast<double>(k.edits),
                k.seconds / static_cast<double>(k.edits));
  };
  print_kind("swap_cell", summary.swap);
  print_kind("reroute_net", summary.reroute);
  print_kind("insert_buffer", summary.insert);

  write_summary_json(json_path, summary);
  return 0;
}
