file(REMOVE_RECURSE
  "libgnntrans_baseline.a"
)
