# Empty compiler generated dependencies file for gnntrans_core.
# This may be replaced when dependencies are built.
