// Tests for the model-quality observability layer: LogSketch bucket layout
// and quantiles, PSI math, the FeatureBaseline checkpoint block, deterministic
// shadow sampling (thread-count invariance), the overhead controller,
// bitwise non-intrusiveness of shadow scoring on the serving path, checkpoint
// v1/v2 compatibility with the typed unsupported-version error, and the
// synthetic-drift path that flips /readyz to 503.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "core/status.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "features/features.hpp"
#include "rcnet/generate.hpp"

using namespace gnntrans;
using namespace gnntrans::telemetry;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (same shape as test_observability's: a
// full RFC 8259 parse with no values built).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// One-shot HTTP GET against the obs server (server always closes).
struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse http_get(std::uint16_t port, const std::string& target) {
  HttpResponse resp;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return resp;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.size() > 12 && raw.rfind("HTTP/1.1 ", 0) == 0)
    resp.status = std::atoi(raw.c_str() + 9);
  if (const std::size_t split = raw.find("\r\n\r\n"); split != std::string::npos)
    resp.body = raw.substr(split + 4);
  return resp;
}

/// Disarms the global monitor and drops any baseline, so tests stay isolated.
void disarm_quality() {
  QualityConfig off;
  off.shadow_rate = 0.0;
  QualityMonitor::global().configure(off);
  QualityMonitor::global().install_baseline(FeatureBaseline{});
}

// ---------------------------------------------------------------------------
// LogSketch

TEST(LogSketch, BucketLayoutIsSignAwareAndOrdered) {
  // Zero, subnormal-small, and NaN all land in the central zero bucket.
  EXPECT_EQ(LogSketch::bucket_of(0.0), LogSketch::kMagnitudeBuckets);
  EXPECT_EQ(LogSketch::bucket_of(1e-30), LogSketch::kMagnitudeBuckets);
  EXPECT_EQ(LogSketch::bucket_of(std::nan("")), LogSketch::kMagnitudeBuckets);

  // Ordering: more negative -> smaller index, more positive -> larger index.
  EXPECT_LT(LogSketch::bucket_of(-4.0), LogSketch::bucket_of(-1.0));
  EXPECT_LT(LogSketch::bucket_of(-1.0), LogSketch::bucket_of(0.0));
  EXPECT_LT(LogSketch::bucket_of(0.0), LogSketch::bucket_of(1.0));
  EXPECT_LT(LogSketch::bucket_of(1.0), LogSketch::bucket_of(4.0));

  // Mirror symmetry around the zero bucket.
  for (const double v : {1e-9, 0.37, 1.0, 3.0, 1e6}) {
    const std::size_t pos = LogSketch::bucket_of(v);
    const std::size_t neg = LogSketch::bucket_of(-v);
    EXPECT_EQ(pos - LogSketch::kMagnitudeBuckets,
              LogSketch::kMagnitudeBuckets - neg);
  }

  // Every in-ladder value lies inside its bucket's bounds (half-open on the
  // side away from zero for positives, toward zero for negatives); beyond
  // 2^kMaxExp values clamp to the outermost buckets instead.
  for (const double v : {-1e5, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 1e5}) {
    const std::size_t b = LogSketch::bucket_of(v);
    EXPECT_LE(LogSketch::bucket_lower(b), v) << v;
    EXPECT_LE(v, LogSketch::bucket_upper(b)) << v;
  }

  // Magnitudes beyond the ladder clamp to the outermost buckets.
  EXPECT_EQ(LogSketch::bucket_of(1e300), LogSketch::kBucketCount - 1);
  EXPECT_EQ(LogSketch::bucket_of(-1e300), 0u);
}

TEST(LogSketch, QuantileWalksOrderedBuckets) {
  LogSketch s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);  // empty

  for (int i = 0; i < 100; ++i) s.observe(1.5);
  const double p50 = s.quantile(0.5);
  EXPECT_GE(p50, 1.0);  // 1.5 lives in [1, 2)
  EXPECT_LE(p50, 2.0);

  // Mixed signs: with 50 at -100 and 50 at +100, the p1 is negative and the
  // p99 positive; quantiles are monotone in q.
  LogSketch mixed;
  for (int i = 0; i < 50; ++i) mixed.observe(-100.0);
  for (int i = 0; i < 50; ++i) mixed.observe(100.0);
  EXPECT_LT(mixed.quantile(0.01), 0.0);
  EXPECT_GT(mixed.quantile(0.99), 0.0);
  double prev = mixed.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double v = mixed.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LogSketch, MergeMatchesSingleStream) {
  LogSketch whole, a, b;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  for (int i = 0; i < 500; ++i) {
    const double v = dist(rng);
    whole.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.buckets(), whole.buckets());
  for (const double q : {0.05, 0.5, 0.95})
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
}

TEST(LogSketch, SaveLoadRoundTripAndTruncationThrows) {
  LogSketch s;
  for (int i = 1; i <= 64; ++i) s.observe(static_cast<double>(i) * 0.01);

  std::stringstream stream;
  s.save(stream);
  LogSketch loaded;
  loaded.load(stream);
  EXPECT_EQ(loaded.count(), s.count());
  EXPECT_EQ(loaded.buckets(), s.buckets());

  std::stringstream truncated(stream.str().substr(0, 16));
  LogSketch victim;
  EXPECT_THROW(victim.load(truncated), std::runtime_error);
}

// ---------------------------------------------------------------------------
// PSI

TEST(Psi, IdenticalDistributionsScoreZero) {
  LogSketch a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = 1.0 + 0.001 * i;
    a.observe(v);
    b.observe(v);
  }
  EXPECT_DOUBLE_EQ(population_stability_index(a, b), 0.0);
}

TEST(Psi, EmptySideMeansNoEvidenceNoAlarm) {
  LogSketch populated, empty;
  populated.observe(1.0);
  EXPECT_DOUBLE_EQ(population_stability_index(populated, empty), 0.0);
  EXPECT_DOUBLE_EQ(population_stability_index(empty, populated), 0.0);
  EXPECT_DOUBLE_EQ(population_stability_index(empty, empty), 0.0);
}

TEST(Psi, ShiftedDistributionScoresHigh) {
  LogSketch baseline, shifted, nudged;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(1.0, 2.0);
  for (int i = 0; i < 2000; ++i) {
    const double v = dist(rng);
    baseline.observe(v);
    shifted.observe(v * 1024.0);  // 10 octaves away: disjoint buckets
    nudged.observe(v * 1.01);     // same buckets, basically
  }
  EXPECT_GT(population_stability_index(baseline, shifted), 1.0);
  EXPECT_LT(population_stability_index(baseline, nudged), 0.1);
}

// ---------------------------------------------------------------------------
// FeatureBaseline block

TEST(FeatureBaseline, SaveLoadRoundTrip) {
  FeatureBaseline original;
  original.names = {"alpha", "beta"};
  original.sketches.resize(2);
  for (int i = 0; i < 100; ++i) {
    original.observe(0, 1.0 + i * 0.01);
    original.observe(1, -5.0);
  }

  std::stringstream stream;
  original.save(stream);
  FeatureBaseline loaded;
  loaded.load(stream);
  ASSERT_EQ(loaded.names, original.names);
  ASSERT_EQ(loaded.feature_count(), 2u);
  EXPECT_EQ(loaded.sketches[0].buckets(), original.sketches[0].buckets());
  EXPECT_EQ(loaded.sketches[1].count(), 100u);
}

TEST(FeatureBaseline, MalformedBlockThrows) {
  std::stringstream garbage("definitely not a baseline block");
  FeatureBaseline victim;
  EXPECT_THROW(victim.load(garbage), std::runtime_error);

  FeatureBaseline mismatch;
  mismatch.names = {"x"};
  mismatch.sketches.resize(2);
  std::stringstream unused;
  EXPECT_THROW(mismatch.save(unused), std::logic_error);
}

// ---------------------------------------------------------------------------
// Deterministic shadow sampling

TEST(QualityMonitor, SamplingIsDeterministicAcrossThreads) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 0.3;
  cfg.shadow_seed = 42;
  monitor.configure(cfg);

  std::vector<std::string> names;
  for (int i = 0; i < 512; ++i) names.push_back("net_" + std::to_string(i));

  std::vector<char> reference(names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    reference[i] = monitor.should_shadow(names[i]) ? 1 : 0;

  // A plausible fraction actually got selected.
  std::size_t selected = 0;
  for (const char d : reference) selected += d;
  EXPECT_GT(selected, names.size() / 8);
  EXPECT_LT(selected, names.size() / 2);

  // Four threads evaluating concurrently see the identical set: the decision
  // is a pure function of (seed, name), so batch splitting cannot change it.
  std::vector<std::vector<char>> per_thread(4,
                                            std::vector<char>(names.size()));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < per_thread.size(); ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < names.size(); ++i)
        per_thread[t][i] = monitor.should_shadow(names[i]) ? 1 : 0;
    });
  for (std::thread& th : threads) th.join();
  for (const auto& decisions : per_thread) EXPECT_EQ(decisions, reference);

  // Re-arming with the same (seed, rate) reproduces the set; a different
  // seed selects a different one.
  monitor.configure(cfg);
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(monitor.should_shadow(names[i]) ? 1 : 0, reference[i]);
  cfg.shadow_seed = 43;
  monitor.configure(cfg);
  std::vector<char> reseeded(names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    reseeded[i] = monitor.should_shadow(names[i]) ? 1 : 0;
  EXPECT_NE(reseeded, reference);

  disarm_quality();
  EXPECT_FALSE(monitor.should_shadow("net_0"));  // inactive samples nothing
}

TEST(QualityMonitor, RateOneShadowsEverythingRateZeroNothing) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 1.0;
  monitor.configure(cfg);
  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(monitor.should_shadow("n" + std::to_string(i)));
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), 1.0);
  disarm_quality();
  EXPECT_FALSE(monitor.active());
}

// ---------------------------------------------------------------------------
// Overhead controller

TEST(QualityMonitor, OverheadControllerBacksOffAndRecovers) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 0.5;
  cfg.overhead_budget_pct = 1.0;
  monitor.configure(cfg);
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);

  // Warm-up observations (one-time-setup costs in production) are discarded:
  // even a pathological measured cost must not move the rate before the
  // controller engages.
  for (std::uint64_t i = 0; i < QualityMonitor::kShadowCostWarmupBatches; ++i) {
    monitor.observe_shadow_cost(0.99, 1.0);
    EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);
  }

  // 10% measured overhead against a 1% budget: the rate must drop hard.
  monitor.observe_shadow_cost(0.10, 1.0);
  const double backed_off = monitor.effective_rate();
  EXPECT_LE(backed_off, 0.25);
  EXPECT_GE(backed_off, cfg.shadow_rate / 64.0);  // never below the floor

  // Sustained pressure floors out instead of collapsing to zero.
  for (int i = 0; i < 20; ++i) monitor.observe_shadow_cost(0.10, 1.0);
  EXPECT_GE(monitor.effective_rate(), cfg.shadow_rate / 64.0);

  // Cost vanishes: the EWMA decays under half budget and the rate doubles
  // its way back to the configured value.
  for (int i = 0; i < 64; ++i) monitor.observe_shadow_cost(0.0, 1.0);
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), cfg.shadow_rate);

  disarm_quality();
}

// Regression: observe_shadow_cost used to seed its EWMA with the very first
// measured batch cost. In a fresh process that first batch pays one-time
// setup (sketch/buffer first touch, cold allocator paths), so the seeded
// EWMA was wildly inflated and the controller halved the shadow rate down
// toward configured/64 before any representative traffic arrived — the same
// probe-at-first-call pattern the trace sampler's budget controller had.
// Warm-up observations must be discarded and configure() must re-arm the
// warm-up window.
TEST(QualityMonitor, FirstCostProbeDoesNotPoisonTheController) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 0.5;
  cfg.overhead_budget_pct = 1.0;
  monitor.configure(cfg);

  // A fresh server's first batch: setup-inflated 95% measured cost. The old
  // controller dropped the rate to 0.5 * (1/95) floored at /64 immediately.
  monitor.observe_shadow_cost(0.95, 1.0);
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);

  // Steady-state traffic well inside the budget: rate stays pinned through
  // and past the warm-up window.
  for (std::uint64_t i = 0; i < QualityMonitor::kShadowCostWarmupBatches + 16;
       ++i) {
    monitor.observe_shadow_cost(0.005, 1.0);
    EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);
  }

  // Reconfiguring re-arms the warm-up: the next "first batch" is again free.
  monitor.configure(cfg);
  monitor.observe_shadow_cost(0.95, 1.0);
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);

  disarm_quality();
}

TEST(QualityMonitor, ZeroBudgetPinsTheRate) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 0.5;
  cfg.overhead_budget_pct = 0.0;  // controller disabled
  monitor.configure(cfg);
  // Past warm-up and with 90% measured overhead — nobody cares, budget 0.
  for (std::uint64_t i = 0; i <= QualityMonitor::kShadowCostWarmupBatches; ++i)
    monitor.observe_shadow_cost(0.9, 1.0);
  EXPECT_DOUBLE_EQ(monitor.effective_rate(), 0.5);
  // The exported gauge must report the pinned rate even though the
  // controller never runs — configure() itself publishes it.
  const auto snapshot = MetricsRegistry::global().snapshot();
  bool found = false;
  for (const auto& gauge : snapshot.gauges)
    if (gauge.name == "gnntrans_quality_effective_shadow_rate") {
      EXPECT_NEAR(gauge.value, 0.5, 1e-9);
      found = true;
    }
  EXPECT_TRUE(found);
  disarm_quality();
}

// ---------------------------------------------------------------------------
// Synthetic drift -> PSI -> readiness

TEST(QualityDrift, ShiftedFeaturesFlipReadinessUnshiftedStaysReady) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  set_model_ready(true);

  QualityMonitor& monitor = QualityMonitor::global();
  FeatureBaseline baseline;
  baseline.names = {"probe_feature", "calm_feature"};
  baseline.sketches.resize(2);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(1.0, 2.0);
  std::vector<float> base_values;
  for (int i = 0; i < 2000; ++i) {
    const double v = dist(rng);
    baseline.observe(0, v);
    baseline.observe(1, v);
    base_values.push_back(static_cast<float>(v));
  }

  QualityConfig cfg;
  cfg.shadow_rate = 0.5;
  cfg.psi_alert = 0.25;
  cfg.min_samples = 64;
  monitor.configure(cfg);
  monitor.install_baseline(baseline);
  ASSERT_TRUE(monitor.has_baseline());

  ObsServer server;
  server.start();

  // Live traffic matching the baseline: no drift, ready.
  std::vector<float> live(base_values.begin(), base_values.begin() + 512);
  monitor.observe_features(live.data(), live.size() / 2, 2, 0);
  std::string reason;
  EXPECT_FALSE(monitor.degraded(&reason)) << reason;
  EXPECT_EQ(http_get(server.port(), "/readyz").status, 200);

  // Shift feature 0 by ten octaves while feature 1 stays put: PSI crosses
  // the alert on exactly the drifted feature and readiness degrades.
  std::vector<float> shifted = live;
  for (std::size_t i = 0; i < shifted.size(); i += 2) shifted[i] *= 1024.0f;
  monitor.observe_features(shifted.data(), shifted.size() / 2, 2, 0);
  const QualityState state = monitor.compute_state();
  EXPECT_GT(state.worst_psi, cfg.psi_alert);
  EXPECT_EQ(state.worst_feature, "probe_feature");
  ASSERT_EQ(state.features.size(), 2u);
  EXPECT_LT(state.features[1].psi, cfg.psi_alert);

  EXPECT_TRUE(monitor.degraded(&reason));
  EXPECT_NE(reason.find("probe_feature"), std::string::npos);
  const HttpResponse unready = http_get(server.port(), "/readyz");
  EXPECT_EQ(unready.status, 503);
  EXPECT_NE(unready.body.find("quality"), std::string::npos);

  // The per-feature gauge and the drift flight pin are published.
  bool saw_gauge = false;
  for (const auto& gauge : registry.snapshot().gauges)
    if (gauge.name == "gnntrans_quality_feature_psi_probe_feature" &&
        gauge.value > cfg.psi_alert)
      saw_gauge = true;
  EXPECT_TRUE(saw_gauge);
  std::ostringstream flight_json;
  FlightRecorder::global().write_json(flight_json);
  EXPECT_NE(flight_json.str().find("feature_drift"), std::string::npos);

  // /quality reports the same story as one well-formed JSON document.
  const HttpResponse quality = http_get(server.port(), "/quality");
  EXPECT_EQ(quality.status, 200);
  EXPECT_TRUE(JsonChecker(quality.body).valid()) << quality.body;
  EXPECT_NE(quality.body.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(quality.body.find("probe_feature"), std::string::npos);

  server.stop();
  disarm_quality();
  set_model_ready(false);
  registry.reset();
  FlightRecorder::global().clear();
}

TEST(QualityDrift, ResidualP99CrossingDegrades) {
  QualityMonitor& monitor = QualityMonitor::global();
  QualityConfig cfg;
  cfg.shadow_rate = 0.5;
  cfg.residual_alert_pct = 10.0;
  cfg.min_samples = 16;
  monitor.configure(cfg);

  // Model consistently 2x the analytic reference: 100% relative residual.
  for (int i = 0; i < 32; ++i)
    monitor.record_residual(i % 2 == 0, 2e-9, 1e-9, 2e-10, 1e-10);

  const QualityState state = monitor.compute_state();
  EXPECT_GT(state.delay_p99_pct, cfg.residual_alert_pct);
  EXPECT_TRUE(state.degraded);
  EXPECT_EQ(state.degraded_reason, "delay_residual_p99");

  // 100% > 2x the 10% alert: the outliers were pinned into the flight ring.
  std::ostringstream flight_json;
  FlightRecorder::global().write_json(flight_json);
  EXPECT_NE(flight_json.str().find("shadow_outlier"), std::string::npos);

  disarm_quality();
  std::string reason;
  EXPECT_FALSE(monitor.degraded(&reason));  // disarmed monitor never degrades
  FlightRecorder::global().clear();
}

// ---------------------------------------------------------------------------
// End-to-end on the serving path: a real (tiny) trained estimator.

class QualityServingE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 16;
    dcfg.seed = 2027;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 2;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    std::mt19937_64 rng(55);
    rcnet::NetGenConfig ncfg;
    while (nets_.size() < 24) {
      rcnet::RcNet net =
          rcnet::generate_net(ncfg, rng, "qe2e" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
    disarm_quality();
  }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> QualityServingE2E::library_;
std::unique_ptr<core::WireTimingEstimator> QualityServingE2E::estimator_;
std::vector<rcnet::RcNet> QualityServingE2E::nets_;
std::vector<features::NetContext> QualityServingE2E::contexts_;

TEST_F(QualityServingE2E, ShadowScoringIsBitwiseNonIntrusive) {
  const auto batch = items();
  core::BatchOptions options;
  options.threads = 2;

  disarm_quality();
  const auto plain = estimator_->estimate_batch(batch, options);

  // Shadow everything; served estimates must not move by a single bit.
  QualityConfig cfg;
  cfg.shadow_rate = 1.0;
  QualityMonitor::global().configure(cfg);
  estimator_->install_quality_baseline();
  const auto shadowed = estimator_->estimate_batch(batch, options);

  ASSERT_EQ(shadowed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(shadowed[i].size(), plain[i].size());
    for (std::size_t s = 0; s < plain[i].size(); ++s) {
      EXPECT_EQ(shadowed[i][s].sink, plain[i][s].sink);
      EXPECT_EQ(shadowed[i][s].delay, plain[i][s].delay);  // bitwise
      EXPECT_EQ(shadowed[i][s].slew, plain[i][s].slew);
      EXPECT_EQ(shadowed[i][s].provenance, plain[i][s].provenance);
    }
  }

  // The shadow pass actually ran and recorded residual + feature evidence.
  QualityMonitor& monitor = QualityMonitor::global();
  EXPECT_GT(monitor.shadowed_nets(), 0u);
  const QualityState state = monitor.compute_state();
  EXPECT_GT(state.shadowed_sinks, 0u);
  EXPECT_GE(state.delay_p99_pct, state.delay_p50_pct);
  ASSERT_FALSE(state.features.empty());
  EXPECT_EQ(state.features.size(), features::quality_feature_names().size());

  // Same seed + rate across thread counts selects the same nets: repeating
  // single-threaded shadows exactly the same count again.
  const std::uint64_t after_first = monitor.shadowed_nets();
  core::BatchOptions single;
  single.threads = 1;
  (void)estimator_->estimate_batch(batch, single);
  EXPECT_EQ(monitor.shadowed_nets(), 2 * after_first);

  EXPECT_TRUE(JsonChecker(monitor.state_json()).valid())
      << monitor.state_json();
  disarm_quality();
}

TEST_F(QualityServingE2E, CheckpointRoundTripCarriesBaselineAndV1Loads) {
  // v2 round trip: the baseline block survives with names and mass intact.
  std::ostringstream out;
  estimator_->save(out);
  const std::string bytes = out.str();

  std::istringstream v2(bytes);
  const core::WireTimingEstimator reloaded =
      core::WireTimingEstimator::load(v2);
  ASSERT_FALSE(reloaded.feature_baseline().empty());
  EXPECT_EQ(reloaded.feature_baseline().names,
            features::quality_feature_names());
  EXPECT_GT(reloaded.feature_baseline().sketches[0].count(), 0u);

  // The header is [u32 len]["GNNTRANS_ESTIMATOR"][u32 version]; patching the
  // version to 1 yields a valid pre-quality checkpoint (the trailing baseline
  // block is simply never read).
  const std::size_t version_at = 4 + std::string("GNNTRANS_ESTIMATOR").size();
  std::string v1_bytes = bytes;
  v1_bytes[version_at] = 1;
  std::istringstream v1(v1_bytes);
  const core::WireTimingEstimator legacy =
      core::WireTimingEstimator::load(v1);
  EXPECT_TRUE(legacy.feature_baseline().empty());

  // And both load paths produce the same model: identical estimates.
  const auto want = estimator_->estimate(nets_[0], contexts_[0]);
  const auto got = legacy.estimate(nets_[0], contexts_[0]);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = 0; s < want.size(); ++s)
    EXPECT_EQ(got[s].delay, want[s].delay);

  // An unknown future version fails with the typed error, not a misparse.
  std::string v9_bytes = bytes;
  v9_bytes[version_at] = 9;
  std::istringstream v9(v9_bytes);
  try {
    (void)core::WireTimingEstimator::load(v9);
    FAIL() << "expected UnsupportedCheckpointError";
  } catch (const core::UnsupportedCheckpointError& e) {
    EXPECT_EQ(e.status().code(), core::ErrorCode::kUnsupportedFormat);
    EXPECT_NE(std::string(e.what()).find("version 9"), std::string::npos);
  }
}

}  // namespace
