#include "netlist/generate.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace gnntrans::netlist {

namespace {

std::uint32_t uniform_u32(std::mt19937_64& rng, std::uint32_t lo, std::uint32_t hi) {
  std::uniform_int_distribution<std::uint32_t> dist(lo, hi);
  return dist(rng);
}

}  // namespace

Design generate_design(const DesignGenConfig& config,
                       const cell::CellLibrary& library, std::string name) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  Design design;
  design.name = std::move(name);

  const auto& comb = library.combinational();
  const auto& seq = library.sequential();

  // Level 0: launch flip-flops.
  std::vector<std::vector<InstanceId>> by_level(config.levels + 1);
  for (std::uint32_t i = 0; i < config.startpoints; ++i) {
    Instance inst;
    inst.cell_index = static_cast<std::uint32_t>(seq[i % seq.size()]);
    inst.level = 0;
    design.instances.push_back(inst);
    by_level[0].push_back(static_cast<InstanceId>(design.instances.size() - 1));
    design.startpoints.push_back(by_level[0].back());
  }

  // Combinational levels; record the chosen fanin drivers per instance.
  std::vector<std::vector<InstanceId>> fanin(design.instances.size());
  auto pick_driver = [&](std::uint32_t level) -> InstanceId {
    std::uint32_t src_level = level - 1;
    if (level > 1 && coin(rng) >= config.locality)
      src_level = uniform_u32(rng, 0, level - 1);
    const auto& pool = by_level[src_level];
    return pool[uniform_u32(rng, 0, static_cast<std::uint32_t>(pool.size() - 1))];
  };

  for (std::uint32_t level = 1; level <= config.levels; ++level) {
    const std::uint32_t width = std::max<std::uint32_t>(
        2, config.cells_per_level + uniform_u32(rng, 0, config.cells_per_level / 3) -
               config.cells_per_level / 6);
    for (std::uint32_t i = 0; i < width; ++i) {
      Instance inst;
      inst.cell_index = static_cast<std::uint32_t>(
          comb[uniform_u32(rng, 0, static_cast<std::uint32_t>(comb.size() - 1))]);
      inst.level = level;
      design.instances.push_back(inst);
      const auto id = static_cast<InstanceId>(design.instances.size() - 1);
      by_level[level].push_back(id);
      fanin.emplace_back();

      const std::uint32_t inputs =
          cell::input_count(library.at(inst.cell_index).function);
      for (std::uint32_t k = 0; k < inputs; ++k)
        fanin[id].push_back(pick_driver(level));
    }
  }

  // Invert fanin into per-driver load lists.
  std::vector<std::vector<InstanceId>> loads(design.instances.size());
  for (InstanceId v = 0; v < design.instances.size(); ++v)
    for (InstanceId u : fanin[v]) loads[u].push_back(v);

  // Capture FFs: terminate every dangling output (endpoints of timing paths).
  const std::size_t pre_capture = design.instances.size();
  for (InstanceId u = 0; u < pre_capture; ++u) {
    if (!loads[u].empty()) continue;
    Instance ff;
    ff.cell_index = static_cast<std::uint32_t>(seq[u % seq.size()]);
    ff.level = config.levels + 1;
    design.instances.push_back(ff);
    loads.emplace_back();
    const auto id = static_cast<InstanceId>(design.instances.size() - 1);
    loads[u].push_back(id);
    design.endpoints.push_back(id);
  }

  // Materialize nets with parasitics; loads align with rc.sinks by index.
  design.driven_net.assign(design.instances.size(), Design::kNoNet);
  for (InstanceId u = 0; u < design.instances.size(); ++u) {
    if (loads[u].empty()) continue;  // capture FFs drive nothing
    DesignNet net;
    net.driver = u;
    net.loads = loads[u];
    net.rc = rcnet::generate_net_for_fanout(
        config.net_config, rng, design.name + "/n" + std::to_string(u),
        static_cast<std::uint32_t>(loads[u].size()));
    design.driven_net[u] = static_cast<std::uint32_t>(design.nets.size());
    design.nets.push_back(std::move(net));
  }
  return design;
}

std::vector<bool> sequential_flags(const Design& design,
                                   const cell::CellLibrary& library) {
  std::vector<bool> flags(design.instances.size(), false);
  for (std::size_t i = 0; i < design.instances.size(); ++i)
    flags[i] = cell::is_sequential(library.at(design.instances[i].cell_index).function);
  return flags;
}

std::vector<BenchmarkSpec> paper_benchmarks(double scale) {
  // (name, training?, paper cell count, paper non-tree net fraction).
  const struct Row {
    const char* name;
    bool training;
    std::size_t paper_cells;
    double non_tree_fraction;
  } rows[] = {
      {"PCI_BRIDGE", true, 1234, 0.17},   {"DMA", true, 10215, 0.18},
      {"B19", true, 33785, 0.26},         {"SALSA", true, 52895, 0.29},
      {"RocketCore", true, 90859, 0.41},  {"VGA_LCD", true, 56194, 0.36},
      {"ECG", true, 84127, 0.37},         {"TATE", true, 184601, 0.28},
      {"JPEG", true, 219064, 0.32},       {"NETCARD", true, 316137, 0.24},
      {"LEON3MP", true, 341000, 0.24},
      {"WB_DMA", false, 40962, 0.23},     {"LDPC", false, 39377, 0.24},
      {"DES_PERT", false, 48289, 0.20},   {"AES-128", false, 113168, 0.47},
      {"TV_CORE", false, 207414, 0.28},   {"NOVA", false, 141990, 0.26},
      {"OPENGFX", false, 219064, 0.27},
  };

  std::vector<BenchmarkSpec> specs;
  std::uint64_t seed = 1000;
  for (const Row& row : rows) {
    BenchmarkSpec spec;
    spec.name = row.name;
    spec.training = row.training;
    spec.paper_cells = row.paper_cells;

    // Target instance count: paper_cells / 400 at scale 1 (min 60).
    const double target =
        std::max(60.0, static_cast<double>(row.paper_cells) / 400.0 * scale);
    DesignGenConfig& cfg = spec.config;
    cfg.levels = 5 + static_cast<std::uint32_t>(std::log2(target / 60.0 + 1.0));
    cfg.cells_per_level = std::max<std::uint32_t>(
        3, static_cast<std::uint32_t>(target * 0.82 / cfg.levels));
    cfg.startpoints = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(target * 0.12));
    cfg.net_config.non_tree_fraction = row.non_tree_fraction;
    cfg.seed = ++seed * 7919;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace gnntrans::netlist
