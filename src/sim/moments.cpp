#include "sim/moments.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace gnntrans::sim {

using rcnet::NodeId;
using rcnet::RcNet;

namespace {

/// Maps every non-source node to a compact row index; source maps to npos.
std::vector<std::size_t> reduced_index(const RcNet& net) {
  std::vector<std::size_t> index(net.node_count(), std::size_t(-1));
  std::size_t next = 0;
  for (NodeId v = 0; v < net.node_count(); ++v)
    if (v != net.source) index[v] = next++;
  return index;
}

/// Builds the reduced conductance matrix (source node grounded out).
linalg::Matrix reduced_conductance(const RcNet& net,
                                   const std::vector<std::size_t>& index) {
  const std::size_t m = net.node_count() - 1;
  linalg::Matrix g(m, m);
  for (const rcnet::Resistor& r : net.resistors) {
    const double cond = 1.0 / r.ohms;
    const std::size_t ia = index[r.a];
    const std::size_t ib = index[r.b];
    if (ia != std::size_t(-1)) g(ia, ia) += cond;
    if (ib != std::size_t(-1)) g(ib, ib) += cond;
    if (ia != std::size_t(-1) && ib != std::size_t(-1)) {
      g(ia, ib) -= cond;
      g(ib, ia) -= cond;
    }
  }
  return g;
}

/// Node capacitance including grounded coupling caps, in reduced ordering.
std::vector<double> reduced_caps(const RcNet& net,
                                 const std::vector<std::size_t>& index) {
  std::vector<double> c(net.node_count() - 1, 0.0);
  for (NodeId v = 0; v < net.node_count(); ++v)
    if (index[v] != std::size_t(-1)) c[index[v]] = net.ground_cap[v];
  for (const rcnet::CouplingCap& cc : net.couplings)
    if (index[cc.victim_node] != std::size_t(-1)) c[index[cc.victim_node]] += cc.farads;
  return c;
}

}  // namespace

Moments compute_moments(const RcNet& net) {
  const std::size_t n = net.node_count();
  assert(n >= 2);
  const std::vector<std::size_t> index = reduced_index(net);
  const linalg::Matrix g = reduced_conductance(net, index);
  const auto chol = linalg::CholeskyFactor::factor(g);
  if (!chol)
    throw std::runtime_error("compute_moments: conductance matrix not SPD (net '" +
                             net.name + "' likely disconnected)");

  const std::vector<double> caps = reduced_caps(net, index);

  // m_{k+1} = G^{-1} (C .* m_k), with m_0 = all-ones.
  std::vector<double> rhs = caps;  // C .* 1
  const std::vector<double> m1r = chol->solve(rhs);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = caps[i] * m1r[i];
  const std::vector<double> m2r = chol->solve(rhs);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = caps[i] * m2r[i];
  const std::vector<double> m3r = chol->solve(rhs);

  Moments out;
  out.m1.assign(n, 0.0);
  out.m2.assign(n, 0.0);
  out.m3.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (index[v] == std::size_t(-1)) continue;
    out.m1[v] = m1r[index[v]];
    out.m2[v] = m2r[index[v]];
    out.m3[v] = m3r[index[v]];
  }
  return out;
}

std::vector<double> elmore_tree(const RcNet& net) {
  assert(net.is_tree());
  const rcnet::Adjacency adj = rcnet::build_adjacency(net);
  const std::size_t n = net.node_count();

  // DFS order from the source (tree: each node reached once).
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> parent(n, net.source);
  std::vector<std::uint32_t> parent_res(n, 0);
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{net.source};
  seen[net.source] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (const rcnet::Neighbor& nb : adj[v]) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        parent[nb.node] = v;
        parent_res[nb.node] = nb.resistor_index;
        stack.push_back(nb.node);
      }
    }
  }

  // Pass 1 (reverse order): downstream capacitance per node.
  std::vector<double> down_cap(n, 0.0);
  for (NodeId v = 0; v < n; ++v) down_cap[v] = net.ground_cap[v];
  for (const rcnet::CouplingCap& cc : net.couplings)
    down_cap[cc.victim_node] += cc.farads;
  for (std::size_t i = order.size(); i-- > 1;) {
    const NodeId v = order[i];
    down_cap[parent[v]] += down_cap[v];
  }

  // Pass 2 (forward order): delay(v) = delay(parent) + R_edge * down_cap(v).
  std::vector<double> delay(n, 0.0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId v = order[i];
    delay[v] = delay[parent[v]] + net.resistors[parent_res[v]].ohms * down_cap[v];
  }
  return delay;
}

std::vector<double> d2m_from_moments(const Moments& moments) {
  constexpr double kLn2 = 0.693147180559945309;
  std::vector<double> d2m(moments.m1.size(), 0.0);
  for (std::size_t i = 0; i < d2m.size(); ++i) {
    const double m2 = moments.m2[i];
    d2m[i] = (m2 > 0.0) ? kLn2 * moments.m1[i] * moments.m1[i] / std::sqrt(m2) : 0.0;
  }
  return d2m;
}

}  // namespace gnntrans::sim
