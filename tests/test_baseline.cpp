// Tests for loop-breaking, the GBDT, and the DAC'20 baseline estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "baseline/dac20.hpp"
#include "baseline/gbdt.hpp"
#include "baseline/loop_breaking.hpp"
#include "features/dataset.hpp"
#include "rcnet/generate.hpp"
#include "sim/moments.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::baseline;

TEST(LoopBreaking, TreeNetsPassThroughUnchanged) {
  std::mt19937_64 rng(1);
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = 0.0;
  const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "t");
  const rcnet::RcNet broken = break_loops(net);
  EXPECT_EQ(broken.resistors.size(), net.resistors.size());
}

class LoopBreakSeeded : public ::testing::TestWithParam<int> {};

TEST_P(LoopBreakSeeded, ResultIsSpanningTree) {
  std::mt19937_64 rng(GetParam());
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = 1.0;
  const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "nt");
  const rcnet::RcNet broken = break_loops(net);
  EXPECT_TRUE(broken.is_tree());
  EXPECT_TRUE(broken.validate().empty());
  EXPECT_EQ(broken.node_count(), net.node_count());
  EXPECT_EQ(broken.sinks, net.sinks);
}

TEST_P(LoopBreakSeeded, KeepsLowResistanceEdges) {
  std::mt19937_64 rng(GetParam() + 40);
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = 1.0;
  const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "nt");
  const rcnet::RcNet broken = break_loops(net);
  // Minimum spanning tree: total kept resistance <= any spanning subset,
  // in particular <= total minus the largest dropped edge.
  EXPECT_LE(broken.total_resistance(), net.total_resistance());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopBreakSeeded, ::testing::Range(1, 9));

TEST(LoopBreaking, BreakingLoopsInflatesElmore) {
  // Dropping a parallel path can only slow the (modeled) net down — this is
  // precisely the DAC'20 induced error the paper describes.
  rcnet::RcNet net;
  net.source = 0;
  net.sinks = {3};
  net.ground_cap = {1e-15, 2e-15, 2e-15, 3e-15};
  net.resistors = {{0, 1, 10.0}, {1, 3, 10.0}, {0, 2, 15.0}, {2, 3, 80.0}};
  const rcnet::RcNet broken = break_loops(net);
  ASSERT_TRUE(broken.is_tree());
  const double exact = sim::compute_moments(net).m1[3];
  const double approx = sim::compute_moments(broken).m1[3];
  EXPECT_GT(approx, exact);
}

// ---- GBDT ----

TEST(Gbdt, FitsAxisAlignedStepFunction) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (int i = 0; i < 400; ++i) {
    const float a = dist(rng), b = dist(rng);
    x.push_back({a, b});
    y.push_back(a > 0.5f ? 10.0 : -10.0);
  }
  GbdtConfig cfg;
  // Shrinkage converges geometrically: residual ~ 0.9^trees, so 60 rounds
  // leave ~2% of the 20-unit step.
  cfg.trees = 60;
  GbdtRegressor model;
  model.fit(x, y, cfg);
  EXPECT_NEAR(model.predict(std::vector<float>{0.9f, 0.5f}), 10.0, 0.5);
  EXPECT_NEAR(model.predict(std::vector<float>{0.1f, 0.5f}), -10.0, 0.5);
}

TEST(Gbdt, FitsSmoothQuadratic) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int i = 0; i < 800; ++i) {
    const float a = dist(rng), b = dist(rng);
    x.push_back({a, b});
    y.push_back(a * a + 0.5 * b);
  }
  GbdtConfig cfg;
  cfg.trees = 150;
  cfg.max_depth = 5;
  cfg.min_samples_leaf = 4;
  GbdtRegressor model;
  model.fit(x, y, cfg);
  double sse = 0.0;
  for (int i = 0; i < 100; ++i) {
    const float a = dist(rng), b = dist(rng);
    const double pred = model.predict(std::vector<float>{a, b});
    sse += (pred - (a * a + 0.5 * b)) * (pred - (a * a + 0.5 * b));
  }
  EXPECT_LT(sse / 100.0, 0.02);
}

TEST(Gbdt, ConstantTargetYieldsConstantPrediction) {
  std::vector<std::vector<float>> x{{0.0f}, {1.0f}, {2.0f}, {3.0f},
                                    {4.0f}, {5.0f}, {6.0f}, {7.0f}};
  std::vector<double> y(8, 3.25);
  GbdtRegressor model;
  model.fit(x, y, GbdtConfig{});
  EXPECT_NEAR(model.predict(std::vector<float>{2.5f}), 3.25, 1e-9);
}

TEST(Gbdt, MoreTreesReduceTrainingError) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int i = 0; i < 300; ++i) {
    const float a = dist(rng);
    x.push_back({a});
    y.push_back(std::sin(3.0 * a));
  }
  auto train_err = [&](std::size_t trees) {
    GbdtConfig cfg;
    cfg.trees = trees;
    GbdtRegressor m;
    m.fit(x, y, cfg);
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      sse += (m.predict(x[i]) - y[i]) * (m.predict(x[i]) - y[i]);
    return sse;
  };
  EXPECT_LT(train_err(80), train_err(5));
}

TEST(Gbdt, SaveLoadRoundTrip) {
  std::vector<std::vector<float>> x{{0.f}, {1.f}, {2.f}, {3.f},
                                    {4.f}, {5.f}, {6.f}, {7.f},
                                    {8.f}, {9.f}, {10.f}, {11.f},
                                    {12.f}, {13.f}, {14.f}, {15.f}};
  std::vector<double> y;
  for (const auto& row : x) y.push_back(2.0 * row[0] - 1.0);
  GbdtRegressor a;
  GbdtConfig cfg;
  cfg.trees = 10;
  cfg.min_samples_leaf = 2;
  a.fit(x, y, cfg);
  std::stringstream buf;
  a.save(buf);
  GbdtRegressor b;
  b.load(buf);
  for (const auto& row : x)
    EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
}

TEST(Gbdt, RejectsEmptyInput) {
  GbdtRegressor m;
  EXPECT_THROW(m.fit({}, {}, GbdtConfig{}), std::invalid_argument);
}

// ---- DAC20 estimator ----

std::vector<features::WireRecord> labeled_records(std::size_t count,
                                                  std::uint64_t seed) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = count;
  cfg.seed = seed;
  cfg.sim_config.steps = 300;
  return features::generate_wire_records(cfg, lib);
}

TEST(Dac20, FeatureRowsAlignWithSinks) {
  const auto records = labeled_records(5, 31);
  for (const auto& rec : records) {
    const auto rows = dac20_features(rec.net, rec.context);
    EXPECT_EQ(rows.size(), rec.net.sinks.size());
    for (const auto& row : rows) EXPECT_EQ(row.size(), kDac20FeatureCount);
  }
}

TEST(Dac20, TrainsAndPredictsPlausibleTimings) {
  const auto records = labeled_records(80, 33);
  Dac20Estimator est;
  GbdtConfig cfg;
  cfg.trees = 60;
  est.train(records, cfg);
  EXPECT_TRUE(est.trained());

  // On the training set, predictions must correlate with labels.
  double err = 0.0, scale = 0.0;
  for (const auto& rec : records) {
    const auto pred = est.estimate(rec.net, rec.context);
    ASSERT_EQ(pred.size(), rec.delay_labels.size());
    for (std::size_t q = 0; q < pred.size(); ++q) {
      err += std::abs(pred[q].delay - rec.delay_labels[q]);
      scale += rec.delay_labels[q];
    }
  }
  EXPECT_LT(err, 0.35 * scale);  // mean relative error well under 35%
}

TEST(Dac20, PredictBeforeTrainThrows) {
  const auto records = labeled_records(2, 35);
  const Dac20Estimator est;
  EXPECT_THROW(est.estimate(records[0].net, records[0].context), std::logic_error);
}

TEST(Dac20, SaveLoadRoundTrip) {
  const auto records = labeled_records(30, 37);
  Dac20Estimator a;
  GbdtConfig cfg;
  cfg.trees = 20;
  a.train(records, cfg);
  std::stringstream buf;
  a.save(buf);
  Dac20Estimator b;
  b.load(buf);
  const auto pa = a.estimate(records[0].net, records[0].context);
  const auto pb = b.estimate(records[0].net, records[0].context);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t q = 0; q < pa.size(); ++q) {
    EXPECT_DOUBLE_EQ(pa[q].delay, pb[q].delay);
    EXPECT_DOUBLE_EQ(pa[q].slew, pb[q].slew);
  }
}

}  // namespace
