file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_cli.dir/gnntrans_cli.cpp.o"
  "CMakeFiles/gnntrans_cli.dir/gnntrans_cli.cpp.o.d"
  "gnntrans_cli"
  "gnntrans_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
