file(REMOVE_RECURSE
  "libgnntrans_netlist.a"
)
