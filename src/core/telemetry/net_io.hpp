/// \file net_io.hpp
/// Shared raw-POSIX socket plumbing for the observability scrape server and
/// the network serving front-end (src/serve).
///
/// Both servers speak over plain AF_INET stream sockets with the same three
/// needs: a listener that survives back-to-back process restarts (EADDRINUSE
/// retry with backoff, port 0 = ephemeral), a bounded-time send that *reports*
/// failure instead of silently dropping the tail of a response, and a
/// bounded-time receive. Failures on the send path are counted in one shared
/// counter, gnntrans_obs_send_failures_total, so a dashboards-visible signal
/// exists whether the drop happened on a /metrics scrape or a timing
/// response frame.
///
/// Everything here is layering-clean for gnntrans_telemetry: no dependency on
/// core (fault injection is consulted by the serve layer at its own call
/// sites, never inside these primitives).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gnntrans::telemetry {

/// Outcome of a bounded-time socket receive.
enum class IoResult : std::uint8_t {
  kOk = 0,       ///< at least one byte transferred
  kEof = 1,      ///< orderly peer shutdown (recv returned 0)
  kTimeout = 2,  ///< deadline elapsed before any byte moved
  kError = 3,    ///< socket error (errno-level failure)
};

[[nodiscard]] constexpr const char* to_string(IoResult r) noexcept {
  switch (r) {
    case IoResult::kOk: return "ok";
    case IoResult::kEof: return "eof";
    case IoResult::kTimeout: return "timeout";
    case IoResult::kError: return "error";
  }
  return "unknown";
}

/// Sends all of \p data on \p fd, polling for writability up to
/// \p timeout_ms per wait (-1 = block indefinitely). MSG_NOSIGNAL, EINTR
/// retried. On any failure (peer gone, timeout, error) the shared
/// gnntrans_obs_send_failures_total counter is incremented and false is
/// returned — the caller decides whether that means "scrape client went away,
/// fine" (log + move on) or "response dropped, close the connection".
bool send_all(int fd, std::string_view data, int timeout_ms = -1) noexcept;

/// Receives up to \p cap bytes into \p buf, waiting at most \p timeout_ms
/// (-1 = forever) for readability. \p got receives the byte count on kOk.
[[nodiscard]] IoResult recv_some(int fd, char* buf, std::size_t cap,
                                 int timeout_ms, std::size_t* got) noexcept;

/// Creates, binds, and listens an AF_INET stream socket on \p addr:\p port.
///
/// port 0 binds an ephemeral port; the actual port is written to
/// \p bound_port. SO_REUSEADDR is always set, and a bind that still fails
/// with EADDRINUSE (a previous process's socket lingering in TIME_WAIT with
/// an active wildcard conflict, the classic back-to-back-ctest flake) is
/// retried \p attempts times with exponential backoff starting at
/// \p backoff_initial_ms.
///
/// Returns the listening fd, or -1 with a human-readable reason in \p error.
[[nodiscard]] int bind_listener(const std::string& addr, std::uint16_t port,
                                int backlog, std::uint16_t* bound_port,
                                std::string* error, int attempts = 5,
                                int backoff_initial_ms = 50);

/// The shared send-failure tally (also reachable by name from the registry).
/// Exposed so tests can read the counter without re-registering it.
[[nodiscard]] std::uint64_t send_failures_total() noexcept;

}  // namespace gnntrans::telemetry
