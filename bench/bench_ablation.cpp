// Ablation study over GNNTrans design choices (DESIGN.md experiment index).
// Each row removes one architectural ingredient and reruns the Table III
// protocol on a reduced benchmark set:
//   - edge weights      : Eq. (1) resistance-weighted aggregation -> mean agg
//   - global attention  : Eq. (2-3) all-pairs attention -> neighbor-masked
//   - path features     : Eq. (4) concat h_q -> mean pooling only
//   - cascaded delay    : Eq. (6) delay head conditioned on slew -> independent head
#include <cstdio>

#include "support.hpp"

using namespace gnntrans;
using bench::TablePrinter;

int main() {
  bench::Scale scale = bench::Scale::from_env();
  const auto lib = cell::CellLibrary::make_default();

  std::printf("=== GNNTrans ablations (Table III protocol, reduced set) ===\n\n");

  const auto datasets = bench::build_wire_datasets(scale, lib);
  const auto train_pool = bench::pool_training_records(datasets);
  std::vector<features::WireRecord> test_all, test_non_tree;
  for (const bench::BenchmarkData& data : datasets) {
    if (data.spec.training) continue;
    test_all.insert(test_all.end(), data.records.begin(), data.records.end());
  }
  test_non_tree = bench::non_tree_only(test_all);
  std::printf("train nets: %zu, test nets: %zu (non-tree: %zu)\n\n",
              train_pool.size(), test_all.size(), test_non_tree.size());

  struct Variant {
    const char* name;
    nn::ModelConfig flags;  // only the ablation switches are read
  };
  nn::ModelConfig full;
  nn::ModelConfig no_edge = full;
  no_edge.use_edge_weights = false;
  nn::ModelConfig no_global = full;
  no_global.global_attention = false;
  nn::ModelConfig no_path = full;
  no_path.use_path_features = false;
  nn::ModelConfig no_cascade = full;
  no_cascade.cascade_delay_head = false;

  const Variant variants[] = {
      {"GNNTrans (full)", full},
      {"- edge weights (mean agg)", no_edge},
      {"- global attention (masked)", no_global},
      {"- path features (mean pool)", no_path},
      {"- cascaded delay head", no_cascade},
  };

  TablePrinter table({"Variant", "All slew/delay", "Non-tree slew/delay"},
                     {30, 18, 20});
  table.print_header();
  for (const Variant& v : variants) {
    const auto est = bench::train_gnntrans(scale, train_pool, scale.gnn_layers,
                                           scale.transformer_layers, v.flags);
    const core::Evaluation all = est.evaluate(test_all);
    const core::Evaluation non_tree = est.evaluate(test_non_tree);
    table.print_row({v.name,
                     TablePrinter::fmt_pair(all.slew_r2, all.delay_r2),
                     TablePrinter::fmt_pair(non_tree.slew_r2, non_tree.delay_r2)});
  }

  std::printf(
      "\nExpected shape: the full model is best or tied; removing path "
      "features hurts most\n(the paper's central claim), and mean aggregation "
      "hurts non-tree nets in particular.\n");
  return 0;
}
