/// \file rcnet.hpp
/// RC net representation: the graph the paper calls G = (V, E, P).
///
/// Nodes are grounded parasitic capacitances, edges are parasitic resistances
/// (paper Sec. II-B). The driver output is the *source* node; load pins are
/// *sink* nodes. Non-tree nets carry extra resistors forming loops. Coupling
/// capacitances to aggressor nets provide the "SI mode" noise the golden timer
/// injects.
///
/// All values are SI units: ohms, farads, seconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnntrans::rcnet {

using NodeId = std::uint32_t;

/// A parasitic resistance between two internal net nodes.
struct Resistor {
  NodeId a = 0;
  NodeId b = 0;
  double ohms = 0.0;
};

/// A coupling capacitance from a victim node to an external aggressor net.
///
/// The aggressor is not modeled structurally; its waveform is synthesized at
/// simulation time from \c aggressor_seed (arrival offset, slew, direction).
struct CouplingCap {
  NodeId victim_node = 0;
  double farads = 0.0;
  std::uint64_t aggressor_seed = 0;
};

/// An RC net. Node \c i has grounded capacitance \c ground_cap[i].
///
/// Invariants (checked by validate()): source < node_count(), every sink index
/// is a valid node distinct from the source, every resistor joins two distinct
/// valid nodes with positive resistance, all ground caps are positive, and the
/// resistive graph is connected.
struct RcNet {
  std::string name;
  NodeId source = 0;
  std::vector<NodeId> sinks;
  std::vector<double> ground_cap;
  std::vector<Resistor> resistors;
  std::vector<CouplingCap> couplings;

  [[nodiscard]] std::size_t node_count() const noexcept { return ground_cap.size(); }

  /// True iff the resistive graph is a spanning tree (n-1 edges + connected).
  [[nodiscard]] bool is_tree() const;

  /// Sum of all grounded capacitance, excluding coupling caps.
  [[nodiscard]] double total_ground_cap() const noexcept;

  /// Sum of coupling capacitance.
  [[nodiscard]] double total_coupling_cap() const noexcept;

  /// Sum of all resistance values.
  [[nodiscard]] double total_resistance() const noexcept;

  /// Human-readable structural validation; empty vector means the net is valid.
  ///
  /// When \p content_hash is non-null, a canonical FNV-1a/splitmix hash of the
  /// net's *content* — topology (node count, source, sinks, resistor
  /// endpoints, coupling victims/seeds) and element values (resistances,
  /// ground caps, coupling caps, hashed by raw double bit pattern) — is
  /// folded in during the same scans validation already performs, so hashing
  /// adds no extra pass. The name is deliberately excluded: two nets with
  /// identical parasitics hash identically (content addressing), and any
  /// element edit changes the hash. The hash is written even when validation
  /// fails (it is meaningless then; callers gate on the error list).
  [[nodiscard]] std::vector<std::string> validate(
      std::uint64_t* content_hash = nullptr) const;
};

/// Neighbor entry in an adjacency list: the node at the far end of a resistor.
struct Neighbor {
  NodeId node = 0;
  std::uint32_t resistor_index = 0;
};

/// Adjacency list over the resistive graph; index by NodeId.
using Adjacency = std::vector<std::vector<Neighbor>>;

/// Builds the resistor adjacency list of \p net.
[[nodiscard]] Adjacency build_adjacency(const RcNet& net);

/// True iff the resistive graph of \p net is connected (single component
/// containing every node). An empty net is considered connected.
[[nodiscard]] bool is_connected(const RcNet& net);

}  // namespace gnntrans::rcnet
