# Empty dependencies file for gnntrans_features.
# This may be replaced when dependencies are built.
