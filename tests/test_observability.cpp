// Tests for the live observability layer: the HTTP scrape server (endpoint
// routing, readiness, error statuses, concurrent scrape during serving), the
// per-net flight recorder (seqlock round trip, wrap + pinning, signal-safe
// fd dump), adaptive span sampling (effective-rate control, overhead
// convergence), Prometheus export hardening against hostile metric names,
// and the periodic stats reporter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "rcnet/generate.hpp"

using namespace gnntrans;
using namespace gnntrans::telemetry;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (same shape as test_telemetry's: a
// full RFC 8259 parse with no values built).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Hand-rolled HTTP/1.1 client: one request, read to EOF (the server always
// closes), return the raw response.

struct HttpResponse {
  int status = 0;
  std::string body;
  std::string raw;
};

HttpResponse http_request(std::uint16_t port, const std::string& request_text) {
  HttpResponse resp;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return resp;
  }
  std::size_t off = 0;
  while (off < request_text.size()) {
    const ssize_t n = ::send(fd, request_text.data() + off,
                             request_text.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (resp.raw.size() > 12 && resp.raw.rfind("HTTP/1.1 ", 0) == 0)
    resp.status = std::atoi(resp.raw.c_str() + 9);
  if (const std::size_t split = resp.raw.find("\r\n\r\n");
      split != std::string::npos)
    resp.body = resp.raw.substr(split + 4);
  return resp;
}

HttpResponse http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET " + target +
                                " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/// Value of an unlabeled sample line `name value` in Prometheus text.
std::optional<std::uint64_t> find_counter(const std::string& text,
                                          const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(name + " ", 0) == 0)
      return std::stoull(line.substr(name.size() + 1));
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Prometheus export hardening

TEST(PrometheusHardening, SanitizeMetricName) {
  EXPECT_EQ(sanitize_metric_name("good_name:total"), "good_name:total");
  EXPECT_EQ(sanitize_metric_name("has space"), "has_space");
  EXPECT_EQ(sanitize_metric_name("9leading_digit"), "_9leading_digit");
  EXPECT_EQ(sanitize_metric_name("bad\nname\"x"), "bad_name_x");
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name("\xc3\xa9"), "__");  // UTF-8 bytes
}

TEST(PrometheusHardening, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(PrometheusHardening, EscapeHelpText) {
  EXPECT_EQ(escape_help_text("two words"), "two words");
  EXPECT_EQ(escape_help_text("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(escape_help_text("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_help_text("\"quotes stay\""), "\"quotes stay\"");
}

TEST(PrometheusHardening, HostileNameSurvivesExport) {
  auto& registry = MetricsRegistry::global();
  const Counter hostile = registry.counter(
      "9bad name{evil=\"x\"}\n", "help with\nnewline and back\\slash");
  hostile.inc(3);

  const std::string text = registry.prometheus_text();
  // A raw newline in the help would split the HELP comment, leaving a line
  // that starts mid-sentence; escaping must keep it one line.
  std::istringstream in(text);
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    if (line.rfind("_9bad_name", 0) == 0) found = true;
    EXPECT_NE(line.rfind("newline and", 0), 0u)
        << "unescaped HELP newline split a line: " << line;
  }
  EXPECT_TRUE(found) << text;
  EXPECT_NE(text.find("help with\\nnewline and back\\\\slash"),
            std::string::npos);

  // The JSON export must stay parseable despite the hostile name.
  EXPECT_TRUE(JsonChecker(registry.json_text()).valid());
}

// ---------------------------------------------------------------------------
// Flight recorder

FlightRecord make_record(const std::string& net, bool slow, bool degraded) {
  FlightRecord rec;
  rec.set_net(net);
  rec.set_outcome(degraded ? "baseline_fallback" : "model");
  if (degraded) rec.set_error("invalid_net");
  rec.featurize_us = 1.5f;
  rec.forward_us = 20.0f;
  rec.total_us = 21.5f;
  rec.slow = slow ? 1 : 0;
  rec.degraded = degraded ? 1 : 0;
  return rec;
}

TEST(FlightRecorder, SlotRoundTrip) {
  detail::FlightSlot slot;
  FlightRecord out;
  EXPECT_FALSE(detail::read_slot(slot, &out));  // empty slot

  FlightRecord in = make_record("slot_net", true, false);
  in.seq = 42;
  in.thread_id = 7;
  detail::write_slot(slot, in);
  ASSERT_TRUE(detail::read_slot(slot, &out));
  EXPECT_STREQ(out.net, "slot_net");
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.thread_id, 7u);
  EXPECT_EQ(out.slow, 1);
  EXPECT_FLOAT_EQ(out.forward_us, 20.0f);
}

TEST(FlightRecorder, RecordRoundTripJson) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.record(make_record("round_trip_net", false, false));

  std::ostringstream out;
  flight.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("round_trip_net"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"model\""), std::string::npos);
}

TEST(FlightRecorder, PinnedSurvivesWrap) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.set_ring_capacity(16);

  // A fresh thread gets a fresh 16-slot ring: one slow net early, then
  // enough healthy traffic to wrap the main ring several times over.
  std::thread writer([&flight] {
    flight.record(make_record("the_slow_one", true, false));
    for (int i = 0; i < 64; ++i)
      flight.record(make_record("healthy" + std::to_string(i), false, false));
  });
  writer.join();

  std::ostringstream out;
  flight.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  // The slow record was overwritten in the main ring but pinned.
  const std::size_t pinned_at = json.find("\"pinned\":[");
  ASSERT_NE(pinned_at, std::string::npos);
  EXPECT_NE(json.find("the_slow_one", pinned_at), std::string::npos) << json;
  EXPECT_GE(flight.recorded_total(), 65u);
  EXPECT_GT(flight.dropped_total(), 0u);  // 65 appends into 16 slots

  flight.set_ring_capacity(256);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.set_enabled(false);
  const std::uint64_t before = flight.recorded_total();
  flight.record(make_record("ignored", false, false));
  EXPECT_EQ(flight.recorded_total(), before);
  flight.set_enabled(true);
}

TEST(FlightRecorder, WriteJsonFdIsWellFormed) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.record(make_record("fd_dump_net", false, true));

  char path[] = "/tmp/gnntrans_flight_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  flight.write_json_fd(fd);
  ::close(fd);

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  ::unlink(path);
  const std::string json = content.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("fd_dump_net"), std::string::npos);
  EXPECT_NE(json.find("invalid_net"), std::string::npos);
}

TEST(FlightRecorder, JsonFilterByNetAndNewestN) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.record(make_record("filter_a", false, false));
  flight.record(make_record("filter_b", false, false));
  flight.record(make_record("filter_a", false, false));

  // Net filter: only matching records survive, and the JSON stays valid.
  std::ostringstream by_net;
  flight.write_json(by_net, {0, "filter_b"});
  EXPECT_TRUE(JsonChecker(by_net.str()).valid()) << by_net.str();
  EXPECT_NE(by_net.str().find("filter_b"), std::string::npos);
  EXPECT_EQ(by_net.str().find("filter_a"), std::string::npos);

  // Count limit keeps the newest records; composed with the net filter it
  // keeps the newest match.
  std::ostringstream newest;
  flight.write_json(newest, {1, "filter_a"});
  EXPECT_TRUE(JsonChecker(newest.str()).valid());
  std::size_t matches = 0;
  for (std::size_t at = newest.str().find("\"net\":\"filter_a\"");
       at != std::string::npos;
       at = newest.str().find("\"net\":\"filter_a\"", at + 1))
    ++matches;
  EXPECT_EQ(matches, 1u) << newest.str();

  // An unfiltered write still sees everything.
  std::ostringstream all;
  flight.write_json(all);
  EXPECT_NE(all.str().find("filter_a"), std::string::npos);
  EXPECT_NE(all.str().find("filter_b"), std::string::npos);
  flight.clear();
}

// ---------------------------------------------------------------------------
// Adaptive span sampling

TEST(AdaptiveSampling, ShouldSampleHonorsEffectiveEvery) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.configure({4, 100.0});
  recorder.enable();

  // Fresh thread: the per-thread countdown starts at 0, so exactly every
  // 4th call (starting with the first) samples.
  std::size_t sampled = 0;
  std::thread t([&] {
    for (int i = 0; i < 400; ++i)
      if (recorder.should_sample()) ++sampled;
  });
  t.join();
  EXPECT_EQ(sampled, 100u);

  recorder.disable();
  EXPECT_FALSE(recorder.should_sample());
  recorder.configure({1, 2.0});
}

TEST(AdaptiveSampling, AdaptRaisesAndLowersEffectiveRate) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.configure({1, 2.0});
  recorder.enable();

  // Feed the recorder real spans from a fresh thread until the self-timing
  // probe (every 64th record, starting with the first) has measured a cost.
  std::thread t([&] {
    for (int i = 0; i < 1024 && recorder.measured_span_cost_ns() <= 0.0; ++i)
      recorder.record("probe", "test", 0, 100);
  });
  t.join();
  ASSERT_GT(recorder.measured_span_cost_ns(), 0.0);

  // Crushing span load on a tiny time budget: the controller must back off.
  recorder.adapt(/*spans_per_unit=*/1e6, /*unit_seconds=*/1e-3);
  const std::size_t high = recorder.effective_sample_every();
  EXPECT_GT(high, 1u);

  // The published gauge matches 1/N.
  const Gauge rate = MetricsRegistry::global().gauge(
      "gnntrans_trace_effective_sample_rate");
  EXPECT_DOUBLE_EQ(rate.value(), 1.0 / static_cast<double>(high));

  // Trivial load on a huge budget: back to the configured floor.
  recorder.adapt(/*spans_per_unit=*/1.0, /*unit_seconds=*/1e6);
  EXPECT_EQ(recorder.effective_sample_every(), 1u);

  recorder.disable();
  recorder.clear();
}

TEST(AdaptiveSampling, ZeroBudgetMeansMinimalRecording) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.configure({1, 0.0});
  recorder.enable();
  std::thread t([&] {
    for (int i = 0; i < 64 && recorder.measured_span_cost_ns() <= 0.0; ++i)
      recorder.record("probe", "test", 0, 100);
  });
  t.join();
  recorder.adapt(100.0, 1.0);
  EXPECT_GT(recorder.effective_sample_every(), 1000u);
  recorder.disable();
  recorder.configure({1, 2.0});
  recorder.clear();
}

TEST(AdaptiveSampling, ConfigRoundTrip) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.configure({8, 5.0});
  EXPECT_EQ(recorder.config().sample_every, 8u);
  EXPECT_DOUBLE_EQ(recorder.config().overhead_budget_pct, 5.0);
  EXPECT_EQ(recorder.effective_sample_every(), 8u);  // reset to the floor
  recorder.configure({1, 2.0});
}

// ---------------------------------------------------------------------------
// Stats reporter

class CaptureSink final : public LogSink {
 public:
  void write(const LogRecord& record) override {
    lines.emplace_back(std::string(record.component) + ": " +
                       std::string(record.message));
  }
  std::vector<std::string> lines;
};

TEST(StatsReporter, TickLogsServingDeltas) {
  auto& registry = MetricsRegistry::global();
  const Counter nets = registry.counter("gnntrans_serving_nets_total");
  const Histogram latency = registry.histogram(
      "gnntrans_serving_net_latency_seconds",
      HistogramData::default_latency_bounds());

  auto sink = std::make_shared<CaptureSink>();
  Logger::global().add_sink(sink);

  StatsReporter reporter({60.0});
  reporter.tick();  // establishes the baseline
  nets.inc(50);
  for (int i = 0; i < 50; ++i) latency.observe(10e-6);
  reporter.tick();
  EXPECT_EQ(reporter.reports_emitted(), 2u);

  bool found = false;
  for (const std::string& line : sink->lines)
    if (line.find("obs:") == 0 && line.find("50 nets") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);

  // Restore the default sink set (clear_sinks drops the stderr sink too).
  Logger::global().clear_sinks();
  Logger::global().add_sink(std::make_shared<StderrSink>());
}

TEST(StatsReporter, StartStopIsIdempotent) {
  StatsReporter reporter({0.05});
  reporter.start();
  reporter.start();
  reporter.stop();
  reporter.stop();  // second stop is a no-op; destructor stops again
}

// ---------------------------------------------------------------------------
// Obs server: routing, statuses, readiness

TEST(ObsServer, HealthzAndBuildinfo) {
  ObsServer server;  // port 0 = ephemeral
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const HttpResponse health = http_get(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse info = http_get(server.port(), "/buildinfo");
  EXPECT_EQ(info.status, 200);
  EXPECT_TRUE(JsonChecker(info.body).valid()) << info.body;
  EXPECT_NE(info.body.find("\"pid\":"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsServer, ErrorStatuses) {
  ObsServerConfig cfg;
  cfg.max_request_bytes = 128;
  ObsServer server(cfg);
  server.start();

  EXPECT_EQ(http_get(server.port(), "/nope").status, 404);
  EXPECT_EQ(http_request(server.port(),
                         "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .status,
            405);
  EXPECT_EQ(http_request(server.port(), "GET\r\n\r\n").status, 400);

  // Oversized head with no terminator: 413 before any timeout.
  const std::string big =
      "GET /metrics HTTP/1.1\r\n" + std::string(512, 'x');
  EXPECT_EQ(http_request(server.port(), big).status, 413);

  // Query strings are accepted and ignored.
  EXPECT_EQ(http_get(server.port(), "/healthz?verbose=1").status, 200);
}

TEST(ObsServer, ReadyzFollowsModelAndFailureRate) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  set_model_ready(false);

  ObsServer server;
  server.start();

  const HttpResponse unready = http_get(server.port(), "/readyz");
  EXPECT_EQ(unready.status, 503);
  EXPECT_NE(unready.body.find("no model"), std::string::npos);

  set_model_ready(true);
  registry.counter("gnntrans_serving_nets_total").inc(10);
  EXPECT_EQ(http_get(server.port(), "/readyz").status, 200);

  // 9 of 10 nets failed: over the default 0.5 threshold.
  registry.counter("gnntrans_serving_failed_total").inc(9);
  const HttpResponse failing = http_get(server.port(), "/readyz");
  EXPECT_EQ(failing.status, 503);
  EXPECT_NE(failing.body.find("failure rate"), std::string::npos);

  server.stop();
  registry.reset();
  set_model_ready(false);
}

TEST(ObsServer, MetricsEndpointsRoundTrip) {
  auto& registry = MetricsRegistry::global();
  const Counter probe =
      registry.counter("gnntrans_obs_scrape_probe_total", "scrape round trip");
  probe.inc(7);

  ObsServer server;
  server.start();

  const HttpResponse prom = http_get(server.port(), "/metrics");
  EXPECT_EQ(prom.status, 200);
  const auto value = find_counter(prom.body, "gnntrans_obs_scrape_probe_total");
  ASSERT_TRUE(value.has_value()) << prom.body;
  EXPECT_EQ(*value, 7u);

  const HttpResponse json = http_get(server.port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_TRUE(JsonChecker(json.body).valid());

  const HttpResponse flight = http_get(server.port(), "/flight");
  EXPECT_EQ(flight.status, 200);
  EXPECT_TRUE(JsonChecker(flight.body).valid()) << flight.body;

  server.stop();
}

TEST(ObsServer, FlightEndpointHonorsCountAndNetFilters) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.clear();
  flight.record(make_record("http_filter_a", false, false));
  flight.record(make_record("http_filter_b", false, false));

  ObsServer server;
  server.start();

  const HttpResponse by_net =
      http_get(server.port(), "/flight?net=http_filter_b");
  EXPECT_EQ(by_net.status, 200);
  EXPECT_TRUE(JsonChecker(by_net.body).valid()) << by_net.body;
  EXPECT_NE(by_net.body.find("http_filter_b"), std::string::npos);
  EXPECT_EQ(by_net.body.find("http_filter_a"), std::string::npos);

  const HttpResponse limited =
      http_get(server.port(), "/flight?n=1&net=http_filter_a");
  EXPECT_EQ(limited.status, 200);
  EXPECT_TRUE(JsonChecker(limited.body).valid());
  EXPECT_NE(limited.body.find("http_filter_a"), std::string::npos);

  server.stop();
  flight.clear();
}

TEST(ObsServer, TracezListsRetainedTracesSlowestFirst) {
  RequestTraceStore& store = RequestTraceStore::global();
  store.clear();
  const auto make = [](std::uint64_t id, double wall, const char* net) {
    RequestTrace t;
    t.trace_id = id;
    t.request_id = id * 10;
    t.batch_size = 4;
    t.wall_seconds = wall;
    t.queue_seconds = wall / 2;
    t.model_seconds = wall / 2;
    t.set_net(net);
    t.set_provenance("model");
    return t;
  };
  store.record(make(0xAA, 0.004, "tz_fast"));
  store.record(make(0xBB, 0.040, "tz_slow"));
  store.record(make(0xCC, 0.010, "tz_mid"));

  ObsServer server;
  server.start();

  const HttpResponse all = http_get(server.port(), "/tracez");
  EXPECT_EQ(all.status, 200);
  EXPECT_TRUE(JsonChecker(all.body).valid()) << all.body;
  EXPECT_NE(all.body.find("\"retained\":3"), std::string::npos);
  EXPECT_NE(all.body.find("tz_slow"), std::string::npos);
  EXPECT_NE(all.body.find("tz_fast"), std::string::npos);
  // trace_ids render as the same 0x%016llx handles the exemplars carry.
  EXPECT_NE(all.body.find("\"trace_id\":\"0x00000000000000bb\""),
            std::string::npos);
  // Slowest first: the 40 ms trace leads the 10 ms one.
  EXPECT_LT(all.body.find("tz_slow"), all.body.find("tz_mid"));

  // ?n=1 keeps only the slowest.
  const HttpResponse top = http_get(server.port(), "/tracez?n=1");
  EXPECT_EQ(top.status, 200);
  EXPECT_TRUE(JsonChecker(top.body).valid());
  EXPECT_NE(top.body.find("tz_slow"), std::string::npos);
  EXPECT_EQ(top.body.find("tz_fast"), std::string::npos);
  EXPECT_EQ(top.body.find("tz_mid"), std::string::npos);

  server.stop();
  store.clear();
}

// ---------------------------------------------------------------------------
// End-to-end: scrape while estimate_batch serves on other threads. This is
// the TSan target: seqlock flight records, sharded metric increments, and
// snapshot reads all race by design and must be clean.

class ObsServingE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 24;
    dcfg.seed = 2026;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 4;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    std::mt19937_64 rng(99);
    rcnet::NetGenConfig ncfg;
    while (nets_.size() < 40) {
      rcnet::RcNet net =
          rcnet::generate_net(ncfg, rng, "eval" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
  }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> ObsServingE2E::library_;
std::unique_ptr<core::WireTimingEstimator> ObsServingE2E::estimator_;
std::vector<rcnet::RcNet> ObsServingE2E::nets_;
std::vector<features::NetContext> ObsServingE2E::contexts_;

TEST_F(ObsServingE2E, ConcurrentScrapeWhileServing) {
  auto& registry = MetricsRegistry::global();
  const std::uint64_t nets_before =
      registry.counter("gnntrans_serving_nets_total").value();

  ObsServer server;
  server.start();
  set_model_ready(true);

  constexpr std::size_t kPasses = 6;
  const auto batch = items();
  std::atomic<bool> serving_done{false};
  std::thread worker([&] {
    core::BatchOptions options;
    options.threads = 2;
    for (std::size_t p = 0; p < kPasses; ++p)
      (void)estimator_->estimate_batch(batch, options);
    serving_done.store(true, std::memory_order_release);
  });

  // Hammer every endpoint while the worker serves; every response must be
  // complete and well-formed mid-traffic.
  std::size_t scrapes = 0;
  while (!serving_done.load(std::memory_order_acquire)) {
    const HttpResponse prom = http_get(server.port(), "/metrics");
    ASSERT_EQ(prom.status, 200);
    const HttpResponse flight = http_get(server.port(), "/flight");
    ASSERT_EQ(flight.status, 200);
    EXPECT_TRUE(JsonChecker(flight.body).valid());
    EXPECT_EQ(http_get(server.port(), "/readyz").status, 200);
    ++scrapes;
  }
  worker.join();
  EXPECT_GE(scrapes, 1u);

  // The post-quiescence scrape reads back exactly what serving published.
  const HttpResponse after = http_get(server.port(), "/metrics");
  const auto nets_now = find_counter(after.body, "gnntrans_serving_nets_total");
  ASSERT_TRUE(nets_now.has_value());
  EXPECT_EQ(*nets_now - nets_before, kPasses * batch.size());

  // Serving fed the flight recorder; the latest eval nets are visible.
  const HttpResponse flight = http_get(server.port(), "/flight");
  EXPECT_NE(flight.body.find("eval"), std::string::npos);

  server.stop();
  set_model_ready(false);
}

}  // namespace
