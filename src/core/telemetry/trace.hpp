/// \file trace.hpp
/// Scoped profiling spans flushed as Chrome trace_event JSON.
///
/// Usage: place a TraceSpan at the top of any scope worth seeing on a
/// timeline —
///
///   telemetry::TraceSpan span("estimate_batch", "serving");
///
/// When the global TraceRecorder is disabled (the default) a span costs one
/// relaxed atomic load at construction and nothing at destruction, so
/// instrumentation can stay in hot paths permanently. When enabled, each
/// completed span is appended to a per-thread ring buffer (bounded memory;
/// the oldest events are overwritten and counted as dropped). Rings are
/// touched by their owner thread only, except during write_chrome_json /
/// clear, which take the per-ring mutex.
///
/// The output is the Chrome trace_event "X" (complete event) format: load it
/// in chrome://tracing or https://ui.perfetto.dev to see the serving/STA
/// pipeline as a flame chart per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>

namespace gnntrans::telemetry {

/// One completed span. Name/category are copied into fixed buffers at record
/// time so callers may pass transient strings (e.g. "sta_level_7").
struct TraceEvent {
  char name[48] = {0};
  char category[16] = {0};
  std::int64_t begin_ns = 0;  ///< steady-clock ns since recorder epoch
  std::int64_t end_ns = 0;
  std::uint32_t thread_id = 0;
};

/// Sampling policy. sample_every is the floor (1 = record every span);
/// overhead_budget_pct caps how much of the instrumented workload's wall time
/// span recording may consume — adapt() raises the effective 1-in-N above
/// sample_every until the measured cost fits the budget.
struct TraceConfig {
  std::size_t sample_every = 1;
  double overhead_budget_pct = 2.0;
};

/// Process-global span collector.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  [[nodiscard]] static TraceRecorder& global();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic timestamp in ns relative to the recorder's construction.
  [[nodiscard]] std::int64_t now_ns() const noexcept;

  /// Appends one completed span for the calling thread (no-op if disabled).
  void record(std::string_view name, std::string_view category,
              std::int64_t begin_ns, std::int64_t end_ns) noexcept;

  /// Sets the sampling floor and overhead budget. Resets the effective rate
  /// back to config.sample_every; adapt() moves it from there.
  void configure(TraceConfig config) noexcept;
  [[nodiscard]] TraceConfig config() const noexcept;

  /// One relaxed load + a thread-local countdown: true on every Nth call per
  /// thread, where N is the current effective sample-every. Always false when
  /// the recorder is disabled. TraceSpan consults this at construction.
  [[nodiscard]] bool should_sample() noexcept;

  /// Effective 1-in-N currently applied by should_sample(). Starts at
  /// config().sample_every; adapt() raises it when the measured span-record
  /// cost would blow the overhead budget (and lowers it back when it fits).
  [[nodiscard]] std::size_t effective_sample_every() const noexcept {
    return effective_every_.load(std::memory_order_relaxed);
  }

  /// EWMA cost of one record() call in ns, self-measured on every 64th
  /// record. 0 until something has been measured.
  [[nodiscard]] double measured_span_cost_ns() const noexcept {
    return span_cost_ns_.load(std::memory_order_relaxed);
  }

  /// Overhead controller: given the workload's offered span load — how many
  /// spans one "unit" of work would record unsampled, and that unit's wall
  /// time in seconds — recompute the effective 1-in-N so
  ///   spans_per_unit * span_cost / N  <=  budget% of unit_seconds,
  /// never dropping below config().sample_every. Publishes the result as the
  /// gnntrans_trace_effective_sample_rate / _span_cost_ns gauges. Cheap and
  /// thread-safe; callers invoke it once per batch, not per span. No-op until
  /// a span cost has been measured.
  void adapt(double spans_per_unit, double unit_seconds) noexcept;

  /// Events currently retained across all rings (post-wrap this is capacity).
  [[nodiscard]] std::size_t event_count() const;
  /// Events lost to ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Chrome trace JSON ({"traceEvents":[...]}), microsecond timestamps.
  void write_chrome_json(std::ostream& out) const;

  /// Drops all recorded events (rings stay allocated).
  void clear();

  /// Per-thread ring capacity in events. Applies to rings created after the
  /// call; default 16384 (~1.5 MiB per recording thread).
  void set_ring_capacity(std::size_t events);

 private:
  struct Ring;
  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> base_every_{1};      ///< configured floor
  std::atomic<std::size_t> effective_every_{1};  ///< what should_sample uses
  std::atomic<double> budget_pct_{2.0};
  std::atomic<double> span_cost_ns_{0.0};  ///< EWMA of record() self-timing
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};
};

/// RAII span: samples the clock at construction, records on destruction.
/// If the recorder is disabled — or the sampler skips this span — at
/// construction, the destructor does nothing (spans never straddle an
/// enable, and a skipped span costs one load + one thread-local decrement).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     std::string_view category = "") noexcept {
    TraceRecorder& recorder = TraceRecorder::global();
    if (!recorder.should_sample()) return;
    name_ = name;
    category_ = category;
    begin_ns_ = recorder.now_ns();
  }

  ~TraceSpan() {
    if (begin_ns_ < 0) return;
    TraceRecorder& recorder = TraceRecorder::global();
    recorder.record(name_, category_, begin_ns_, recorder.now_ns());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string_view name_;
  std::string_view category_;
  std::int64_t begin_ns_ = -1;
};

}  // namespace gnntrans::telemetry
