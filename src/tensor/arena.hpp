/// \file arena.hpp
/// Scratch arena: a recycling pool for tensor value buffers.
///
/// An inference forward pass allocates the same sequence of activation
/// matrices every call; the arena turns those heap allocations into pool
/// lookups. While a ScratchArena::Scope is active on a thread, every tensor
/// value buffer created on that thread is drawn from the arena's free list
/// and returned to it when the tensor dies — even if the tensor outlives the
/// scope or is destroyed on another thread (the buffer travels back through a
/// shared, mutex-protected state). Training is unaffected: with no scope
/// active, allocation behaviour is exactly the pre-arena heap path.
///
/// Typical use (one arena per serving thread, reused across nets):
///   nn::Workspace ws;                       // owns a ScratchArena
///   for (net : batch) {
///     tensor::ScratchArena::Scope scope(ws.arena);
///     ... forward pass ...
///   }                                        // buffers recycled each net
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace gnntrans::tensor {

namespace detail {
struct ArenaState;
}  // namespace detail

/// A pool of float buffers keyed by capacity. Movable, not copyable; the
/// backing state is shared with outstanding tensors, so buffers released
/// after the arena handle is destroyed are still reclaimed (freed with the
/// state once the last tensor dies).
class ScratchArena {
 public:
  /// Observability counters (bytes measure requested sizes, not capacities).
  struct Stats {
    std::size_t reused = 0;          ///< acquisitions served from the pool
    std::size_t allocated = 0;       ///< acquisitions that hit the heap
    std::size_t live_bytes = 0;      ///< bytes currently checked out
    std::size_t peak_bytes = 0;      ///< high-water mark of live_bytes
    std::size_t pooled_buffers = 0;  ///< buffers currently parked in the pool
  };

  ScratchArena();
  ScratchArena(ScratchArena&&) noexcept = default;
  ScratchArena& operator=(ScratchArena&&) noexcept = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ~ScratchArena() = default;

  [[nodiscard]] Stats stats() const;

  /// RAII: routes this thread's tensor allocations through \p arena. Scopes
  /// nest (the previous arena is restored on destruction); construction and
  /// destruction must happen on the same thread.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::shared_ptr<detail::ArenaState> previous_;
  };

 private:
  std::shared_ptr<detail::ArenaState> state_;
};

namespace detail {

/// Arena installed on this thread (null when none). Read by tensor.cpp on
/// every value-buffer allocation.
[[nodiscard]] const std::shared_ptr<ArenaState>& active_arena() noexcept;

/// Returns a zeroed buffer of \p n floats, recycling the smallest pooled
/// buffer whose capacity covers \p n when one exists.
[[nodiscard]] std::vector<float> acquire_values(
    const std::shared_ptr<ArenaState>& state, std::size_t n);

/// Parks \p buffer back in the pool. Safe from any thread.
void release_values(const std::shared_ptr<ArenaState>& state,
                    std::vector<float>&& buffer) noexcept;

}  // namespace detail

}  // namespace gnntrans::tensor
