#include "netlist/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <queue>
#include <stdexcept>

namespace gnntrans::netlist {

IncrementalSta::IncrementalSta(Design design, const cell::CellLibrary& library,
                               WireTimingSource& wire_source, StaConfig config)
    : design_(std::move(design)),
      library_(library),
      wire_source_(wire_source),
      config_(config) {
  // Seed all state from a full pass; the wire table hands over the per-sink
  // timings the pass observed, so nothing is re-timed here.
  StaWireTable table;
  result_ = run_sta(design_, library_, wire_source_, config_, &table);

  const std::size_t n = design_.instances.size();
  in_arrival_.assign(n, -1.0);
  in_slew_.assign(n, config_.launch_slew);
  in_settled_.assign(n, 1);
  is_startpoint_.assign(n, 0);
  for (InstanceId s : design_.startpoints) is_startpoint_[s] = 1;
  fanin_pins_.assign(n, {});
  net_contrib_.assign(design_.nets.size(), {});
  net_unsettled_.assign(design_.nets.size(), 0);
  net_dirty_.assign(design_.nets.size(), 0);

  for (std::uint32_t net_idx = 0; net_idx < design_.nets.size(); ++net_idx) {
    const DesignNet& net = design_.nets[net_idx];
    const std::vector<StaWireTable::Sink>& sinks = table.nets[net_idx];
    std::vector<Contribution>& contrib = net_contrib_[net_idx];
    contrib.resize(std::min(net.loads.size(), sinks.size()));
    for (std::size_t s = 0; s < contrib.size(); ++s) {
      contrib[s].arrival = result_.arrival[net.driver] + sinks[s].delay;
      contrib[s].slew = sinks[s].slew;
      contrib[s].wire_delay = sinks[s].delay;
      contrib[s].sink_settled = sinks[s].settled;
      contrib[s].settled =
          sinks[s].settled && result_.arrival_settled[net.driver] != 0;
      if (!sinks[s].settled) ++net_unsettled_[net_idx];
      fanin_pins_[net.loads[s]].push_back(
          {net_idx, static_cast<std::uint32_t>(s)});
    }
  }
  for (InstanceId v = 0; v < n; ++v) {
    sort_fanin_pins(v);
    refresh_input(v);
  }
}

void IncrementalSta::sort_fanin_pins(InstanceId load) {
  // run_sta scatters contributions level block by level block, and within a
  // block in ascending driver id (the stable level sort preserves id order).
  // Max-ties at a pin are broken by the first winner in that order, so the
  // refresh scan must walk pins the same way or tied slews diverge.
  std::sort(fanin_pins_[load].begin(), fanin_pins_[load].end(),
            [&](const FaninPin& a, const FaninPin& b) {
              const InstanceId da = design_.nets[a.net].driver;
              const InstanceId db = design_.nets[b.net].driver;
              const std::uint32_t la = design_.instances[da].level;
              const std::uint32_t lb = design_.instances[db].level;
              if (la != lb) return la < lb;
              if (da != db) return da < db;
              return a.sink < b.sink;
            });
}

void IncrementalSta::refresh_input(InstanceId load) {
  double best = -1.0;
  double best_slew = config_.launch_slew;
  std::uint8_t best_settled = 1;
  std::uint32_t best_net = StaResult::kNone;
  double best_wire = 0.0;
  for (const FaninPin& pin : fanin_pins_[load]) {
    if (pin.sink >= net_contrib_[pin.net].size()) continue;
    const Contribution& c = net_contrib_[pin.net][pin.sink];
    if (c.arrival > best) {
      best = c.arrival;
      best_slew = c.slew;
      best_settled = c.settled ? 1 : 0;
      best_net = pin.net;
      best_wire = c.wire_delay;
    }
  }
  in_arrival_[load] = best;
  in_slew_[load] = best_slew;
  in_settled_[load] = best_settled;
  result_.critical_net[load] = best_net;
  result_.critical_wire_delay[load] = best_wire;
}

void IncrementalSta::retime_net(std::uint32_t net_idx) {
  const DesignNet& net = design_.nets[net_idx];
  const InstanceId driver = net.driver;
  const cell::Cell& c = library_.at(design_.instances[driver].cell_index);
  const std::vector<sim::SinkTiming> sinks =
      wire_source_.time_net(net.rc, result_.slew[driver], c.drive_resistance);

  std::vector<Contribution>& contrib = net_contrib_[net_idx];
  contrib.resize(std::min(net.loads.size(), sinks.size()));
  std::size_t unsettled = 0;
  for (std::size_t s = 0; s < contrib.size(); ++s) {
    contrib[s].arrival = result_.arrival[driver] + sinks[s].delay;
    contrib[s].slew = sinks[s].slew;
    contrib[s].wire_delay = sinks[s].delay;
    contrib[s].sink_settled = sinks[s].settled;
    contrib[s].settled =
        sinks[s].settled && result_.arrival_settled[driver] != 0;
    if (!sinks[s].settled) ++unsettled;
  }
  net_unsettled_[net_idx] = unsettled;
  net_dirty_[net_idx] = 0;
}

bool IncrementalSta::reevaluate(InstanceId v) {
  ++total_reevaluations_;
  const cell::Cell& c = library_.at(design_.instances[v].cell_index);
  const std::uint32_t net_idx = design_.driven_net[v];
  const double tol = config_.incremental_tolerance;

  double new_arrival, new_slew, new_gate;
  std::uint8_t new_settled;
  if (net_idx == Design::kNoNet) {
    // Endpoint: arrival at the D pin is what Table V compares.
    new_arrival = std::max(0.0, in_arrival_[v]);
    new_slew = in_slew_[v];
    new_gate = 0.0;
    new_settled = in_settled_[v];
  } else {
    const DesignNet& net = design_.nets[net_idx];
    const bool is_start = is_startpoint_[v] != 0;
    const double pin_slew = is_start ? config_.launch_slew : in_slew_[v];
    const double load_cap =
        nldm_load_cap(design_, library_, net, c, pin_slew, config_);
    if (is_start) {
      // Launch FF: clock-to-q through the NLDM arc under the clock slew.
      new_gate = c.arc.delay.lookup(config_.launch_slew, load_cap);
      new_arrival = new_gate;
      new_slew = c.arc.output_slew.lookup(config_.launch_slew, load_cap);
      new_settled = 1;
    } else {
      const double pin_arrival = std::max(0.0, in_arrival_[v]);
      new_gate = c.arc.delay.lookup(pin_slew, load_cap);
      new_arrival = pin_arrival + new_gate;
      new_slew = c.arc.output_slew.lookup(pin_slew, load_cap);
      new_settled = in_settled_[v];
    }
  }

  // The settled flag is part of "changed": a contribution that heals from
  // unsettled to settled with identical numbers must still flow downstream,
  // or taint recovery would stall inside the cone.
  const bool changed =
      std::abs(new_arrival - result_.arrival[v]) > tol ||
      std::abs(new_slew - result_.slew[v]) > tol ||
      std::abs(new_gate - result_.gate_delay[v]) > tol ||
      new_settled != result_.arrival_settled[v];
  result_.arrival[v] = new_arrival;
  result_.slew[v] = new_slew;
  result_.gate_delay[v] = new_gate;
  result_.arrival_settled[v] = new_settled;

  // Re-time the driven net when the driver's output moved, or when an edit
  // replaced the net's parasitics (dirty: the old sink timings are for a wire
  // that no longer exists, even if the driver's output is bit-identical).
  if (net_idx != Design::kNoNet && (changed || net_dirty_[net_idx] != 0)) {
    retime_net(net_idx);
    return true;
  }
  return false;
}

std::size_t IncrementalSta::propagate() {
  const std::size_t n = design_.instances.size();
  auto level_of = [&](InstanceId v) { return design_.instances[v].level; };

  // Forward frontier: lowest level first, so every pop sees final fanin.
  using Entry = std::pair<std::uint32_t, InstanceId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::vector<std::uint8_t> queued(n, 0);
  auto push = [&](InstanceId v) {
    if (!queued[v]) {
      queued[v] = 1;
      queue.emplace(level_of(v), v);
    }
  };
  for (InstanceId v : forward_seeds_) push(v);
  forward_seeds_.clear();

  touched_.assign(n, 0);
  touched_list_.clear();
  auto touch = [&](InstanceId v) {
    if (!touched_[v]) {
      touched_[v] = 1;
      touched_list_.push_back(v);
    }
  };

  std::size_t forward = 0;
  while (!queue.empty()) {
    const InstanceId v = queue.top().second;
    queue.pop();
    queued[v] = 0;
    refresh_input(v);
    ++forward;
    touch(v);
    if (!reevaluate(v)) continue;
    const std::uint32_t net_idx = design_.driven_net[v];
    if (net_idx == Design::kNoNet) continue;
    for (InstanceId load : design_.nets[net_idx].loads) push(load);
  }
  last_forward_retimed_ = forward;

  // Reverse frontier: highest level first. Seeds are everything the forward
  // pass touched plus the drivers feeding them — a touched node's gate delay
  // or fanin wire delays shift its drivers' required times even when its own
  // requirement is unchanged.
  std::priority_queue<Entry> rqueue;
  std::vector<std::uint8_t> rqueued(n, 0);
  auto rpush = [&](InstanceId v) {
    if (!rqueued[v]) {
      rqueued[v] = 1;
      rqueue.emplace(level_of(v), v);
    }
  };
  const std::size_t forward_touched = touched_list_.size();
  for (std::size_t i = 0; i < forward_touched; ++i) {
    const InstanceId v = touched_list_[i];
    rpush(v);
    for (const FaninPin& pin : fanin_pins_[v])
      rpush(design_.nets[pin.net].driver);
  }

  const double tol = config_.incremental_tolerance;
  std::size_t reverse = 0;
  while (!rqueue.empty()) {
    const InstanceId v = rqueue.top().second;
    rqueue.pop();
    rqueued[v] = 0;
    ++reverse;
    touch(v);
    // Same expression and evaluation order as run_sta's backward pass.
    double new_req = config_.required_time;
    const std::uint32_t net_idx = design_.driven_net[v];
    if (net_idx != Design::kNoNet) {
      const DesignNet& net = design_.nets[net_idx];
      const std::vector<Contribution>& contrib = net_contrib_[net_idx];
      double req = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < net.loads.size() && s < contrib.size(); ++s) {
        const InstanceId load = net.loads[s];
        req = std::min(req, (result_.required[load] -
                             result_.gate_delay[load]) -
                                contrib[s].wire_delay);
      }
      new_req = req;
    }
    const bool changed = std::abs(new_req - result_.required[v]) > tol;
    result_.required[v] = new_req;
    if (changed)
      for (const FaninPin& pin : fanin_pins_[v])
        rpush(design_.nets[pin.net].driver);
  }
  last_required_updates_ = reverse;

  for (InstanceId v : touched_list_)
    result_.slack[v] = result_.required[v] - result_.arrival[v];

  // Refresh the run-level summaries.
  result_.unsettled_sinks = 0;
  for (std::size_t u : net_unsettled_) result_.unsettled_sinks += u;
  result_.endpoint_arrival.clear();
  result_.endpoint_slack.clear();
  for (InstanceId e : design_.endpoints) {
    result_.endpoint_arrival.push_back(result_.arrival[e]);
    result_.endpoint_slack.push_back(result_.slack[e]);
  }
  return forward;
}

std::size_t IncrementalSta::swap_cell(InstanceId instance,
                                      std::uint32_t new_cell_index) {
  if (instance >= design_.instances.size())
    throw std::invalid_argument("swap_cell: instance out of range");
  if (new_cell_index >= library_.size())
    throw std::invalid_argument("swap_cell: cell index out of range");
  design_.instances[instance].cell_index = new_cell_index;

  // The swapped instance's input cap changed too, so the driver of every net
  // feeding it sees a different load — seed those drivers alongside it. The
  // adjacent nets are marked dirty outright: a context-sensitive wire source
  // (the estimator featurizes driver/load cells) can yield different sink
  // timings for the new cell even when the electrical inputs happen to be
  // bitwise unchanged, so re-timing them unconditionally is what keeps the
  // bitwise-equivalence contract for every WireTimingSource.
  if (design_.driven_net[instance] != Design::kNoNet)
    net_dirty_[design_.driven_net[instance]] = 1;
  forward_seeds_.push_back(instance);
  for (const FaninPin& pin : fanin_pins_[instance]) {
    net_dirty_[pin.net] = 1;
    forward_seeds_.push_back(design_.nets[pin.net].driver);
  }
  return propagate();
}

std::size_t IncrementalSta::reroute_net(std::uint32_t net_index,
                                        rcnet::RcNet new_rc) {
  if (net_index >= design_.nets.size())
    throw std::invalid_argument("reroute_net: net out of range");
  DesignNet& net = design_.nets[net_index];
  if (new_rc.sinks.size() != net.loads.size())
    throw std::invalid_argument(
        "reroute_net: new parasitics must keep one sink per load");
  if (const auto errors = new_rc.validate(); !errors.empty())
    throw std::invalid_argument("reroute_net: invalid parasitics: " +
                                errors.front());
  net.rc = std::move(new_rc);
  net_dirty_[net_index] = 1;
  forward_seeds_.push_back(net.driver);
  return propagate();
}

std::size_t IncrementalSta::insert_buffer(
    std::uint32_t net_index, std::uint32_t buffer_cell_index,
    std::span<const std::uint32_t> sink_positions, rcnet::RcNet rerouted_rc,
    rcnet::RcNet new_net_rc) {
  if (net_index >= design_.nets.size())
    throw std::invalid_argument("insert_buffer: net out of range");
  if (buffer_cell_index >= library_.size())
    throw std::invalid_argument("insert_buffer: cell index out of range");
  const cell::Cell& buf = library_.at(buffer_cell_index);
  if (cell::is_sequential(buf.function) ||
      cell::input_count(buf.function) != 1)
    throw std::invalid_argument(
        "insert_buffer: cell must be single-input combinational");
  const std::size_t fanout = design_.nets[net_index].loads.size();
  if (sink_positions.empty())
    throw std::invalid_argument("insert_buffer: no sinks selected");
  std::vector<std::uint8_t> selected(fanout, 0);
  for (const std::uint32_t pos : sink_positions) {
    if (pos >= fanout)
      throw std::invalid_argument("insert_buffer: sink position out of range");
    if (selected[pos])
      throw std::invalid_argument("insert_buffer: duplicate sink position");
    selected[pos] = 1;
  }
  const std::size_t moved_count = sink_positions.size();
  if (rerouted_rc.sinks.size() != fanout - moved_count + 1)
    throw std::invalid_argument(
        "insert_buffer: rerouted net needs one sink per remaining load plus "
        "the buffer input");
  if (new_net_rc.sinks.size() != moved_count)
    throw std::invalid_argument(
        "insert_buffer: new net needs one sink per spliced load");
  if (const auto errors = rerouted_rc.validate(); !errors.empty())
    throw std::invalid_argument("insert_buffer: invalid rerouted parasitics: " +
                                errors.front());
  if (const auto errors = new_net_rc.validate(); !errors.empty())
    throw std::invalid_argument("insert_buffer: invalid new parasitics: " +
                                errors.front());

  const auto new_net_idx = static_cast<std::uint32_t>(design_.nets.size());
  const auto buffer_id = static_cast<InstanceId>(design_.instances.size());

  // Partition the original loads; relative order is preserved on both sides.
  std::vector<InstanceId> kept, moved;
  const std::vector<InstanceId> old_loads = design_.nets[net_index].loads;
  for (std::size_t s = 0; s < old_loads.size(); ++s)
    (selected[s] ? moved : kept).push_back(old_loads[s]);

  // Splice: buffer instance, rewired original net (buffer is the last load),
  // and the new net it drives.
  Instance buffer_inst;
  buffer_inst.cell_index = buffer_cell_index;
  design_.instances.push_back(buffer_inst);
  design_.driven_net.push_back(new_net_idx);

  DesignNet& orig = design_.nets[net_index];
  orig.loads = std::move(kept);
  orig.loads.push_back(buffer_id);
  orig.rc = std::move(rerouted_rc);

  DesignNet spliced;
  spliced.driver = buffer_id;
  spliced.loads = std::move(moved);
  spliced.rc = std::move(new_net_rc);
  design_.nets.push_back(std::move(spliced));

  // Grow per-instance and per-net state for the new members.
  in_arrival_.push_back(-1.0);
  in_slew_.push_back(config_.launch_slew);
  in_settled_.push_back(1);
  is_startpoint_.push_back(0);
  fanin_pins_.emplace_back();
  result_.arrival.push_back(0.0);
  result_.slew.push_back(config_.launch_slew);
  result_.required.push_back(config_.required_time);
  result_.slack.push_back(0.0);
  result_.arrival_settled.push_back(1);
  result_.critical_net.push_back(StaResult::kNone);
  result_.critical_wire_delay.push_back(0.0);
  result_.gate_delay.push_back(0.0);
  net_contrib_.emplace_back();
  net_unsettled_.push_back(0);
  net_dirty_.push_back(0);

  // Rebuild the fanin pins of every load the splice moved or re-indexed:
  // drop all pins onto the original net, then re-add per the new load lists.
  for (const InstanceId load : old_loads) {
    std::vector<FaninPin>& pins = fanin_pins_[load];
    pins.erase(std::remove_if(pins.begin(), pins.end(),
                              [&](const FaninPin& p) {
                                return p.net == net_index;
                              }),
               pins.end());
  }
  const DesignNet& orig_after = design_.nets[net_index];
  for (std::size_t s = 0; s < orig_after.loads.size(); ++s)
    fanin_pins_[orig_after.loads[s]].push_back(
        {net_index, static_cast<std::uint32_t>(s)});
  const DesignNet& spliced_after = design_.nets[new_net_idx];
  for (std::size_t s = 0; s < spliced_after.loads.size(); ++s)
    fanin_pins_[spliced_after.loads[s]].push_back(
        {new_net_idx, static_cast<std::uint32_t>(s)});

  // Both wires are new routing; their old sink timings are meaningless.
  net_contrib_[net_index].clear();
  net_dirty_[net_index] = 1;
  net_dirty_[new_net_idx] = 1;

  relevel();

  forward_seeds_.push_back(orig_after.driver);
  forward_seeds_.push_back(buffer_id);
  return propagate();
}

void IncrementalSta::relevel() {
  // Longest-path depth over the instance DAG (Kahn order). Levels only order
  // evaluation — run_sta over the mutated design uses these same values, so
  // both engines keep scattering (and tie-breaking) identically.
  const std::size_t n = design_.instances.size();
  std::vector<std::uint32_t> pending(n, 0);
  for (InstanceId v = 0; v < n; ++v)
    pending[v] = static_cast<std::uint32_t>(fanin_pins_[v].size());
  std::vector<InstanceId> ready;
  ready.reserve(n);
  for (InstanceId v = 0; v < n; ++v) {
    design_.instances[v].level = 0;
    if (pending[v] == 0) ready.push_back(v);
  }
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const InstanceId v = ready[i];
    const std::uint32_t net_idx = design_.driven_net[v];
    if (net_idx == Design::kNoNet) continue;
    for (const InstanceId load : design_.nets[net_idx].loads) {
      design_.instances[load].level = std::max(
          design_.instances[load].level, design_.instances[v].level + 1);
      if (--pending[load] == 0) ready.push_back(load);
    }
  }
  for (InstanceId v = 0; v < n; ++v) sort_fanin_pins(v);
}

double IncrementalSta::worst_arrival() const {
  double worst = 0.0;
  for (double a : result_.endpoint_arrival) worst = std::max(worst, a);
  return worst;
}

double IncrementalSta::worst_slack() const {
  double worst = std::numeric_limits<double>::infinity();
  for (double s : result_.endpoint_slack) worst = std::min(worst, s);
  return worst;
}

const char* EcoEdit::kind_name() const noexcept {
  switch (kind) {
    case Kind::kSwapCell: return "swap_cell";
    case Kind::kRerouteNet: return "reroute_net";
    case Kind::kInsertBuffer: return "insert_buffer";
  }
  return "unknown";
}

std::string EcoEdit::describe() const {
  char buf[160];
  switch (kind) {
    case Kind::kSwapCell:
      std::snprintf(buf, sizeof(buf),
                    "swap_cell u%u -> cell %u (retimed %zu, required %zu)",
                    instance, cell_index, retimed, required_updates);
      break;
    case Kind::kRerouteNet:
      std::snprintf(buf, sizeof(buf),
                    "reroute_net net %u (retimed %zu, required %zu)", net,
                    retimed, required_updates);
      break;
    case Kind::kInsertBuffer:
      std::snprintf(
          buf, sizeof(buf),
          "insert_buffer u%u (cell %u) into net %u (retimed %zu, required %zu)",
          instance, cell_index, net, retimed, required_updates);
      break;
  }
  return buf;
}

EcoEdit apply_random_edit(IncrementalSta& sta, const cell::CellLibrary& library,
                          std::mt19937_64& rng,
                          const rcnet::NetGenConfig& net_config) {
  const Design& d = sta.design();
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const double pick = coin(rng);
  EcoEdit edit;

  if (pick < 0.45) {
    // Cell swap: a same-arity, same-kind replacement keeps connectivity legal.
    std::uniform_int_distribution<std::size_t> pick_inst(
        0, d.instances.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_cell(0, library.size() - 1);
    for (int attempt = 0; attempt < 256; ++attempt) {
      const auto victim = static_cast<InstanceId>(pick_inst(rng));
      const std::size_t candidate = pick_cell(rng);
      const cell::Cell& old_cell = library.at(d.instances[victim].cell_index);
      const cell::Cell& new_cell = library.at(candidate);
      if (cell::input_count(new_cell.function) ==
              cell::input_count(old_cell.function) &&
          cell::is_sequential(new_cell.function) ==
              cell::is_sequential(old_cell.function)) {
        edit.kind = EcoEdit::Kind::kSwapCell;
        edit.instance = victim;
        edit.cell_index = static_cast<std::uint32_t>(candidate);
        edit.retimed = sta.swap_cell(victim, edit.cell_index);
        edit.required_updates = sta.last_required_updates();
        return edit;
      }
    }
    // No legal swap found (degenerate library): fall through to a reroute.
  }

  std::uniform_int_distribution<std::size_t> pick_net(0, d.nets.size() - 1);
  const auto net_idx = static_cast<std::uint32_t>(pick_net(rng));
  const std::size_t fanout = d.nets[net_idx].loads.size();
  const std::string net_name = d.nets[net_idx].rc.name;

  // Buffer cells available? Otherwise buffer insertion degrades to reroute.
  std::vector<std::uint32_t> buffers;
  for (std::size_t i = 0; i < library.size(); ++i)
    if (library.at(i).function == cell::CellFunction::kBuf)
      buffers.push_back(static_cast<std::uint32_t>(i));

  if (pick < 0.75 || buffers.empty()) {
    // Net reroute: fresh parasitics under the same name, same fanout.
    rcnet::RcNet rc = rcnet::generate_net_for_fanout(
        net_config, rng, net_name, static_cast<std::uint32_t>(fanout));
    edit.kind = EcoEdit::Kind::kRerouteNet;
    edit.net = net_idx;
    edit.retimed = sta.reroute_net(net_idx, std::move(rc));
    edit.required_updates = sta.last_required_updates();
    return edit;
  }

  // Buffer insertion: splice a random nonempty subset of sinks behind a
  // buffer. The rerouted original net keeps the remaining loads plus the
  // buffer input; the new net carries the spliced loads.
  std::vector<std::uint32_t> positions;
  for (std::uint32_t s = 0; s < fanout; ++s)
    if (coin(rng) < 0.5) positions.push_back(s);
  if (positions.empty()) {
    std::uniform_int_distribution<std::uint32_t> pick_pos(
        0, static_cast<std::uint32_t>(fanout - 1));
    positions.push_back(pick_pos(rng));
  }
  std::uniform_int_distribution<std::size_t> pick_buf(0, buffers.size() - 1);
  const std::uint32_t buffer_cell = buffers[pick_buf(rng)];
  // Instance count grows monotonically, so this name is unique and the whole
  // edit stays deterministic in (rng state, design state).
  const std::string new_name =
      d.name + "/eco_b" + std::to_string(d.instances.size());
  rcnet::RcNet rerouted = rcnet::generate_net_for_fanout(
      net_config, rng, net_name,
      static_cast<std::uint32_t>(fanout - positions.size() + 1));
  rcnet::RcNet spliced = rcnet::generate_net_for_fanout(
      net_config, rng, new_name, static_cast<std::uint32_t>(positions.size()));
  edit.kind = EcoEdit::Kind::kInsertBuffer;
  edit.cell_index = buffer_cell;
  edit.net = net_idx;
  edit.retimed = sta.insert_buffer(net_idx, buffer_cell, positions,
                                   std::move(rerouted), std::move(spliced));
  edit.required_updates = sta.last_required_updates();
  edit.instance = static_cast<InstanceId>(sta.design().instances.size() - 1);
  return edit;
}

}  // namespace gnntrans::netlist
