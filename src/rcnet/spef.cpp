#include "rcnet/spef.hpp"

#include <charconv>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "core/telemetry/telemetry.hpp"

namespace gnntrans::rcnet {

namespace {

std::string node_name(const RcNet& net, NodeId v) {
  return net.name + ":" + std::to_string(v);
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::optional<double> parse_double(std::string_view s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Splits "<net>:<index>" into the index; returns nullopt for foreign names.
std::optional<NodeId> parse_node_index(std::string_view token,
                                       std::string_view net_name) {
  const std::size_t colon = token.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  if (token.substr(0, colon) != net_name) return std::nullopt;
  const std::string_view idx = token.substr(colon + 1);
  NodeId v = 0;
  const auto [ptr, ec] = std::from_chars(idx.data(), idx.data() + idx.size(), v);
  if (ec != std::errc{} || ptr != idx.data() + idx.size()) return std::nullopt;
  return v;
}

}  // namespace

void write_spef(std::ostream& out, const std::vector<RcNet>& nets) {
  out << "*SPEF \"IEEE 1481 subset\"\n";
  out << "*DESIGN \"gnntrans\"\n";
  out << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
  for (const RcNet& net : nets) {
    out << "*D_NET " << net.name << " " << net.total_ground_cap() * 1e15 << "\n";
    out << "*CONN\n";
    out << "*I " << node_name(net, net.source) << " I\n";
    for (NodeId s : net.sinks) out << "*I " << node_name(net, s) << " O\n";
    out << "*CAP\n";
    std::size_t cap_id = 1;
    for (NodeId v = 0; v < net.node_count(); ++v)
      out << cap_id++ << " " << node_name(net, v) << " "
          << net.ground_cap[v] * 1e15 << "\n";
    for (const CouplingCap& c : net.couplings)
      out << cap_id++ << " " << node_name(net, c.victim_node) << " AGGR:"
          << c.aggressor_seed << " " << c.farads * 1e15 << "\n";
    out << "*RES\n";
    std::size_t res_id = 1;
    for (const Resistor& r : net.resistors)
      out << res_id++ << " " << node_name(net, r.a) << " " << node_name(net, r.b)
          << " " << r.ohms << "\n";
    out << "*END\n\n";
  }
}

std::string to_spef(const RcNet& net) {
  std::ostringstream out;
  out.precision(17);
  write_spef(out, {net});
  return out.str();
}

SpefParseResult parse_spef(std::istream& in) {
  const telemetry::TraceSpan span("parse_spef", "io");
  SpefParseResult result;
  enum class Section { kNone, kConn, kCap, kRes };

  RcNet current;
  bool in_net = false;
  bool source_set = false;
  Section section = Section::kNone;
  std::map<NodeId, double> caps;  // node index -> ground cap (F)
  std::set<NodeId> conn_nodes;    // *CONN terminals declared so far
  std::size_t line_no = 0;
  double c_scale = 1e-15;  // *C_UNIT; SPEF defaults to femtofarads
  double r_scale = 1.0;    // *R_UNIT; SPEF defaults to ohms

  // Non-fatal diagnostic: recorded, parse continues.
  auto warn = [&](const std::string& msg) {
    result.warnings.push_back("line " + std::to_string(line_no) + ": " + msg);
  };
  // Structural defect: recorded like a warning, and latched into status so
  // strict callers can reject the document. First defect wins.
  auto fail = [&](const std::string& msg) {
    warn(msg);
    if (result.status.ok())
      result.status = core::Status(
          core::ErrorCode::kParseError,
          "spef: line " + std::to_string(line_no) + ": " + msg);
  };

  auto finish_net = [&] {
    if (!in_net) return;
    if (caps.empty()) {
      result.warnings.push_back("net " + current.name + " has no caps; dropped");
    } else {
      // Node indices may be sparse in foreign SPEF; compact them.
      std::map<NodeId, NodeId> remap;
      NodeId next = 0;
      for (const auto& [idx, _] : caps) remap[idx] = next++;
      RcNet net;
      net.name = current.name;
      net.ground_cap.resize(caps.size());
      for (const auto& [idx, c] : caps) net.ground_cap[remap[idx]] = c;
      net.source = remap.count(current.source) ? remap[current.source] : 0;
      for (NodeId s : current.sinks)
        if (remap.count(s)) net.sinks.push_back(remap[s]);
      for (const Resistor& r : current.resistors)
        if (remap.count(r.a) && remap.count(r.b))
          net.resistors.push_back({remap[r.a], remap[r.b], r.ohms});
      for (const CouplingCap& c : current.couplings)
        if (remap.count(c.victim_node))
          net.couplings.push_back({remap[c.victim_node], c.farads, c.aggressor_seed});
      if (const auto errors = net.validate(); !errors.empty()) {
        result.warnings.push_back("net " + net.name + " invalid: " + errors.front());
      } else {
        result.nets.push_back(std::move(net));
      }
    }
    current = RcNet{};
    caps.clear();
    conn_nodes.clear();
    in_net = false;
    source_set = false;
    section = Section::kNone;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string_view head = tokens.front();

    if (head == "*C_UNIT" || head == "*R_UNIT") {
      // "*C_UNIT <multiplier> <unit>"; values below scale by multiplier*unit.
      const auto mult =
          tokens.size() >= 3 ? parse_double(tokens[1]) : std::nullopt;
      if (!mult) {
        fail(std::string(head) + " needs '<multiplier> <unit>'");
        continue;
      }
      const std::string_view unit = tokens[2];
      if (head == "*C_UNIT") {
        if (unit == "FF") c_scale = *mult * 1e-15;
        else if (unit == "PF") c_scale = *mult * 1e-12;
        else if (unit == "F") c_scale = *mult;
        else fail("unknown capacitance unit '" + std::string(unit) + "'");
      } else {
        if (unit == "OHM") r_scale = *mult;
        else if (unit == "KOHM") r_scale = *mult * 1e3;
        else if (unit == "MOHM") r_scale = *mult * 1e6;
        else fail("unknown resistance unit '" + std::string(unit) + "'");
      }
      continue;
    }

    if (head == "*D_NET") {
      if (in_net)
        fail("*D_NET " + (tokens.size() >= 2 ? std::string(tokens[1]) : "?") +
             " starts before *END of " + current.name);
      finish_net();
      if (tokens.size() >= 2) {
        in_net = true;
        current.name = std::string(tokens[1]);
      } else {
        warn("*D_NET without a name; skipped");
      }
      continue;
    }
    if (!in_net) continue;

    if (head == "*CONN") { section = Section::kConn; continue; }
    if (head == "*CAP")  { section = Section::kCap; continue; }
    if (head == "*RES")  { section = Section::kRes; continue; }
    if (head == "*END")  { finish_net(); continue; }
    if (head.starts_with('*') && head != "*I") { section = Section::kNone; continue; }

    switch (section) {
      case Section::kConn: {
        if (head == "*I" && tokens.size() >= 3) {
          const auto idx = parse_node_index(tokens[1], current.name);
          if (!idx) break;
          if (!conn_nodes.insert(*idx).second)
            fail("duplicate *CONN definition for node " +
                 std::string(tokens[1]));
          if (tokens[2] == "I") {
            if (source_set && current.source != *idx)
              fail("second driver terminal " + std::string(tokens[1]) +
                   " in net " + current.name);
            current.source = *idx;
            source_set = true;
          } else if (tokens[2] == "O") {
            current.sinks.push_back(*idx);
          } else {
            warn("unknown *CONN direction '" + std::string(tokens[2]) + "'");
          }
        }
        break;
      }
      case Section::kCap: {
        // "<id> <node> <value>" (ground) or "<id> <node> <other> <value>" (coupling).
        if (tokens.size() == 3) {
          const auto idx = parse_node_index(tokens[1], current.name);
          const auto value = parse_double(tokens[2]);
          if (idx && value) {
            if (caps.contains(*idx))
              fail("duplicate ground *CAP for node " + std::string(tokens[1]));
            caps[*idx] += *value * c_scale;
          } else if (idx && !value) {
            warn("unparsable *CAP value '" + std::string(tokens[2]) + "'");
          }
        } else if (tokens.size() == 4) {
          const auto idx = parse_node_index(tokens[1], current.name);
          const auto value = parse_double(tokens[3]);
          if (idx && value) {
            CouplingCap c;
            c.victim_node = *idx;
            c.farads = *value * c_scale;
            if (tokens[2].starts_with("AGGR:")) {
              std::uint64_t seed = 0;
              const std::string_view s = tokens[2].substr(5);
              std::from_chars(s.data(), s.data() + s.size(), seed);
              c.aggressor_seed = seed;
            }
            current.couplings.push_back(c);
          } else if (idx && !value) {
            warn("unparsable *CAP value '" + std::string(tokens[3]) + "'");
          }
        } else {
          warn("malformed *CAP entry (" + std::to_string(tokens.size()) +
               " tokens)");
        }
        break;
      }
      case Section::kRes: {
        if (tokens.size() >= 4) {
          const auto a = parse_node_index(tokens[1], current.name);
          const auto b = parse_node_index(tokens[2], current.name);
          const auto value = parse_double(tokens[3]);
          if (a && b && value)
            current.resistors.push_back({*a, *b, *value * r_scale});
          else if (a && b && !value)
            warn("unparsable *RES value '" + std::string(tokens[3]) + "'");
        } else {
          warn("malformed *RES entry (" + std::to_string(tokens.size()) +
               " tokens)");
        }
        break;
      }
      case Section::kNone:
        break;
    }
  }
  if (in_net)
    fail("unexpected end of file inside *D_NET " + current.name +
         " (missing *END; file truncated?)");
  finish_net();
  static telemetry::Counter nets_metric =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_spef_nets_parsed_total", "Nets read from SPEF input");
  static telemetry::Counter warn_metric =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_spef_warnings_total", "Warnings raised by the SPEF parser");
  nets_metric.inc(result.nets.size());
  warn_metric.inc(result.warnings.size());
  return result;
}

std::optional<RcNet> net_from_spef(const std::string& text) {
  std::istringstream in(text);
  SpefParseResult r = parse_spef(in);
  if (r.nets.empty()) return std::nullopt;
  return std::move(r.nets.front());
}

}  // namespace gnntrans::rcnet
