/// \file loop_breaking.hpp
/// The DAC'20 [5] loop-breaking preprocessing: force a non-tree RC net into a
/// spanning tree so tree-only formulas apply. This is exactly the step the
/// paper blames for the baseline's accuracy loss on non-tree nets — removing
/// loop resistors discards real parallel conduction paths.
#pragma once

#include "rcnet/rcnet.hpp"

namespace gnntrans::baseline {

/// Returns a copy of \p net whose resistive graph is a minimum-resistance
/// spanning tree (loop edges with the largest resistance are dropped first,
/// mirroring "break the weakest redundant route"). Tree nets return unchanged.
[[nodiscard]] rcnet::RcNet break_loops(const rcnet::RcNet& net);

}  // namespace gnntrans::baseline
