# Empty dependencies file for bench_analytical.
# This may be replaced when dependencies are built.
