#include "rcnet/stats.hpp"

#include <algorithm>

#include "rcnet/paths.hpp"

namespace gnntrans::rcnet {

NetStats compute_stats(const RcNet& net) {
  NetStats s;
  s.node_count = net.node_count();
  s.resistor_count = net.resistors.size();
  s.sink_count = net.sinks.size();
  s.coupling_count = net.couplings.size();
  s.simple_path_count = count_simple_paths(net);
  s.is_tree = net.is_tree();
  s.total_ground_cap = net.total_ground_cap();
  s.total_resistance = net.total_resistance();
  return s;
}

CollectionStats aggregate_stats(const std::vector<RcNet>& nets,
                                std::uint64_t path_bucket_width) {
  CollectionStats agg;
  agg.path_bucket_width = path_bucket_width;
  agg.net_count = nets.size();
  if (nets.empty()) return agg;

  double path_sum = 0.0;
  double node_sum = 0.0;
  for (const RcNet& net : nets) {
    const NetStats s = compute_stats(net);
    if (!s.is_tree) ++agg.non_tree_count;
    agg.max_simple_paths = std::max(agg.max_simple_paths, s.simple_path_count);
    agg.max_nodes = std::max(agg.max_nodes, s.node_count);
    path_sum += static_cast<double>(s.simple_path_count);
    node_sum += static_cast<double>(s.node_count);

    const std::size_t bucket =
        static_cast<std::size_t>(s.simple_path_count / path_bucket_width);
    if (bucket >= agg.path_histogram.size()) agg.path_histogram.resize(bucket + 1, 0);
    ++agg.path_histogram[bucket];
  }
  agg.mean_simple_paths = path_sum / static_cast<double>(nets.size());
  agg.mean_nodes = node_sum / static_cast<double>(nets.size());
  return agg;
}

}  // namespace gnntrans::rcnet
