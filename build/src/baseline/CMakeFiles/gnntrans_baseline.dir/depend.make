# Empty dependencies file for gnntrans_baseline.
# This may be replaced when dependencies are built.
