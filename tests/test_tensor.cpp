// Forward-value tests for tensor ops, optimizer behaviour, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/optim.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace gnntrans::tensor;

Tensor t2x2(float a, float b, float c, float d, bool grad = false) {
  return Tensor::from_data({a, b, c, d}, 2, 2, grad);
}

TEST(Tensor, ConstructionAndShape) {
  const Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({1.0f, 2.0f}, 2, 2), std::invalid_argument);
}

TEST(Ops, MatmulHandChecked) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor b = t2x2(5, 6, 7, 8);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19);
  EXPECT_FLOAT_EQ(c(0, 1), 22);
  EXPECT_FLOAT_EQ(c(1, 0), 43);
  EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(Ops, MatmulNtMatchesExplicitTranspose) {
  std::mt19937_64 rng(1);
  const Tensor a = xavier_uniform(3, 5, rng);
  const Tensor b = xavier_uniform(4, 5, rng);
  const Tensor direct = matmul_nt(a, b);
  const Tensor via_t = matmul(a, transpose(b));
  ASSERT_EQ(direct.size(), via_t.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct.values()[i], via_t.values()[i], 1e-6);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_THROW(add(a, Tensor(3, 2)), std::invalid_argument);
  EXPECT_THROW(add_row_broadcast(a, Tensor(1, 4)), std::invalid_argument);
}

TEST(Ops, AddSubMulScale) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor b = t2x2(10, 20, 30, 40);
  EXPECT_FLOAT_EQ(add(a, b)(1, 1), 44);
  EXPECT_FLOAT_EQ(sub(b, a)(0, 0), 9);
  EXPECT_FLOAT_EQ(mul(a, b)(0, 1), 40);
  EXPECT_FLOAT_EQ(scale(a, -2.0f)(1, 0), -6);
}

TEST(Ops, AddRowBroadcast) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor bias = Tensor::from_data({10, 100}, 1, 2);
  const Tensor y = add_row_broadcast(a, bias);
  EXPECT_FLOAT_EQ(y(0, 0), 11);
  EXPECT_FLOAT_EQ(y(0, 1), 102);
  EXPECT_FLOAT_EQ(y(1, 0), 13);
  EXPECT_FLOAT_EQ(y(1, 1), 104);
}

TEST(Ops, OuterSum) {
  const Tensor s = Tensor::from_data({1, 2}, 2, 1);
  const Tensor t = Tensor::from_data({10, 20, 30}, 3, 1);
  const Tensor e = outer_sum(s, t);
  EXPECT_EQ(e.rows(), 2u);
  EXPECT_EQ(e.cols(), 3u);
  EXPECT_FLOAT_EQ(e(0, 0), 11);
  EXPECT_FLOAT_EQ(e(1, 2), 32);
}

TEST(Ops, Nonlinearities) {
  const Tensor x = Tensor::from_data({-2, -0.5, 0, 3}, 1, 4);
  const Tensor r = relu(x);
  EXPECT_FLOAT_EQ(r(0, 0), 0);
  EXPECT_FLOAT_EQ(r(0, 3), 3);
  const Tensor l = leaky_relu(x, 0.1f);
  EXPECT_FLOAT_EQ(l(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(l(0, 3), 3);
  const Tensor s = sigmoid(Tensor::from_data({0}, 1, 1));
  EXPECT_NEAR(s(0, 0), 0.5f, 1e-6);
  const Tensor th = tanh_op(Tensor::from_data({0.5f}, 1, 1));
  EXPECT_NEAR(th(0, 0), std::tanh(0.5f), 1e-6);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  std::mt19937_64 rng(2);
  const Tensor x = xavier_uniform(4, 6, rng);
  const Tensor y = softmax_rows(x);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_GT(y(r, c), 0.0f);
      sum += y(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  const Tensor a = Tensor::from_data({1, 2, 3}, 1, 3);
  const Tensor b = Tensor::from_data({101, 102, 103}, 1, 3);
  const Tensor ya = softmax_rows(a), yb = softmax_rows(b);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(ya(0, c), yb(0, c), 1e-6);
}

TEST(Ops, MaskedSoftmaxZerosMaskedEntries) {
  const Tensor x = Tensor::from_data({1, 5, 2, 1, 1, 1}, 2, 3);
  const std::vector<std::uint8_t> mask{1, 0, 1, 0, 0, 0};
  const Tensor y = masked_softmax_rows(x, mask);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0f);
  EXPECT_NEAR(y(0, 0) + y(0, 2), 1.0f, 1e-6);
  // Fully masked row stays zero.
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(y(1, c), 0.0f);
}

TEST(Ops, ConcatColsLayout) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor b = Tensor::from_data({9, 10}, 2, 1);
  const Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c(0, 2), 9);
  EXPECT_FLOAT_EQ(c(1, 0), 3);
}

TEST(Ops, GatherRowsWithDuplicates) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor g = gather_rows(a, {1, 1, 0});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g(0, 0), 3);
  EXPECT_FLOAT_EQ(g(2, 1), 2);
  EXPECT_THROW(gather_rows(a, {5}), std::invalid_argument);
}

TEST(Ops, SpmmAppliesFixedWeights) {
  GraphMatrix m(2, 3);
  m.add(0, 0, 1.0f);
  m.add(0, 2, 2.0f);
  m.add(1, 1, -1.0f);
  const Tensor x = Tensor::from_data({1, 10, 2, 20, 3, 30}, 3, 2);
  const Tensor y = spmm(m, x);
  EXPECT_FLOAT_EQ(y(0, 0), 1 + 2 * 3);
  EXPECT_FLOAT_EQ(y(0, 1), 10 + 2 * 30);
  EXPECT_FLOAT_EQ(y(1, 0), -2);
}

TEST(Ops, GraphMatrixRowNormalize) {
  GraphMatrix m(2, 2);
  m.add(0, 0, 2.0f);
  m.add(0, 1, 6.0f);
  m.add(1, 0, 0.0f);  // zero-sum row left untouched
  m.row_normalize();
  EXPECT_FLOAT_EQ(m.values[0], 0.25f);
  EXPECT_FLOAT_EQ(m.values[1], 0.75f);
  EXPECT_FLOAT_EQ(m.values[2], 0.0f);
}

TEST(Ops, Reductions) {
  const Tensor a = t2x2(1, 2, 3, 4);
  EXPECT_FLOAT_EQ(sum_all(a).item(), 10);
  EXPECT_FLOAT_EQ(mean_all(a).item(), 2.5);
}

TEST(Ops, MseLoss) {
  const Tensor pred = Tensor::from_data({1, 2}, 2, 1);
  const Tensor target = Tensor::from_data({0, 4}, 2, 1);
  EXPECT_FLOAT_EQ(mse_loss(pred, target).item(), (1 + 4) / 2.0f);
}

TEST(Autograd, NoGradGuardSuppressesTape) {
  std::mt19937_64 rng(3);
  const Tensor w = xavier_uniform(2, 2, rng);
  const Tensor x = t2x2(1, 0, 0, 1);
  {
    NoGradGuard guard;
    const Tensor y = matmul(x, w);
    EXPECT_FALSE(y.requires_grad());
  }
  const Tensor y = matmul(x, w);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor w(2, 2, true);
  EXPECT_THROW(w.backward(), std::logic_error);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  const Tensor w = Tensor::from_data({2}, 1, 1, true);
  Tensor loss1 = scale(w, 3.0f);
  loss1.backward();
  EXPECT_FLOAT_EQ(w.grad()[0], 3.0f);
  Tensor loss2 = scale(w, 3.0f);
  loss2.backward();
  EXPECT_FLOAT_EQ(w.grad()[0], 6.0f);
}

TEST(Autograd, DiamondGraphGradSumsBothBranches) {
  // y = sum(w * w_detached_path + w): shared node used twice.
  const Tensor w = Tensor::from_data({1, 2, 3, 4}, 2, 2, true);
  Tensor y = sum_all(add(w, w));
  y.backward();
  for (float g : w.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  // minimize ||w - target||^2.
  Tensor w(1, 4, true);
  const Tensor target = Tensor::from_data({1, -2, 3, 0.5f}, 1, 4);
  Adam::Config cfg;
  cfg.learning_rate = 0.05f;
  Adam opt({w}, cfg);
  for (int step = 0; step < 500; ++step) {
    opt.zero_grad();
    Tensor loss = mse_loss(w, target);
    loss.backward();
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(w.values()[i], target.values()[i], 1e-2);
}

TEST(Adam, RejectsNonGradParameters) {
  Tensor frozen(2, 2, false);
  EXPECT_THROW(Adam({frozen}), std::invalid_argument);
}

TEST(Adam, ClipGradNormScalesDown) {
  Tensor w = Tensor::from_data({3, 4}, 1, 2, true);
  Tensor loss = sum_all(mul(w, w));
  loss.backward();  // grad = (6, 8), norm 10
  std::vector<Tensor> params{w};
  const double pre = clip_grad_norm(params, 5.0);
  EXPECT_NEAR(pre, 10.0, 1e-5);
  EXPECT_NEAR(w.grad()[0], 3.0f, 1e-5);
  EXPECT_NEAR(w.grad()[1], 4.0f, 1e-5);
}

TEST(Serialize, TensorRoundTrip) {
  std::mt19937_64 rng(4);
  const Tensor t = he_normal(5, 7, rng);
  std::stringstream buf;
  write_tensor(buf, t);
  const Tensor back = read_tensor(buf);
  ASSERT_EQ(back.rows(), 5u);
  ASSERT_EQ(back.cols(), 7u);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(t.values()[i], back.values()[i]);
}

TEST(Serialize, HeaderMismatchThrows) {
  std::stringstream buf;
  write_header(buf, "MAGIC_A", 1);
  EXPECT_THROW(check_header(buf, "MAGIC_B", 1), std::runtime_error);
  std::stringstream buf2;
  write_header(buf2, "MAGIC_A", 1);
  EXPECT_THROW(check_header(buf2, "MAGIC_A", 2), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream buf;
  const Tensor t(4, 4);
  write_tensor(buf, t);
  std::string payload = buf.str();
  payload.resize(payload.size() / 2);
  std::stringstream cut(payload);
  EXPECT_THROW(read_tensor(cut), std::runtime_error);
}

TEST(Serialize, DoublesRoundTrip) {
  std::stringstream buf;
  write_doubles(buf, {1.5, -2.25, 1e-15});
  const auto back = read_doubles(buf);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back[2], 1e-15);
}

TEST(Init, XavierBoundsRespected) {
  std::mt19937_64 rng(5);
  const Tensor t = xavier_uniform(10, 10, rng);
  const float limit = std::sqrt(6.0f / 20.0f);
  for (float v : t.values()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  EXPECT_TRUE(t.requires_grad());
}

}  // namespace
