/// \file flight_recorder.hpp
/// Per-net flight recorder: a black box of the most recent serving decisions.
///
/// Every net served by estimate_batch (and every training epoch) appends one
/// fixed-size FlightRecord — net name, stage breakdown, provenance, outcome,
/// arena peak — to a per-thread ring. Slow and degraded nets are additionally
/// *pinned* into a separate per-thread ring that wraps far more slowly, so
/// the interesting records survive long after the main ring has cycled
/// through healthy traffic.
///
/// Concurrency: rings are written only by their owner thread, but may be read
/// at any moment by the /flight HTTP handler, by --flight-out at exit, or by
/// the fatal-signal dumper. Each slot is therefore an all-atomic seqlock
/// (version word + relaxed word-wise payload copies, Boehm's recipe): writers
/// never block, readers retry a bounded number of times and skip slots that
/// are mid-write. No mutex is ever taken on the record path, reads are
/// TSan-clean, and — because lock-free atomics are async-signal-safe — the
/// same slot protocol serves the signal-handler dump (write_json_fd, which
/// also avoids allocation and stdio).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>

namespace gnntrans::telemetry {

/// One serving decision. Trivially copyable and a whole number of 64-bit
/// words, so a slot can shuttle it through atomic word copies.
struct FlightRecord {
  char net[48] = {};      ///< net name (or "train_epoch_N"), truncated
  char outcome[24] = {};  ///< "model" | "baseline_fallback" | "failed" | ...
  char error[24] = {};    ///< ErrorCode name when degraded, "" otherwise
  std::uint64_t seq = 0;  ///< global append order, 1-based; 0 = empty slot
  float featurize_us = 0.0f;
  float forward_us = 0.0f;
  float fallback_us = 0.0f;
  float total_us = 0.0f;
  std::uint32_t arena_peak_bytes = 0;
  std::uint32_t thread_id = 0;
  std::uint8_t slow = 0;      ///< exceeded the slow-net latency budget
  std::uint8_t degraded = 0;  ///< provenance below kModel (fallback/failed)
  std::uint8_t pinned = 0;    ///< record copy lives in the pinned ring
  std::uint8_t pad[5] = {};

  void set_net(std::string_view s) noexcept { copy_field(net, sizeof(net), s); }
  void set_outcome(std::string_view s) noexcept {
    copy_field(outcome, sizeof(outcome), s);
  }
  void set_error(std::string_view s) noexcept {
    copy_field(error, sizeof(error), s);
  }

 private:
  static void copy_field(char* dst, std::size_t cap, std::string_view src) noexcept {
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }
};
static_assert(std::is_trivially_copyable_v<FlightRecord>);
static_assert(sizeof(FlightRecord) % sizeof(std::uint64_t) == 0,
              "FlightRecord must be a whole number of seqlock words");

namespace detail {

inline constexpr std::size_t kFlightWords =
    sizeof(FlightRecord) / sizeof(std::uint64_t);

/// Seqlock slot: even version = stable, odd = mid-write. Payload words are
/// themselves atomics (relaxed), so concurrent read/write is defined
/// behavior; the version handshake only has to order the copies.
struct FlightSlot {
  std::atomic<std::uint64_t> version{0};
  std::array<std::atomic<std::uint64_t>, kFlightWords> words{};
};

/// Single-writer publish (owner thread, or any thread when quiescent).
void write_slot(FlightSlot& slot, const FlightRecord& record) noexcept;

/// Lock-free snapshot; false when the slot is empty or stayed mid-write for
/// all (bounded) retries. Safe from signal handlers.
bool read_slot(const FlightSlot& slot, FlightRecord* out) noexcept;

}  // namespace detail

/// Process-wide recorder. record() is wait-free for the owner thread; the
/// JSON dumps may run concurrently with writers from any thread (and, for
/// write_json_fd, from fatal-signal context).
class FlightRecorder {
 public:
  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] static FlightRecorder& global();

  /// Recording defaults to on (a record costs one ~136-byte seqlock store).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Main-ring capacity in records for rings created after the call
  /// (default 256 per thread; the pinned ring is fixed at 64).
  void set_ring_capacity(std::size_t records);

  /// Appends \p record to the calling thread's ring; assigns seq/thread_id
  /// and pins a copy when the record is slow or degraded — or when the
  /// caller set record.pinned itself (quality drift/outlier events).
  void record(const FlightRecord& record) noexcept;

  /// /flight query filters: keep only records whose net field equals \p net
  /// (empty = all), then the newest \p limit of each list (0 = all).
  struct JsonFilter {
    std::size_t limit = 0;
    std::string net;
  };

  /// {"recorded":N,"dropped":N,"records":[...],"pinned":[...]} — records
  /// sorted oldest-first by seq; bytes that could break the JSON string
  /// (quotes, backslashes, control chars) are replaced with '_'.
  void write_json(std::ostream& out) const { write_json(out, JsonFilter{}); }
  void write_json(std::ostream& out, const JsonFilter& filter) const;

  /// Async-signal-safe dump to a file descriptor: no allocation, no locks,
  /// no stdio; hand-rolled formatting; non-printable name bytes become '_'.
  void write_json_fd(int fd) const noexcept;

  /// Records ever appended / overwritten-before-read (main rings only).
  [[nodiscard]] std::uint64_t recorded_total() const noexcept;
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;

  /// Empties every ring. Not for concurrent use with active writers (tests
  /// and bench isolation, like MetricsRegistry::reset).
  void clear() noexcept;

 private:
  struct Ring;
  [[nodiscard]] Ring* ring_for_this_thread() noexcept;

  std::atomic<bool> enabled_{true};
  struct Impl;
  [[nodiscard]] Impl& impl() const noexcept;
  mutable std::atomic<Impl*> impl_{nullptr};
};

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump the global
/// flight recorder to \p path (O_CREAT|O_TRUNC) and then re-raise with the
/// default disposition, so the crash still produces a core/exit status.
/// \p path is copied into static storage; later calls replace it.
void install_flight_signal_dump(const char* path);

}  // namespace gnntrans::telemetry
