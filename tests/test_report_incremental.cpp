// Tests for timing reports (critical path tracing) and incremental STA.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>

#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/report.hpp"
#include "netlist/sta.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::netlist;

Design make_design(std::uint64_t seed) {
  DesignGenConfig cfg;
  cfg.startpoints = 6;
  cfg.levels = 5;
  cfg.cells_per_level = 9;
  cfg.seed = seed;
  const auto lib = cell::CellLibrary::make_default();
  return generate_design(cfg, lib, "rpt");
}

sim::TransientConfig quick_tc() {
  sim::TransientConfig tc;
  tc.steps = 300;
  return tc;
}

TEST(Report, PathIncrementsSumToEndpointArrival) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(3);
  GoldenWireSource wire(quick_tc());
  const StaResult sta = run_sta(d, lib, wire);

  for (InstanceId e : d.endpoints) {
    const TimingPath path = trace_critical_path(d, sta, e);
    ASSERT_FALSE(path.stages.empty());
    double sum = 0.0;
    for (const PathStage& stage : path.stages)
      sum += stage.gate_delay + stage.wire_delay;
    EXPECT_NEAR(sum, path.arrival, 1e-15 + 1e-9 * path.arrival)
        << "endpoint u" << e;
  }
}

TEST(Report, PathStartsAtLaunchFlopAndEndsAtEndpoint) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(5);
  GoldenWireSource wire(quick_tc());
  const StaResult sta = run_sta(d, lib, wire);

  std::vector<bool> is_start(d.instances.size(), false);
  for (InstanceId s : d.startpoints) is_start[s] = true;
  for (InstanceId e : d.endpoints) {
    const TimingPath path = trace_critical_path(d, sta, e);
    EXPECT_TRUE(is_start[path.stages.front().instance]);
    EXPECT_EQ(path.stages.back().instance, e);
    // Levels strictly increase along the path.
    for (std::size_t i = 1; i < path.stages.size(); ++i)
      EXPECT_GT(d.instances[path.stages[i].instance].level,
                d.instances[path.stages[i - 1].instance].level);
  }
}

TEST(Report, WorstPathsSortedByArrival) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(7);
  GoldenWireSource wire(quick_tc());
  const StaResult sta = run_sta(d, lib, wire);
  const auto paths = worst_paths(d, sta, 5);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i - 1].arrival, paths[i].arrival);
}

TEST(Report, FormattedReportMentionsCellsAndNets) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(9);
  GoldenWireSource wire(quick_tc());
  const StaResult sta = run_sta(d, lib, wire);
  std::ostringstream out;
  write_timing_report(out, d, lib, sta, 3);
  const std::string text = out.str();
  EXPECT_NE(text.find("Startpoint"), std::string::npos);
  EXPECT_NE(text.find("Endpoint"), std::string::npos);
  EXPECT_NE(text.find("data arrival"), std::string::npos);
  EXPECT_NE(text.find("rpt/n"), std::string::npos);  // a net name appears
}

// ---- Incremental STA ----

class IncrementalSeeded : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSeeded, MatchesFullRerunAfterRandomSwaps) {
  const auto lib = cell::CellLibrary::make_default();
  Design d = make_design(GetParam());
  GoldenWireSource wire_inc(quick_tc());
  IncrementalSta inc(d, lib, wire_inc, StaConfig{});

  std::mt19937_64 rng(GetParam() * 31);
  std::uniform_int_distribution<std::size_t> pick_inst(0, d.instances.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_cell(0, lib.size() - 1);

  for (int swap = 0; swap < 5; ++swap) {
    // Swap to a cell of the same arity so connectivity stays legal.
    InstanceId victim = 0;
    std::uint32_t replacement = 0;
    for (int attempt = 0; attempt < 200; ++attempt) {
      victim = static_cast<InstanceId>(pick_inst(rng));
      const cell::Cell& old_cell = lib.at(d.instances[victim].cell_index);
      const std::size_t candidate = pick_cell(rng);
      const cell::Cell& new_cell = lib.at(candidate);
      if (cell::input_count(new_cell.function) ==
              cell::input_count(old_cell.function) &&
          cell::is_sequential(new_cell.function) ==
              cell::is_sequential(old_cell.function)) {
        replacement = static_cast<std::uint32_t>(candidate);
        break;
      }
    }
    inc.swap_cell(victim, replacement);
    d.instances[victim].cell_index = replacement;

    GoldenWireSource wire_full(quick_tc());
    const StaResult full = run_sta(d, lib, wire_full, StaConfig{});
    ASSERT_EQ(full.endpoint_arrival.size(), inc.result().endpoint_arrival.size());
    for (std::size_t e = 0; e < full.endpoint_arrival.size(); ++e)
      EXPECT_NEAR(inc.result().endpoint_arrival[e], full.endpoint_arrival[e],
                  1e-15 + 1e-9 * full.endpoint_arrival[e])
          << "swap " << swap << " endpoint " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeeded, ::testing::Range(1, 7));

TEST(Incremental, NoopSwapTouchesOnlyLocalCone) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(11);
  GoldenWireSource wire(quick_tc());
  IncrementalSta inc(d, lib, wire, StaConfig{});

  // Swapping an instance to its own cell changes nothing; the engine may
  // re-check the instance and its fanin drivers but must not flood the design.
  const InstanceId victim = d.nets[0].loads[0];
  const std::size_t touched =
      inc.swap_cell(victim, d.instances[victim].cell_index);
  EXPECT_LE(touched, d.instances.size() / 2);
}

TEST(Incremental, UpsizeReducesConeArrival) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(13);
  GoldenWireSource wire(quick_tc());
  IncrementalSta inc(d, lib, wire, StaConfig{});
  const double before = inc.worst_arrival();

  // Upsize some driver on a critical-path stage (same function, 2x drive);
  // walk the worst path until a stage with an available upsize is found.
  const TimingPath path = worst_paths(d, inc.result(), 1).front();
  for (const PathStage& stage : path.stages) {
    const cell::Cell& old_cell = lib.at(d.instances[stage.instance].cell_index);
    for (std::size_t i = 0; i < lib.size(); ++i) {
      if (lib.at(i).function == old_cell.function &&
          lib.at(i).drive_strength == old_cell.drive_strength * 2) {
        inc.swap_cell(stage.instance, static_cast<std::uint32_t>(i));
        // Stronger drive on a critical stage shouldn't make the whole design
        // dramatically worse; typically it helps the worst path.
        EXPECT_LT(inc.worst_arrival(), before * 1.02);
        return;
      }
    }
  }
  GTEST_SKIP() << "no stronger drive available anywhere on the worst path";
}

// ---- report_timing views over the incrementally maintained StaResult ----

TEST(ReportIncremental, ViewsStayConsistentAfterEachEdit) {
  const auto lib = cell::CellLibrary::make_default();
  GoldenWireSource wire(quick_tc());
  IncrementalSta inc(make_design(19), lib, wire, StaConfig{});
  std::mt19937_64 rng(19 * 101);
  const rcnet::NetGenConfig net_cfg;

  for (int edit = 0; edit < 4; ++edit) {
    (void)apply_random_edit(inc, lib, rng, net_cfg);
    const Design& d = inc.design();
    const StaResult& sta = inc.result();

    // Worst paths: sorted by arrival, stage increments sum to the endpoint
    // arrival, and the reported slack is the endpoint's slack.
    const auto paths = worst_paths(d, sta, 5);
    ASSERT_GE(paths.size(), 2u) << "edit " << edit;
    for (std::size_t i = 1; i < paths.size(); ++i)
      EXPECT_GE(paths[i - 1].arrival, paths[i].arrival) << "edit " << edit;
    EXPECT_EQ(paths.front().arrival, inc.worst_arrival()) << "edit " << edit;
    for (const TimingPath& path : paths) {
      double sum = 0.0;
      for (const PathStage& stage : path.stages)
        sum += stage.gate_delay + stage.wire_delay;
      EXPECT_NEAR(sum, path.arrival, 1e-15 + 1e-9 * path.arrival)
          << "edit " << edit << " endpoint u" << path.endpoint;
      EXPECT_EQ(path.required, sta.required[path.endpoint]);
      EXPECT_EQ(path.slack, sta.slack[path.endpoint]);
      EXPECT_EQ(path.slack, path.required - path.arrival);
    }

    // Slack ordering: endpoint_slack aligns with per-instance slack, and the
    // worst endpoint slack is what worst_slack() reports.
    double min_slack = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < d.endpoints.size(); ++e) {
      EXPECT_EQ(sta.endpoint_slack[e], sta.slack[d.endpoints[e]])
          << "edit " << edit << " endpoint " << e;
      min_slack = std::min(min_slack, sta.endpoint_slack[e]);
    }
    EXPECT_EQ(min_slack, inc.worst_slack()) << "edit " << edit;

    // The formatted report carries the new required/slack lines.
    std::ostringstream out;
    write_timing_report(out, d, lib, sta, 2);
    const std::string text = out.str();
    EXPECT_NE(text.find("data required"), std::string::npos);
    EXPECT_NE(text.find("slack"), std::string::npos);
  }
}

TEST(Incremental, SwapValidation) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(17);
  GoldenWireSource wire(quick_tc());
  IncrementalSta inc(d, lib, wire, StaConfig{});
  EXPECT_THROW(inc.swap_cell(static_cast<InstanceId>(d.instances.size()), 0),
               std::invalid_argument);
  EXPECT_THROW(inc.swap_cell(0, static_cast<std::uint32_t>(lib.size())),
               std::invalid_argument);
}

}  // namespace
