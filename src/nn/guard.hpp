/// \file guard.hpp
/// NaN/Inf guards at model layer boundaries.
///
/// A corrupted weight file, an exploded activation, or a pathological input
/// turns the forward pass into a silent garbage generator: downstream STA
/// happily propagates NaN arrivals. The guard converts that into a typed
/// NonFiniteActivationError at the first layer boundary where a non-finite
/// value appears, which the serving path maps to ErrorCode
/// kNonFiniteActivation and degrades to the analytic baseline.
///
/// The scan is O(rows*cols) per guarded boundary — an order of magnitude
/// cheaper than the matmul that produced the activation — and can be switched
/// off globally (set_finite_guard) for closed-loop training experiments.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace gnntrans::nn {

/// Thrown when a guarded boundary sees a NaN or Inf.
class NonFiniteActivationError : public std::runtime_error {
 public:
  NonFiniteActivationError(std::string stage, std::size_t row, std::size_t col);

  /// The boundary that caught the value ("gnn_forward", "heads", ...).
  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }

 private:
  std::string stage_;
};

/// Globally enables/disables boundary scans (default: enabled).
void set_finite_guard(bool enabled) noexcept;
[[nodiscard]] bool finite_guard_enabled() noexcept;

/// RAII toggle for tests/benchmarks.
class FiniteGuardScope {
 public:
  explicit FiniteGuardScope(bool enabled)
      : previous_(finite_guard_enabled()) {
    set_finite_guard(enabled);
  }
  ~FiniteGuardScope() { set_finite_guard(previous_); }
  FiniteGuardScope(const FiniteGuardScope&) = delete;
  FiniteGuardScope& operator=(const FiniteGuardScope&) = delete;

 private:
  bool previous_;
};

/// Throws NonFiniteActivationError if the guard is enabled and \p t contains
/// a NaN/Inf. No-op on undefined tensors and when the guard is off.
void guard_finite(const tensor::Tensor& t, const char* stage);

}  // namespace gnntrans::nn
