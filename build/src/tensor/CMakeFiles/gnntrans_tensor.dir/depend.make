# Empty dependencies file for gnntrans_tensor.
# This may be replaced when dependencies are built.
