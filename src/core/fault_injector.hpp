/// \file fault_injector.hpp
/// Deterministic fault injection for the serving path.
///
/// Every error branch in estimate_batch (validation, featurization, forward,
/// non-finite guard, deadline) is reachable through this injector, so tests
/// exercise the degradation ladder without hand-crafting a broken net per
/// failure class. Decisions are a pure hash of (seed, site, key): the same
/// net fails at the same site for any thread count, call order, or batch
/// split — which is what makes the fault-injection determinism tests
/// meaningful.
///
/// The injector is compiled into release builds but inert unless armed: the
/// hot-path cost when disabled is one relaxed atomic load per site check.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace gnntrans::core {

/// Where in the per-net serving pipeline a fault can be injected. Sites 0-4
/// live inside estimate_batch's degradation ladder; sites 5-8 are the network
/// front-end's socket pipeline (src/serve), keyed by accept sequence or the
/// client-chosen request key so soak tests stay deterministic per attempt.
enum class FaultSite : std::uint8_t {
  kValidate = 0,   ///< pre-flight net validation reports failure
  kFeaturize = 1,  ///< feature/path extraction throws
  kForward = 2,    ///< model forward pass throws (worker-exception path)
  kNonFinite = 3,  ///< forward output flagged as NaN/Inf
  kDeadline = 4,   ///< net treated as past the batch deadline
  kAccept = 5,     ///< accepted connection closed before any exchange
  kNetRead = 6,    ///< request frame treated as torn mid-read (conn closed)
  kNetWrite = 7,   ///< response write treated as failed (conn closed)
  kNetDecode = 8,  ///< decoded request treated as malformed (typed reject)
};

inline constexpr std::size_t kFaultSiteCount = 9;

/// Bitmask helpers for Config::site_mask.
[[nodiscard]] constexpr std::uint32_t site_bit(FaultSite site) noexcept {
  return 1u << static_cast<std::uint32_t>(site);
}
/// The estimate_batch ladder sites (the pre-network injector surface).
inline constexpr std::uint32_t kServingSiteMask =
    site_bit(FaultSite::kValidate) | site_bit(FaultSite::kFeaturize) |
    site_bit(FaultSite::kForward) | site_bit(FaultSite::kNonFinite) |
    site_bit(FaultSite::kDeadline);
/// The socket-pipeline sites consulted by serve::NetServer.
inline constexpr std::uint32_t kNetworkSiteMask =
    site_bit(FaultSite::kAccept) | site_bit(FaultSite::kNetRead) |
    site_bit(FaultSite::kNetWrite) | site_bit(FaultSite::kNetDecode);

[[nodiscard]] constexpr const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kValidate: return "validate";
    case FaultSite::kFeaturize: return "featurize";
    case FaultSite::kForward: return "forward";
    case FaultSite::kNonFinite: return "non_finite";
    case FaultSite::kDeadline: return "deadline";
    case FaultSite::kAccept: return "accept";
    case FaultSite::kNetRead: return "net_read";
    case FaultSite::kNetWrite: return "net_write";
    case FaultSite::kNetDecode: return "net_decode";
  }
  return "unknown";
}

/// Seeded, per-site-probability fault source. Thread-safe: configuration
/// writes happen-before should_fail reads via the armed flag, and trigger
/// counters are relaxed atomics.
class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;
    /// Per-site trigger probability in [0, 1].
    double probability = 0.0;
    /// Bitmask of enabled sites (bit = static_cast<int>(FaultSite)); all on
    /// by default.
    std::uint32_t site_mask = (1u << kFaultSiteCount) - 1;
  };

  FaultInjector() = default;

  /// Process-wide injector consulted by the serving path.
  [[nodiscard]] static FaultInjector& global();

  /// Arms the injector. Also resets trigger counters.
  void configure(const Config& config);
  /// Returns the injector to the inert state (should_fail always false).
  void disarm();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// True iff a fault fires at \p site for \p key (typically the net name).
  /// Pure in (seed, site, key) while armed; always false when disarmed.
  /// A true return is counted as one injected fault at that site.
  [[nodiscard]] bool should_fail(FaultSite site, std::string_view key);

  /// Decision only — no counter side effect (for tests predicting outcomes).
  [[nodiscard]] bool would_fail(FaultSite site,
                                std::string_view key) const noexcept;

  /// Faults injected (consumed should_fail() == true) since configure().
  [[nodiscard]] std::uint64_t injected_total() const noexcept;
  [[nodiscard]] std::uint64_t injected_at(FaultSite site) const noexcept;
  void reset_counts() noexcept;

 private:
  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 1;
  /// probability mapped onto the full u64 range; 0 when probability == 0.
  std::uint64_t threshold_ = 0;
  std::uint32_t site_mask_ = 0;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
};

}  // namespace gnntrans::core
