// Over-smoothing study — the paper's motivation for GNNTrans' global
// attention module (Sec. III-D): "GNN's performance will degrade dramatically
// when its depth increases". Sweeps pure-GNN depth and shows accuracy
// saturating then degrading, while GNNTrans reaches long-range context
// through L2 attention layers without paying the deep-stack penalty.
#include <cstdio>

#include "support.hpp"

using namespace gnntrans;
using bench::TablePrinter;

int main() {
  bench::Scale scale = bench::Scale::from_env();
  // This study needs many trainings; shrink the per-design sets.
  scale.train_nets_per_design = std::max<std::size_t>(
      20, scale.train_nets_per_design / 3);
  scale.test_nets_per_design = std::max<std::size_t>(
      20, scale.test_nets_per_design / 3);
  const auto lib = cell::CellLibrary::make_default();

  std::printf("=== Over-smoothing depth sweep (paper Sec. III-D motivation) ===\n\n");

  const auto datasets = bench::build_wire_datasets(scale, lib);
  const auto train_pool = bench::pool_training_records(datasets);
  std::vector<features::WireRecord> test_all;
  for (const bench::BenchmarkData& data : datasets)
    if (!data.spec.training)
      test_all.insert(test_all.end(), data.records.begin(), data.records.end());
  std::printf("train nets: %zu, test nets: %zu\n\n", train_pool.size(),
              test_all.size());

  TablePrinter table({"Model", "Depth", "slew R^2", "delay R^2"}, {14, 8, 12, 12});
  table.print_header();

  // Pure GraphSage at increasing depth: the over-smoothing victim.
  for (std::size_t depth : {2u, 4u, 8u, 16u}) {
    core::WireTimingEstimator::Options opt;
    opt.kind = nn::ModelKind::kGraphSage;
    opt.model.hidden_dim = scale.hidden_dim;
    opt.model.gnn_layers = depth;
    opt.train.epochs = scale.epochs;
    const auto est = core::WireTimingEstimator::train(train_pool, opt);
    const core::Evaluation eval = est.evaluate(test_all);
    table.print_row({"GraphSage", std::to_string(depth),
                     TablePrinter::fmt(eval.slew_r2),
                     TablePrinter::fmt(eval.delay_r2)});
  }

  // GCNII at the same depths: residual+identity partially rescues depth.
  for (std::size_t depth : {4u, 16u}) {
    core::WireTimingEstimator::Options opt;
    opt.kind = nn::ModelKind::kGcnii;
    opt.model.hidden_dim = scale.hidden_dim;
    opt.model.gnn_layers = depth;
    opt.train.epochs = scale.epochs;
    const auto est = core::WireTimingEstimator::train(train_pool, opt);
    const core::Evaluation eval = est.evaluate(test_all);
    table.print_row({"GCNII", std::to_string(depth),
                     TablePrinter::fmt(eval.slew_r2),
                     TablePrinter::fmt(eval.delay_r2)});
  }

  // GNNTrans: shallow local stack + global attention instead of depth.
  for (std::size_t l2 : {1u, 2u, 3u}) {
    const auto est = bench::train_gnntrans(scale, train_pool, scale.gnn_layers, l2);
    const core::Evaluation eval = est.evaluate(test_all);
    table.print_row({"GNNTrans", std::to_string(scale.gnn_layers) + "+" +
                                     std::to_string(l2),
                     TablePrinter::fmt(eval.slew_r2),
                     TablePrinter::fmt(eval.delay_r2)});
  }

  std::printf(
      "\nExpected shape: GraphSage accuracy peaks at moderate depth and decays "
      "when stacked\ndeeper (over-smoothing); GCNII degrades more slowly "
      "(residual + identity map);\nGNNTrans gets long-range context from "
      "attention without deep stacking.\n");
  return 0;
}
