file(REMOVE_RECURSE
  "libgnntrans_bench_support.a"
)
