// Tests for Table I feature extraction, standardization, sample assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "features/dataset.hpp"
#include "features/features.hpp"
#include "netlist/generate.hpp"
#include "rcnet/generate.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::features;

/// 3-node chain 0 -10Ω- 1 -20Ω- 2 with caps 1,2,3 fF, sink {2}.
rcnet::RcNet chain3() {
  rcnet::RcNet net;
  net.name = "c3";
  net.source = 0;
  net.sinks = {2};
  net.ground_cap = {1e-15, 2e-15, 3e-15};
  net.resistors = {{0, 1, 10.0}, {1, 2, 20.0}};
  return net;
}

NetContext fixed_context(const rcnet::RcNet& net) {
  NetContext ctx;
  ctx.input_slew = 40e-12;
  ctx.driver_resistance = 200.0;
  ctx.driver_strength = 2;
  ctx.driver_function = 1;
  ctx.loads.assign(net.sinks.size(), SinkLoad{4, 6, 2e-15});
  return ctx;
}

TEST(Features, NodeFeatureValuesHandChecked) {
  const rcnet::RcNet net = chain3();
  const RawFeatures rf = extract_features(net, fixed_context(net));
  ASSERT_EQ(rf.x.size(), 3 * kNodeFeatureCount);

  // Node 1: one input neighbor (node 0), one output neighbor (node 2).
  const float* n1 = rf.x.data() + 1 * kNodeFeatureCount;
  EXPECT_FLOAT_EQ(n1[kCapValue], 2.0f);          // 2 fF
  EXPECT_FLOAT_EQ(n1[kNumInputNodes], 1.0f);
  EXPECT_FLOAT_EQ(n1[kNumOutputNodes], 1.0f);
  EXPECT_FLOAT_EQ(n1[kTotInputCap], 1.0f);       // node 0's 1 fF
  EXPECT_FLOAT_EQ(n1[kTotOutputCap], 3.0f);      // node 2's 3 fF
  EXPECT_FLOAT_EQ(n1[kNumConnectedRes], 2.0f);
  EXPECT_FLOAT_EQ(n1[kTotInputRes], 0.010f);     // 10 ohm in kOhm
  EXPECT_FLOAT_EQ(n1[kTotOutputRes], 0.020f);
  // Downstream cap at node 1 = caps of {1, 2} = 5 fF.
  EXPECT_FLOAT_EQ(n1[kDownstreamCap], 5.0f);
  // Stage delay into node 1 = Elmore(1) - Elmore(0) = 10 * (2+3)fF = 50 fs.
  EXPECT_NEAR(n1[kStageDelay], 0.05f, 1e-5f);
}

TEST(Features, NodeFeatureCountMatchesTableOne) {
  // Table I lists exactly ten node rows; driver context must NOT leak into
  // node features (it is path-only information in the paper). Path features
  // are Table I's eight plus the two-moment impulse-spread slew metric.
  EXPECT_EQ(kNodeFeatureCount, 10u);
  EXPECT_EQ(kPathFeatureCount, 9u);
}

TEST(Features, PathFeatureValuesHandChecked) {
  const rcnet::RcNet net = chain3();
  const RawFeatures rf = extract_features(net, fixed_context(net));
  ASSERT_EQ(rf.h.size(), kPathFeatureCount);
  const float* h = rf.h.data();
  EXPECT_FLOAT_EQ(h[kInputSlew], 40.0f);
  EXPECT_FLOAT_EQ(h[kDriveStrength], 2.0f);
  EXPECT_FLOAT_EQ(h[kDriveFunction], 1.0f);
  EXPECT_FLOAT_EQ(h[kLoadStrength], 4.0f);
  EXPECT_FLOAT_EQ(h[kLoadFunction], 6.0f);
  EXPECT_FLOAT_EQ(h[kLoadCeff], 2.0f);
  // Elmore at sink: 10*(2+3)fF + 20*3fF = 50 + 60 = 110 fs = 0.11 ps.
  EXPECT_NEAR(h[kElmoreDelay], 0.11f, 1e-5f);
  EXPECT_GT(h[kD2mDelay], 0.0f);
  EXPECT_LE(h[kD2mDelay], h[kElmoreDelay] * 1.001f);
}

TEST(Features, MisalignedLoadsThrow) {
  const rcnet::RcNet net = chain3();
  NetContext ctx = fixed_context(net);
  ctx.loads.clear();
  EXPECT_THROW(extract_features(net, ctx), std::invalid_argument);
}

TEST(Features, RandomContextCoversLoads) {
  const auto lib = cell::CellLibrary::make_default();
  std::mt19937_64 rng(3);
  rcnet::NetGenConfig cfg;
  const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "n");
  const NetContext ctx = random_context(lib, net, rng);
  EXPECT_EQ(ctx.loads.size(), net.sinks.size());
  EXPECT_GT(ctx.input_slew, 0.0);
  EXPECT_GT(ctx.driver_resistance, 0.0);
}

// ---- Records and standardizer ----

std::vector<WireRecord> small_records(std::size_t count = 30,
                                      std::uint64_t seed = 5) {
  const auto lib = cell::CellLibrary::make_default();
  WireDatasetConfig cfg;
  cfg.net_count = count;
  cfg.seed = seed;
  cfg.sim_config.steps = 300;
  return generate_wire_records(cfg, lib);
}

TEST(Dataset, GeneratesRequestedRecordCount) {
  const auto records = small_records();
  EXPECT_EQ(records.size(), 30u);
  for (const WireRecord& r : records) {
    EXPECT_EQ(r.slew_labels.size(), r.net.sinks.size());
    EXPECT_EQ(r.delay_labels.size(), r.net.sinks.size());
    for (double d : r.delay_labels) EXPECT_GT(d, 0.0);
    for (double s : r.slew_labels) EXPECT_GT(s, 0.0);
  }
}

TEST(Dataset, StandardizerNormalizesLabelSpace) {
  const auto records = small_records();
  Standardizer std_;
  std_.fit(records);
  // Round trip.
  EXPECT_NEAR(std_.unstandardize_slew(std_.standardize_slew(3e-11)), 3e-11, 1e-20);
  EXPECT_NEAR(std_.unstandardize_delay(std_.standardize_delay(7e-12)), 7e-12, 1e-20);

  // Standardized labels over the fit set have ~zero mean, ~unit variance.
  double sum = 0.0, sq = 0.0;
  std::size_t n = 0;
  for (const WireRecord& r : records)
    for (double d : r.delay_labels) {
      const double z = std_.standardize_delay(d);
      sum += z;
      sq += z * z;
      ++n;
    }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 1e-6);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(Dataset, MakeSampleBuildsConsistentOperators) {
  const auto records = small_records(10, 7);
  Standardizer std_;
  std_.fit(records);
  for (const WireRecord& rec : records) {
    const nn::GraphSample s = std_.make_sample(rec);
    EXPECT_EQ(s.node_count, rec.net.node_count());
    EXPECT_EQ(s.path_count, rec.net.sinks.size());
    EXPECT_EQ(s.x.rows(), s.node_count);
    EXPECT_EQ(s.x.cols(), kNodeFeatureCount);
    EXPECT_EQ(s.h.rows(), s.path_count);
    EXPECT_EQ(s.attn_mask.size(), s.node_count * s.node_count);
    EXPECT_EQ(s.non_tree, !rec.net.is_tree());

    // Pooling rows sum to 1 (mean over path nodes).
    std::vector<double> row_sum(s.path_count, 0.0);
    for (std::size_t k = 0; k < s.path_pool.nnz(); ++k)
      row_sum[s.path_pool.row_index[k]] += s.path_pool.values[k];
    for (double v : row_sum) EXPECT_NEAR(v, 1.0, 1e-5);

    // Weighted adjacency rows sum to 1 after normalization.
    std::vector<double> adj_sum(s.node_count, 0.0);
    for (std::size_t k = 0; k < s.weighted_adj.nnz(); ++k)
      adj_sum[s.weighted_adj.row_index[k]] += s.weighted_adj.values[k];
    for (double v : adj_sum) EXPECT_NEAR(v, 1.0, 1e-4);

    // Attention mask has self loops.
    for (std::size_t v = 0; v < s.node_count; ++v)
      EXPECT_EQ(s.attn_mask[v * s.node_count + v], 1);
  }
}

TEST(Dataset, MakeSampleWithoutFitThrows) {
  const auto records = small_records(2, 9);
  const Standardizer unfitted;
  EXPECT_THROW(unfitted.make_sample(records.front()), std::logic_error);
}

TEST(Dataset, StandardizerSaveLoadRoundTrip) {
  const auto records = small_records(12, 11);
  Standardizer a;
  a.fit(records);
  std::stringstream buf;
  a.save(buf);
  Standardizer b;
  b.load(buf);
  EXPECT_DOUBLE_EQ(a.standardize_slew(5e-11), b.standardize_slew(5e-11));
  EXPECT_DOUBLE_EQ(a.standardize_delay(5e-12), b.standardize_delay(5e-12));
  // Feature standardization matches too.
  const nn::GraphSample sa = a.make_sample(records.front());
  const nn::GraphSample sb = b.make_sample(records.front());
  for (std::size_t i = 0; i < sa.x.size(); ++i)
    EXPECT_FLOAT_EQ(sa.x.values()[i], sb.x.values()[i]);
}

TEST(Dataset, RecordsFromDesignCoverEveryNet) {
  const auto lib = cell::CellLibrary::make_default();
  netlist::DesignGenConfig cfg;
  cfg.startpoints = 4;
  cfg.levels = 3;
  cfg.cells_per_level = 6;
  cfg.seed = 13;
  const netlist::Design design = netlist::generate_design(cfg, lib, "d");
  sim::TransientConfig tc;
  tc.steps = 300;
  sim::GoldenTimer timer(tc);
  const auto records = records_from_design(design, lib, timer);
  EXPECT_EQ(records.size(), design.net_count());
  for (const WireRecord& r : records)
    EXPECT_EQ(r.context.loads.size(), r.net.sinks.size());
}

TEST(Dataset, DeterministicGeneration) {
  const auto a = small_records(8, 21);
  const auto b = small_records(8, 21);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].delay_labels.size(), b[i].delay_labels.size());
    for (std::size_t q = 0; q < a[i].delay_labels.size(); ++q)
      EXPECT_DOUBLE_EQ(a[i].delay_labels[q], b[i].delay_labels[q]);
  }
}

}  // namespace
