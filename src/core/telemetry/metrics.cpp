#include "core/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/telemetry/log.hpp"

namespace gnntrans::telemetry {

namespace {

/// Lock-free add for atomic<double> (fetch_add on floating point is C++20
/// but not universally lowered well; a CAS loop is portable and the slot is
/// per-thread-sharded, so the loop almost never retries).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (expected < value &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Shortest round-trip double formatting (%.17g trimmed is overkill for
/// exposition; %g at 12 digits keeps bucket bounds like 2e-05 readable).
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help_text(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// HistogramData

HistogramData::HistogramData(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("HistogramData: bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> HistogramData::default_latency_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.resize(bounds.size() - 2);  // stop the ladder at exactly 1 s
  return bounds;
}

void HistogramData::observe(double value) {
  // Prometheus "le" semantics: value lands in the first bucket whose upper
  // bound is >= value; above every bound it lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

void HistogramData::adopt(std::vector<std::uint64_t> counts,
                          std::uint64_t count, double sum) {
  if (counts.size() != bounds_.size() + 1)
    throw std::invalid_argument("HistogramData::adopt: count vector mismatch");
  counts_ = std::move(counts);
  count_ = count;
  sum_ = sum;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count_ == 0 && other.sum_ == 0.0 && bounds_ != other.bounds_)
    return;  // nothing to take
  if (count_ == 0 && sum_ == 0.0 && bounds_ != other.bounds_) {
    *this = other;  // adopt the populated side's bounds
    return;
  }
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("HistogramData::merge: bucket bounds differ");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double HistogramData::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double lo = 0.0;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    const bool overflow = i >= bounds_.size();
    const double hi = overflow ? lo : bounds_[i];
    if (c > 0.0 && cumulative + c >= target) {
      if (overflow) return bounds_.empty() ? 0.0 : bounds_.back();
      const double frac = (target - cumulative) / c;
      return lo + frac * (hi - lo);
    }
    cumulative += c;
    lo = hi;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void HistogramData::reset() {
  std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
  count_ = 0;
  sum_ = 0.0;
}

// ---------------------------------------------------------------------------
// Registry state

namespace detail {

std::size_t this_thread_shard() noexcept {
  return this_thread_id() % kMetricShards;
}

struct CounterState {
  std::string name, help;
  std::array<ShardCell, kMetricShards> cells;
};

struct GaugeState {
  std::string name, help;
  std::atomic<double> value{0.0};
};

struct HistogramState {
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counts;  ///< bounds + overflow
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  HistogramState(std::string name_in, std::string help_in,
                 std::vector<double> bounds_in)
      : name(std::move(name_in)), help(std::move(help_in)),
        bounds(std::move(bounds_in)) {
    for (Shard& shard : shards)
      shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds.size() + 1);
  }

  std::string name, help;
  std::vector<double> bounds;
  std::array<Shard, kMetricShards> shards;

  // Exemplar slot (annotate_exemplar): rare writes from sampled requests
  // only, so a plain mutex is fine. value < 0 means "none yet".
  std::mutex exemplar_mutex;
  double exemplar_value = -1.0;
  std::uint64_t exemplar_trace_id = 0;
  char exemplar_label[48] = {0};
};

}  // namespace detail

void Counter::inc(std::uint64_t n) const noexcept {
  if (!state_) return;
  state_->cells[detail::this_thread_shard()].value.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  if (!state_) return 0;
  std::uint64_t total = 0;
  for (const detail::ShardCell& cell : state_->cells)
    total += cell.value.load(std::memory_order_relaxed);
  return total;
}

void Gauge::set(double value) const noexcept {
  if (state_) state_->value.store(value, std::memory_order_relaxed);
}

void Gauge::add(double delta) const noexcept {
  if (state_) atomic_add(state_->value, delta);
}

void Gauge::set_max(double value) const noexcept {
  if (state_) atomic_max(state_->value, value);
}

double Gauge::value() const noexcept {
  return state_ ? state_->value.load(std::memory_order_relaxed) : 0.0;
}

void Histogram::observe(double value) const noexcept {
  if (!state_) return;
  detail::HistogramState::Shard& shard =
      state_->shards[detail::this_thread_shard()];
  const auto it = std::lower_bound(state_->bounds.begin(),
                                   state_->bounds.end(), value);
  shard.counts[static_cast<std::size_t>(it - state_->bounds.begin())]
      .fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.sum, value);
}

void Histogram::annotate_exemplar(double value, std::uint64_t trace_id,
                                  std::string_view label) const noexcept {
  if (!state_ || !(value >= 0.0)) return;
  const std::lock_guard<std::mutex> lock(state_->exemplar_mutex);
  if (value < state_->exemplar_value) return;
  state_->exemplar_value = value;
  state_->exemplar_trace_id = trace_id;
  const std::size_t n =
      std::min(sizeof(state_->exemplar_label) - 1, label.size());
  std::memcpy(state_->exemplar_label, label.data(), n);
  state_->exemplar_label[n] = '\0';
}

HistogramData Histogram::snapshot() const {
  if (!state_) return HistogramData(std::vector<double>{});
  HistogramData data(state_->bounds);
  // Merge shards through the private fields via observe-free accumulation:
  // rebuild counts/sum/count directly.
  std::vector<std::uint64_t> counts(state_->bounds.size() + 1, 0);
  std::uint64_t count = 0;
  double sum = 0.0;
  for (const detail::HistogramState::Shard& shard : state_->shards) {
    for (std::size_t b = 0; b < counts.size(); ++b)
      counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    count += shard.count.load(std::memory_order_relaxed);
    sum += shard.sum.load(std::memory_order_relaxed);
  }
  data.adopt(std::move(counts), count, sum);
  return data;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // deques: stable addresses across registration, required by the handles.
  std::deque<detail::CounterState> counters;
  std::deque<detail::GaugeState> gauges;
  std::deque<detail::HistogramState> histograms;
  enum class Kind { kCounter, kGauge, kHistogram };
  std::unordered_map<std::string, std::pair<Kind, std::size_t>> by_name;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  if (!impl_) impl_ = new Impl();
  return *impl_;
}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  const auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.first != Impl::Kind::kCounter)
      throw std::invalid_argument("metric registered with another type: " +
                                  std::string(name));
    return Counter(&im.counters[it->second.second]);
  }
  im.counters.emplace_back();
  im.counters.back().name = std::string(name);
  im.counters.back().help = std::string(help);
  im.by_name.emplace(std::string(name),
                     std::make_pair(Impl::Kind::kCounter, im.counters.size() - 1));
  return Counter(&im.counters.back());
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  const auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.first != Impl::Kind::kGauge)
      throw std::invalid_argument("metric registered with another type: " +
                                  std::string(name));
    return Gauge(&im.gauges[it->second.second]);
  }
  im.gauges.emplace_back();
  im.gauges.back().name = std::string(name);
  im.gauges.back().help = std::string(help);
  im.by_name.emplace(std::string(name),
                     std::make_pair(Impl::Kind::kGauge, im.gauges.size() - 1));
  return Gauge(&im.gauges.back());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds,
                                     std::string_view help) {
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end()))
    throw std::invalid_argument("histogram bounds must be ascending: " +
                                std::string(name));
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  const auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.first != Impl::Kind::kHistogram)
      throw std::invalid_argument("metric registered with another type: " +
                                  std::string(name));
    return Histogram(&im.histograms[it->second.second]);
  }
  im.histograms.emplace_back(std::string(name), std::string(help),
                             std::move(upper_bounds));
  im.by_name.emplace(std::string(name), std::make_pair(Impl::Kind::kHistogram,
                                                       im.histograms.size() - 1));
  return Histogram(&im.histograms.back());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(im.counters.size());
  for (detail::CounterState& state : im.counters)
    snap.counters.push_back({state.name, state.help, Counter(&state).value()});
  snap.gauges.reserve(im.gauges.size());
  for (detail::GaugeState& state : im.gauges)
    snap.gauges.push_back({state.name, state.help, Gauge(&state).value()});
  snap.histograms.reserve(im.histograms.size());
  for (detail::HistogramState& state : im.histograms) {
    MetricsSnapshot::HistogramValue value{state.name, state.help,
                                          Histogram(&state).snapshot()};
    {
      const std::lock_guard<std::mutex> exemplar_lock(state.exemplar_mutex);
      if (state.exemplar_value >= 0.0) {
        value.has_exemplar = true;
        value.exemplar_value = state.exemplar_value;
        value.exemplar_trace_id = state.exemplar_trace_id;
        value.exemplar_label = state.exemplar_label;
      }
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  for (detail::CounterState& state : im.counters)
    for (detail::ShardCell& cell : state.cells)
      cell.value.store(0, std::memory_order_relaxed);
  for (detail::GaugeState& state : im.gauges)
    state.value.store(0.0, std::memory_order_relaxed);
  for (detail::HistogramState& state : im.histograms) {
    for (detail::HistogramState::Shard& shard : state.shards) {
      for (std::atomic<std::uint64_t>& c : shard.counts)
        c.store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> exemplar_lock(state.exemplar_mutex);
    state.exemplar_value = -1.0;
    state.exemplar_trace_id = 0;
    state.exemplar_label[0] = '\0';
  }
}

std::size_t MetricsRegistry::metric_count() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mutex);
  return im.by_name.size();
}

// ---------------------------------------------------------------------------
// Exports

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  const auto header = [&out](const std::string& name, const std::string& help,
                             const char* type) {
    if (!help.empty())
      out += "# HELP " + sanitize_metric_name(name) + " " +
             escape_help_text(help) + "\n";
    out += "# TYPE " + sanitize_metric_name(name) + " " + type + "\n";
  };
  for (const CounterValue& c : counters) {
    header(c.name, c.help, "counter");
    out += sanitize_metric_name(c.name) + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : gauges) {
    header(g.name, g.help, "gauge");
    out += sanitize_metric_name(g.name) + " " + format_double(g.value) + "\n";
  }
  for (const HistogramValue& h : histograms) {
    header(h.name, h.help, "histogram");
    const std::string name = sanitize_metric_name(h.name);
    // OpenMetrics-style exemplar suffix, appended to the first bucket line
    // whose upper bound covers the exemplar value (tail witness for /tracez).
    std::string exemplar;
    if (h.has_exemplar) {
      char id[32];
      std::snprintf(id, sizeof(id), "0x%016llx",
                    static_cast<unsigned long long>(h.exemplar_trace_id));
      exemplar = std::string(" # {trace_id=\"") + id + "\",net=\"" +
                 escape_label_value(h.exemplar_label) + "\"} " +
                 format_double(h.exemplar_value);
    }
    bool exemplar_emitted = false;
    std::uint64_t cumulative = 0;
    const std::vector<std::uint64_t>& counts = h.data.bucket_counts();
    for (std::size_t b = 0; b < h.data.bounds().size(); ++b) {
      cumulative += counts[b];
      out += name + "_bucket{le=\"" +
             escape_label_value(format_double(h.data.bounds()[b])) + "\"} " +
             std::to_string(cumulative);
      if (h.has_exemplar && !exemplar_emitted &&
          h.exemplar_value <= h.data.bounds()[b]) {
        out += exemplar;
        exemplar_emitted = true;
      }
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.data.count());
    if (h.has_exemplar && !exemplar_emitted) out += exemplar;
    out += "\n";
    out += name + "_sum " + format_double(h.data.sum()) + "\n";
    out += name + "_count " + std::to_string(h.data.count()) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  out += "\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(counters[i].name) +
           "\":" + std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(gauges[i].name) +
           "\":" + format_double(gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i) out += ",";
    const HistogramValue& h = histograms[i];
    out += "\"" + json_escape(h.name) + "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.data.bounds().size(); ++b) {
      if (b) out += ",";
      out += format_double(h.data.bounds()[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.data.bucket_counts().size(); ++b) {
      if (b) out += ",";
      out += std::to_string(h.data.bucket_counts()[b]);
    }
    out += "],\"sum\":" + format_double(h.data.sum()) +
           ",\"count\":" + std::to_string(h.data.count());
    if (h.has_exemplar) {
      char id[32];
      std::snprintf(id, sizeof(id), "0x%016llx",
                    static_cast<unsigned long long>(h.exemplar_trace_id));
      out += std::string(",\"exemplar\":{\"trace_id\":\"") + id +
             "\",\"label\":\"" + json_escape(h.exemplar_label) +
             "\",\"value\":" + format_double(h.exemplar_value) + "}";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace gnntrans::telemetry
