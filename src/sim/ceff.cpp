#include "sim/ceff.hpp"

#include <algorithm>
#include <cmath>

namespace gnntrans::sim {

PiModel reduce_to_pi(const rcnet::RcNet& net) {
  // Driving-point admittance moments from the voltage-transfer moments of the
  // source's neighbours: with H_j(s) = 1 - m1_j s + m2_j s^2 - m3_j s^3,
  //   Y(s) = sum_j g_j (1 - H_j(s)) = y1 s + y2 s^2 + y3 s^3 + ...
  // so y1 = sum g_j m1_j (== C_total), y2 = -sum g_j m2_j, y3 = sum g_j m3_j.
  const Moments moments = compute_moments(net);

  // The source node's own grounded capacitance loads the driver directly
  // (it has no transfer function; it *is* the driving point).
  double source_cap = net.ground_cap[net.source];
  for (const rcnet::CouplingCap& cc : net.couplings)
    if (cc.victim_node == net.source) source_cap += cc.farads;

  double y1 = source_cap, y2 = 0.0, y3 = 0.0;
  for (const rcnet::Resistor& r : net.resistors) {
    rcnet::NodeId other;
    if (r.a == net.source)
      other = r.b;
    else if (r.b == net.source)
      other = r.a;
    else
      continue;
    const double g = 1.0 / r.ohms;
    y1 += g * moments.m1[other];
    y2 -= g * moments.m2[other];
    y3 += g * moments.m3[other];
  }

  PiModel pi;
  // O'Brien-Savarino: c_far = y2^2 / y3, r = -y3^2 / y2^3,
  // c_near = y1 - y2^2 / y3. Guard degenerate moment combinations.
  if (std::abs(y3) > 1e-300 && std::abs(y2) > 1e-300) {
    const double c_far = y2 * y2 / y3;
    const double r = -(y3 * y3) / (y2 * y2 * y2);
    const double c_near = y1 - c_far;
    if (c_far > 0.0 && r > 0.0 && c_near >= 0.0) {
      pi.c_far = c_far;
      pi.r = r;
      pi.c_near = c_near;
      return pi;
    }
  }
  // Fallback: everything lumped at the driver.
  pi.c_near = y1;
  return pi;
}

double effective_capacitance(const PiModel& pi, double transition_time) {
  if (pi.r <= 0.0 || pi.c_far <= 0.0) return pi.total_cap();
  const double tr = std::max(transition_time, 1e-15);
  const double tau = pi.r * pi.c_far;
  // Average-current matching for a ramp of duration tr: the far capacitor
  // contributes its charge scaled by the fraction delivered inside the ramp,
  //   k = 1 - (tau / tr) * (1 - exp(-tr / tau)).
  const double k = 1.0 - (tau / tr) * (1.0 - std::exp(-tr / tau));
  const double ceff = pi.c_near + k * pi.c_far;
  return std::clamp(ceff, pi.c_near, pi.total_cap());
}

double effective_capacitance(const rcnet::RcNet& net, double transition_time) {
  return effective_capacitance(reduce_to_pi(net), transition_time);
}

}  // namespace gnntrans::sim
