/// \file parallel.hpp
/// Synchronous data-parallel training (the paper's multi-GPU analogue).
///
/// The paper trains on 4 V100s in parallel for a 7.2x speedup; the same
/// synchronous data-parallel scheme is implemented here over CPU threads:
/// each worker owns a full model replica, computes gradients over its shard
/// of a mini-batch, the master accumulates the shard gradients, applies one
/// Adam step, and broadcasts updated weights back to the replicas.
///
/// Semantics: one optimizer step per mini-batch of `workers` samples (the
/// sequential trainer steps per sample), so epoch loss trajectories differ
/// slightly; both minimize the same objective.
#pragma once

#include "core/trainer.hpp"
#include "nn/models.hpp"

namespace gnntrans::core {

/// Data-parallel training knobs.
struct ParallelTrainConfig {
  TrainConfig base;
  std::size_t workers = 2;  ///< model replicas / threads per step
};

/// Trains \p model in place; returns the usual report. With workers == 1 this
/// degrades to mini-batch-of-1 training equivalent to train_model (modulo
/// learning-rate schedule granularity).
TrainReport train_model_parallel(nn::WireModel& model,
                                 const std::vector<nn::GraphSample>& samples,
                                 const ParallelTrainConfig& config);

}  // namespace gnntrans::core
