#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/matrix.hpp"

namespace gnntrans::linalg {

CsrMatrix CsrMatrix::from_triplets(std::size_t n, std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.n_ = n;
  m.row_starts_.assign(n + 1, 0);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < n; ++r) {
    m.row_starts_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t col = triplets[i].col;
      assert(col < n);
      double acc = 0.0;
      while (i < triplets.size() && triplets[i].row == r && triplets[i].col == col) {
        acc += triplets[i].value;
        ++i;
      }
      m.col_indices_.push_back(col);
      m.values_.push_back(acc);
    }
  }
  m.row_starts_[n] = m.values_.size();
  return m;
}

std::vector<double> CsrMatrix::matvec(std::span<const double> x) const {
  assert(x.size() == n_);
  std::vector<double> y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k)
      acc += values_[k] * x[col_indices_[k]];
    y[r] = acc;
  }
  return y;
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k)
      if (col_indices_[k] == r) d[r] = values_[k];
  return d;
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double tol, std::size_t max_iters) {
  const std::size_t n = a.size();
  assert(b.size() == n);

  CgResult result;
  result.x.assign(n, 0.0);

  std::vector<double> r(b.begin(), b.end());
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity on zero diagonal.
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  std::vector<double> p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < max_iters; ++it) {
    const std::vector<double> ap = a.matvec(p);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);

    result.residual_norm = norm2(r);
    result.iterations = it + 1;
    if (result.residual_norm <= tol * b_norm) {
      result.converged = true;
      return result;
    }

    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = norm2(r);
  return result;
}

}  // namespace gnntrans::linalg
