#include "netlist/report.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

namespace gnntrans::netlist {

TimingPath trace_critical_path(const Design& design, const StaResult& sta,
                               InstanceId endpoint) {
  TimingPath path;
  path.endpoint = endpoint;
  path.arrival = sta.arrival[endpoint];
  if (endpoint < sta.required.size()) {
    path.required = sta.required[endpoint];
    path.slack = sta.slack[endpoint];
  }

  // Walk critical links backwards: endpoint -> driver -> ... -> launch FF.
  std::vector<PathStage> reversed;
  InstanceId v = endpoint;
  // Guard against malformed traces (at most one stage per instance).
  for (std::size_t guard = 0; guard <= design.instances.size(); ++guard) {
    PathStage stage;
    stage.instance = v;
    stage.gate_delay = sta.gate_delay[v];
    stage.arrival = sta.arrival[v];
    const std::uint32_t in_net = sta.critical_net[v];
    reversed.push_back(stage);
    if (in_net == StaResult::kNone) break;  // reached a startpoint
    // The wire delay into v belongs to the edge from the driver.
    reversed.back().wire_delay = 0.0;
    const InstanceId driver = design.nets[in_net].driver;
    // Record the driver->v hop on the driver's stage when we add it next
    // loop; remember it here:
    reversed.back().net = in_net;
    v = driver;
  }
  std::reverse(reversed.begin(), reversed.end());

  // Shift the (net, wire delay) bookkeeping onto the upstream stage: stage i
  // drives stage i+1 through stage(i+1).net recorded above.
  for (std::size_t i = 0; i + 1 < reversed.size(); ++i) {
    reversed[i].net = reversed[i + 1].net;
    reversed[i].wire_delay = sta.critical_wire_delay[reversed[i + 1].instance];
  }
  if (!reversed.empty()) {
    reversed.back().net = Design::kNoNet;
    reversed.back().wire_delay = 0.0;
  }
  path.stages = std::move(reversed);
  return path;
}

std::vector<TimingPath> worst_paths(const Design& design, const StaResult& sta,
                                    std::size_t k) {
  std::vector<std::size_t> order(design.endpoints.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sta.endpoint_arrival[a] > sta.endpoint_arrival[b];
  });
  std::vector<TimingPath> paths;
  for (std::size_t i = 0; i < order.size() && i < k; ++i)
    paths.push_back(trace_critical_path(design, sta, design.endpoints[order[i]]));
  return paths;
}

std::string format_path(const Design& design, const cell::CellLibrary& library,
                        const TimingPath& path) {
  std::ostringstream out;
  auto cell_name = [&](InstanceId v) {
    return library.at(design.instances[v].cell_index).name;
  };
  if (path.stages.empty()) return "  <empty path>\n";

  out << "Startpoint: u" << path.stages.front().instance << " ("
      << cell_name(path.stages.front().instance) << ")\n";
  out << "Endpoint:   u" << path.endpoint << " (" << cell_name(path.endpoint)
      << ")\n";
  char line[128];
  std::snprintf(line, sizeof(line), "  %-26s %10s %10s\n", "point", "incr(ps)",
                "path(ps)");
  out << line;

  double running = 0.0;
  for (std::size_t i = 0; i < path.stages.size(); ++i) {
    const PathStage& stage = path.stages[i];
    running += stage.gate_delay;
    std::string label = "u" + std::to_string(stage.instance) + "/" +
                        (i == 0 ? "Q" : (i + 1 == path.stages.size() ? "D" : "Y")) +
                        " " + cell_name(stage.instance);
    std::snprintf(line, sizeof(line), "  %-26s %10.2f %10.2f\n", label.c_str(),
                  stage.gate_delay * 1e12, running * 1e12);
    out << line;
    if (stage.net != Design::kNoNet) {
      running += stage.wire_delay;
      std::snprintf(line, sizeof(line), "  %-26s %10.2f %10.2f\n",
                    design.nets[stage.net].rc.name.c_str(),
                    stage.wire_delay * 1e12, running * 1e12);
      out << line;
    }
  }
  std::snprintf(line, sizeof(line), "  %-26s %10s %10.2f\n", "data arrival", "",
                path.arrival * 1e12);
  out << line;
  std::snprintf(line, sizeof(line), "  %-26s %10s %10.2f\n", "data required",
                "", path.required * 1e12);
  out << line;
  std::snprintf(line, sizeof(line), "  %-26s %10s %10.2f (%s)\n", "slack", "",
                path.slack * 1e12, path.slack < 0.0 ? "VIOLATED" : "MET");
  out << line;
  return out.str();
}

void write_timing_report(std::ostream& out, const Design& design,
                         const cell::CellLibrary& library, const StaResult& sta,
                         std::size_t k) {
  const std::vector<TimingPath> paths = worst_paths(design, sta, k);
  out << "=== timing report: " << design.name << " (" << paths.size()
      << " worst paths) ===\n";
  for (const TimingPath& path : paths) {
    out << "\n" << format_path(design, library, path);
  }
}

}  // namespace gnntrans::netlist
