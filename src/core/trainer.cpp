#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <random>

#include "core/metrics.hpp"
#include "core/telemetry/telemetry.hpp"
#include "tensor/ops.hpp"
#include "tensor/optim.hpp"

namespace gnntrans::core {

namespace {

/// Training metrics in the global registry: epoch progress plus the latest
/// training/validation losses as gauges (scrape-friendly for loss curves).
struct TrainMetrics {
  telemetry::Counter epochs = telemetry::MetricsRegistry::global().counter(
      "gnntrans_train_epochs_total", "Training epochs completed");
  telemetry::Gauge loss = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_train_loss", "Mean training loss of the last epoch");
  telemetry::Gauge val_loss = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_train_validation_loss",
      "Validation loss of the last epoch (0 when validation is disabled)");

  static const TrainMetrics& get() {
    static const TrainMetrics metrics;
    return metrics;
  }
};

}  // namespace

TrainReport train_model(nn::WireModel& model,
                        const std::vector<nn::GraphSample>& samples,
                        const TrainConfig& config) {
  const telemetry::TraceSpan train_span("train_model", "train");
  const auto start = std::chrono::steady_clock::now();
  TrainReport report;
  if (samples.empty()) return report;

  std::vector<tensor::Tensor> params = model.parameters();
  tensor::Adam::Config adam_cfg;
  adam_cfg.learning_rate = config.learning_rate;
  adam_cfg.weight_decay = config.weight_decay;
  tensor::Adam optimizer(params, adam_cfg);

  // Deterministic validation split: the tail of a seeded shuffle.
  std::mt19937_64 rng(config.shuffle_seed);
  std::vector<std::size_t> indices(samples.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  std::shuffle(indices.begin(), indices.end(), rng);
  std::size_t val_count = 0;
  if (config.validation_fraction > 0.0 && samples.size() >= 4)
    val_count = std::min(
        samples.size() / 2,
        static_cast<std::size_t>(config.validation_fraction *
                                 static_cast<double>(samples.size())));
  std::vector<std::size_t> val_set(indices.end() - val_count, indices.end());
  std::vector<std::size_t> order(indices.begin(), indices.end() - val_count);

  auto sample_loss = [&](const nn::GraphSample& sample,
                         const nn::WirePrediction& pred) {
    return tensor::add(
        tensor::scale(tensor::mse_loss(pred.slew, sample.slew_label),
                      config.slew_loss_weight),
        tensor::scale(tensor::mse_loss(pred.delay, sample.delay_label),
                      config.delay_loss_weight));
  };

  double best_val = std::numeric_limits<double>::infinity();
  std::size_t stale_epochs = 0;

  float lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    char epoch_name[48];
    std::snprintf(epoch_name, sizeof(epoch_name), "train_epoch_%zu", epoch);
    const telemetry::TraceSpan epoch_span(epoch_name, "train");
    const auto epoch_start = std::chrono::steady_clock::now();
    std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;
    for (std::size_t idx : order) {
      const nn::GraphSample& sample = samples[idx];
      optimizer.zero_grad();
      const nn::WirePrediction pred = model.forward(sample);
      tensor::Tensor loss = sample_loss(sample, pred);
      loss.backward();
      clip_grad_norm(params, config.grad_clip);
      optimizer.step();
      loss_sum += loss.item();
    }
    const double mean_loss =
        order.empty() ? 0.0 : loss_sum / static_cast<double>(order.size());
    report.epoch_loss.push_back(mean_loss);
    TrainMetrics::get().epochs.inc();
    TrainMetrics::get().loss.set(mean_loss);

    // One flight record per epoch: the black box shows training progress the
    // same way it shows serving decisions (outcome "train", forward = epoch
    // wall time).
    telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
    if (flight.enabled()) {
      telemetry::FlightRecord fr;
      fr.set_net(epoch_name);
      fr.set_outcome("train");
      const double epoch_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch_start)
              .count();
      fr.forward_us = static_cast<float>(epoch_seconds * 1e6);
      fr.total_us = fr.forward_us;
      flight.record(fr);
    }

    if (config.on_epoch) config.on_epoch(epoch, mean_loss);
    lr *= config.lr_decay;
    optimizer.set_learning_rate(lr);

    if (!val_set.empty()) {
      tensor::NoGradGuard no_grad;
      double val_sum = 0.0;
      for (std::size_t idx : val_set)
        val_sum += sample_loss(samples[idx], model.forward(samples[idx])).item();
      const double val_loss = val_sum / static_cast<double>(val_set.size());
      report.validation_loss.push_back(val_loss);
      TrainMetrics::get().val_loss.set(val_loss);
      if (val_loss < best_val - 1e-9) {
        best_val = val_loss;
        stale_epochs = 0;
      } else if (config.early_stop_patience > 0 &&
                 ++stale_epochs >= config.early_stop_patience) {
        report.stopped_early = true;
        break;
      }
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

Evaluation evaluate_model(const nn::WireModel& model,
                          const std::vector<nn::GraphSample>& samples,
                          const std::function<double(double)>& unstandardize_slew,
                          const std::function<double(double)>& unstandardize_delay) {
  tensor::NoGradGuard no_grad;
  Evaluation eval;

  std::vector<double> slew_pred, slew_true, delay_pred, delay_true;
  const auto start = std::chrono::steady_clock::now();
  for (const nn::GraphSample& sample : samples) {
    const nn::WirePrediction pred = model.forward(sample);
    for (std::size_t q = 0; q < sample.path_count; ++q) {
      slew_pred.push_back(unstandardize_slew(pred.slew(q, 0)));
      delay_pred.push_back(unstandardize_delay(pred.delay(q, 0)));
      slew_true.push_back(sample.slew_seconds[q]);
      delay_true.push_back(sample.delay_seconds[q]);
    }
  }
  eval.inference_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  eval.path_count = slew_true.size();
  if (eval.path_count == 0) return eval;
  eval.slew_r2 = r2_score(slew_pred, slew_true);
  eval.delay_r2 = r2_score(delay_pred, delay_true);
  eval.slew_max_abs = max_abs_error(slew_pred, slew_true);
  eval.delay_max_abs = max_abs_error(delay_pred, delay_true);
  return eval;
}

}  // namespace gnntrans::core
