// Tests for the synchronous data-parallel trainer and the shared ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/thread_pool.hpp"
#include "features/dataset.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::core;

std::vector<nn::GraphSample> samples_for_test(std::size_t n, std::uint64_t seed,
                                              features::Standardizer& std_) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = n;
  cfg.seed = seed;
  cfg.sim_config.steps = 200;
  const auto records = features::generate_wire_records(cfg, lib);
  std_.fit(records);
  return features::make_samples(records, std_);
}

std::unique_ptr<nn::WireModel> fresh_model() {
  nn::ModelConfig mc;
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  mc.hidden_dim = 8;
  mc.gnn_layers = 2;
  mc.transformer_layers = 1;
  mc.heads = 2;
  mc.mlp_hidden = 16;
  return nn::make_model(nn::ModelKind::kGnnTrans, mc);
}

TEST(ParallelTrainer, LossDecreasesWithTwoWorkers) {
  features::Standardizer std_;
  const auto samples = samples_for_test(24, 71, std_);
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  cfg.workers = 2;
  cfg.base.epochs = 10;
  const TrainReport report = train_model_parallel(*model, samples, cfg);
  ASSERT_EQ(report.epoch_loss.size(), 10u);
  EXPECT_LT(report.epoch_loss.back(), 0.6 * report.epoch_loss.front());
}

TEST(ParallelTrainer, DeterministicAcrossRuns) {
  features::Standardizer std_;
  const auto samples = samples_for_test(12, 73, std_);
  ParallelTrainConfig cfg;
  cfg.workers = 3;
  cfg.base.epochs = 3;

  auto m1 = fresh_model();
  auto m2 = fresh_model();
  const TrainReport r1 = train_model_parallel(*m1, samples, cfg);
  const TrainReport r2 = train_model_parallel(*m2, samples, cfg);
  ASSERT_EQ(r1.epoch_loss.size(), r2.epoch_loss.size());
  for (std::size_t e = 0; e < r1.epoch_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(r1.epoch_loss[e], r2.epoch_loss[e]);
  // Trained weights must match too.
  const auto p1 = m1->parameters();
  const auto p2 = m2->parameters();
  for (std::size_t i = 0; i < p1.size(); ++i)
    for (std::size_t j = 0; j < p1[i].size(); ++j)
      EXPECT_EQ(p1[i].values()[j], p2[i].values()[j]);
}

TEST(ParallelTrainer, SingleWorkerStillTrains) {
  features::Standardizer std_;
  const auto samples = samples_for_test(12, 77, std_);
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  cfg.workers = 1;
  cfg.base.epochs = 8;
  const TrainReport report = train_model_parallel(*model, samples, cfg);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(ParallelTrainer, WorkerCountDoesNotBreakConvergence) {
  // Different worker counts take different step sequences but must both
  // reach a working model.
  features::Standardizer std_;
  const auto samples = samples_for_test(24, 79, std_);
  for (std::size_t workers : {2u, 4u}) {
    auto model = fresh_model();
    ParallelTrainConfig cfg;
    cfg.workers = workers;
    cfg.base.epochs = 12;
    const TrainReport report = train_model_parallel(*model, samples, cfg);
    EXPECT_LT(report.epoch_loss.back(), 0.5) << workers << " workers";
    // Model outputs stay finite.
    const nn::WirePrediction pred = model->forward(samples.front());
    for (std::size_t q = 0; q < samples.front().path_count; ++q)
      EXPECT_TRUE(std::isfinite(pred.delay(q, 0)));
  }
}

TEST(ParallelTrainer, EmptySampleListIsNoop) {
  auto model = fresh_model();
  ParallelTrainConfig cfg;
  const TrainReport report = train_model_parallel(*model, {}, cfg);
  EXPECT_TRUE(report.epoch_loss.empty());
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, std::size_t) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.parallel_for(500, [&](std::size_t, std::size_t worker) {
    if (worker >= pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i, std::size_t) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i, std::size_t) {
                                   if (i == 17)
                                     throw std::runtime_error("task 17 failed");
                                 }),
               std::runtime_error);
  // The pool must survive a throwing job and serve the next one.
  std::atomic<int> count{0};
  pool.parallel_for(32, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, AllTasksThrowingStillTerminates) {
  // Every task throws on every worker: exactly one exception propagates, the
  // rest are swallowed, and parallel_for must still join (no deadlock from a
  // worker exiting its claim loop early).
  ThreadPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.parallel_for(128,
                                 [&](std::size_t i, std::size_t) {
                                   ++started;
                                   throw std::runtime_error(
                                       "task " + std::to_string(i));
                                 }),
               std::runtime_error);
  EXPECT_GT(started.load(), 0);
  // The pool is still functional afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, [&](std::size_t i, std::size_t) {
      if (i == 5) throw std::runtime_error("net n5: injected forward fault");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "net n5: injected forward fault");
  }
}

TEST(ThreadPool, ErrorStateClearsBetweenCalls) {
  // A throwing batch must not leave a stale exception_ptr behind: the next
  // clean batch returns normally instead of rethrowing the old error.
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t, std::size_t) {
                                   throw std::logic_error("poison");
                                 }),
               std::logic_error);
  EXPECT_NO_THROW(pool.parallel_for(16, [](std::size_t, std::size_t) {}));
}

TEST(ThreadPool, RepeatedThrowingRoundsDoNotDeadlock) {
  // Alternate throwing and clean rounds to shake out lost-wakeup or
  // error-reset races between generations of parallel_for.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    if (round % 2 == 0) {
      EXPECT_THROW(pool.parallel_for(32,
                                     [&](std::size_t i, std::size_t) {
                                       if (i % 3 == 0)
                                         throw std::runtime_error("boom");
                                     }),
                   std::runtime_error);
    } else {
      std::atomic<int> count{0};
      pool.parallel_for(32, [&](std::size_t, std::size_t) { ++count; });
      EXPECT_EQ(count.load(), 32);
    }
  }
}

TEST(ThreadPool, ZeroTasksAndInlineFallback) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });

  // threads <= 1 spawns no workers and runs inline on the caller.
  ThreadPool inline_pool(1);
  EXPECT_EQ(inline_pool.size(), 1u);
  int runs = 0;
  inline_pool.parallel_for(5, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 5);
}

}  // namespace
