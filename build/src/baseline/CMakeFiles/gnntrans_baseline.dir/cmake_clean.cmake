file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_baseline.dir/dac20.cpp.o"
  "CMakeFiles/gnntrans_baseline.dir/dac20.cpp.o.d"
  "CMakeFiles/gnntrans_baseline.dir/gbdt.cpp.o"
  "CMakeFiles/gnntrans_baseline.dir/gbdt.cpp.o.d"
  "CMakeFiles/gnntrans_baseline.dir/loop_breaking.cpp.o"
  "CMakeFiles/gnntrans_baseline.dir/loop_breaking.cpp.o.d"
  "libgnntrans_baseline.a"
  "libgnntrans_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
