file(REMOVE_RECURSE
  "libgnntrans_sim.a"
)
