file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_bench_support.dir/support.cpp.o"
  "CMakeFiles/gnntrans_bench_support.dir/support.cpp.o.d"
  "libgnntrans_bench_support.a"
  "libgnntrans_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
