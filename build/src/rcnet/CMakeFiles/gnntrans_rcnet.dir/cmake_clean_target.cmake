file(REMOVE_RECURSE
  "libgnntrans_rcnet.a"
)
