/// \file features.hpp
/// Raw node and path features (paper Table I).
///
/// Node features (per capacitance): exactly the ten node rows of Table I —
/// 8 structural values plus the Elmore downstream capacitance and stage
/// delay. Driver context (input slew, drive cell) enters only through the
/// *path* features, exactly as in the paper; this asymmetry is what gives
/// GNNTrans its edge over mean-pooled baselines in Tables III/IV.
///
/// Path features (per wire path): input slew, drive-cell strength and
/// function, load-cell strength and function, load effective capacitance, and
/// the path's Elmore and D2M delays — plus the impulse-response spread
/// sqrt(2*m2 - m1^2) at the sink, the classical two-moment *slew* metric from
/// the same Elmore-moment family Table I draws on (the paper selects features
/// by "parameter-sweeping experiments"; this one is what such a sweep selects
/// for the slew target).
///
/// "Input/output" node directions follow the shortest-path-tree orientation
/// away from the source (the paper's stage decomposition).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "rcnet/rcnet.hpp"
#include "sim/wire_analysis.hpp"

namespace gnntrans::features {

/// Node feature column indices / count.
enum NodeFeature : std::size_t {
  kCapValue = 0,
  kNumInputNodes,
  kNumOutputNodes,
  kTotInputCap,
  kTotOutputCap,
  kNumConnectedRes,
  kTotInputRes,
  kTotOutputRes,
  kDownstreamCap,
  kStageDelay,
  kNodeFeatureCount
};

/// Path feature column indices / count.
enum PathFeature : std::size_t {
  kInputSlew = 0,
  kDriveStrength,
  kDriveFunction,
  kLoadStrength,
  kLoadFunction,
  kLoadCeff,
  kElmoreDelay,
  kD2mDelay,
  kImpulseSpread,
  kPathFeatureCount
};

/// Load cell attached to one sink.
struct SinkLoad {
  std::uint32_t drive_strength = 1;
  std::uint32_t function = 0;
  double input_cap = 1e-15;  ///< farads
};

/// Driver / load / slew context a net is timed under.
struct NetContext {
  double input_slew = 4e-11;         ///< seconds (20/80)
  double driver_resistance = 200.0;  ///< ohms
  std::uint32_t driver_strength = 1;
  std::uint32_t driver_function = 0;
  std::vector<SinkLoad> loads;  ///< aligned with net.sinks
};

/// Draws a random-but-plausible context from \p library (random driver cell,
/// lognormal input slew, random load cells).
[[nodiscard]] NetContext random_context(const cell::CellLibrary& library,
                                        const rcnet::RcNet& net,
                                        std::mt19937_64& rng);

/// Canonical FNV-1a/splitmix hash of the full timing context: input slew,
/// driver resistance/strength/function and every SinkLoad, doubles by raw bit
/// pattern. Combined with RcNet::validate()'s content hash this forms the
/// content-addressed estimate-cache key: any value that can change a
/// PathEstimate changes the hash.
[[nodiscard]] std::uint64_t content_hash(const NetContext& context) noexcept;

/// Raw (unstandardized) feature matrices plus the analysis they came from.
struct RawFeatures {
  std::vector<float> x;  ///< [node_count x kNodeFeatureCount], row-major
  std::vector<float> h;  ///< [path_count x kPathFeatureCount], row-major
  sim::WireAnalysis analysis;
};

/// Extracts Table I features for \p net under \p context.
///
/// Precondition: net.validate() is empty; context.loads covers net.sinks.
[[nodiscard]] RawFeatures extract_features(const rcnet::RcNet& net,
                                           const NetContext& context);

/// Stable, metric-name-safe ([a-z0-9_]) names for every input feature column,
/// in monitoring order: the kNodeFeatureCount node columns ("node_*"), then
/// the kPathFeatureCount path columns ("path_*"). This is the feature axis of
/// the quality-monitoring baseline (telemetry::FeatureBaseline) — names
/// become gnntrans_quality_feature_psi_* gauge suffixes, so renames break
/// dashboards; treat as append-only.
[[nodiscard]] const std::vector<std::string>& quality_feature_names();

/// quality_feature_names() index of node-feature column 0 (== 0) and of
/// path-feature column 0 (== kNodeFeatureCount); here for symmetry at call
/// sites that observe the two matrices separately.
inline constexpr std::size_t kQualityNodeFeatureBase = 0;
inline constexpr std::size_t kQualityPathFeatureBase = kNodeFeatureCount;

}  // namespace gnntrans::features
