#include "cell/liberty.hpp"

#include <cctype>
#include <charconv>
#include <cstring>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "cell/nldm.hpp"
#include "core/telemetry/telemetry.hpp"

namespace gnntrans::cell {

namespace {

// ---- Writer ----

std::string join_ps(const std::vector<double>& seconds) {
  std::ostringstream out;
  out.precision(12);
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    if (i) out << ", ";
    out << seconds[i] * 1e12;
  }
  return out.str();
}

std::string join_ff(const std::vector<double>& farads) {
  std::ostringstream out;
  out.precision(12);
  for (std::size_t i = 0; i < farads.size(); ++i) {
    if (i) out << ", ";
    out << farads[i] * 1e15;
  }
  return out.str();
}

void write_table(std::ostream& out, const char* group, const NldmTable& table) {
  out << "      " << group << " (tbl) {\n";
  out << "        index_1 (\"" << join_ps(table.slew_axis()) << "\");\n";
  out << "        index_2 (\"" << join_ff(table.cap_axis()) << "\");\n";
  out << "        values ( \\\n";
  for (std::size_t r = 0; r < table.slew_axis().size(); ++r) {
    out << "          \"";
    for (std::size_t c = 0; c < table.cap_axis().size(); ++c) {
      if (c) out << ", ";
      std::ostringstream v;
      v.precision(12);
      v << table.at(r, c) * 1e12;
      out << v.str();
    }
    out << "\"";
    out << (r + 1 < table.slew_axis().size() ? ", \\\n" : " \\\n");
  }
  out << "        );\n";
  out << "      }\n";
}

// ---- Tokenizer ----

enum class TokenKind { kIdent, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t line = 1;  ///< 1-based source line the token starts on
};

/// Formats a line-numbered parse error ("liberty: line 12: ...").
[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("liberty: line " + std::to_string(line) + ": " +
                           what);
}

class Lexer {
 public:
  explicit Lexer(std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    text_ = buf.str();
  }

  Token next() {
    skip_space_and_comments();
    if (pos_ >= text_.size()) return {TokenKind::kEnd, "", line_};
    const std::size_t line = line_;
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        // Liberty line continuations inside strings: swallow backslash-newline.
        if (text_[pos_] == '\\') {
          take();
          continue;
        }
        value.push_back(take());
      }
      if (pos_ >= text_.size()) parse_error(line, "unterminated string");
      ++pos_;
      return {TokenKind::kString, std::move(value), line};
    }
    if (std::strchr("{}():;,", c) != nullptr) {
      ++pos_;
      return {TokenKind::kSymbol, std::string(1, c), line};
    }
    std::string ident;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           std::strchr("{}():;,\"", text_[pos_]) == nullptr)
      ident.push_back(text_[pos_++]);
    if (ident.empty())
      parse_error(line, std::string("stray character '") + c + "'");
    return {TokenKind::kIdent, std::move(ident), line};
  }

 private:
  char take() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        take();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        const std::size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos)
          parse_error(line_, "unterminated /* comment");
        while (pos_ < end) take();
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// ---- Generic group tree ----

struct Group {
  std::string name;
  std::vector<std::string> args;
  std::map<std::string, std::string> attributes;          // name : value;
  std::map<std::string, std::vector<std::string>> lists;  // name (v, ...);
  std::vector<std::unique_ptr<Group>> children;

  [[nodiscard]] const Group* child(const std::string& child_name) const {
    for (const auto& g : children)
      if (g->name == child_name) return g.get();
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::istream& in) : lexer_(in) { advance(); }

  /// Parses the top-level `library (...) { ... }` group.
  std::unique_ptr<Group> parse_top() {
    auto group = parse_group();
    if (!group) parse_error(current_.line, "no top-level group");
    return group;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  bool accept_symbol(const char* s) {
    if (current_.kind == TokenKind::kSymbol && current_.text == s) {
      advance();
      return true;
    }
    return false;
  }

  void expect_symbol(const char* s) {
    if (!accept_symbol(s))
      parse_error(current_.line,
                  "expected '" + std::string(s) + "' got '" +
                      (current_.kind == TokenKind::kEnd ? "<eof>"
                                                        : current_.text) +
                      "'");
  }

  /// Parses either a group or an attribute starting at an identifier.
  std::unique_ptr<Group> parse_group() {
    if (current_.kind != TokenKind::kIdent) return nullptr;
    const std::string name = current_.text;
    advance();

    if (accept_symbol(":")) {
      // Simple attribute: value until ';'.
      std::string value;
      while (current_.kind != TokenKind::kEnd &&
             !(current_.kind == TokenKind::kSymbol && current_.text == ";")) {
        if (!value.empty()) value += " ";
        value += current_.text;
        advance();
      }
      expect_symbol(";");
      auto leaf = std::make_unique<Group>();
      leaf->name = "__attr__";
      leaf->args = {name, value};
      return leaf;
    }

    expect_symbol("(");
    std::vector<std::string> args;
    while (!(current_.kind == TokenKind::kSymbol && current_.text == ")")) {
      if (current_.kind == TokenKind::kEnd)
        parse_error(current_.line,
                    "unterminated argument list of '" + name + "'");
      if (!(current_.kind == TokenKind::kSymbol && current_.text == ","))
        args.push_back(current_.text);
      advance();
    }
    expect_symbol(")");

    if (accept_symbol(";")) {
      // Complex attribute: name (v1, v2, ...);
      auto leaf = std::make_unique<Group>();
      leaf->name = "__list__";
      leaf->args.push_back(name);
      for (std::string& a : args) leaf->args.push_back(std::move(a));
      return leaf;
    }

    expect_symbol("{");
    auto group = std::make_unique<Group>();
    group->name = name;
    group->args = std::move(args);
    while (!(current_.kind == TokenKind::kSymbol && current_.text == "}")) {
      if (current_.kind == TokenKind::kEnd)
        parse_error(current_.line,
                    "unterminated group '" + name + "' (missing '}')");
      auto child = parse_group();
      if (!child)
        parse_error(current_.line,
                    "unexpected token '" + current_.text + "' in group '" +
                        name + "'");
      if (child->name == "__attr__") {
        group->attributes[child->args[0]] = child->args[1];
      } else if (child->name == "__list__") {
        std::vector<std::string> values(child->args.begin() + 1, child->args.end());
        group->lists[child->args[0]] = std::move(values);
      } else {
        group->children.push_back(std::move(child));
      }
    }
    expect_symbol("}");
    return group;
  }

  Lexer lexer_;
  Token current_;
};

// ---- Interpretation ----

std::vector<double> parse_number_list(const std::string& text, double unit) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ',' || text[pos] == ' ')) ++pos;
    std::size_t end = pos;
    while (end < text.size() && text[end] != ',' && text[end] != ' ') ++end;
    if (end > pos) {
      double v = 0.0;
      const auto [p, ec] = std::from_chars(text.data() + pos, text.data() + end, v);
      if (ec == std::errc{} && p == text.data() + end) out.push_back(v * unit);
    }
    pos = end;
  }
  return out;
}

std::optional<CellFunction> function_from_string(const std::string& s) {
  for (std::uint32_t f = 0; f <= static_cast<std::uint32_t>(CellFunction::kDff); ++f)
    if (s == to_string(static_cast<CellFunction>(f)))
      return static_cast<CellFunction>(f);
  return std::nullopt;
}

std::optional<NldmTable> table_from_group(const Group& group,
                                          std::vector<std::string>& warnings,
                                          const std::string& cell_name) {
  const auto i1 = group.lists.find("index_1");
  const auto i2 = group.lists.find("index_2");
  const auto vals = group.lists.find("values");
  if (i1 == group.lists.end() || i2 == group.lists.end() || vals == group.lists.end()) {
    warnings.push_back("cell " + cell_name + ": table missing indices/values");
    return std::nullopt;
  }
  const std::vector<double> slew = parse_number_list(i1->second.at(0), 1e-12);
  const std::vector<double> cap = parse_number_list(i2->second.at(0), 1e-15);
  std::vector<double> rows;
  for (const std::string& row : vals->second) {
    const std::vector<double> v = parse_number_list(row, 1e-12);
    rows.insert(rows.end(), v.begin(), v.end());
  }
  if (slew.size() < 2 || cap.size() < 2 || rows.size() != slew.size() * cap.size()) {
    warnings.push_back("cell " + cell_name + ": table shape mismatch");
    return std::nullopt;
  }
  std::size_t k = 0;
  return NldmTable::characterize(slew, cap,
                                 [&](double, double) { return rows[k++]; });
}

}  // namespace

void write_liberty(std::ostream& out, const CellLibrary& library,
                   const std::string& name) {
  out << "/* generated by gnntrans */\n";
  out << "library (" << name << ") {\n";
  out << "  time_unit : 1ps;\n";
  out << "  capacitive_load_unit (1, ff);\n";
  out << "  pulling_resistance_unit : 1ohm;\n\n";
  for (std::size_t i = 0; i < library.size(); ++i) {
    const Cell& cell = library.at(i);
    out << "  cell (" << cell.name << ") {\n";
    out << "    cell_function : " << to_string(cell.function) << ";\n";
    out << "    drive_strength : " << cell.drive_strength << ";\n";
    std::ostringstream res;
    res.precision(12);
    res << cell.drive_resistance;
    out << "    drive_resistance : " << res.str() << ";\n";
    std::ostringstream cap;
    cap.precision(12);
    cap << cell.input_cap * 1e15;
    out << "    pin (A) {\n      direction : input;\n      capacitance : "
        << cap.str() << ";\n    }\n";
    // Subset simplification: tables sit directly under the output pin
    // (canonical Liberty nests them in a timing() group).
    out << "    pin (Y) {\n      direction : output;\n";
    write_table(out, "cell_rise", cell.arc.delay);
    write_table(out, "rise_transition", cell.arc.output_slew);
    out << "    }\n";
    out << "  }\n";
  }
  out << "}\n";
}

std::string to_liberty(const CellLibrary& library) {
  std::ostringstream out;
  write_liberty(out, library);
  return out.str();
}

LibertyParseResult parse_liberty(std::istream& in) {
  const telemetry::TraceSpan span("parse_liberty", "io");
  static telemetry::Counter cells_metric =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_liberty_cells_parsed_total",
          "Cells read from Liberty input");
  static telemetry::Counter warn_metric =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_liberty_warnings_total",
          "Warnings raised by the Liberty parser");
  LibertyParseResult result;
  Parser parser(in);
  const std::unique_ptr<Group> top = parser.parse_top();
  if (top->name != "library") {
    result.warnings.push_back("top-level group is '" + top->name + "', expected 'library'");
    warn_metric.inc(result.warnings.size());
    return result;
  }

  for (const auto& child : top->children) {
    if (child->name != "cell") continue;
    if (child->args.empty()) {
      result.warnings.push_back("cell group without a name; skipped");
      continue;
    }
    Cell cell;
    cell.name = child->args.front();

    const auto fn_attr = child->attributes.find("cell_function");
    const auto function = fn_attr != child->attributes.end()
                              ? function_from_string(fn_attr->second)
                              : std::nullopt;
    if (!function) {
      result.warnings.push_back("cell " + cell.name + ": unknown function; skipped");
      continue;
    }
    cell.function = *function;

    if (const auto it = child->attributes.find("drive_strength");
        it != child->attributes.end())
      cell.drive_strength = static_cast<std::uint32_t>(std::atoi(it->second.c_str()));
    if (const auto it = child->attributes.find("drive_resistance");
        it != child->attributes.end())
      cell.drive_resistance = std::atof(it->second.c_str());

    std::optional<NldmTable> delay, transition;
    for (const auto& pin : child->children) {
      if (pin->name != "pin") continue;
      const auto dir = pin->attributes.find("direction");
      if (dir != pin->attributes.end() && dir->second == "input") {
        if (const auto it = pin->attributes.find("capacitance");
            it != pin->attributes.end())
          cell.input_cap = std::atof(it->second.c_str()) * 1e-15;
      } else {
        if (const Group* rise = pin->child("cell_rise"))
          delay = table_from_group(*rise, result.warnings, cell.name);
        if (const Group* tran = pin->child("rise_transition"))
          transition = table_from_group(*tran, result.warnings, cell.name);
      }
    }
    if (!delay || !transition) {
      result.warnings.push_back("cell " + cell.name + ": missing timing tables; skipped");
      continue;
    }
    cell.arc.delay = std::move(*delay);
    cell.arc.output_slew = std::move(*transition);
    result.cells.push_back(std::move(cell));
  }
  cells_metric.inc(result.cells.size());
  warn_metric.inc(result.warnings.size());
  return result;
}

CellLibrary library_from_cells(std::vector<Cell> cells) {
  return CellLibrary::from_cells(std::move(cells));
}

}  // namespace gnntrans::cell
