// Liberty-subset writer/parser round-trip and robustness tests.
#include <gtest/gtest.h>

#include <sstream>

#include "cell/liberty.hpp"

namespace {

using namespace gnntrans::cell;

TEST(Liberty, RoundTripPreservesEveryCell) {
  const CellLibrary original = CellLibrary::make_default();
  std::istringstream in(to_liberty(original));
  const LibertyParseResult parsed = parse_liberty(in);
  for (const std::string& w : parsed.warnings) ADD_FAILURE() << w;
  ASSERT_EQ(parsed.cells.size(), original.size());

  const CellLibrary reloaded = library_from_cells(parsed.cells);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Cell& a = original.at(i);
    const Cell& b = reloaded.at(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.drive_strength, b.drive_strength);
    EXPECT_NEAR(a.drive_resistance, b.drive_resistance, 1e-6 * a.drive_resistance);
    EXPECT_NEAR(a.input_cap, b.input_cap, 1e-6 * a.input_cap);
  }
}

TEST(Liberty, RoundTripPreservesNldmLookups) {
  const CellLibrary original = CellLibrary::make_default();
  std::istringstream in(to_liberty(original));
  const CellLibrary reloaded = library_from_cells(parse_liberty(in).cells);
  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (double slew : {8e-12, 33e-12, 120e-12}) {
      for (double cap : {0.8e-15, 4e-15, 30e-15}) {
        EXPECT_NEAR(original.at(i).arc.delay.lookup(slew, cap),
                    reloaded.at(i).arc.delay.lookup(slew, cap), 1e-16)
            << original.at(i).name;
        EXPECT_NEAR(original.at(i).arc.output_slew.lookup(slew, cap),
                    reloaded.at(i).arc.output_slew.lookup(slew, cap), 1e-16);
      }
    }
  }
}

TEST(Liberty, RoundTripPreservesComboSeqSplit) {
  const CellLibrary original = CellLibrary::make_default();
  std::istringstream in(to_liberty(original));
  const CellLibrary reloaded = library_from_cells(parse_liberty(in).cells);
  EXPECT_EQ(reloaded.combinational().size(), original.combinational().size());
  EXPECT_EQ(reloaded.sequential().size(), original.sequential().size());
}

TEST(Liberty, UnknownFunctionCellIsSkippedWithWarning) {
  std::istringstream in(
      "library (x) {\n  cell (WEIRD_X1) {\n    cell_function : FROB;\n  }\n}\n");
  const LibertyParseResult r = parse_liberty(in);
  EXPECT_TRUE(r.cells.empty());
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings.front().find("WEIRD_X1"), std::string::npos);
}

TEST(Liberty, MissingTablesSkippedWithWarning) {
  std::istringstream in(
      "library (x) {\n  cell (INV_X1) {\n    cell_function : INV;\n"
      "    pin (A) { direction : input; capacitance : 1.0; }\n  }\n}\n");
  const LibertyParseResult r = parse_liberty(in);
  EXPECT_TRUE(r.cells.empty());
  EXPECT_FALSE(r.warnings.empty());
}

TEST(Liberty, UnterminatedGroupThrows) {
  std::istringstream in("library (x) {\n  cell (INV_X1) {\n");
  EXPECT_THROW(parse_liberty(in), std::runtime_error);
}

// Parse errors name the offending source line so users can fix real .lib
// files; each case checks the "line N" prefix and the defect description.
TEST(Liberty, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the exception message
  };
  const Case cases[] = {
      // '}' of cell/library never closed: EOF is on line 3.
      {"library (x) {\n  cell (INV_X1) {\n", "line 3"},
      // Attribute missing its ';' terminator swallows the closing braces.
      {"library (x) {\n  time_unit : 1ps\n}", "expected ';'"},
      // Stray character on line 2.
      {"library (x) {\n  \"unterminated\n", "line 2: unterminated string"},
      // Argument list left open.
      {"library (x {\n}\n", "argument list"},
      // Open comment.
      {"library (x) {\n/* never closed\n", "line 2: unterminated /* comment"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.text);
    try {
      (void)parse_liberty(in);
      FAIL() << "expected parse error for: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("liberty: line"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << e.what();
    }
  }
}

TEST(Liberty, CommentsAreIgnored)  {
  std::istringstream in(
      "/* header */ library (x) { /* inner */ time_unit : 1ps; }\n");
  const LibertyParseResult r = parse_liberty(in);
  EXPECT_TRUE(r.cells.empty());
  EXPECT_TRUE(r.warnings.empty());
}

TEST(Liberty, NonLibraryTopGroupWarns) {
  std::istringstream in("design (x) { }\n");
  const LibertyParseResult r = parse_liberty(in);
  EXPECT_TRUE(r.cells.empty());
  ASSERT_FALSE(r.warnings.empty());
}

}  // namespace
