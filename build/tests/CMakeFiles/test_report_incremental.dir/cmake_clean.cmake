file(REMOVE_RECURSE
  "CMakeFiles/test_report_incremental.dir/test_report_incremental.cpp.o"
  "CMakeFiles/test_report_incremental.dir/test_report_incremental.cpp.o.d"
  "test_report_incremental"
  "test_report_incremental.pdb"
  "test_report_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
