/// \file ops.hpp
/// Differentiable operations over Tensor (reverse-mode).
///
/// Every function returns a fresh tensor recorded on the tape (unless autograd
/// is disabled via NoGradGuard). Shapes are validated with exceptions so model
/// wiring errors fail loudly at construction time, not as silent corruption.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnntrans::tensor {

/// Fixed-coefficient sparse matrix (graph structure: adjacency, pooling).
/// Not differentiable w.r.t. its values — they encode circuit structure.
struct GraphMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_index;
  std::vector<std::uint32_t> col_index;
  std::vector<float> values;

  GraphMatrix() = default;
  GraphMatrix(std::size_t r, std::size_t c) : rows(r), cols(c) {}

  void add(std::uint32_t r, std::uint32_t c, float v) {
    row_index.push_back(r);
    col_index.push_back(c);
    values.push_back(v);
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }

  /// Scales every row to unit sum (rows with zero sum are left untouched).
  void row_normalize();
};

// ---- Linear algebra ----

/// C = A @ B.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A @ B^T (used by attention scores).
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// Transposed copy.
[[nodiscard]] Tensor transpose(const Tensor& a);
/// Y = M X for a fixed sparse M; backward propagates through X only.
[[nodiscard]] Tensor spmm(const GraphMatrix& m, const Tensor& x);

// ---- Elementwise / broadcast ----

/// C = A + B (same shape).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
/// C = A - B (same shape).
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
/// C = A * B elementwise (same shape).
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
/// C = A * s.
[[nodiscard]] Tensor scale(const Tensor& a, float s);
/// C[r, :] = A[r, :] + bias[0, :] for every row r.
[[nodiscard]] Tensor add_row_broadcast(const Tensor& a, const Tensor& bias);
/// E[i, j] = s[i, 0] + t[j, 0]; s is [N,1], t is [M,1], result [N,M].
[[nodiscard]] Tensor outer_sum(const Tensor& s, const Tensor& t);

// ---- Nonlinearities ----

[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor leaky_relu(const Tensor& a, float negative_slope = 0.2f);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor tanh_op(const Tensor& a);

// ---- Softmax ----

/// Row-wise softmax.
[[nodiscard]] Tensor softmax_rows(const Tensor& a);
/// Row-wise softmax over entries where mask[r*cols+c] != 0; masked entries
/// output 0. Rows that are fully masked output all zeros.
[[nodiscard]] Tensor masked_softmax_rows(const Tensor& a,
                                         const std::vector<std::uint8_t>& mask);

// ---- Shape ----

/// Column-wise concatenation (all inputs share the row count).
[[nodiscard]] Tensor concat_cols(const std::vector<Tensor>& parts);
/// Gathers rows by index (duplicates allowed); backward scatters-adds.
[[nodiscard]] Tensor gather_rows(const Tensor& a,
                                 const std::vector<std::uint32_t>& indices);

// ---- Reductions / losses ----

/// 1x1 sum of all entries.
[[nodiscard]] Tensor sum_all(const Tensor& a);
/// 1x1 mean of all entries.
[[nodiscard]] Tensor mean_all(const Tensor& a);
/// 1x1 mean squared error against a constant target (no grad into target).
[[nodiscard]] Tensor mse_loss(const Tensor& pred, const Tensor& target);

}  // namespace gnntrans::tensor
