# Empty compiler generated dependencies file for gnntrans_netlist.
# This may be replaced when dependencies are built.
