// Tests for the content-addressed estimate cache: key derivation (hash
// sensitivity to every element value, name exclusion), the sharded CLOCK
// store itself (roundtrip, second-chance, deterministic byte-bounded
// eviction, single-shard thread hammer), and its integration with the
// serving path (bitwise-identical hits across cache on/off and thread
// counts, edit invalidation, fallback-never-cached, misaligned-context
// rejection before the key is even formed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/estimate_cache.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"

namespace {

using namespace gnntrans;
using core::CacheKey;
using core::EstimateCache;
using core::EstimateCacheConfig;
using core::EstimateProvenance;
using core::PathEstimate;

// Deterministic synthetic estimates: the value pattern is a pure function of
// \p tag, so hammer threads can verify a hit's bytes without shared state.
std::vector<PathEstimate> make_paths(std::uint64_t tag, std::size_t count) {
  std::vector<PathEstimate> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].sink = static_cast<rcnet::NodeId>(tag * 7 + i);
    out[i].slew = 1e-10 + static_cast<double>(tag) * 1e-12 +
                  static_cast<double>(i) * 1e-13;
    out[i].delay = 5e-12 + static_cast<double>(tag) * 1e-13;
    out[i].provenance = EstimateProvenance::kModel;
  }
  return out;
}

void expect_same_values(const std::vector<PathEstimate>& got,
                        const std::vector<PathEstimate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sink, want[i].sink);
    EXPECT_EQ(got[i].slew, want[i].slew);    // bitwise (no tolerance)
    EXPECT_EQ(got[i].delay, want[i].delay);  // bitwise (no tolerance)
  }
}

// Bytes one single-path entry charges against the shard budget, measured
// rather than hard-coded so the bookkeeping constant can evolve.
std::uint64_t one_path_entry_bytes() {
  EstimateCache probe(EstimateCacheConfig{.capacity_bytes = 1 << 20,
                                          .shards = 1});
  probe.insert(EstimateCache::make_key(1, 1), make_paths(1, 1));
  return probe.stats().inserted_bytes;
}

TEST(CacheUnit, MissInsertHitRoundtripTagsCached) {
  EstimateCache cache(EstimateCacheConfig{.capacity_bytes = 1 << 20,
                                          .shards = 4});
  const CacheKey key = EstimateCache::make_key(0xfeedULL, 0xbeefULL);
  const auto paths = make_paths(3, 4);

  std::vector<PathEstimate> out;
  EXPECT_FALSE(cache.lookup(key, &out));
  EXPECT_TRUE(out.empty());  // untouched on miss

  cache.insert(key, paths);
  ASSERT_TRUE(cache.lookup(key, &out));
  expect_same_values(out, paths);
  for (const PathEstimate& pe : out)
    EXPECT_EQ(pe.provenance, EstimateProvenance::kCached);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CacheUnit, OversizedEntryIsDroppedNotThrashed) {
  // Budget is far smaller than the entry: the insert must be refused instead
  // of evicting the shard empty and still failing to fit.
  EstimateCache cache(EstimateCacheConfig{.capacity_bytes = 256, .shards = 1});
  const CacheKey small = EstimateCache::make_key(1, 1);
  cache.insert(small, make_paths(1, 1));
  ASSERT_EQ(cache.stats().entries, 1u);

  cache.insert(EstimateCache::make_key(2, 2), make_paths(2, 4096));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // small entry undisturbed
  EXPECT_EQ(stats.insertions, 1u);
  std::vector<PathEstimate> out;
  EXPECT_TRUE(cache.lookup(small, &out));
}

TEST(CacheUnit, ClearDropsEntriesKeepsCumulativeCounters) {
  EstimateCache cache(EstimateCacheConfig{.capacity_bytes = 1 << 20,
                                          .shards = 2});
  const CacheKey key = EstimateCache::make_key(7, 9);
  cache.insert(key, make_paths(1, 2));
  std::vector<PathEstimate> out;
  ASSERT_TRUE(cache.lookup(key, &out));

  cache.clear();
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);        // cumulative counters survive clear()
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_FALSE(cache.lookup(key, &out));
}

TEST(CacheUnit, SecondChanceSparesRecentlyHitEntries) {
  const std::uint64_t entry = one_path_entry_bytes();
  // Room for exactly two entries in the single shard.
  EstimateCache cache(EstimateCacheConfig{
      .capacity_bytes = static_cast<std::size_t>(2 * entry), .shards = 1});
  const CacheKey a = EstimateCache::make_key(1, 1);
  const CacheKey b = EstimateCache::make_key(2, 2);
  const CacheKey c = EstimateCache::make_key(3, 3);
  cache.insert(a, make_paths(1, 1));
  cache.insert(b, make_paths(2, 1));

  // Touch A: its ref bit buys one sweep of grace, so the CLOCK hand passes
  // over it and evicts B even though A is older.
  std::vector<PathEstimate> out;
  ASSERT_TRUE(cache.lookup(a, &out));
  cache.insert(c, make_paths(3, 1));

  EXPECT_TRUE(cache.lookup(a, &out));
  EXPECT_FALSE(cache.lookup(b, &out));
  EXPECT_TRUE(cache.lookup(c, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheUnit, EvictionUnderPressureIsDeterministicAndByteBounded) {
  const std::uint64_t entry = one_path_entry_bytes();
  const EstimateCacheConfig cfg{
      .capacity_bytes = static_cast<std::size_t>(6 * entry), .shards = 1};
  constexpr std::uint64_t kInserts = 20;

  const auto run = [&](EstimateCache& cache) {
    for (std::uint64_t i = 0; i < kInserts; ++i)
      cache.insert(EstimateCache::make_key(i, i ^ 0x5aULL), make_paths(i, 1));
  };
  EstimateCache first(cfg), second(cfg);
  run(first);
  run(second);

  // Same insert sequence, same CLOCK decisions: identical stats and an
  // identical survivor set (with no lookups the sweep degenerates to FIFO,
  // so exactly the newest six entries remain).
  const auto s1 = first.stats();
  const auto s2 = second.stats();
  EXPECT_EQ(s1.entries, 6u);
  EXPECT_EQ(s1.evictions, kInserts - 6);
  EXPECT_EQ(s1.entries, s2.entries);
  EXPECT_EQ(s1.evictions, s2.evictions);
  EXPECT_EQ(s1.resident_bytes, s2.resident_bytes);
  EXPECT_LE(s1.resident_bytes, cfg.capacity_bytes);

  std::vector<PathEstimate> out;
  for (std::uint64_t i = 0; i < kInserts; ++i) {
    const CacheKey key = EstimateCache::make_key(i, i ^ 0x5aULL);
    const bool hit1 = first.lookup(key, &out);
    if (hit1) expect_same_values(out, make_paths(i, 1));
    EXPECT_EQ(hit1, i >= kInserts - 6) << "key " << i;
    EXPECT_EQ(second.lookup(key, &out), hit1) << "key " << i;
  }
}

TEST(CacheConcurrency, SingleShardHammerKeepsExactCounters) {
  // Force contention: pick keys that all route to shard 0 of a multi-shard
  // cache (shard_index is exposed exactly for this), then hammer them from
  // several threads. TSan (cache label in the tsan preset) proves the
  // per-shard mutex covers every slot/index/residency access.
  EstimateCache cache(EstimateCacheConfig{.capacity_bytes = 4 << 20,
                                          .shards = 4});
  ASSERT_EQ(cache.shard_count(), 4u);
  std::vector<CacheKey> keys;
  for (std::uint64_t seed = 1; keys.size() < 16; ++seed) {
    const CacheKey key = EstimateCache::make_key(seed, seed * 2654435761ULL);
    if (cache.shard_index(key) == 0) keys.push_back(key);
  }

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  std::atomic<std::size_t> value_mismatches{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      std::vector<PathEstimate> out;
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        const std::size_t k = rng() % keys.size();
        const auto want = make_paths(k, 1 + k % 3);
        if (cache.lookup(keys[k], &out)) {
          if (out.size() != want.size()) {
            ++value_mismatches;
            continue;
          }
          for (std::size_t i = 0; i < out.size(); ++i)
            if (out[i].slew != want[i].slew || out[i].delay != want[i].delay ||
                out[i].provenance != EstimateProvenance::kCached)
              ++value_mismatches;
        } else {
          cache.insert(keys[k], want);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(value_mismatches.load(), 0u);
  const auto stats = cache.stats();
  // Every op performed exactly one lookup; the counters must account for all
  // of them with no drops or double counts.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.entries, keys.size());
  // Racing inserts of one key keep a single copy.
  std::vector<PathEstimate> out;
  for (std::size_t k = 0; k < keys.size(); ++k)
    if (cache.lookup(keys[k], &out))
      expect_same_values(out, make_paths(k, 1 + k % 3));
}

// --- key derivation -------------------------------------------------------

rcnet::RcNet tiny_net() {
  rcnet::RcNet net;
  net.name = "tiny";
  net.source = 0;
  net.sinks = {2, 3};
  net.ground_cap = {1e-15, 2e-15, 3e-15, 4e-15};
  net.resistors = {{0, 1, 100.0}, {1, 2, 150.0}, {1, 3, 200.0}};
  net.couplings = {{2, 5e-16, 42}};
  return net;
}

std::uint64_t net_hash(const rcnet::RcNet& net) {
  std::uint64_t hash = 0;
  EXPECT_TRUE(net.validate(&hash).empty());
  return hash;
}

TEST(ContentHash, NetHashIgnoresNameAndTracksEveryElement) {
  const rcnet::RcNet base = tiny_net();
  const std::uint64_t h0 = net_hash(base);

  rcnet::RcNet renamed = base;
  renamed.name = "an_entirely_different_name";
  EXPECT_EQ(net_hash(renamed), h0) << "name must be excluded (content address)";

  // A one-ULP resistance edit must change the key: hits are bitwise
  // identical, so the hash has to distinguish inputs at full precision.
  rcnet::RcNet r = base;
  r.resistors[1].ohms = std::nextafter(r.resistors[1].ohms, 1e9);
  EXPECT_NE(net_hash(r), h0);

  rcnet::RcNet c = base;
  c.ground_cap[2] = std::nextafter(c.ground_cap[2], 1.0);
  EXPECT_NE(net_hash(c), h0);

  rcnet::RcNet k = base;
  k.couplings[0].farads = std::nextafter(k.couplings[0].farads, 1.0);
  EXPECT_NE(net_hash(k), h0);

  rcnet::RcNet seed = base;
  seed.couplings[0].aggressor_seed = 43;
  EXPECT_NE(net_hash(seed), h0);

  // Topology: same element values, different wiring.
  rcnet::RcNet topo = base;
  topo.resistors[1] = {0, 2, 150.0};
  EXPECT_NE(net_hash(topo), h0);
}

TEST(ContentHash, ContextHashTracksEveryField) {
  features::NetContext base;
  base.input_slew = 4e-11;
  base.driver_resistance = 180.0;
  base.driver_strength = 2;
  base.driver_function = 1;
  base.loads = {{1, 0, 1e-15}, {2, 1, 2e-15}};
  const std::uint64_t h0 = features::content_hash(base);

  features::NetContext slew = base;
  slew.input_slew = std::nextafter(slew.input_slew, 1.0);
  EXPECT_NE(features::content_hash(slew), h0);

  features::NetContext res = base;
  res.driver_resistance = std::nextafter(res.driver_resistance, 1e9);
  EXPECT_NE(features::content_hash(res), h0);

  features::NetContext drv = base;
  drv.driver_strength = 3;
  EXPECT_NE(features::content_hash(drv), h0);

  features::NetContext fn = base;
  fn.driver_function = 2;
  EXPECT_NE(features::content_hash(fn), h0);

  features::NetContext cap = base;
  cap.loads[1].input_cap = std::nextafter(cap.loads[1].input_cap, 1.0);
  EXPECT_NE(features::content_hash(cap), h0);

  features::NetContext cell = base;
  cell.loads[0].drive_strength = 4;
  EXPECT_NE(features::content_hash(cell), h0);

  features::NetContext fewer = base;
  fewer.loads.pop_back();
  EXPECT_NE(features::content_hash(fewer), h0);
}

// --- serving integration --------------------------------------------------

class CacheServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 16;
    dcfg.seed = 2027;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 11;
    opt.train.epochs = 2;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    std::mt19937_64 rng(123);
    rcnet::NetGenConfig ncfg;
    while (nets_.size() < 12) {
      rcnet::RcNet net =
          rcnet::generate_net(ncfg, rng, "cache" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
  }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static void expect_identity(const core::InferenceStats& stats) {
    EXPECT_EQ(stats.model_nets + stats.fallback_nets + stats.failed_nets +
                  stats.cached_nets,
              stats.nets);
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> CacheServingTest::library_;
std::unique_ptr<core::WireTimingEstimator> CacheServingTest::estimator_;
std::vector<rcnet::RcNet> CacheServingTest::nets_;
std::vector<features::NetContext> CacheServingTest::contexts_;

TEST_F(CacheServingTest, HitsAreBitwiseIdenticalAcrossCacheAndThreadCounts) {
  const auto batch = items();
  // Reference: cache off, serial. The cache must never perturb these bytes.
  const auto reference = estimator_->estimate_batch(batch, {.threads = 1});

  EstimateCache cache;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.cache = &cache;
  std::vector<core::NetOutcome> outcomes;
  opts.outcomes = &outcomes;

  // Cold pass: every net misses, runs the model, and is inserted.
  core::InferenceStats cold;
  const auto first = estimator_->estimate_batch(batch, opts, &cold);
  ASSERT_EQ(first.size(), reference.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_same_values(first[i], reference[i]);
    EXPECT_EQ(outcomes[i].provenance, EstimateProvenance::kModel);
  }
  expect_identity(cold);
  EXPECT_EQ(cold.cached_nets, 0u);
  EXPECT_EQ(cache.stats().misses, nets_.size());
  EXPECT_EQ(cache.stats().insertions, cold.model_nets);

  // Warm passes at several thread counts: all hits, values bitwise equal to
  // the uncached reference, provenance kCached on every path.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    opts.threads = threads;
    core::InferenceStats warm;
    const auto hit = estimator_->estimate_batch(batch, opts, &warm);
    ASSERT_EQ(hit.size(), reference.size());
    for (std::size_t i = 0; i < hit.size(); ++i) {
      expect_same_values(hit[i], reference[i]);
      EXPECT_EQ(outcomes[i].provenance, EstimateProvenance::kCached);
      EXPECT_EQ(outcomes[i].error, core::ErrorCode::kOk);
      for (const PathEstimate& pe : hit[i])
        EXPECT_EQ(pe.provenance, EstimateProvenance::kCached);
    }
    expect_identity(warm);
    EXPECT_EQ(warm.cached_nets, nets_.size());
    EXPECT_EQ(warm.model_nets, 0u);
    // kCached is a success, not a degradation.
    EXPECT_DOUBLE_EQ(warm.degraded_fraction(), 0.0);
  }
  EXPECT_EQ(cache.stats().hits, 2 * nets_.size());
}

TEST_F(CacheServingTest, ElementEditInvalidatesOnlyTheEditedNet) {
  EstimateCache cache;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.cache = &cache;
  std::vector<core::NetOutcome> outcomes;
  opts.outcomes = &outcomes;

  auto batch = items();
  (void)estimator_->estimate_batch(batch, opts);  // warm every entry

  // An ECO-style parasitic edit on one net: content addressing invalidates
  // it with no explicit invalidation call — the edited bytes hash to a new
  // key, the stale entry is simply never addressed again.
  rcnet::RcNet edited = nets_[5];
  edited.resistors[0].ohms =
      std::nextafter(edited.resistors[0].ohms, 1e9);
  batch[5].net = &edited;

  const auto before = cache.stats();
  core::InferenceStats stats;
  (void)estimator_->estimate_batch(batch, opts, &stats);
  const auto after = cache.stats();

  EXPECT_EQ(after.hits - before.hits, nets_.size() - 1);
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(outcomes[5].provenance, EstimateProvenance::kModel);
  EXPECT_EQ(stats.cached_nets, nets_.size() - 1);
  EXPECT_EQ(stats.model_nets, 1u);
  expect_identity(stats);
}

TEST_F(CacheServingTest, FallbackResultsAreNeverCached) {
  // Every forward pass faults: the ladder degrades to the analytic baseline.
  // Degraded results must not be cached — a transient fault must re-run the
  // ladder next time, not be replayed forever from the cache.
  core::FaultInjector::Config fcfg;
  fcfg.probability = 1.0;
  fcfg.seed = 17;
  fcfg.site_mask = core::site_bit(core::FaultSite::kForward);
  core::FaultInjector::global().configure(fcfg);

  EstimateCache cache;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.cache = &cache;
  std::vector<core::NetOutcome> outcomes;
  opts.outcomes = &outcomes;
  const auto batch = items();

  core::InferenceStats degraded;
  (void)estimator_->estimate_batch(batch, opts, &degraded);
  EXPECT_EQ(degraded.fallback_nets, nets_.size());
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  expect_identity(degraded);

  // Fault cleared: the same keys now miss (nothing stale was stored), run
  // the model, and populate the cache.
  core::FaultInjector::global().disarm();
  core::InferenceStats healthy;
  (void)estimator_->estimate_batch(batch, opts, &healthy);
  EXPECT_EQ(healthy.model_nets, nets_.size());
  EXPECT_EQ(cache.stats().insertions, nets_.size());
  expect_identity(healthy);
}

TEST_F(CacheServingTest, MisalignedLoadsRejectedBeforeKeyFormation) {
  EstimateCache cache;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.cache = &cache;
  std::vector<core::NetOutcome> outcomes;
  opts.outcomes = &outcomes;

  // A context whose loads vector disagrees with the sink list is a caller
  // bug: typed kInvalidArgument, no fallback (the analytic pass would need
  // the same per-sink loads), and — the cache-specific hazard — no key is
  // ever formed, so the bogus pairing can neither hit nor poison an entry.
  features::NetContext short_ctx = contexts_[0];
  ASSERT_FALSE(short_ctx.loads.empty());
  short_ctx.loads.pop_back();
  const std::vector<core::NetBatchItem> bad = {{&nets_[0], &short_ctx}};

  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(bad, opts, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(outcomes[0].provenance, EstimateProvenance::kFailed);
  EXPECT_EQ(outcomes[0].error, core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(stats.failed_nets, 1u);
  EXPECT_EQ(stats.fallback_nets, 0u);
  expect_identity(stats);
  const auto cstats = cache.stats();
  EXPECT_EQ(cstats.hits + cstats.misses, 0u);  // no lookup: no key existed
  EXPECT_EQ(cstats.insertions, 0u);
}

TEST_F(CacheServingTest, WireSourceEcoEditRetimesOnlyChangedContent) {
  netlist::DesignGenConfig cfg;
  cfg.seed = 21;
  cfg.levels = 3;
  cfg.cells_per_level = 4;
  cfg.startpoints = 2;
  netlist::Design design =
      netlist::generate_design(cfg, *library_, "cache_sta");

  core::EstimatorWireSource plain(*estimator_, design, *library_, 1);
  const netlist::StaResult r_plain = netlist::run_sta(design, *library_, plain);

  core::EstimatorWireSource cached(*estimator_, design, *library_, 1);
  cached.enable_cache({});
  ASSERT_NE(cached.cache(), nullptr);
  const netlist::StaResult r_cold = netlist::run_sta(design, *library_, cached);
  const auto cold = cached.cache()->stats();
  EXPECT_EQ(cold.hits, 0u);
  const netlist::StaResult r_warm = netlist::run_sta(design, *library_, cached);
  const auto warm = cached.cache()->stats();
  EXPECT_EQ(warm.hits - cold.hits, design.nets.size());

  // Cached STA is bitwise identical to the uncached source, cold and warm.
  ASSERT_EQ(r_plain.arrival.size(), r_cold.arrival.size());
  for (std::size_t v = 0; v < r_plain.arrival.size(); ++v) {
    EXPECT_EQ(r_plain.arrival[v], r_cold.arrival[v]) << "instance " << v;
    EXPECT_EQ(r_plain.arrival[v], r_warm.arrival[v]) << "instance " << v;
    EXPECT_EQ(r_plain.slew[v], r_warm.slew[v]) << "instance " << v;
  }
  EXPECT_EQ(cached.stats().cached_nets, design.nets.size());

  // ECO edit: perturb one net's parasitics in place. The next full run hits
  // on everything except the edited net — content addressing is the
  // invalidation.
  ASSERT_FALSE(design.nets.empty());
  ASSERT_FALSE(design.nets[0].rc.resistors.empty());
  design.nets[0].rc.resistors[0].ohms =
      std::nextafter(design.nets[0].rc.resistors[0].ohms, 1e9);
  (void)netlist::run_sta(design, *library_, cached);
  const auto eco = cached.cache()->stats();
  EXPECT_EQ(eco.hits - warm.hits, design.nets.size() - 1);
  EXPECT_EQ(eco.misses - warm.misses, 1u);
}

TEST_F(CacheServingTest, CacheMetricsAreExported) {
  EstimateCache cache;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.cache = &cache;
  const auto batch = items();

  auto& registry = telemetry::MetricsRegistry::global();
  const telemetry::Counter hits = registry.counter("gnntrans_cache_hits_total");
  const telemetry::Counter misses =
      registry.counter("gnntrans_cache_misses_total");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  (void)estimator_->estimate_batch(batch, opts);
  (void)estimator_->estimate_batch(batch, opts);
  EXPECT_GE(misses.value() - misses_before, nets_.size());
  EXPECT_GE(hits.value() - hits_before, nets_.size());

  const std::string prom = registry.prometheus_text();
  EXPECT_NE(prom.find("gnntrans_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("gnntrans_cache_misses_total"), std::string::npos);
  EXPECT_NE(prom.find("gnntrans_cache_evictions_total"), std::string::npos);
  EXPECT_NE(prom.find("gnntrans_cache_resident_bytes"), std::string::npos);
  EXPECT_NE(prom.find("gnntrans_cache_entries"), std::string::npos);
}

}  // namespace
