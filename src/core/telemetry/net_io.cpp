#include "core/telemetry/net_io.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/telemetry/metrics.hpp"

namespace gnntrans::telemetry {

namespace {

Counter& send_failure_counter() {
  static Counter counter = MetricsRegistry::global().counter(
      "gnntrans_obs_send_failures_total",
      "Socket sends (obs scrape responses and serve frames) that failed or "
      "timed out before the full payload was written");
  return counter;
}

/// Milliseconds left until \p deadline, clamped to >= 0; -1 when no deadline.
int remaining_ms(bool bounded,
                 std::chrono::steady_clock::time_point deadline) noexcept {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

}  // namespace

std::uint64_t send_failures_total() noexcept {
  return send_failure_counter().value();
}

bool send_all(int fd, std::string_view data, int timeout_ms) noexcept {
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = remaining_ms(bounded, deadline);
      if (wait == 0) break;  // timeout: slow client, stop here
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) break;  // timeout or poll error
      continue;
    }
    break;  // peer went away or hard error
  }
  if (off == data.size()) return true;
  send_failure_counter().inc();
  return false;
}

IoResult recv_some(int fd, char* buf, std::size_t cap, int timeout_ms,
                   std::size_t* got) noexcept {
  if (got) *got = 0;
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int wait = remaining_ms(bounded, deadline);
    if (bounded && wait == 0) return IoResult::kTimeout;
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return IoResult::kError;
    if (ready == 0) return IoResult::kTimeout;
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      if (got) *got = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoResult::kError;
  }
}

int bind_listener(const std::string& addr, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port, std::string* error, int attempts,
                  int backoff_initial_ms) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    if (error) *error = "unparseable address '" + addr + "'";
    return -1;
  }

  const auto describe = [&](const char* what) {
    return std::string(what) + " " + addr + ":" + std::to_string(port) +
           " failed: " + std::strerror(errno);
  };

  int backoff_ms = backoff_initial_ms;
  for (int attempt = 0; attempt < std::max(1, attempts); ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (error) *error = describe("socket()");
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
      const bool in_use = errno == EADDRINUSE;
      if (error) *error = describe("bind");
      ::close(fd);
      // Only EADDRINUSE is transient (a lingering socket from the previous
      // run); anything else (EACCES, bad address) will not heal with time.
      if (in_use && attempt + 1 < std::max(1, attempts)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
        continue;
      }
      return -1;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      if (error) *error = describe("getsockname");
      ::close(fd);
      return -1;
    }
    if (::listen(fd, backlog) < 0) {
      if (error) *error = describe("listen");
      ::close(fd);
      return -1;
    }
    if (bound_port) *bound_port = ntohs(bound.sin_port);
    if (error) error->clear();
    return fd;
  }
  return -1;  // unreachable: the loop returns on every path
}

}  // namespace gnntrans::telemetry
