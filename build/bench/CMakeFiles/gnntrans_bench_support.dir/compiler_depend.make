# Empty compiler generated dependencies file for gnntrans_bench_support.
# This may be replaced when dependencies are built.
