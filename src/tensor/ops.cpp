#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace gnntrans::tensor {

namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument("tensor op: " + what);
}

using Impl = std::shared_ptr<TensorImpl>;

}  // namespace

void GraphMatrix::row_normalize() {
  std::vector<double> row_sum(rows, 0.0);
  for (std::size_t k = 0; k < nnz(); ++k) row_sum[row_index[k]] += values[k];
  for (std::size_t k = 0; k < nnz(); ++k) {
    const double s = row_sum[row_index[k]];
    if (s > 0.0) values[k] = static_cast<float>(values[k] / s);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.cols() == b.rows(), "matmul shape mismatch");
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  Impl ia = a.impl(), ib = b.impl();

  Tensor out = make_op_result(n, m, {ia, ib}, [ia, ib, n, k, m](const TensorImpl& self) {
    if (ia->requires_grad) {
      ia->ensure_grad();
      // dA += dY @ B^T
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < k; ++c) {
          float acc = 0.0f;
          for (std::size_t j = 0; j < m; ++j)
            acc += self.grad[r * m + j] * ib->value[c * m + j];
          ia->grad[r * k + c] += acc;
        }
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      // dB += A^T @ dY
      for (std::size_t r = 0; r < k; ++r)
        for (std::size_t j = 0; j < m; ++j) {
          float acc = 0.0f;
          for (std::size_t i = 0; i < n; ++i)
            acc += ia->value[i * k + r] * self.grad[i * m + j];
          ib->grad[r * m + j] += acc;
        }
    }
  });

  auto v = out.values();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < k; ++c) {
      const float av = a.values()[r * k + c];
      if (av == 0.0f) continue;
      const float* brow = b.values().data() + c * m;
      float* orow = v.data() + r * m;
      for (std::size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require(a.cols() == b.cols(), "matmul_nt shape mismatch");
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  Impl ia = a.impl(), ib = b.impl();

  Tensor out = make_op_result(n, m, {ia, ib}, [ia, ib, n, k, m](const TensorImpl& self) {
    if (ia->requires_grad) {
      ia->ensure_grad();
      // dA += dY @ B
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < k; ++c) {
          float acc = 0.0f;
          for (std::size_t j = 0; j < m; ++j)
            acc += self.grad[r * m + j] * ib->value[j * k + c];
          ia->grad[r * k + c] += acc;
        }
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      // dB += dY^T @ A
      for (std::size_t j = 0; j < m; ++j)
        for (std::size_t c = 0; c < k; ++c) {
          float acc = 0.0f;
          for (std::size_t r = 0; r < n; ++r)
            acc += self.grad[r * m + j] * ia->value[r * k + c];
          ib->grad[j * k + c] += acc;
        }
    }
  });

  auto v = out.values();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      const float* arow = a.values().data() + r * k;
      const float* brow = b.values().data() + j * k;
      for (std::size_t c = 0; c < k; ++c) acc += arow[c] * brow[c];
      v[r * m + j] = acc;
    }
  return out;
}

Tensor transpose(const Tensor& a) {
  const std::size_t n = a.rows(), m = a.cols();
  Impl ia = a.impl();
  Tensor out = make_op_result(m, n, {ia}, [ia, n, m](const TensorImpl& self) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) ia->grad[c * m + r] += self.grad[r * n + c];
  });
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) out.values()[c * n + r] = a.values()[r * m + c];
  return out;
}

Tensor spmm(const GraphMatrix& m, const Tensor& x) {
  require(m.cols == x.rows(), "spmm shape mismatch");
  const std::size_t d = x.cols();
  Impl ix = x.impl();
  // The structure matrix is captured by value: nets are immutable per sample.
  GraphMatrix mc = m;

  Tensor out = make_op_result(m.rows, d, {ix}, [ix, mc, d](const TensorImpl& self) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (std::size_t k = 0; k < mc.nnz(); ++k) {
      const std::size_t r = mc.row_index[k], c = mc.col_index[k];
      const float v = mc.values[k];
      for (std::size_t j = 0; j < d; ++j)
        ix->grad[c * d + j] += v * self.grad[r * d + j];
    }
  });

  for (std::size_t k = 0; k < m.nnz(); ++k) {
    const std::size_t r = m.row_index[k], c = m.col_index[k];
    const float v = m.values[k];
    for (std::size_t j = 0; j < d; ++j)
      out.values()[r * d + j] += v * x.values()[c * d + j];
  }
  return out;
}

namespace {

/// Shared helper for same-shape binary ops with constant-coefficient backward.
Tensor binary_same_shape(const Tensor& a, const Tensor& b, float ca, float cb) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "binary shape mismatch");
  Impl ia = a.impl(), ib = b.impl();
  Tensor out =
      make_op_result(a.rows(), a.cols(), {ia, ib}, [ia, ib, ca, cb](const TensorImpl& self) {
        if (ia->requires_grad) {
          ia->ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ia->grad[i] += ca * self.grad[i];
        }
        if (ib->requires_grad) {
          ib->ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ib->grad[i] += cb * self.grad[i];
        }
      });
  for (std::size_t i = 0; i < out.size(); ++i)
    out.values()[i] = ca * a.values()[i] + cb * b.values()[i];
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) { return binary_same_shape(a, b, 1.0f, 1.0f); }
Tensor sub(const Tensor& a, const Tensor& b) { return binary_same_shape(a, b, 1.0f, -1.0f); }

Tensor mul(const Tensor& a, const Tensor& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "mul shape mismatch");
  Impl ia = a.impl(), ib = b.impl();
  Tensor out = make_op_result(a.rows(), a.cols(), {ia, ib}, [ia, ib](const TensorImpl& self) {
    if (ia->requires_grad) {
      ia->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i)
        ia->grad[i] += ib->value[i] * self.grad[i];
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i)
        ib->grad[i] += ia->value[i] * self.grad[i];
    }
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    out.values()[i] = a.values()[i] * b.values()[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Impl ia = a.impl();
  Tensor out = make_op_result(a.rows(), a.cols(), {ia}, [ia, s](const TensorImpl& self) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) ia->grad[i] += s * self.grad[i];
  });
  for (std::size_t i = 0; i < out.size(); ++i) out.values()[i] = s * a.values()[i];
  return out;
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& bias) {
  require(bias.rows() == 1 && bias.cols() == a.cols(), "bias shape mismatch");
  const std::size_t n = a.rows(), d = a.cols();
  Impl ia = a.impl(), ib = bias.impl();
  Tensor out = make_op_result(n, d, {ia, ib}, [ia, ib, n, d](const TensorImpl& self) {
    if (ia->requires_grad) {
      ia->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) ia->grad[i] += self.grad[i];
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) ib->grad[c] += self.grad[r * d + c];
    }
  });
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c)
      out.values()[r * d + c] = a.values()[r * d + c] + bias.values()[c];
  return out;
}

Tensor outer_sum(const Tensor& s, const Tensor& t) {
  require(s.cols() == 1 && t.cols() == 1, "outer_sum expects column vectors");
  const std::size_t n = s.rows(), m = t.rows();
  Impl is = s.impl(), it = t.impl();
  Tensor out = make_op_result(n, m, {is, it}, [is, it, n, m](const TensorImpl& self) {
    if (is->requires_grad) {
      is->ensure_grad();
      for (std::size_t i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < m; ++j) acc += self.grad[i * m + j];
        is->grad[i] += acc;
      }
    }
    if (it->requires_grad) {
      it->ensure_grad();
      for (std::size_t j = 0; j < m; ++j) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < n; ++i) acc += self.grad[i * m + j];
        it->grad[j] += acc;
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      out.values()[i * m + j] = s.values()[i] + t.values()[j];
  return out;
}

namespace {

/// Unary elementwise op: forward f, backward df given (input value, output value).
template <typename F, typename DF>
Tensor unary(const Tensor& a, F f, DF df) {
  Impl ia = a.impl();
  Tensor out = make_op_result(a.rows(), a.cols(), {ia}, [ia, df](const TensorImpl& self) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i)
      ia->grad[i] += df(ia->value[i], self.value[i]) * self.grad[i];
  });
  for (std::size_t i = 0; i < out.size(); ++i) out.values()[i] = f(a.values()[i]);
  return out;
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  return unary(
      a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x > 0.0f ? 1.0f : negative_slope; });
}

Tensor sigmoid(const Tensor& a) {
  return unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

namespace {

Tensor softmax_impl(const Tensor& a, const std::vector<std::uint8_t>* mask) {
  const std::size_t n = a.rows(), m = a.cols();
  if (mask) require(mask->size() == n * m, "mask size mismatch");
  Impl ia = a.impl();
  std::vector<std::uint8_t> mask_copy = mask ? *mask : std::vector<std::uint8_t>{};

  Tensor out =
      make_op_result(n, m, {ia}, [ia, n, m, mask_copy](const TensorImpl& self) {
        if (!ia->requires_grad) return;
        ia->ensure_grad();
        for (std::size_t r = 0; r < n; ++r) {
          const float* y = self.value.data() + r * m;
          const float* dy = self.grad.data() + r * m;
          float dot = 0.0f;
          for (std::size_t c = 0; c < m; ++c) dot += dy[c] * y[c];
          for (std::size_t c = 0; c < m; ++c) {
            if (!mask_copy.empty() && !mask_copy[r * m + c]) continue;
            ia->grad[r * m + c] += y[c] * (dy[c] - dot);
          }
        }
      });

  for (std::size_t r = 0; r < n; ++r) {
    const float* x = a.values().data() + r * m;
    float* y = out.values().data() + r * m;
    float max_v = -std::numeric_limits<float>::infinity();
    bool any = false;
    for (std::size_t c = 0; c < m; ++c) {
      if (mask && !(*mask)[r * m + c]) continue;
      max_v = std::max(max_v, x[c]);
      any = true;
    }
    if (!any) continue;  // fully masked row stays zero
    float denom = 0.0f;
    for (std::size_t c = 0; c < m; ++c) {
      if (mask && !(*mask)[r * m + c]) {
        y[c] = 0.0f;
        continue;
      }
      y[c] = std::exp(x[c] - max_v);
      denom += y[c];
    }
    for (std::size_t c = 0; c < m; ++c) y[c] /= denom;
  }
  return out;
}

}  // namespace

Tensor softmax_rows(const Tensor& a) { return softmax_impl(a, nullptr); }

Tensor masked_softmax_rows(const Tensor& a, const std::vector<std::uint8_t>& mask) {
  return softmax_impl(a, &mask);
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  require(!parts.empty(), "concat_cols: empty input");
  const std::size_t n = parts.front().rows();
  std::size_t total = 0;
  std::vector<Impl> impls;
  for (const Tensor& p : parts) {
    require(p.rows() == n, "concat_cols row mismatch");
    total += p.cols();
    impls.push_back(p.impl());
  }

  Tensor out = make_op_result(n, total, {impls}, [impls, n, total](const TensorImpl& self) {
    std::size_t offset = 0;
    for (const Impl& p : impls) {
      const std::size_t d = p->cols;
      if (p->requires_grad) {
        p->ensure_grad();
        for (std::size_t r = 0; r < n; ++r)
          for (std::size_t c = 0; c < d; ++c)
            p->grad[r * d + c] += self.grad[r * total + offset + c];
      }
      offset += d;
    }
  });

  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    const std::size_t d = p.cols();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < d; ++c)
        out.values()[r * total + offset + c] = p.values()[r * d + c];
    offset += d;
  }
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::uint32_t>& indices) {
  const std::size_t d = a.cols();
  for (std::uint32_t idx : indices)
    require(idx < a.rows(), "gather_rows index out of range");
  Impl ia = a.impl();
  std::vector<std::uint32_t> idx_copy = indices;

  Tensor out =
      make_op_result(indices.size(), d, {ia}, [ia, idx_copy, d](const TensorImpl& self) {
        if (!ia->requires_grad) return;
        ia->ensure_grad();
        for (std::size_t r = 0; r < idx_copy.size(); ++r)
          for (std::size_t c = 0; c < d; ++c)
            ia->grad[idx_copy[r] * d + c] += self.grad[r * d + c];
      });
  for (std::size_t r = 0; r < indices.size(); ++r)
    for (std::size_t c = 0; c < d; ++c)
      out.values()[r * d + c] = a.values()[indices[r] * d + c];
  return out;
}

Tensor sum_all(const Tensor& a) {
  Impl ia = a.impl();
  Tensor out = make_op_result(1, 1, {ia}, [ia](const TensorImpl& self) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (float& g : ia->grad) g += self.grad[0];
  });
  float acc = 0.0f;
  for (float v : a.values()) acc += v;
  out.values()[0] = acc;
  return out;
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.size()));
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  require(pred.rows() == target.rows() && pred.cols() == target.cols(),
          "mse_loss shape mismatch");
  const float inv_n = 1.0f / static_cast<float>(pred.size());
  Impl ip = pred.impl(), it = target.impl();
  Tensor out = make_op_result(1, 1, {ip}, [ip, it, inv_n](const TensorImpl& self) {
    if (!ip->requires_grad) return;
    ip->ensure_grad();
    for (std::size_t i = 0; i < ip->grad.size(); ++i)
      ip->grad[i] += 2.0f * inv_n * (ip->value[i] - it->value[i]) * self.grad[0];
  });
  float acc = 0.0f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred.values()[i] - target.values()[i];
    acc += d * d;
  }
  out.values()[0] = acc * inv_n;
  return out;
}

}  // namespace gnntrans::tensor
