// Tests for the batched inference engine: thread-count determinism, golden
// regression of pinned outputs, serving stats, arena reuse, and the batched
// EstimatorWireSource inside full-design STA.
//
// A single tiny estimator is trained once per suite (SetUpTestSuite) — the
// tests exercise serving, not model quality.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <sstream>

#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"

namespace {

using namespace gnntrans;

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 24;
    dcfg.seed = 2026;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 4;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    // Unlabeled eval population (golden timing not needed for serving).
    std::mt19937_64 rng(99);
    rcnet::NetGenConfig ncfg;
    while (nets_.size() < 40) {
      rcnet::RcNet net =
          rcnet::generate_net(ncfg, rng, "eval" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
  }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> ServingTest::library_;
std::unique_ptr<core::WireTimingEstimator> ServingTest::estimator_;
std::vector<rcnet::RcNet> ServingTest::nets_;
std::vector<features::NetContext> ServingTest::contexts_;

TEST_F(ServingTest, ThreadCountInvariantBitwise) {
  const auto batch = items();
  const auto serial = estimator_->estimate_batch(batch, {.threads = 1});
  core::BatchOptions four;
  four.threads = 4;
  const auto threaded = estimator_->estimate_batch(batch, four);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), threaded[i].size()) << "net " << i;
    for (std::size_t q = 0; q < serial[i].size(); ++q) {
      EXPECT_EQ(serial[i][q].sink, threaded[i][q].sink);
      // Bitwise equality: each net's forward pass is the same arithmetic
      // sequence regardless of which worker runs it.
      EXPECT_EQ(serial[i][q].slew, threaded[i][q].slew) << "net " << i;
      EXPECT_EQ(serial[i][q].delay, threaded[i][q].delay) << "net " << i;
    }
  }

  // The batch path must also match the legacy single-net entry point.
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const auto single = estimator_->estimate(nets_[i], contexts_[i]);
    ASSERT_EQ(single.size(), serial[i].size());
    for (std::size_t q = 0; q < single.size(); ++q) {
      EXPECT_EQ(single[q].slew, serial[i][q].slew);
      EXPECT_EQ(single[q].delay, serial[i][q].delay);
    }
  }
}

TEST_F(ServingTest, GoldenRegressionPinnedOutputs) {
  // Pinned outputs of the fixed-seed model on the first three eval nets.
  // These detect silent numeric drift in the feature pipeline, forward pass,
  // or standardizer. Tolerance is loose enough (1e-4 relative) to survive
  // benign instruction-scheduling differences, tight enough to catch bugs.
  struct Golden {
    std::size_t net;
    std::size_t path;
    double slew;
    double delay;
  };
  const auto batch = items();
  const auto results = estimator_->estimate_batch(batch, {.threads = 1});
  ASSERT_GE(results.size(), 3u);

  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_FALSE(results[i].empty()) << "net " << i;
    for (std::size_t q = 0; q < results[i].size(); ++q) {
      EXPECT_TRUE(std::isfinite(results[i][q].slew));
      EXPECT_TRUE(std::isfinite(results[i][q].delay));
    }
  }

  const std::vector<Golden> golden = {
      {0, 0, 1.4392871069835042e-10, 7.0285644213196657e-12},
      {0, 1, 1.5358543390893465e-10, 1.2406468177406317e-11},
      {0, 2, 8.1912639669593952e-11, 2.9306780596496591e-12},
      {0, 3, 1.5522237569482385e-10, 1.2027355163747127e-11},
      {0, 4, 1.3195665288306259e-10, 1.2233928830386981e-11},
      {0, 5, 1.558278226435531e-10, 1.210467651879166e-11},
      {0, 6, 1.3563478747008786e-10, 1.0142382255871747e-11},
      {0, 7, 1.5046826778841212e-10, 1.2070938890247776e-11},
      {0, 8, 1.4554383510574389e-10, 1.2296380375452511e-11},
      {1, 0, 9.1509173774754652e-11, 3.1897367630587381e-12},
      {2, 0, 1.4467212094003887e-10, 7.7816341889140376e-12},
      {2, 1, 1.2229281323561996e-10, 7.807436679753829e-12},
      {2, 2, 1.7534402722956929e-10, 1.2991803066857353e-11},
      {2, 3, 1.6018057980603812e-10, 1.0611014191971078e-11},
      {2, 4, 1.7087114393487192e-10, 1.2964095973430822e-11},
      {2, 5, 1.7039483670667373e-10, 1.3204554072900528e-11},
      {2, 6, 1.4670727533691605e-10, 1.1858678965733387e-11},
      {2, 7, 1.2732107114772392e-10, 9.65465786367808e-12},
  };
  ASSERT_FALSE(golden.empty());
  for (const Golden& g : golden) {
    ASSERT_LT(g.net, results.size());
    ASSERT_LT(g.path, results[g.net].size());
    const auto& pe = results[g.net][g.path];
    EXPECT_NEAR(pe.slew, g.slew, std::abs(g.slew) * 1e-4)
        << "net " << g.net << " path " << g.path;
    EXPECT_NEAR(pe.delay, g.delay, std::abs(g.delay) * 1e-4)
        << "net " << g.net << " path " << g.path;
  }
}

TEST_F(ServingTest, StatsAreFilled) {
  const auto batch = items();
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(batch, {.threads = 2}, &stats);

  EXPECT_EQ(stats.nets, nets_.size());
  std::size_t paths = 0;
  for (const auto& r : results) paths += r.size();
  EXPECT_EQ(stats.paths, paths);
  EXPECT_GT(stats.paths, 0u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.nets_per_second, 0.0);
  EXPECT_GT(stats.p50_net_seconds, 0.0);
  EXPECT_GE(stats.p99_net_seconds, stats.p50_net_seconds);
  EXPECT_GT(stats.arena_peak_bytes, 0u);
  EXPECT_GT(stats.arena_reused_buffers + stats.arena_fresh_allocs, 0u);
  EXPECT_FALSE(stats.summary().empty());

  // merge() accumulates counts and keeps conservative percentiles.
  core::InferenceStats total;
  total.merge(stats);
  total.merge(stats);
  EXPECT_EQ(total.nets, 2 * stats.nets);
  EXPECT_EQ(total.paths, 2 * stats.paths);
  EXPECT_DOUBLE_EQ(total.p99_net_seconds, stats.p99_net_seconds);
}

TEST_F(ServingTest, EmptyBatch) {
  core::InferenceStats stats;
  const auto results =
      estimator_->estimate_batch({}, {.threads = 4}, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.nets, 0u);
  EXPECT_EQ(stats.paths, 0u);
  // Empty distribution: percentiles are exactly 0, never NaN (the edge case
  // index-based percentile code used to get wrong).
  EXPECT_DOUBLE_EQ(stats.p50_net_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99_net_seconds, 0.0);
  EXPECT_EQ(stats.latency.count(), 0u);
}

TEST_F(ServingTest, SingleNetBatchHasFinitePercentiles) {
  const auto batch = items();
  core::InferenceStats stats;
  (void)estimator_->estimate_batch(std::span(batch).first(1), {.threads = 1},
                                   &stats);
  EXPECT_EQ(stats.nets, 1u);
  EXPECT_EQ(stats.latency.count(), 1u);
  EXPECT_TRUE(std::isfinite(stats.p50_net_seconds));
  EXPECT_TRUE(std::isfinite(stats.p99_net_seconds));
  EXPECT_GT(stats.p50_net_seconds, 0.0);
  EXPECT_GE(stats.p99_net_seconds, stats.p50_net_seconds);
}

TEST_F(ServingTest, EstimateBatchPublishesMetricsAndSpans) {
  auto& registry = telemetry::MetricsRegistry::global();
  const telemetry::Counter nets_counter =
      registry.counter("gnntrans_serving_nets_total");
  const telemetry::Counter paths_counter =
      registry.counter("gnntrans_serving_paths_total");
  const std::uint64_t nets_before = nets_counter.value();
  const std::uint64_t paths_before = paths_counter.value();

  auto& recorder = telemetry::TraceRecorder::global();
  recorder.clear();
  recorder.enable();
  const auto batch = items();
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(batch, {.threads = 2}, &stats);
  recorder.disable();

  // Counters advanced by exactly this batch.
  EXPECT_EQ(nets_counter.value() - nets_before, batch.size());
  std::size_t paths = 0;
  for (const auto& r : results) paths += r.size();
  EXPECT_EQ(paths_counter.value() - paths_before, paths);

  // Latency histogram series exists and is exported.
  const std::string prom = registry.prometheus_text();
  EXPECT_NE(prom.find("gnntrans_serving_nets_total"), std::string::npos);
  EXPECT_NE(prom.find("gnntrans_serving_net_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("gnntrans_serving_arena_peak_bytes"), std::string::npos);

  // Spans for the batch and its per-net stages landed in the recorder.
  std::ostringstream trace;
  recorder.write_chrome_json(trace);
  const std::string json = trace.str();
  EXPECT_NE(json.find("\"name\":\"estimate_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"featurize\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gnn_forward\""), std::string::npos);
  recorder.clear();
}

TEST_F(ServingTest, ArenaReusesBuffersAcrossBatches) {
  const auto batch = items();
  std::vector<nn::Workspace> workspaces;
  core::BatchOptions options;
  options.threads = 1;
  options.workspaces = &workspaces;

  core::InferenceStats first, second;
  (void)estimator_->estimate_batch(batch, options, &first);
  (void)estimator_->estimate_batch(batch, options, &second);

  // Cold arenas hit the heap at least once per distinct buffer size.
  EXPECT_GT(first.arena_fresh_allocs, 0u);
  // A warm arena owns every capacity the identical batch needs: the second
  // pass must be fully served from the pool.
  EXPECT_EQ(second.arena_fresh_allocs, 0u);
  EXPECT_GT(second.arena_reused_buffers, 0u);
  EXPECT_EQ(second.arena_peak_bytes, first.arena_peak_bytes);
}

TEST(ToSinkTimings, ClampsOnlySettledPathsAndCounts) {
  std::vector<core::PathEstimate> estimates(3);
  estimates[0] = {0, -4.2e-12, 1.0e-12, core::EstimateProvenance::kModel};
  estimates[1] = {1, 2.0e-10, 3.0e-12, core::EstimateProvenance::kModel};
  estimates[2] = {2, 0.0, 0.0, core::EstimateProvenance::kFailed};

  std::size_t clamped = 0;
  const auto sinks = core::to_sink_timings(estimates, &clamped);
  ASSERT_EQ(sinks.size(), 3u);

  // Degenerate (negative) slew on a settled path: raised to the NLDM floor
  // and counted — the clamp must never be a silent mask.
  EXPECT_TRUE(sinks[0].settled);
  EXPECT_DOUBLE_EQ(sinks[0].slew, 1e-12);
  EXPECT_EQ(clamped, 1u);

  EXPECT_TRUE(sinks[1].settled);
  EXPECT_DOUBLE_EQ(sinks[1].slew, 2.0e-10);

  // kFailed: raw zeros, unsettled, and NOT clamped — a floored slew would
  // dress the failure up as a plausible timing value.
  EXPECT_FALSE(sinks[2].settled);
  EXPECT_DOUBLE_EQ(sinks[2].slew, 0.0);
  EXPECT_DOUBLE_EQ(sinks[2].delay, 0.0);
}

TEST_F(ServingTest, FailedNetsReachStaUnsettledWithWarn) {
  netlist::DesignGenConfig cfg;
  cfg.seed = 9;
  cfg.levels = 3;
  cfg.cells_per_level = 5;
  cfg.startpoints = 3;
  const netlist::Design design =
      netlist::generate_design(cfg, *library_, "failed_sta");

  // Every (site, net) decision faults, and the ladder has no analytic rung:
  // every net the estimator serves comes back kFailed with zeroed sinks.
  core::FaultInjector::Config fcfg;
  fcfg.probability = 1.0;
  fcfg.seed = 3;
  core::FaultInjector::global().configure(fcfg);

  core::EstimatorWireSource source(*estimator_, design, *library_, 1);
  core::BatchOptions serving;
  serving.fallback = core::FallbackPolicy::kNone;
  source.set_serving_options(serving);

  // Capture WARNs: swap the global logger's sinks for a string stream.
  auto capture = std::make_shared<std::ostringstream>();
  auto& logger = telemetry::Logger::global();
  logger.clear_sinks();
  logger.add_sink(std::make_shared<telemetry::StreamSink>(*capture));
  const netlist::StaResult sta = netlist::run_sta(design, *library_, source);
  logger.clear_sinks();
  logger.add_sink(std::make_shared<telemetry::StderrSink>());
  core::FaultInjector::global().disarm();

  ASSERT_GT(source.stats().failed_nets, 0u);
  // The regression this pins: before outcome threading, every kFailed sink
  // was stamped settled and its zero delay silently became an STA arrival.
  EXPECT_GT(sta.unsettled_sinks, 0u);
  std::size_t tainted = 0;
  for (const std::uint8_t s : sta.arrival_settled) tainted += s == 0;
  EXPECT_GT(tainted, 0u);

  // Both the per-net WARN (net name + reason) and the run summary fired.
  const std::string log = capture->str();
  EXPECT_NE(log.find("failed wire timing"), std::string::npos) << log;
  EXPECT_NE(log.find("unsettled"), std::string::npos);

  // Failed sinks carry their raw zeros: the slew floor must not have
  // touched them (it only guards settled paths).
  EXPECT_EQ(source.stats().slew_clamped, 0u);
}

TEST_F(ServingTest, MisalignedContextLoadsAreTypedRejects) {
  // A context whose loads vector disagrees with the sink list is a caller
  // contract violation, not a model fault: typed kInvalidArgument, provenance
  // kFailed (zeroed per-sink outputs), and *no* analytic fallback — the
  // fallback would need the same per-sink loads the caller failed to supply.
  // Gated before featurization, so extract_features never sees the mismatch.
  features::NetContext short_ctx = contexts_[0];
  ASSERT_FALSE(short_ctx.loads.empty());
  short_ctx.loads.pop_back();

  features::NetContext long_ctx = contexts_[1];
  long_ctx.loads.push_back(long_ctx.loads.front());

  features::NetContext empty_ctx = contexts_[2];
  empty_ctx.loads.clear();
  ASSERT_FALSE(nets_[2].sinks.empty());

  const std::vector<core::NetBatchItem> bad = {
      {&nets_[0], &short_ctx}, {&nets_[1], &long_ctx}, {&nets_[2], &empty_ctx}};

  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions opts;
  opts.threads = 1;
  opts.outcomes = &outcomes;  // default fallback policy: kAnalytic
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(bad, opts, &stats);

  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].error, core::ErrorCode::kInvalidArgument) << i;
    EXPECT_EQ(outcomes[i].provenance, core::EstimateProvenance::kFailed) << i;
    EXPECT_NE(outcomes[i].message.find("context.loads"), std::string::npos)
        << outcomes[i].message;
    // The ladder bottom still yields one (zeroed) estimate per sink.
    ASSERT_EQ(results[i].size(), bad[i].net->sinks.size()) << i;
    for (const auto& pe : results[i]) {
      EXPECT_EQ(pe.provenance, core::EstimateProvenance::kFailed);
      EXPECT_DOUBLE_EQ(pe.slew, 0.0);
      EXPECT_DOUBLE_EQ(pe.delay, 0.0);
    }
  }
  EXPECT_EQ(stats.failed_nets, 3u);
  EXPECT_EQ(stats.fallback_nets, 0u);
  EXPECT_EQ(stats.model_nets + stats.fallback_nets + stats.failed_nets +
                stats.cached_nets,
            stats.nets);
  EXPECT_EQ(
      stats.degraded_by_reason[static_cast<std::size_t>(
          core::ErrorCode::kInvalidArgument)],
      3u);

  // An aligned context on the same nets still serves from the model: the
  // gate keys on the (net, context) pair, not the net.
  const std::vector<core::NetBatchItem> good = {{&nets_[0], &contexts_[0]}};
  const auto ok = estimator_->estimate_batch(good, opts);
  EXPECT_EQ(outcomes[0].provenance, core::EstimateProvenance::kModel);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].size(), nets_[0].sinks.size());
}

TEST_F(ServingTest, StaBatchedEstimatorIsThreadInvariant) {
  netlist::DesignGenConfig cfg;
  cfg.seed = 5;
  cfg.levels = 4;
  cfg.cells_per_level = 6;
  cfg.startpoints = 4;
  const netlist::Design design =
      netlist::generate_design(cfg, *library_, "serving_sta");

  core::EstimatorWireSource serial(*estimator_, design, *library_, 1);
  core::EstimatorWireSource threaded(*estimator_, design, *library_, 3);
  const netlist::StaResult r1 = netlist::run_sta(design, *library_, serial);
  const netlist::StaResult r3 = netlist::run_sta(design, *library_, threaded);

  ASSERT_EQ(r1.endpoint_arrival.size(), r3.endpoint_arrival.size());
  ASSERT_FALSE(r1.endpoint_arrival.empty());
  for (std::size_t e = 0; e < r1.endpoint_arrival.size(); ++e)
    EXPECT_EQ(r1.endpoint_arrival[e], r3.endpoint_arrival[e]) << "endpoint " << e;
  for (std::size_t v = 0; v < r1.arrival.size(); ++v) {
    EXPECT_EQ(r1.arrival[v], r3.arrival[v]) << "instance " << v;
    EXPECT_EQ(r1.slew[v], r3.slew[v]) << "instance " << v;
  }

  // Both sources timed every net of the design exactly once.
  EXPECT_EQ(serial.stats().nets, threaded.stats().nets);
  EXPECT_EQ(serial.stats().nets, design.nets.size());
  EXPECT_EQ(threaded.stats().threads, 3u);
}

}  // namespace
