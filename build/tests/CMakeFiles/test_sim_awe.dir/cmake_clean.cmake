file(REMOVE_RECURSE
  "CMakeFiles/test_sim_awe.dir/test_sim_awe.cpp.o"
  "CMakeFiles/test_sim_awe.dir/test_sim_awe.cpp.o.d"
  "test_sim_awe"
  "test_sim_awe.pdb"
  "test_sim_awe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_awe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
