// Fault-tolerance tests: the Status/Expected taxonomy, the deterministic
// FaultInjector, NaN/Inf layer guards, and — the headline — the degradation
// ladder in estimate_batch under seeded fault injection: every net returns a
// result, degraded nets carry baseline_fallback provenance, the fallback
// counters exactly match the injected-trigger count, and non-injected nets
// stay bitwise thread-count invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>

#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/status.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "nn/guard.hpp"
#include "rcnet/generate.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace gnntrans;
using core::ErrorCode;
using core::EstimateProvenance;
using core::FaultInjector;
using core::FaultSite;

// ---------------------------------------------------------------------------
// Status / Expected

TEST(Status, DefaultIsOk) {
  const core::Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const core::Status s(ErrorCode::kInvalidNet, "sink 3 unreachable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidNet);
  EXPECT_EQ(s.to_string(), "invalid_net: sink 3 unreachable");
}

TEST(Status, EveryCodeHasAName) {
  for (std::size_t c = 0; c < core::kErrorCodeCount; ++c)
    EXPECT_STRNE(core::to_string(static_cast<ErrorCode>(c)), "unknown");
}

TEST(Expected, HoldsValueOrStatus) {
  const core::Expected<int> good(42);
  ASSERT_TRUE(good);
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  const core::Expected<int> bad(
      core::Status(ErrorCode::kDeadlineExceeded, "late"));
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.status().code(), ErrorCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// FaultInjector

/// Disarms the global injector on scope exit so tests cannot leak an armed
/// injector into later suites.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::global().disarm(); }
};

TEST(FaultInjector, DisarmedNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_fail(FaultSite::kForward, "n1"));
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(FaultInjector, DecisionsArePureInSeedSiteKey) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.seed = 7;
  cfg.probability = 0.5;
  inj.configure(cfg);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "net" + std::to_string(i);
    const bool first = inj.would_fail(FaultSite::kValidate, key);
    for (int rep = 0; rep < 3; ++rep)
      EXPECT_EQ(inj.would_fail(FaultSite::kValidate, key), first) << key;
  }
}

TEST(FaultInjector, SitesAreIndependentHashes) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.seed = 11;
  cfg.probability = 0.5;
  inj.configure(cfg);
  // With p=0.5 over 200 keys, two sites agreeing everywhere would mean the
  // site index is ignored by the hash.
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "net" + std::to_string(i);
    disagreements += inj.would_fail(FaultSite::kValidate, key) !=
                     inj.would_fail(FaultSite::kForward, key);
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, TriggerRateTracksProbability) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.seed = 3;
  cfg.probability = 0.1;
  inj.configure(cfg);
  int fired = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i)
    fired += inj.would_fail(FaultSite::kForward, "n" + std::to_string(i));
  // 10% +- generous slack; the hash is fixed so this can never flake.
  EXPECT_GT(fired, kKeys / 20);
  EXPECT_LT(fired, kKeys / 4);
}

TEST(FaultInjector, ShouldFailCountsWouldFailDoesNot) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.seed = 5;
  cfg.probability = 1.0;
  inj.configure(cfg);
  EXPECT_TRUE(inj.would_fail(FaultSite::kDeadline, "n"));
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_TRUE(inj.should_fail(FaultSite::kDeadline, "n"));
  EXPECT_EQ(inj.injected_total(), 1u);
  EXPECT_EQ(inj.injected_at(FaultSite::kDeadline), 1u);
  EXPECT_EQ(inj.injected_at(FaultSite::kForward), 0u);
  inj.reset_counts();
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(FaultInjector, SiteMaskGatesSites) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.seed = 5;
  cfg.probability = 1.0;
  cfg.site_mask = 1u << static_cast<int>(FaultSite::kForward);
  inj.configure(cfg);
  EXPECT_TRUE(inj.should_fail(FaultSite::kForward, "n"));
  EXPECT_FALSE(inj.should_fail(FaultSite::kValidate, "n"));
  EXPECT_FALSE(inj.should_fail(FaultSite::kDeadline, "n"));
}

TEST(FaultInjector, ProbabilityEndpoints) {
  FaultInjector inj;
  FaultInjector::Config cfg;
  cfg.probability = 0.0;
  inj.configure(cfg);
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(inj.would_fail(FaultSite::kForward, "k" + std::to_string(i)));
  cfg.probability = 1.0;
  inj.configure(cfg);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(inj.would_fail(FaultSite::kForward, "k" + std::to_string(i)));
}

// ---------------------------------------------------------------------------
// NaN/Inf layer guards

TEST(FiniteGuard, CleanTensorPasses) {
  tensor::Tensor t(2, 3);
  EXPECT_NO_THROW(nn::guard_finite(t, "test_stage"));
}

TEST(FiniteGuard, NanThrowsWithStageAndCoordinates) {
  tensor::Tensor t(2, 3);
  t.values()[4] = std::numeric_limits<float>::quiet_NaN();  // [1,1]
  try {
    nn::guard_finite(t, "gnn_forward");
    FAIL() << "expected NonFiniteActivationError";
  } catch (const nn::NonFiniteActivationError& e) {
    EXPECT_EQ(e.stage(), "gnn_forward");
    EXPECT_NE(std::string(e.what()).find("[1,1]"), std::string::npos)
        << e.what();
  }
}

TEST(FiniteGuard, InfThrows) {
  tensor::Tensor t(1, 2);
  t.values()[0] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(nn::guard_finite(t, "attention"), nn::NonFiniteActivationError);
}

TEST(FiniteGuard, ScopeDisablesAndRestores) {
  tensor::Tensor t(1, 1);
  t.values()[0] = std::numeric_limits<float>::quiet_NaN();
  ASSERT_TRUE(nn::finite_guard_enabled());
  {
    nn::FiniteGuardScope off(false);
    EXPECT_FALSE(nn::finite_guard_enabled());
    EXPECT_NO_THROW(nn::guard_finite(t, "x"));
  }
  EXPECT_TRUE(nn::finite_guard_enabled());
  EXPECT_THROW(nn::guard_finite(t, "x"), nn::NonFiniteActivationError);
}

// ---------------------------------------------------------------------------
// Degradation ladder in estimate_batch

class FaultServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 24;
    dcfg.seed = 2026;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 4;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    std::mt19937_64 rng(99);
    rcnet::NetGenConfig ncfg;
    ncfg.non_tree_fraction = 0.3;
    while (nets_.size() < 40) {
      rcnet::RcNet net = rcnet::generate_net(
          ncfg, rng, "fault" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    FaultInjector::global().disarm();
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
  }

  void TearDown() override { FaultInjector::global().disarm(); }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> FaultServingTest::library_;
std::unique_ptr<core::WireTimingEstimator> FaultServingTest::estimator_;
std::vector<rcnet::RcNet> FaultServingTest::nets_;
std::vector<features::NetContext> FaultServingTest::contexts_;

// The acceptance test: seeded 10% per-net failure probability across all
// sites. estimate_batch must return a full-length estimate for 100% of the
// nets, every injected-failure net must carry baseline_fallback provenance,
// and the fallback counters must exactly match the injected-trigger count.
TEST_F(FaultServingTest, InjectedFaultsDegradeGracefullyWithExactCounters) {
  InjectorGuard guard;
  FaultInjector::Config cfg;
  cfg.seed = 20260806;
  cfg.probability = 0.1;
  FaultInjector::global().configure(cfg);

  // Snapshot the process-global telemetry counter before the batch.
  telemetry::Counter fallback_metric =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_serving_fallback_total",
          "Nets degraded to the analytic baseline");
  const std::uint64_t metric_before = fallback_metric.value();

  const auto batch = items();
  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions options;
  options.threads = 1;
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(batch, options, &stats);

  // 100% of nets produce a full per-sink result vector.
  ASSERT_EQ(results.size(), nets_.size());
  ASSERT_EQ(outcomes.size(), nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    ASSERT_EQ(results[i].size(), nets_[i].sinks.size()) << "net " << i;
    for (const core::PathEstimate& pe : results[i]) {
      EXPECT_TRUE(std::isfinite(pe.delay));
      EXPECT_TRUE(std::isfinite(pe.slew));
      EXPECT_EQ(pe.provenance, outcomes[i].provenance);
    }
  }

  // Every structurally valid net that was injected a failure fell back to the
  // analytic baseline — none failed outright.
  const std::uint64_t injected = FaultInjector::global().injected_total();
  ASSERT_GT(injected, 0u) << "seed produced no triggers; pick another seed";
  EXPECT_EQ(stats.failed_nets, 0u);
  EXPECT_EQ(stats.fallback_nets, injected);
  EXPECT_EQ(stats.model_nets + stats.fallback_nets, nets_.size());

  // Telemetry counter delta exactly matches the injected count.
  EXPECT_EQ(fallback_metric.value() - metric_before, injected);

  // Per-reason counters partition the degraded set.
  std::size_t by_reason = 0;
  for (std::size_t c = 0; c < core::kErrorCodeCount; ++c)
    by_reason += stats.degraded_by_reason[c];
  EXPECT_EQ(by_reason, stats.fallback_nets + stats.failed_nets);
  EXPECT_EQ(stats.degraded_by_reason[static_cast<std::size_t>(ErrorCode::kOk)],
            0u);

  // Outcomes agree with the stats tallies.
  std::size_t degraded_outcomes = 0;
  for (const core::NetOutcome& o : outcomes) {
    if (o.provenance == EstimateProvenance::kBaselineFallback) {
      ++degraded_outcomes;
      EXPECT_NE(o.error, ErrorCode::kOk);
      EXPECT_FALSE(o.message.empty());
    } else {
      EXPECT_EQ(o.provenance, EstimateProvenance::kModel);
      EXPECT_EQ(o.error, ErrorCode::kOk);
    }
  }
  EXPECT_EQ(degraded_outcomes, stats.fallback_nets);
}

// Same injection, different thread counts: the degraded set is identical and
// non-injected nets stay bitwise identical (fault decisions are a pure hash,
// not a race).
TEST_F(FaultServingTest, InjectionIsThreadCountDeterministic) {
  InjectorGuard guard;
  FaultInjector::Config cfg;
  cfg.seed = 20260806;
  cfg.probability = 0.1;

  const auto batch = items();
  auto run = [&](std::size_t threads, std::vector<core::NetOutcome>* outcomes,
                 core::InferenceStats* stats) {
    FaultInjector::global().configure(cfg);  // resets trigger counters
    core::BatchOptions options;
    options.threads = threads;
    options.outcomes = outcomes;
    return estimator_->estimate_batch(batch, options, stats);
  };

  std::vector<core::NetOutcome> serial_outcomes, threaded_outcomes;
  core::InferenceStats serial_stats, threaded_stats;
  const auto serial = run(1, &serial_outcomes, &serial_stats);
  const std::uint64_t serial_injected =
      FaultInjector::global().injected_total();
  const auto threaded = run(4, &threaded_outcomes, &threaded_stats);
  const std::uint64_t threaded_injected =
      FaultInjector::global().injected_total();

  EXPECT_EQ(serial_injected, threaded_injected);
  EXPECT_EQ(serial_stats.fallback_nets, threaded_stats.fallback_nets);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].provenance, threaded_outcomes[i].provenance)
        << "net " << i;
    EXPECT_EQ(serial_outcomes[i].error, threaded_outcomes[i].error)
        << "net " << i;
    ASSERT_EQ(serial[i].size(), threaded[i].size());
    for (std::size_t q = 0; q < serial[i].size(); ++q) {
      // Bitwise equality for every net — the model path is a fixed arithmetic
      // sequence and the analytic fallback is deterministic too.
      EXPECT_EQ(serial[i][q].slew, threaded[i][q].slew) << "net " << i;
      EXPECT_EQ(serial[i][q].delay, threaded[i][q].delay) << "net " << i;
    }
  }
}

// Each fault site maps to its ErrorCode in the outcome.
TEST_F(FaultServingTest, SitesMapToErrorCodes) {
  InjectorGuard guard;
  const struct {
    FaultSite site;
    ErrorCode expect;
  } cases[] = {
      {FaultSite::kValidate, ErrorCode::kInvalidNet},
      {FaultSite::kFeaturize, ErrorCode::kPathExtractionFailed},
      {FaultSite::kForward, ErrorCode::kInternal},
      {FaultSite::kNonFinite, ErrorCode::kNonFiniteActivation},
      {FaultSite::kDeadline, ErrorCode::kDeadlineExceeded},
  };
  const auto batch = items();
  for (const auto& c : cases) {
    FaultInjector::Config cfg;
    cfg.probability = 1.0;  // every net fails at the one enabled site
    cfg.site_mask = 1u << static_cast<int>(c.site);
    FaultInjector::global().configure(cfg);

    std::vector<core::NetOutcome> outcomes;
    core::BatchOptions options;
    options.threads = 1;
    options.outcomes = &outcomes;
    const auto results = estimator_->estimate_batch(batch, options);
    ASSERT_EQ(results.size(), nets_.size());
    for (const core::NetOutcome& o : outcomes) {
      EXPECT_EQ(o.error, c.expect) << to_string(c.site);
      EXPECT_EQ(o.provenance, EstimateProvenance::kBaselineFallback);
    }
  }
}

TEST_F(FaultServingTest, FallbackNonePolicyFailsInsteadOfDegrading) {
  InjectorGuard guard;
  FaultInjector::Config cfg;
  cfg.probability = 1.0;
  cfg.site_mask = 1u << static_cast<int>(FaultSite::kForward);
  FaultInjector::global().configure(cfg);

  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions options;
  options.threads = 1;
  options.fallback = core::FallbackPolicy::kNone;
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(items(), options, &stats);

  EXPECT_EQ(stats.failed_nets, nets_.size());
  EXPECT_EQ(stats.fallback_nets, 0u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(outcomes[i].provenance, EstimateProvenance::kFailed);
    ASSERT_EQ(results[i].size(), nets_[i].sinks.size());
    for (const core::PathEstimate& pe : results[i]) {
      EXPECT_EQ(pe.provenance, EstimateProvenance::kFailed);
      EXPECT_EQ(pe.delay, 0.0);
      EXPECT_EQ(pe.slew, 0.0);
    }
  }
}

TEST_F(FaultServingTest, StructurallyInvalidNetFailsButBatchSurvives) {
  // One broken net among valid ones: it cannot take the analytic baseline
  // (the moment engine needs a valid net), so it fails with zeroed outputs
  // while every other net is served by the model.
  rcnet::RcNet broken = nets_.front();
  broken.name = "broken";
  broken.resistors.clear();  // disconnect everything
  const features::NetContext& ctx = contexts_.front();

  auto batch = items();
  batch.push_back({&broken, &ctx});

  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions options;
  options.threads = 1;
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(batch, options, &stats);

  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(stats.failed_nets, 1u);
  EXPECT_EQ(stats.model_nets, nets_.size());
  EXPECT_EQ(outcomes.back().provenance, EstimateProvenance::kFailed);
  EXPECT_EQ(outcomes.back().error, ErrorCode::kInvalidNet);
  EXPECT_EQ(results.back().size(), broken.sinks.size());
}

TEST_F(FaultServingTest, TinyDeadlineDegradesLateNets) {
  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions options;
  options.threads = 1;
  options.deadline_seconds = 1e-12;  // expires before any net starts
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(items(), options, &stats);

  ASSERT_EQ(results.size(), nets_.size());
  EXPECT_EQ(stats.fallback_nets, nets_.size());
  EXPECT_EQ(stats.degraded_by_reason[static_cast<std::size_t>(
                ErrorCode::kDeadlineExceeded)],
            nets_.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(outcomes[i].error, ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(outcomes[i].provenance, EstimateProvenance::kBaselineFallback);
    ASSERT_EQ(results[i].size(), nets_[i].sinks.size());
    for (const core::PathEstimate& pe : results[i]) {
      EXPECT_GT(pe.slew, 0.0);  // analytic numbers, not zeroed failures
      EXPECT_TRUE(std::isfinite(pe.delay));
    }
  }
}

TEST_F(FaultServingTest, SlowQueryBudgetFlagsEveryNet) {
  std::vector<core::NetOutcome> outcomes;
  core::BatchOptions options;
  options.threads = 1;
  options.slow_net_warn_seconds = 1e-12;  // everything is "slow"
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  (void)estimator_->estimate_batch(items(), options, &stats);

  EXPECT_EQ(stats.slow_nets, nets_.size());
  for (const core::NetOutcome& o : outcomes) EXPECT_TRUE(o.slow);
  // The summary line mentions the slow tally.
  EXPECT_NE(stats.summary().find("slow"), std::string::npos);
}

TEST_F(FaultServingTest, NoInjectionMeansAllModelNets) {
  core::BatchOptions options;
  options.threads = 1;
  std::vector<core::NetOutcome> outcomes;
  options.outcomes = &outcomes;
  core::InferenceStats stats;
  const auto results = estimator_->estimate_batch(items(), options, &stats);

  EXPECT_EQ(stats.model_nets, nets_.size());
  EXPECT_EQ(stats.fallback_nets, 0u);
  EXPECT_EQ(stats.failed_nets, 0u);
  EXPECT_EQ(stats.degraded_fraction(), 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(outcomes[i].provenance, EstimateProvenance::kModel);
    for (const core::PathEstimate& pe : results[i])
      EXPECT_EQ(pe.provenance, EstimateProvenance::kModel);
  }
}

TEST_F(FaultServingTest, SingleNetEstimateStillThrows) {
  // The one-net entry point keeps exception semantics: invalid input is the
  // caller's bug, not a degradation case.
  rcnet::RcNet broken = nets_.front();
  broken.resistors.clear();
  EXPECT_THROW((void)estimator_->estimate(broken, contexts_.front()),
               std::invalid_argument);
}

}  // namespace
