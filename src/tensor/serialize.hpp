/// \file serialize.hpp
/// Binary (de)serialization of tensors and metadata for model checkpoints.
///
/// Format: little-endian; each tensor is [u64 rows][u64 cols][f32 * rows*cols].
/// Checkpoints start with a caller-supplied magic + version so incompatible
/// files fail fast instead of deserializing garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnntrans::tensor {

/// Writes one tensor (values only; gradients are transient state).
void write_tensor(std::ostream& out, const Tensor& t);

/// Reads one tensor written by write_tensor. Throws std::runtime_error on a
/// truncated or malformed stream. Result requires_grad matches \p requires_grad.
[[nodiscard]] Tensor read_tensor(std::istream& in, bool requires_grad = true);

/// Writes a header (magic string + u32 version).
void write_header(std::ostream& out, const std::string& magic, std::uint32_t version);

/// Validates a header; throws std::runtime_error on mismatch.
void check_header(std::istream& in, const std::string& magic,
                  std::uint32_t expected_version);

/// Validates the magic only and returns the stored version, for formats with
/// more than one live version (the caller dispatches on the result and
/// rejects versions it does not understand with a typed error). Throws
/// std::runtime_error on a bad magic or truncated stream.
[[nodiscard]] std::uint32_t read_header(std::istream& in,
                                        const std::string& magic);

/// Writes/reads a vector<double> (normalization statistics).
void write_doubles(std::ostream& out, const std::vector<double>& values);
[[nodiscard]] std::vector<double> read_doubles(std::istream& in);

/// Writes/reads a u32 scalar (layer counts, dims).
void write_u32(std::ostream& out, std::uint32_t value);
[[nodiscard]] std::uint32_t read_u32(std::istream& in);

}  // namespace gnntrans::tensor
