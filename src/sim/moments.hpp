/// \file moments.hpp
/// MNA-based circuit moment computation for RC nets.
///
/// With the source node held by an ideal step, the voltage transfer function
/// to node i expands as H_i(s) = 1 - m1_i s + m2_i s^2 - m3_i s^3 + ...
/// The recursive relation G m_{k+1} = C m_k (with m_0 = 1) yields the moments
/// for *arbitrary* RC topologies, including non-tree nets — this is what
/// PrimeTime-class timers build AWE/Arnoldi reductions on. The first moment is
/// exactly the Elmore delay.
#pragma once

#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::sim {

/// Voltage-transfer moments per node (source row included, value 0).
struct Moments {
  std::vector<double> m1;  ///< Elmore delay per node (seconds)
  std::vector<double> m2;  ///< second moment (seconds^2)
  std::vector<double> m3;  ///< third moment (seconds^3)
};

/// Computes m1..m3 of \p net via dense Cholesky on the reduced conductance
/// matrix. Coupling caps are grounded (Miller-0 assumption), which matches the
/// quiet-aggressor view an analytical metric has.
///
/// Precondition: net.validate() is empty.
[[nodiscard]] Moments compute_moments(const rcnet::RcNet& net);

/// Elmore delay per node via two tree traversals (downstream-cap pass +
/// accumulation pass). Exact on trees only; used to cross-check the MNA path.
///
/// Precondition: net.is_tree().
[[nodiscard]] std::vector<double> elmore_tree(const rcnet::RcNet& net);

/// D2M delay metric per node: ln(2) * m1^2 / sqrt(m2) (Alpert et al., ISPD'00).
/// Clamps to 0 where m2 underflows.
[[nodiscard]] std::vector<double> d2m_from_moments(const Moments& moments);

}  // namespace gnntrans::sim
