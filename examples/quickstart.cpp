// Quickstart: train a GNNTrans wire timing estimator on synthetic nets,
// predict timing for an unseen net, and round-trip the model through a file.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the public API:
//   generate_wire_records -> WireTimingEstimator::train -> estimate -> save.
#include <cstdio>
#include <filesystem>

#include "core/estimator.hpp"
#include "features/dataset.hpp"

using namespace gnntrans;

int main() {
  // 1. A cell library provides drivers/loads (and their NLDM timing).
  const cell::CellLibrary library = cell::CellLibrary::make_default();

  // 2. Build a labeled dataset: random routed nets timed by the golden
  //    transient simulator (the repo's PrimeTime-SI stand-in).
  features::WireDatasetConfig data_cfg;
  data_cfg.net_count = 300;
  data_cfg.seed = 2023;
  std::printf("Generating and timing %zu nets...\n", data_cfg.net_count);
  const auto records = features::generate_wire_records(data_cfg, library);

  const std::vector<features::WireRecord> train(records.begin(),
                                                records.begin() + 240);
  const std::vector<features::WireRecord> test(records.begin() + 240,
                                               records.end());

  // 3. Train the paper's architecture (scaled for a quick demo).
  core::WireTimingEstimator::Options options;
  options.kind = nn::ModelKind::kGnnTrans;
  options.model.hidden_dim = 16;
  options.model.gnn_layers = 4;        // paper: L1 = 20
  options.model.transformer_layers = 2;  // paper: L2 = 10
  options.train.epochs = 30;
  options.train.on_epoch = [](std::size_t epoch, double loss) {
    if (epoch % 10 == 0) std::printf("  epoch %2zu  loss %.4f\n", epoch, loss);
  };
  std::printf("Training GNNTrans (%s)...\n", "L1=4, L2=2 scaled");
  const auto estimator = core::WireTimingEstimator::train(train, options);
  std::printf("Model has %zu parameters.\n",
              estimator.model().parameter_count());

  // 4. Accuracy on unseen nets (R^2, as in the paper's tables).
  const core::Evaluation eval = estimator.evaluate(test);
  std::printf("Held-out accuracy: slew R^2 = %.3f, delay R^2 = %.3f "
              "(max delay err %.2f ps over %zu paths)\n",
              eval.slew_r2, eval.delay_r2, eval.delay_max_abs * 1e12,
              eval.path_count);

  // 5. Per-path prediction for one unseen net.
  const features::WireRecord& sample = test.front();
  std::printf("\nNet '%s' (%zu caps, %zu paths, %s):\n", sample.net.name.c_str(),
              sample.net.node_count(), sample.net.sinks.size(),
              sample.non_tree ? "non-tree" : "tree");
  const auto estimates = estimator.estimate(sample.net, sample.context);
  for (std::size_t q = 0; q < estimates.size(); ++q)
    std::printf("  sink %3u: predicted %6.2f ps delay / %6.2f ps slew   "
                "(golden %6.2f / %6.2f)\n",
                estimates[q].sink, estimates[q].delay * 1e12, estimates[q].slew * 1e12,
                sample.delay_labels[q] * 1e12, sample.slew_labels[q] * 1e12);

  // 6. Persist and reload.
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnntrans_quickstart.bin").string();
  estimator.save_file(path);
  const auto reloaded = core::WireTimingEstimator::load_file(path);
  std::printf("\nSaved and reloaded model from %s (kind: %s).\n", path.c_str(),
              reloaded.model().name().c_str());
  return 0;
}
