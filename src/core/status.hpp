/// \file status.hpp
/// The serving-path error taxonomy: ErrorCode + Status + Expected<T>.
///
/// Production timers degrade rather than abort: one malformed net must not
/// kill an estimate_batch call serving thousands. Every per-net failure mode
/// is classified by an ErrorCode so telemetry can count degradations by
/// reason and tests can assert on exact failure classes instead of matching
/// exception strings.
///
/// Header-only on purpose: lower layers (rcnet's SPEF parser, the cell
/// Liberty reader) report through the same taxonomy without linking against
/// gnntrans_core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace gnntrans::core {

/// Why a net (or a parse) failed. Stable small integers — used as array
/// indices by the per-reason fallback counters.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidNet = 1,            ///< rcnet::validate() pre-flight rejected the net
  kPathExtractionFailed = 2,  ///< featurization / path enumeration failed
  kNonFiniteActivation = 3,   ///< NaN/Inf escaped a model layer boundary
  kDeadlineExceeded = 4,      ///< net started after the batch latency budget
  kParseError = 5,            ///< malformed input document (SPEF/Liberty)
  kInternal = 6,              ///< unclassified exception inside the model path
  kUnsupportedFormat = 7,     ///< checkpoint/file format version not understood
  // Network serving front-end (src/serve) codes. They ride the same taxonomy
  // so wire responses carry exactly a core::Status and telemetry counts
  // rejects by reason with the same per-code machinery as the ladder.
  kOverloaded = 8,      ///< admission queue full; request load-shed (typed)
  kMalformedFrame = 9,  ///< length-prefixed frame failed protocol decode
  kShuttingDown = 10,   ///< server draining; no new requests admitted
  kTimeout = 11,        ///< client-side request timeout / retries exhausted
  /// Caller-supplied arguments are inconsistent with the net itself (e.g.
  /// NetContext::loads misaligned with net.sinks). Rejected before
  /// featurization and before cache-key computation: a misaligned context
  /// can neither be timed nor content-addressed.
  kInvalidArgument = 12,
};

/// Number of distinct ErrorCode values (for per-reason counter arrays).
inline constexpr std::size_t kErrorCodeCount = 13;

[[nodiscard]] constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidNet: return "invalid_net";
    case ErrorCode::kPathExtractionFailed: return "path_extraction_failed";
    case ErrorCode::kNonFiniteActivation: return "non_finite_activation";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnsupportedFormat: return "unsupported_format";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
  }
  return "unknown";
}

/// A result code plus a human-readable message. Cheap to copy when ok (empty
/// message), explicit about the failure class when not.
class Status {
 public:
  /// Success.
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "invalid_net: source node out of range" (or "ok").
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "ok";
    std::string out = core::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence (minimal std::expected
/// stand-in; value-or-error only, no monadic API).
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT
  Expected(Status status) : status_(std::move(status)) {}            // NOLINT

  [[nodiscard]] bool has_value() const noexcept { return has_value_; }
  explicit operator bool() const noexcept { return has_value_; }

  [[nodiscard]] T& value() noexcept { return value_; }
  [[nodiscard]] const T& value() const noexcept { return value_; }
  [[nodiscard]] T& operator*() noexcept { return value_; }
  [[nodiscard]] const T& operator*() const noexcept { return value_; }

  /// Meaningful only when !has_value(); ok() Status otherwise.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  T value_{};
  Status status_;
  bool has_value_ = false;
};

}  // namespace gnntrans::core
