
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/liberty.cpp" "src/cell/CMakeFiles/gnntrans_cell.dir/liberty.cpp.o" "gcc" "src/cell/CMakeFiles/gnntrans_cell.dir/liberty.cpp.o.d"
  "/root/repo/src/cell/library.cpp" "src/cell/CMakeFiles/gnntrans_cell.dir/library.cpp.o" "gcc" "src/cell/CMakeFiles/gnntrans_cell.dir/library.cpp.o.d"
  "/root/repo/src/cell/nldm.cpp" "src/cell/CMakeFiles/gnntrans_cell.dir/nldm.cpp.o" "gcc" "src/cell/CMakeFiles/gnntrans_cell.dir/nldm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
