# Empty compiler generated dependencies file for test_sim_awe.
# This may be replaced when dependencies are built.
