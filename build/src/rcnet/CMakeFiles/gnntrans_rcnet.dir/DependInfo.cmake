
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcnet/generate.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/generate.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/generate.cpp.o.d"
  "/root/repo/src/rcnet/paths.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/paths.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/paths.cpp.o.d"
  "/root/repo/src/rcnet/rcnet.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/rcnet.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/rcnet.cpp.o.d"
  "/root/repo/src/rcnet/reduce.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/reduce.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/reduce.cpp.o.d"
  "/root/repo/src/rcnet/spef.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/spef.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/spef.cpp.o.d"
  "/root/repo/src/rcnet/stats.cpp" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/stats.cpp.o" "gcc" "src/rcnet/CMakeFiles/gnntrans_rcnet.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/gnntrans_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
