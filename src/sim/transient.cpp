#include "sim/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "sim/moments.hpp"

namespace gnntrans::sim {

using rcnet::NodeId;
using rcnet::RcNet;

namespace {

/// A linear aggressor ramp: 0/vdd transition starting at `arrival` lasting
/// `ramp` seconds with slope `slope` (possibly negative for falling).
struct AggressorRamp {
  double arrival = 0.0;
  double ramp = 0.0;
  double slope = 0.0;

  [[nodiscard]] double dv_dt(double t) const noexcept {
    return (t >= arrival && t < arrival + ramp) ? slope : 0.0;
  }
};

AggressorRamp make_aggressor(std::uint64_t seed, const TransientConfig& config,
                             double window) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, config.si.aggressor_slew_sigma);

  AggressorRamp a;
  a.arrival = uni(rng) * window;
  const double mu = std::log(config.si.aggressor_slew_mean) -
                    0.5 * config.si.aggressor_slew_sigma * config.si.aggressor_slew_sigma;
  const double slew = std::exp(mu + gauss(rng));
  a.ramp = slew / 0.6;  // 20/80 slew -> full ramp duration
  const double direction = (uni(rng) < 0.5) ? 1.0 : -1.0;
  a.slope = direction * config.vdd / a.ramp;
  return a;
}

/// Tracks interpolated threshold crossings of a rising waveform.
class CrossingTracker {
 public:
  CrossingTracker() = default;
  explicit CrossingTracker(double vdd)
      : v20_(0.2 * vdd), v50_(0.5 * vdd), v80_(0.8 * vdd) {}

  void observe(double t_prev, double v_prev, double t_now, double v_now) noexcept {
    maybe_cross(t20_, v20_, t_prev, v_prev, t_now, v_now);
    maybe_cross(t50_, v50_, t_prev, v_prev, t_now, v_now);
    maybe_cross(t80_, v80_, t_prev, v_prev, t_now, v_now);
  }

  [[nodiscard]] bool complete() const noexcept {
    return t20_ >= 0.0 && t50_ >= 0.0 && t80_ >= 0.0;
  }
  [[nodiscard]] double t20() const noexcept { return t20_; }
  [[nodiscard]] double t50() const noexcept { return t50_; }
  [[nodiscard]] double t80() const noexcept { return t80_; }

 private:
  static void maybe_cross(double& slot, double threshold, double t_prev,
                          double v_prev, double t_now, double v_now) noexcept {
    if (slot >= 0.0) return;  // first crossing only
    if (v_prev < threshold && v_now >= threshold) {
      const double frac = (threshold - v_prev) / (v_now - v_prev);
      slot = t_prev + frac * (t_now - t_prev);
    }
  }

  double v20_ = 0.0, v50_ = 0.0, v80_ = 0.0;
  double t20_ = -1.0, t50_ = -1.0, t80_ = -1.0;
};

}  // namespace

std::pair<TransientResult, Waveform> simulate_with_probe(
    const RcNet& net, const TransientConfig& config, double input_slew,
    NodeId probe_node, double driver_resistance) {
  const std::size_t n = net.node_count();
  if (n == 0) throw std::invalid_argument("simulate: empty net");
  if (!(input_slew > 0.0)) throw std::invalid_argument("simulate: input slew must be > 0");

  const double r_drv =
      driver_resistance > 0.0 ? driver_resistance : config.driver_resistance;
  const double t_ramp = input_slew / 0.6;

  // Node capacitance: ground caps plus coupling caps (coupling enters both the
  // diagonal and, when SI is on, the injection vector).
  std::vector<double> cap(n, 0.0);
  for (NodeId v = 0; v < n; ++v) cap[v] = net.ground_cap[v];
  for (const rcnet::CouplingCap& cc : net.couplings) cap[cc.victim_node] += cc.farads;

  // Conductance matrix with the driver resistance stamped at the source.
  linalg::Matrix g(n, n);
  for (const rcnet::Resistor& r : net.resistors) {
    const double cond = 1.0 / r.ohms;
    g(r.a, r.a) += cond;
    g(r.b, r.b) += cond;
    g(r.a, r.b) -= cond;
    g(r.b, r.a) -= cond;
  }
  const double g_drv = 1.0 / r_drv;
  g(net.source, net.source) += g_drv;

  // Simulation window estimate: driver ramp + RC settling of the whole net.
  const Moments moments = compute_moments(net);
  const double max_m1 = *std::max_element(moments.m1.begin(), moments.m1.end());
  const double drv_tau = r_drv * (net.total_ground_cap() + net.total_coupling_cap());
  double window = t_ramp + 10.0 * (max_m1 + drv_tau) + 1e-12;

  // Aggressor ramps (deterministic per coupling seed).
  std::vector<AggressorRamp> aggressors;
  if (config.si.enabled) {
    const double aggressor_window = config.si.window_scale * (t_ramp + max_m1);
    aggressors.reserve(net.couplings.size());
    for (const rcnet::CouplingCap& cc : net.couplings)
      aggressors.push_back(make_aggressor(cc.aggressor_seed, config, aggressor_window));
  }

  const double h = window / static_cast<double>(config.steps);

  // Trapezoidal companion matrices: A v_{k+1} = B v_k + (b_k + b_{k+1}) / 2
  // with A = C/h + G/2 (SPD) and B = C/h - G/2.
  linalg::Matrix a_mat = g;
  linalg::Matrix b_mat = g;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a_mat(i, j) *= 0.5;
      b_mat(i, j) *= -0.5;
    }
  for (std::size_t i = 0; i < n; ++i) {
    a_mat(i, i) += cap[i] / h;
    b_mat(i, i) += cap[i] / h;
  }
  const auto chol = linalg::CholeskyFactor::factor(a_mat);
  if (!chol)
    throw std::runtime_error("simulate: companion matrix not SPD (net '" +
                             net.name + "')");

  auto ramp_voltage = [&](double t) {
    if (t <= 0.0) return 0.0;
    if (t >= t_ramp) return config.vdd;
    return config.vdd * t / t_ramp;
  };
  auto injection = [&](double t, std::vector<double>& b) {
    std::fill(b.begin(), b.end(), 0.0);
    b[net.source] = g_drv * ramp_voltage(t);
    for (std::size_t k = 0; k < aggressors.size(); ++k)
      b[net.couplings[k].victim_node] +=
          net.couplings[k].farads * aggressors[k].dv_dt(t);
  };

  std::vector<double> v(n, 0.0);
  std::vector<double> b_prev(n, 0.0);
  std::vector<double> b_now(n, 0.0);
  std::vector<double> rhs(n, 0.0);
  injection(0.0, b_prev);

  CrossingTracker source_tracker(config.vdd);
  std::vector<CrossingTracker> sink_trackers(net.sinks.size(),
                                             CrossingTracker(config.vdd));
  Waveform probe;
  const bool want_probe = probe_node < n;
  if (want_probe) {
    probe.time.push_back(0.0);
    probe.voltage.push_back(0.0);
  }

  TransientResult result;
  double t = 0.0;
  std::size_t extensions = 0;
  std::vector<double> v_prev(n, 0.0);

  auto all_settled = [&] {
    if (!source_tracker.complete()) return false;
    return std::all_of(sink_trackers.begin(), sink_trackers.end(),
                       [](const CrossingTracker& c) { return c.complete(); });
  };

  while (true) {
    for (std::size_t step = 0; step < config.steps; ++step) {
      const double t_next = t + h;
      injection(t_next, b_now);
      // rhs = B v + (b_prev + b_now)/2
      rhs = b_mat.matvec(v);
      for (std::size_t i = 0; i < n; ++i) rhs[i] += 0.5 * (b_prev[i] + b_now[i]);
      v_prev = v;
      v = chol->solve(rhs);
      std::swap(b_prev, b_now);
      ++result.steps_executed;

      source_tracker.observe(t, v_prev[net.source], t_next, v[net.source]);
      for (std::size_t s = 0; s < net.sinks.size(); ++s)
        sink_trackers[s].observe(t, v_prev[net.sinks[s]], t_next, v[net.sinks[s]]);
      if (want_probe) {
        probe.time.push_back(t_next);
        probe.voltage.push_back(v[probe_node]);
      }
      t = t_next;
    }
    if (all_settled() || extensions >= config.max_extensions) break;
    ++extensions;  // keep integrating over another window with the same step
  }

  result.source_slew = source_tracker.complete()
                           ? (source_tracker.t80() - source_tracker.t20()) / 0.6
                           : 0.0;
  result.source_t50 = source_tracker.t50();
  result.sinks.reserve(net.sinks.size());
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    SinkTiming st;
    st.sink = net.sinks[s];
    st.settled = sink_trackers[s].complete() && source_tracker.complete();
    if (st.settled) {
      st.delay = sink_trackers[s].t50() - source_tracker.t50();
      st.slew = (sink_trackers[s].t80() - sink_trackers[s].t20()) / 0.6;
    }
    result.sinks.push_back(st);
  }
  return {std::move(result), std::move(probe)};
}

TransientResult simulate(const RcNet& net, const TransientConfig& config,
                         double input_slew, double driver_resistance) {
  return simulate_with_probe(net, config, input_slew,
                             static_cast<NodeId>(-1), driver_resistance)
      .first;
}

}  // namespace gnntrans::sim
