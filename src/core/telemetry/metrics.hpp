/// \file metrics.hpp
/// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
///
/// Hot-path increments are sharded: every metric keeps kMetricShards
/// cache-line-padded atomic cells and each thread writes the cell picked by
/// its dense thread id, so concurrent increments from pool workers almost
/// never contend on a cache line. Shards are summed only on scrape
/// (snapshot / export), which is the rare path.
///
/// Handles (Counter, Gauge, Histogram) are cheap value types pointing at
/// registry-owned state; the registry is append-only, so handles stay valid
/// for the registry's lifetime and registering the same name twice returns
/// the same metric.
///
/// Exports: Prometheus text exposition format (prometheus_text) and a JSON
/// document (json_text).
///
/// HistogramData is the underlying value-type histogram (bounds + counts +
/// sum); it is also used standalone, e.g. core::InferenceStats records its
/// per-net latency distribution in one and derives p50/p99 through
/// HistogramData::quantile, which is defined (returns 0) on empty data.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gnntrans::telemetry {

/// Number of per-metric shard cells. Threads map to cells by dense thread id
/// modulo this, so up to kMetricShards threads increment without sharing a
/// cache line.
inline constexpr std::size_t kMetricShards = 16;

// Prometheus exposition hardening (public so tests can probe them directly).

/// Forces \p name into [a-zA-Z_:][a-zA-Z0-9_:]*: invalid characters become
/// '_' and a leading digit gets a '_' prefix. Empty input yields "_".
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Escapes a label value per the text exposition format: backslash, double
/// quote, and newline become \\ \" \n.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Escapes HELP text: backslash and newline become \\ \n (quotes are legal
/// in HELP and left alone).
[[nodiscard]] std::string escape_help_text(std::string_view help);

/// Fixed-bucket histogram value type. Buckets are defined by ascending upper
/// bounds; values above the last bound land in an overflow bucket. Counts,
/// sum, and count are plain (non-atomic) — one writer at a time; the
/// registry-backed Histogram handle does its own sharded atomics and merges
/// into HistogramData on scrape.
class HistogramData {
 public:
  /// Default buckets: the latency ladder (1 us .. 1 s, 1-2-5 steps).
  HistogramData() : HistogramData(default_latency_bounds()) {}
  explicit HistogramData(std::vector<double> upper_bounds);

  /// Exponential 1-2-5 ladder from 1 us to 1 s, suitable for per-net serving
  /// latencies and parse/STA stage times.
  [[nodiscard]] static std::vector<double> default_latency_bounds();

  void observe(double value);

  /// Adds \p other into this histogram. Throws std::invalid_argument when the
  /// bucket bounds differ (unless one side has never observed anything and
  /// simply adopts the other's bounds).
  void merge(const HistogramData& other);

  /// Quantile estimate by linear interpolation inside the covering bucket.
  /// q is clamped to [0, 1]. Returns 0.0 on an empty histogram — never NaN,
  /// never reads out of bounds (the empty/single-observation edge cases that
  /// index-based percentile code gets wrong). Values in the overflow bucket
  /// report the last finite bound.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  void reset();

  /// Replaces the raw tallies wholesale (shard-merge plumbing; counts must
  /// have bounds().size() + 1 entries).
  void adopt(std::vector<std::uint64_t> counts, std::uint64_t count, double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

namespace detail {

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterState;
struct GaugeState;
struct HistogramState;

/// Shard cell index for the calling thread.
[[nodiscard]] std::size_t this_thread_shard() noexcept;

}  // namespace detail

/// Monotonic counter handle.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;
  /// Scrape-side read (sums shards); exact once writers are quiescent.
  [[nodiscard]] std::uint64_t value() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterState* state) : state_(state) {}
  detail::CounterState* state_ = nullptr;
};

/// Last-write-wins gauge handle (also supports add for +/- adjustments).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  void add(double delta) const noexcept;
  /// set(value) only when value exceeds the current reading (peak tracking).
  void set_max(double value) const noexcept;
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeState* state) : state_(state) {}
  detail::GaugeState* state_ = nullptr;
};

/// Sharded fixed-bucket histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;
  /// Attaches an OpenMetrics-style exemplar (trace_id + one label value,
  /// e.g. the net name) without adding to the distribution — callers pair it
  /// with a regular observe() of the same request. Keeps the largest value
  /// since the last reset, so the exported exemplar names a request from the
  /// histogram's tail (the p99 bucket) that /tracez can resolve. Called only
  /// for head-sampled requests; takes a small mutex.
  void annotate_exemplar(double value, std::uint64_t trace_id,
                         std::string_view label) const noexcept;
  /// Merged snapshot of all shards.
  [[nodiscard]] HistogramData snapshot() const;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramState* state) : state_(state) {}
  detail::HistogramState* state_ = nullptr;
};

/// Point-in-time view of every metric, shards merged.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name, help;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name, help;
    HistogramData data;
    /// Largest annotated exemplar since the last reset (tail/p99 witness);
    /// has_exemplar false when the histogram was never annotated.
    bool has_exemplar = false;
    double exemplar_value = 0.0;
    std::uint64_t exemplar_trace_id = 0;
    std::string exemplar_label;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Prometheus text exposition format (counters get a _total-as-written
  /// name, histograms emit _bucket/_sum/_count series with le labels).
  [[nodiscard]] std::string to_prometheus() const;
  /// One JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
};

/// Registry of named metrics. Registration takes a mutex; increments through
/// the returned handles are lock-free. Metric names should follow Prometheus
/// conventions ([a-zA-Z_:][a-zA-Z0-9_:]*); other characters are sanitized to
/// '_' on export.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Process-wide registry the pipeline instrumentation reports to.
  [[nodiscard]] static MetricsRegistry& global();

  /// Idempotent by name; registering an existing name with a different type
  /// throws std::invalid_argument.
  [[nodiscard]] Counter counter(std::string_view name,
                                std::string_view help = "");
  [[nodiscard]] Gauge gauge(std::string_view name, std::string_view help = "");
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> upper_bounds,
                                    std::string_view help = "");

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string prometheus_text() const {
    return snapshot().to_prometheus();
  }
  [[nodiscard]] std::string json_text() const { return snapshot().to_json(); }

  /// Zeroes every metric value in place (handles stay valid). Meant for
  /// tests and bench warm-up isolation, not for concurrent use with writers.
  void reset();

  [[nodiscard]] std::size_t metric_count() const;

 private:
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable Impl* impl_ = nullptr;  ///< lazily built, owned
};

}  // namespace gnntrans::telemetry
