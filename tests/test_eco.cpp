// ECO engine tests: the randomized-edit equivalence fuzzer plus targeted
// coverage of settled-taint flow, the tolerance knob, and edit validation.
//
// The contract under test (incremental.hpp): with incremental_tolerance 0,
// after ANY sequence of edits every arrival, slew, required time, slack, and
// settled flag maintained by IncrementalSta is *bitwise* equal to a fresh
// full run_sta over the mutated design with the same wire source.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/sta.hpp"
#include "sim/wire_analysis.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::netlist;

Design make_design(std::uint64_t seed, std::uint32_t startpoints = 4,
                   std::uint32_t levels = 4, std::uint32_t width = 6) {
  DesignGenConfig cfg;
  cfg.startpoints = startpoints;
  cfg.levels = levels;
  cfg.cells_per_level = width;
  cfg.seed = seed;
  const auto lib = cell::CellLibrary::make_default();
  return generate_design(cfg, lib, "eco");
}

sim::TransientConfig quick_tc() {
  sim::TransientConfig tc;
  tc.steps = 200;
  return tc;
}

/// Cheap deterministic wire source for the fuzzer: Elmore (exact MNA m1)
/// delays, with delay and slew depending on the driver inputs so upstream
/// changes propagate through wires the way a real source's would. Pure
/// function of (net, input_slew, driver_resistance) — the property the
/// bitwise-equivalence contract needs.
class ElmoreWireSource final : public WireTimingSource {
 public:
  [[nodiscard]] std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew,
      double driver_resistance) override {
    const sim::WireAnalysis wa = sim::analyze_wire(net);
    std::vector<sim::SinkTiming> out;
    out.reserve(net.sinks.size());
    for (const rcnet::NodeId s : net.sinks) {
      sim::SinkTiming t;
      t.sink = s;
      t.delay = wa.moments.m1[s] * (1.0 + driver_resistance * 1e-4);
      t.slew = 0.9 * input_slew + wa.moments.m1[s];
      t.settled = true;
      out.push_back(t);
    }
    return out;
  }
  [[nodiscard]] std::string name() const override { return "Elmore(test)"; }
};

/// Wraps a source and delivers every sink of one named net unsettled with
/// zeroed values (the estimator's kFailed shape) until heal() is called.
class FlakyWireSource final : public WireTimingSource {
 public:
  FlakyWireSource(WireTimingSource& inner, std::string fail_net)
      : inner_(inner), fail_net_(std::move(fail_net)) {}

  void heal() { healed_ = true; }

  [[nodiscard]] std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew,
      double driver_resistance) override {
    std::vector<sim::SinkTiming> out =
        inner_.time_net(net, input_slew, driver_resistance);
    if (!healed_ && net.name == fail_net_) {
      for (sim::SinkTiming& t : out) {
        t.delay = 0.0;
        t.slew = 0.0;
        t.settled = false;
      }
    }
    return out;
  }
  [[nodiscard]] std::string name() const override { return "Flaky(test)"; }

 private:
  WireTimingSource& inner_;
  std::string fail_net_;
  bool healed_ = false;
};

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Asserts every timing quantity of \p inc is bitwise equal to \p full.
void expect_bitwise_equal(const StaResult& inc, const StaResult& full,
                          const std::string& where) {
  EXPECT_TRUE(same_bits(inc.arrival, full.arrival)) << where << ": arrival";
  EXPECT_TRUE(same_bits(inc.slew, full.slew)) << where << ": slew";
  EXPECT_TRUE(same_bits(inc.required, full.required)) << where << ": required";
  EXPECT_TRUE(same_bits(inc.slack, full.slack)) << where << ": slack";
  EXPECT_EQ(inc.arrival_settled, full.arrival_settled)
      << where << ": arrival_settled";
  EXPECT_TRUE(same_bits(inc.endpoint_arrival, full.endpoint_arrival))
      << where << ": endpoint_arrival";
  EXPECT_TRUE(same_bits(inc.endpoint_slack, full.endpoint_slack))
      << where << ": endpoint_slack";
  EXPECT_EQ(inc.unsettled_sinks, full.unsettled_sinks)
      << where << ": unsettled_sinks";
}

// ---- The randomized-edit equivalence fuzzer ----

// 200 seeded sequences of 4 interleaved edits each (swap / reroute /
// buffer-insert), every edit checked bitwise against a fresh full run_sta
// over the mutated design. The Elmore source keeps 800 full passes cheap;
// a separate golden-source suite below covers the transient timer.
TEST(EcoFuzz, TwoHundredEditSequencesStayBitwiseEqual) {
  const auto lib = cell::CellLibrary::make_default();
  const rcnet::NetGenConfig net_cfg;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    ElmoreWireSource wire;
    // Cycle through a few design shapes so splices hit varied structure.
    Design d = make_design(seq, 3 + seq % 3, 3 + seq % 2, 5 + seq % 3);
    IncrementalSta inc(std::move(d), lib, wire, StaConfig{});
    std::mt19937_64 rng(seq * 0x9e3779b97f4a7c15ULL);
    for (int edit = 0; edit < 4; ++edit) {
      const EcoEdit applied = apply_random_edit(inc, lib, rng, net_cfg);
      ASSERT_TRUE(inc.design().validate().empty())
          << "seq " << seq << " edit " << edit << " (" << applied.kind_name()
          << "): design invalid";
      const StaResult full = run_sta(inc.design(), lib, wire, inc.config());
      expect_bitwise_equal(inc.result(), full,
                           "seq " + std::to_string(seq) + " edit " +
                               std::to_string(edit) + " (" +
                               applied.kind_name() + ")");
      if (::testing::Test::HasFailure()) return;  // first divergence is enough
    }
  }
}

// Same property through the golden transient timer (the sign-off source),
// on a handful of seeds — slower per pass, so fewer sequences.
class EcoGoldenSeeded : public ::testing::TestWithParam<int> {};

TEST_P(EcoGoldenSeeded, EditSequenceMatchesFullGoldenRerun) {
  const auto lib = cell::CellLibrary::make_default();
  const rcnet::NetGenConfig net_cfg;
  GoldenWireSource wire(quick_tc());
  IncrementalSta inc(make_design(GetParam()), lib, wire, StaConfig{});
  std::mt19937_64 rng(GetParam() * 1337);
  for (int edit = 0; edit < 3; ++edit) {
    const EcoEdit applied = apply_random_edit(inc, lib, rng, net_cfg);
    const StaResult full = run_sta(inc.design(), lib, wire, inc.config());
    expect_bitwise_equal(inc.result(), full,
                         "edit " + std::to_string(edit) + " (" +
                             applied.kind_name() + ")");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcoGoldenSeeded, ::testing::Range(1, 5));

// ---- Settled-taint flow through partial retimes ----

TEST(EcoTaint, UnsettledSinkSurvivesUnrelatedRetimesAndHealsOnReroute) {
  const auto lib = cell::CellLibrary::make_default();
  Design d = make_design(23);
  // Fail every sink of net 0 (a level-0 net, so taint has room to flow).
  const std::string fail_net = d.nets[0].rc.name;
  const InstanceId tainted_load = d.nets[0].loads[0];
  ElmoreWireSource inner;
  FlakyWireSource wire(inner, fail_net);
  IncrementalSta inc(std::move(d), lib, wire, StaConfig{});

  ASSERT_GT(inc.result().unsettled_sinks, 0u);
  ASSERT_EQ(inc.result().arrival_settled[tainted_load], 0)
      << "load of the failed net must start tainted";

  // A self-swap of the tainted load retimes its local cone without touching
  // the failed net's own estimate: the taint must survive the partial retime.
  inc.swap_cell(tainted_load,
                inc.design().instances[tainted_load].cell_index);
  EXPECT_EQ(inc.result().arrival_settled[tainted_load], 0)
      << "cone retime not touching the failed net must keep the taint";
  {
    const StaResult full = run_sta(inc.design(), lib, wire, inc.config());
    expect_bitwise_equal(inc.result(), full, "tainted self-swap");
  }

  // Heal the source, then reroute the failed net (same parasitics): the
  // re-estimate succeeds and the taint must clear downstream.
  wire.heal();
  rcnet::RcNet same_rc = inc.design().nets[0].rc;
  inc.reroute_net(0, std::move(same_rc));
  EXPECT_EQ(inc.result().arrival_settled[tainted_load], 1)
      << "successful re-estimate must clear the taint";
  EXPECT_EQ(inc.result().unsettled_sinks, 0u);
  const StaResult full = run_sta(inc.design(), lib, wire, inc.config());
  expect_bitwise_equal(inc.result(), full, "healed reroute");
}

// ---- The tolerance knob (promoted from the old hard-coded kTolerance) ----

TEST(EcoTolerance, ZeroPropagatesFullConeLooseStopsEarly) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = make_design(29);
  ElmoreWireSource wire_exact, wire_loose;

  StaConfig exact_cfg;
  exact_cfg.incremental_tolerance = 0.0;
  StaConfig loose_cfg;
  loose_cfg.incremental_tolerance = 1.0;  // seconds: nothing ever "changes"

  IncrementalSta exact(d, lib, wire_exact, exact_cfg);
  IncrementalSta loose(d, lib, wire_loose, loose_cfg);

  // Upsize a startpoint driver: its whole fanout cone shifts.
  const InstanceId victim = d.startpoints.front();
  const cell::Cell& old_cell = lib.at(d.instances[victim].cell_index);
  std::uint32_t stronger = 0;
  bool found = false;
  for (std::size_t i = 0; i < lib.size() && !found; ++i)
    if (lib.at(i).function == old_cell.function &&
        lib.at(i).drive_strength != old_cell.drive_strength) {
      stronger = static_cast<std::uint32_t>(i);
      found = true;
    }
  ASSERT_TRUE(found) << "library has no alternative drive for the startpoint";

  const std::size_t exact_cone = exact.swap_cell(victim, stronger);
  const std::size_t loose_cone = loose.swap_cell(victim, stronger);
  // Tolerance 0 pushes the change through the cone; a loose tolerance stops
  // at the seeds (the edited instance, its dirtied nets' loads).
  EXPECT_GT(exact_cone, loose_cone);
  EXPECT_GT(exact.last_required_updates(), loose.last_required_updates());
  // And only the exact engine still matches a full rerun bitwise.
  const StaResult full = run_sta(exact.design(), lib, wire_exact, exact_cfg);
  expect_bitwise_equal(exact.result(), full, "exact tolerance");
}

// ---- Edit validation ----

TEST(EcoValidation, RerouteRejectsBadShapes) {
  const auto lib = cell::CellLibrary::make_default();
  Design d = make_design(31);
  ElmoreWireSource wire;
  const std::uint32_t net_count = static_cast<std::uint32_t>(d.nets.size());
  rcnet::RcNet good_rc = d.nets[0].rc;
  IncrementalSta inc(std::move(d), lib, wire, StaConfig{});

  EXPECT_THROW(inc.reroute_net(net_count, std::move(good_rc)),
               std::invalid_argument);
  // One sink too few for the load list.
  std::mt19937_64 rng(7);
  const rcnet::NetGenConfig net_cfg;
  const std::size_t loads = inc.design().nets[0].loads.size();
  rcnet::RcNet short_rc = rcnet::generate_net_for_fanout(
      net_cfg, rng, inc.design().nets[0].rc.name,
      static_cast<std::uint32_t>(loads + 1));
  EXPECT_THROW(inc.reroute_net(0, std::move(short_rc)), std::invalid_argument);
}

TEST(EcoValidation, InsertBufferRejectsBadArguments) {
  const auto lib = cell::CellLibrary::make_default();
  Design d = make_design(37);
  ElmoreWireSource wire;
  IncrementalSta inc(std::move(d), lib, wire, StaConfig{});
  const rcnet::NetGenConfig net_cfg;
  std::mt19937_64 rng(11);

  std::uint32_t buf_cell = 0;
  std::uint32_t ff_cell = 0;
  bool have_buf = false, have_ff = false;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    if (lib.at(i).function == cell::CellFunction::kBuf && !have_buf) {
      buf_cell = static_cast<std::uint32_t>(i);
      have_buf = true;
    }
    if (cell::is_sequential(lib.at(i).function) && !have_ff) {
      ff_cell = static_cast<std::uint32_t>(i);
      have_ff = true;
    }
  }
  ASSERT_TRUE(have_buf);

  const std::uint32_t net_idx = 0;
  const std::size_t fanout = inc.design().nets[net_idx].loads.size();
  const std::string name = inc.design().nets[net_idx].rc.name;
  auto make_rc = [&](std::size_t sinks) {
    return rcnet::generate_net_for_fanout(net_cfg, rng, name,
                                          static_cast<std::uint32_t>(sinks));
  };
  const std::vector<std::uint32_t> first_sink{0};

  // No sinks selected.
  EXPECT_THROW(inc.insert_buffer(net_idx, buf_cell, {}, make_rc(fanout + 1),
                                 make_rc(0)),
               std::invalid_argument);
  // Position out of range / duplicated.
  const std::vector<std::uint32_t> oob{static_cast<std::uint32_t>(fanout)};
  EXPECT_THROW(inc.insert_buffer(net_idx, buf_cell, oob, make_rc(fanout),
                                 make_rc(1)),
               std::invalid_argument);
  const std::vector<std::uint32_t> dup{0, 0};
  EXPECT_THROW(inc.insert_buffer(net_idx, buf_cell, dup, make_rc(fanout - 1),
                                 make_rc(2)),
               std::invalid_argument);
  // A sequential cell is not a buffer.
  if (have_ff)
    EXPECT_THROW(inc.insert_buffer(net_idx, ff_cell, first_sink,
                                   make_rc(fanout), make_rc(1)),
                 std::invalid_argument);
  // Wrong rerouted/new sink counts.
  EXPECT_THROW(inc.insert_buffer(net_idx, buf_cell, first_sink,
                                 make_rc(fanout + 5), make_rc(1)),
               std::invalid_argument);
  EXPECT_THROW(inc.insert_buffer(net_idx, buf_cell, first_sink,
                                 make_rc(fanout), make_rc(3)),
               std::invalid_argument);

  // After all the rejections the engine still matches a full rerun.
  const StaResult full = run_sta(inc.design(), lib, wire, inc.config());
  expect_bitwise_equal(inc.result(), full, "after rejected edits");
}

// A valid splice: the buffer lands at design().instances.size()-1, drives
// the spliced loads, and the whole result stays bitwise equal.
TEST(EcoValidation, InsertBufferSplicesAndStaysEquivalent) {
  const auto lib = cell::CellLibrary::make_default();
  Design d = make_design(41);
  ElmoreWireSource wire;
  const rcnet::NetGenConfig net_cfg;
  std::mt19937_64 rng(13);

  std::uint32_t buf_cell = 0;
  for (std::size_t i = 0; i < lib.size(); ++i)
    if (lib.at(i).function == cell::CellFunction::kBuf) {
      buf_cell = static_cast<std::uint32_t>(i);
      break;
    }

  const std::uint32_t net_idx = 0;
  const std::size_t before_instances = d.instances.size();
  const std::size_t fanout = d.nets[net_idx].loads.size();
  const InstanceId moved_load = d.nets[net_idx].loads[0];
  const std::string name = d.nets[net_idx].rc.name;
  IncrementalSta inc(std::move(d), lib, wire, StaConfig{});

  const std::vector<std::uint32_t> positions{0};
  rcnet::RcNet rerouted = rcnet::generate_net_for_fanout(
      net_cfg, rng, name, static_cast<std::uint32_t>(fanout));  // kept + buffer
  rcnet::RcNet spliced =
      rcnet::generate_net_for_fanout(net_cfg, rng, name + "_buf", 1);
  inc.insert_buffer(net_idx, buf_cell, positions, std::move(rerouted),
                    std::move(spliced));

  const Design& after = inc.design();
  ASSERT_EQ(after.instances.size(), before_instances + 1);
  const auto buffer_id = static_cast<InstanceId>(before_instances);
  EXPECT_EQ(after.instances[buffer_id].cell_index, buf_cell);
  // Buffer is the last load of the original net and drives the moved load.
  EXPECT_EQ(after.nets[net_idx].loads.back(), buffer_id);
  const std::uint32_t new_net = after.driven_net[buffer_id];
  ASSERT_NE(new_net, Design::kNoNet);
  ASSERT_EQ(after.nets[new_net].loads.size(), 1u);
  EXPECT_EQ(after.nets[new_net].loads[0], moved_load);
  EXPECT_TRUE(after.validate().empty());

  const StaResult full = run_sta(after, lib, wire, inc.config());
  expect_bitwise_equal(inc.result(), full, "buffer splice");
}

}  // namespace
