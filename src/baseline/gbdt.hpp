/// \file gbdt.hpp
/// Gradient-boosted regression trees (the XGBoost substitute for the DAC'20
/// baseline, DESIGN.md §1): squared loss, exact greedy splits, shrinkage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace gnntrans::baseline {

/// Boosting hyperparameters.
struct GbdtConfig {
  std::size_t trees = 120;
  std::size_t max_depth = 4;
  double learning_rate = 0.1;
  std::size_t min_samples_leaf = 8;
};

/// One regression tree stored as a flat node array.
class RegressionTree {
 public:
  /// Fits to (X, residuals): exact greedy variance-reduction splits.
  void fit(const std::vector<std::vector<float>>& x, const std::vector<double>& y,
           std::size_t max_depth, std::size_t min_samples_leaf);

  [[nodiscard]] double predict(std::span<const float> features) const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::int32_t feature = -1;  ///< -1 marks a leaf
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaf prediction
  };

  std::size_t build(const std::vector<std::vector<float>>& x,
                    const std::vector<double>& y, std::vector<std::uint32_t>& index,
                    std::size_t begin, std::size_t end, std::size_t depth,
                    std::size_t max_depth, std::size_t min_samples_leaf);

  std::vector<Node> nodes_;
};

/// The boosted ensemble.
class GbdtRegressor {
 public:
  void fit(const std::vector<std::vector<float>>& x, const std::vector<double>& y,
           const GbdtConfig& config);

  [[nodiscard]] double predict(std::span<const float> features) const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  double base_ = 0.0;  ///< initial prediction (label mean)
  double learning_rate_ = 0.1;
  std::vector<RegressionTree> trees_;
};

}  // namespace gnntrans::baseline
