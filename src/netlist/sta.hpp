/// \file sta.hpp
/// Static timing analysis over a Design: NLDM gate timing + pluggable wire
/// timing (golden transient sim, learned estimator, or analytical metric).
///
/// The wire timing source is the experiment variable of the paper's Table V:
/// swapping the golden simulator for the GNNTrans estimator must preserve
/// endpoint arrival times while slashing the wire-timing runtime.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"
#include "sim/golden.hpp"
#include "sim/transient.hpp"

namespace gnntrans::netlist {

/// One net timing request: the batch form of time_net's argument list. The
/// pointed-to net must outlive the time_nets call.
struct WireTimingRequest {
  const rcnet::RcNet* net = nullptr;
  double input_slew = 0.0;
  double driver_resistance = 0.0;
};

/// Strategy interface: who computes per-sink wire delay/slew.
class WireTimingSource {
 public:
  virtual ~WireTimingSource() = default;

  /// Returns one SinkTiming per net sink (order matches net.sinks).
  [[nodiscard]] virtual std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew, double driver_resistance) = 0;

  /// Times a batch of independent nets; result[i] answers requests[i]. The
  /// STA engine hands over one batch per topological level, so batched
  /// sources (threading, scratch-arena reuse) amortize across nets. The
  /// default implementation loops time_net — identical results, no batching.
  [[nodiscard]] virtual std::vector<std::vector<sim::SinkTiming>> time_nets(
      std::span<const WireTimingRequest> requests) {
    std::vector<std::vector<sim::SinkTiming>> out;
    out.reserve(requests.size());
    for (const WireTimingRequest& r : requests)
      out.push_back(time_net(*r.net, r.input_slew, r.driver_resistance));
    return out;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Golden sign-off wire timing (transient simulation with SI).
class GoldenWireSource final : public WireTimingSource {
 public:
  GoldenWireSource() = default;
  explicit GoldenWireSource(sim::TransientConfig config) : timer_(config) {}

  [[nodiscard]] std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew,
      double driver_resistance) override {
    return timer_.time_net(net, input_slew, driver_resistance).sinks;
  }
  [[nodiscard]] std::string name() const override { return "STA-SI(golden)"; }
  [[nodiscard]] const sim::GoldenStats& stats() const noexcept {
    return timer_.stats();
  }

 private:
  sim::GoldenTimer timer_;
};

/// STA knobs.
struct StaConfig {
  double launch_slew = 3.0e-11;  ///< seconds, clock slew at launch FFs
  /// Evaluate NLDM arcs against the effective capacitance (pi-model reduction
  /// + average-current matching) instead of the total load capacitance.
  /// Resistively shielded nets then stress the driver less — the sign-off
  /// behaviour — at the cost of one moment solve per net.
  bool use_ceff = false;
  /// Required time at every endpoint's D pin (the single-clock setup
  /// constraint); seeds the backward required/slack propagation.
  double required_time = 1.0e-9;  ///< seconds
  /// Incremental-STA propagation cutoff: a re-evaluated quantity whose change
  /// is <= this stops the frontier. 0 (the default) propagates every bit-level
  /// change, which is what makes incremental results *bitwise* equal to a full
  /// run_sta; a loose tolerance trades that exactness for smaller cones.
  double incremental_tolerance = 0.0;  ///< seconds
};

/// Per-sink wire timing recorded while run_sta scattered a net, so callers
/// (the incremental engine) can seed per-pin state without re-timing every
/// net. nets[i][s] answers design.nets[i].rc.sinks[s].
struct StaWireTable {
  struct Sink {
    double delay = 0.0;    ///< seconds, driver output to this sink
    double slew = 0.0;     ///< seconds at the sink
    bool settled = false;  ///< the wire source's own settledness flag
  };
  std::vector<std::vector<Sink>> nets;
};

/// Full-design arrival report.
struct StaResult {
  /// Arrival / slew at each instance's output (combinational and launch FFs)
  /// or at its D pin (endpoints). Unreached instances stay at 0.
  std::vector<double> arrival;
  std::vector<double> slew;
  /// Required time / slack at the same pin arrival is measured at, from the
  /// backward pass seeded with StaConfig::required_time at every endpoint:
  /// required[v] = min over driven-net sinks s of
  ///   (required[load_s] - gate_delay[load_s]) - wire_delay_s,
  /// and slack[v] = required[v] - arrival[v].
  std::vector<double> required;
  std::vector<double> slack;
  /// Arrival / slack at each endpoint, aligned with design.endpoints.
  std::vector<double> endpoint_arrival;
  std::vector<double> endpoint_slack;

  /// Per-instance settledness of the arrival: 0 when the critical path ran
  /// through a wire sink its source could not settle — an estimator net that
  /// fell off the degradation ladder (kFailed, delay 0), or a transient
  /// window that never crossed 80% of vdd. Such arrivals are optimistic
  /// lower bounds, not timing; run_sta propagates the taint downstream and
  /// WARNs instead of silently accepting the zero delay. Filled by run_sta
  /// and kept current by IncrementalSta: cone retimes re-derive the flag
  /// wherever a contribution changed, so a sink healed by a reroute recovers
  /// to settled while an untouched unsettled sink stays tainted.
  std::vector<std::uint8_t> arrival_settled;
  /// Wire sinks delivered with settled == false across the whole run.
  std::size_t unsettled_sinks = 0;

  // Critical-path trace (per instance): which fanin determined the arrival.
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  /// Net that delivered the critical input (kNone for startpoints).
  std::vector<std::uint32_t> critical_net;
  /// Wire delay of the critical sink on that net.
  std::vector<double> critical_wire_delay;
  /// Gate delay applied at this instance (clock-to-q for startpoints; 0 for
  /// endpoints, whose D pin terminates the path).
  std::vector<double> gate_delay;

  double gate_seconds = 0.0;  ///< wall time in NLDM evaluation + propagation
  double wire_seconds = 0.0;  ///< wall time inside the wire timing source
};

/// Propagates arrivals through \p design in level order, then required times
/// and slacks in reverse level order. When \p wire_table is non-null it is
/// filled with the per-net per-sink wire timings the run observed (one entry
/// per net, in design.nets order).
[[nodiscard]] StaResult run_sta(const Design& design,
                                const cell::CellLibrary& library,
                                WireTimingSource& wire_source,
                                const StaConfig& config = {},
                                StaWireTable* wire_table = nullptr);

/// Load capacitance the NLDM arc of \p driver sees for \p net under
/// \p config: total cap + pin caps, or the shielding-aware effective
/// capacitance when config.use_ceff is set. Shared by run_sta and
/// IncrementalSta so both load models stay identical.
[[nodiscard]] double nldm_load_cap(const Design& design,
                                   const cell::CellLibrary& library,
                                   const DesignNet& net, const cell::Cell& driver,
                                   double input_slew, const StaConfig& config);

/// Counts source-to-endpoint paths through the instance DAG (Fig. 2(a));
/// returned as double because the count grows exponentially with depth.
[[nodiscard]] double count_netlist_paths(const Design& design);

}  // namespace gnntrans::netlist
