/// \file autoscaler.hpp
/// Metrics-driven pool autoscaling for the batched serving path.
///
/// Inside an incremental optimization loop the offered load per STA level
/// swings from a handful of nets to thousands; a pinned worker count either
/// wastes cores on the small levels or queues latency on the big ones.
/// PoolAutoscaler is a hysteresis controller that runs *between* batches:
/// observe() digests each finished batch's InferenceStats (per-net latency
/// histogram, wall time, worker count) and decide() picks a target worker
/// count in [min_threads, max_threads] for the next batch from three inputs —
/// offered load, the EWMA of per-net service time, and the measured pool
/// utilization.
///
/// Controller law (see DESIGN.md §3e for the derivation):
///   demand   D = ceil(offered * s_ewma / target_batch_seconds)
///   capacity C = ceil(utilization * current * grow_headroom)
///   ideal    = D > current ? min(D, max(current, C)) : D, clamped to
///              [min_threads, min(max_threads, offered)]
/// Growth is multiplicative-increase (capped by C, i.e. by workers that were
/// provably busy), shrink goes straight to demand. Grow/shrink deadbands and
/// a cooldown of cooldown_batches decisions keep the pool from flapping.
///
/// The controller only *decides*; the caller applies the decision by resizing
/// its ThreadPool and per-worker workspace vector in lockstep (see
/// EstimatorWireSource::time_nets). Every decision is observable:
/// gnntrans_serving_pool_target_threads (gauge),
/// gnntrans_serving_autoscale_decisions_{grow,shrink,hold}_total (counters),
/// and one flight-recorder event per resize. Decisions never affect results:
/// each net's forward pass is a fixed arithmetic sequence, so outputs are
/// bitwise-identical across any resize schedule.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gnntrans::core {

struct InferenceStats;

/// Hysteresis-controller knobs. Defaults favor stability over reaction speed:
/// one resize per cooldown window, growth only into demonstrated headroom.
struct AutoscalerConfig {
  /// Hard floor of the target worker count.
  std::size_t min_threads = 1;
  /// Hard ceiling; 0 means ThreadPool::hardware_threads().
  std::size_t max_threads = 0;
  /// Drain budget per batch: demand is the worker count that would finish the
  /// offered load within this many seconds at the observed per-net cost.
  double target_batch_seconds = 2e-3;
  /// Smoothing factor of the per-net service-time EWMA (1 = last batch only).
  double ewma_alpha = 0.3;
  /// Grow only when ideal >= current * grow_deadband (and ideal > current).
  double grow_deadband = 1.25;
  /// Shrink only when ideal <= current * shrink_deadband.
  double shrink_deadband = 0.6;
  /// Growth probe ceiling: at most ceil(utilization * current * grow_headroom)
  /// workers after a grow, so an oversubscribed pool (idle workers) never
  /// grows past what the hardware actually served.
  double grow_headroom = 2.0;
  /// Never grow when the last batch kept less than this fraction of the pool
  /// busy — idle workers mean the bottleneck is elsewhere.
  double min_grow_utilization = 0.5;
  /// Decisions to hold after a resize before the next one may fire.
  std::size_t cooldown_batches = 2;
};

/// Backlog state behind the batch being decided for. The network front-end
/// (serve::NetServer) coalesces cross-client requests into a bounded queue;
/// what is *offered* to the next batch understates demand when more requests
/// are already waiting behind it, and an aging queue means the pool is losing
/// ground right now. Both signals feed decide(): depth joins the demand term,
/// and age past the drain budget overrides the grow hysteresis (deadband and
/// cooldown) — backlog that is getting older is exactly the situation the
/// deadbands exist to *not* damp.
struct QueueSignal {
  std::size_t depth = 0;           ///< requests queued behind the batch
  double oldest_age_seconds = 0.0; ///< age of the oldest queued request
};

enum class ScaleDirection : std::uint8_t { kHold = 0, kGrow = 1, kShrink = 2 };

[[nodiscard]] constexpr const char* to_string(ScaleDirection d) noexcept {
  switch (d) {
    case ScaleDirection::kHold: return "hold";
    case ScaleDirection::kGrow: return "grow";
    case ScaleDirection::kShrink: return "shrink";
  }
  return "unknown";
}

/// One decide() outcome, with the controller internals that produced it so
/// logs/benches can explain every resize.
struct AutoscaleDecision {
  std::size_t target = 1;    ///< worker count the caller should resize to
  std::size_t previous = 1;  ///< worker count going in
  ScaleDirection direction = ScaleDirection::kHold;
  std::size_t ideal = 1;          ///< controller output before deadbands
  double predicted_seconds = 0.0; ///< offered * service-time EWMA
  double utilization = 0.0;       ///< busy fraction of the last batch's pool
  /// Why the pool held (or moved): "cold", "cooldown", "deadband",
  /// "idle-pool", "steady", "bounds", "grow", "shrink", "urgent" (a grow
  /// forced past the hysteresis by an aging serve queue).
  const char* reason = "";

  [[nodiscard]] bool resized() const noexcept {
    return direction != ScaleDirection::kHold;
  }
};

/// The controller. Not thread-safe: call observe()/decide() from the one
/// thread that drives batches (the STA loop / CLI batch loop).
class PoolAutoscaler {
 public:
  explicit PoolAutoscaler(AutoscalerConfig config = {});

  [[nodiscard]] const AutoscalerConfig& config() const noexcept {
    return config_;
  }

  /// Digests one finished batch: updates the per-net service-time EWMA from
  /// the latency histogram and the utilization estimate
  /// sum(per-net latency) / (wall * threads). Empty batches are ignored.
  void observe(const InferenceStats& batch);

  /// Target worker count for the next batch of \p offered nets given
  /// \p current workers. Publishes the decision metrics and, when the pool
  /// should move, a flight-recorder event; the caller performs the actual
  /// pool + workspace resize.
  [[nodiscard]] AutoscaleDecision decide(std::size_t offered,
                                         std::size_t current) {
    return decide(offered, current, QueueSignal{});
  }

  /// decide() with the serving queue's backlog folded in: demand covers
  /// offered + queue.depth, the per-batch ceiling allows for the backlog, and
  /// a queue older than 2x target_batch_seconds is *urgent* — grow skips the
  /// deadband, the idle-pool guard, and any cooldown in progress.
  [[nodiscard]] AutoscaleDecision decide(std::size_t offered,
                                         std::size_t current,
                                         const QueueSignal& queue);

  /// Per-net service-time EWMA in seconds (0 until the first observe()).
  [[nodiscard]] double service_time_ewma() const noexcept {
    return ewma_net_seconds_;
  }
  /// Utilization of the most recently observed batch.
  [[nodiscard]] double last_utilization() const noexcept {
    return utilization_;
  }
  /// Decisions that moved the pool (grow + shrink) since construction.
  [[nodiscard]] std::size_t resize_count() const noexcept { return resizes_; }

 private:
  AutoscalerConfig config_;
  double ewma_net_seconds_ = 0.0;
  double utilization_ = 0.0;
  bool warm_ = false;  ///< at least one batch observed
  std::size_t cooldown_left_ = 0;
  std::size_t resizes_ = 0;
};

}  // namespace gnntrans::core
