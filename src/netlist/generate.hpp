/// \file generate.hpp
/// Synthetic design generator (the OpenCores-designs substitute, DESIGN.md §1)
/// plus presets reproducing the paper's Table II benchmark list at a
/// CPU-friendly scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"
#include "rcnet/generate.hpp"

namespace gnntrans::netlist {

/// Knobs controlling design shape.
struct DesignGenConfig {
  std::uint32_t startpoints = 24;      ///< level-0 FFs (launch points)
  std::uint32_t levels = 7;            ///< combinational depth
  std::uint32_t cells_per_level = 24;  ///< average width
  /// Probability an input connects to the immediately preceding level
  /// (otherwise a uniformly random earlier level) — controls path depth.
  double locality = 0.75;
  rcnet::NetGenConfig net_config;      ///< per-net parasitic generation
  std::uint64_t seed = 1;
};

/// Generates a levelized design. Every non-endpoint instance drives a net
/// with at least one load; dangling outputs are terminated on capture FFs.
[[nodiscard]] Design generate_design(const DesignGenConfig& config,
                                     const cell::CellLibrary& library,
                                     std::string name);

/// Per-instance "is sequential" mask for \p design under \p library.
[[nodiscard]] std::vector<bool> sequential_flags(const Design& design,
                                                 const cell::CellLibrary& library);

/// One Table II benchmark description.
struct BenchmarkSpec {
  std::string name;
  bool training = false;      ///< Table II train/test split
  std::size_t paper_cells = 0;   ///< paper-reported cell count
  DesignGenConfig config;        ///< CPU-scaled generation config
};

/// The paper's 18 benchmarks (11 train + 7 test) with generation configs whose
/// sizes scale as `paper_cells * scale` (clamped to a usable minimum). A scale
/// of 1.0 targets roughly paper_cells/400 instances per design, sized for a
/// single-core box; see EXPERIMENTS.md for the scaling discussion.
[[nodiscard]] std::vector<BenchmarkSpec> paper_benchmarks(double scale = 1.0);

}  // namespace gnntrans::netlist
