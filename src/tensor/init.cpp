#include "tensor/init.hpp"

#include <cmath>

namespace gnntrans::tensor {

Tensor xavier_uniform(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  std::uniform_real_distribution<float> dist(-limit, limit);
  Tensor t(rows, cols, /*requires_grad=*/true);
  for (float& v : t.values()) v = dist(rng);
  return t;
}

Tensor he_normal(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(rows));
  std::normal_distribution<float> dist(0.0f, stddev);
  Tensor t(rows, cols, /*requires_grad=*/true);
  for (float& v : t.values()) v = dist(rng);
  return t;
}

Tensor zeros_param(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, /*requires_grad=*/true);
}

}  // namespace gnntrans::tensor
