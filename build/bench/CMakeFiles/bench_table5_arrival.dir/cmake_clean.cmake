file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_arrival.dir/bench_table5_arrival.cpp.o"
  "CMakeFiles/bench_table5_arrival.dir/bench_table5_arrival.cpp.o.d"
  "bench_table5_arrival"
  "bench_table5_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
