# Empty dependencies file for bench_table3_nontree.
# This may be replaced when dependencies are built.
