/// \file spef.hpp
/// SPEF-subset writer and parser.
///
/// Industry flows exchange parasitics via IEEE 1481 SPEF; StarRC (which the
/// paper uses) emits it. This implements the *D_NET / *CONN / *CAP / *RES
/// subset sufficient to round-trip every net this library generates, so that
/// users can feed externally extracted parasitics into the estimator.
///
/// Node naming convention: "<net>:<index>"; the source carries direction I
/// (driver input to the wire) and sinks carry O in the *CONN section.
/// Coupling caps are written as two-node *CAP entries whose second node is
/// "AGGR:<seed>".
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "rcnet/rcnet.hpp"

namespace gnntrans::rcnet {

/// Writes \p nets as a SPEF-subset document to \p out.
void write_spef(std::ostream& out, const std::vector<RcNet>& nets);

/// Convenience: SPEF text for a single net.
[[nodiscard]] std::string to_spef(const RcNet& net);

/// Parse outcome: nets plus human-readable diagnostics for skipped content.
///
/// The parser is lenient — it salvages every net it can — but \c status
/// reports the *first* structural defect of the document (unknown units,
/// duplicate *CONN/*CAP definitions, truncation inside a *D_NET) with its
/// line number, so strict callers can reject the file outright. All
/// diagnostics, fatal or not, are also appended to \c warnings ("line N: ...").
struct SpefParseResult {
  std::vector<RcNet> nets;
  std::vector<std::string> warnings;
  core::Status status;  ///< kOk, or kParseError with the first defect
};

/// Parses a SPEF-subset document. Unknown sections are skipped with a warning;
/// malformed nets are dropped with a warning rather than aborting the parse.
/// Honors *C_UNIT (FF/PF/F) and *R_UNIT (OHM/KOHM/MOHM) header directives;
/// unrecognized units are a parse error (values would be silently misscaled).
[[nodiscard]] SpefParseResult parse_spef(std::istream& in);

/// Convenience: parses SPEF text; returns std::nullopt when no net survives.
[[nodiscard]] std::optional<RcNet> net_from_spef(const std::string& text);

}  // namespace gnntrans::rcnet
