// Tests for metrics, the training loop, and the WireTimingEstimator API.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::core;

TEST(Metrics, R2PerfectPredictionIsOne) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
}

TEST(Metrics, R2MeanPredictorIsZero) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(mean_pred, truth), 0.0);
}

TEST(Metrics, R2WorseThanMeanIsNegative) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> bad{3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(bad, truth), 0.0);
}

TEST(Metrics, R2ConstantTruthHandledGracefully) {
  const std::vector<double> truth{2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
  const std::vector<double> off{2.5, 2.5};
  EXPECT_DOUBLE_EQ(r2_score(off, truth), 0.0);
}

TEST(Metrics, MaxAndMeanAbsErrors) {
  const std::vector<double> pred{1.0, 5.0, 2.0};
  const std::vector<double> truth{1.5, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_error(pred, truth), 1.0);
  EXPECT_DOUBLE_EQ(mean_abs_error(pred, truth), 0.5);
}

// ---- Trainer ----

std::vector<features::WireRecord> records(std::size_t n, std::uint64_t seed) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = n;
  cfg.seed = seed;
  cfg.sim_config.steps = 300;
  return features::generate_wire_records(cfg, lib);
}

nn::ModelConfig tiny_model() {
  nn::ModelConfig c;
  c.hidden_dim = 8;
  c.gnn_layers = 2;
  c.transformer_layers = 1;
  c.heads = 2;
  c.mlp_hidden = 16;
  return c;
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const auto recs = records(40, 41);
  features::Standardizer std_;
  std_.fit(recs);
  const auto samples = features::make_samples(recs, std_);

  nn::ModelConfig mc = tiny_model();
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  auto model = nn::make_model(nn::ModelKind::kGnnTrans, mc);

  TrainConfig tc;
  tc.epochs = 12;
  const TrainReport report = train_model(*model, samples, tc);
  ASSERT_EQ(report.epoch_loss.size(), 12u);
  EXPECT_LT(report.epoch_loss.back(), 0.5 * report.epoch_loss.front());
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Trainer, EpochCallbackFires) {
  const auto recs = records(6, 43);
  features::Standardizer std_;
  std_.fit(recs);
  const auto samples = features::make_samples(recs, std_);
  nn::ModelConfig mc = tiny_model();
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  auto model = nn::make_model(nn::ModelKind::kGraphSage, mc);
  TrainConfig tc;
  tc.epochs = 3;
  std::size_t calls = 0;
  tc.on_epoch = [&](std::size_t, double) { ++calls; };
  train_model(*model, samples, tc);
  EXPECT_EQ(calls, 3u);
}

TEST(Trainer, ValidationLossIsTrackedWhenEnabled) {
  const auto recs = records(30, 44);
  features::Standardizer std_;
  std_.fit(recs);
  const auto samples = features::make_samples(recs, std_);
  nn::ModelConfig mc = tiny_model();
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  auto model = nn::make_model(nn::ModelKind::kGnnTrans, mc);
  TrainConfig tc;
  tc.epochs = 6;
  tc.validation_fraction = 0.25;
  const TrainReport report = train_model(*model, samples, tc);
  EXPECT_EQ(report.validation_loss.size(), report.epoch_loss.size());
  EXPECT_FALSE(report.validation_loss.empty());
  // Validation loss should improve over a short healthy run.
  EXPECT_LT(report.validation_loss.back(), report.validation_loss.front());
}

TEST(Trainer, EarlyStoppingHaltsOnPlateau) {
  const auto recs = records(12, 45);
  features::Standardizer std_;
  std_.fit(recs);
  const auto samples = features::make_samples(recs, std_);
  nn::ModelConfig mc = tiny_model();
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  auto model = nn::make_model(nn::ModelKind::kGnnTrans, mc);
  TrainConfig tc;
  tc.epochs = 200;
  tc.learning_rate = 0.0f;  // frozen model: validation can never improve
  tc.validation_fraction = 0.25;
  tc.early_stop_patience = 3;
  const TrainReport report = train_model(*model, samples, tc);
  EXPECT_TRUE(report.stopped_early);
  EXPECT_LT(report.epoch_loss.size(), 10u);
}

TEST(Trainer, EmptySampleListIsNoop) {
  nn::ModelConfig mc = tiny_model();
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  auto model = nn::make_model(nn::ModelKind::kGnnTrans, mc);
  const TrainReport report = train_model(*model, {}, TrainConfig{});
  EXPECT_TRUE(report.epoch_loss.empty());
}

// ---- WireTimingEstimator ----

WireTimingEstimator::Options quick_options() {
  WireTimingEstimator::Options opt;
  opt.model = tiny_model();
  opt.train.epochs = 15;
  return opt;
}

TEST(Estimator, TrainEvaluatePredictRoundTrip) {
  const auto recs = records(60, 47);
  const std::vector<features::WireRecord> train_set(recs.begin(), recs.begin() + 48);
  const std::vector<features::WireRecord> test_set(recs.begin() + 48, recs.end());

  const auto est = WireTimingEstimator::train(train_set, quick_options());
  const Evaluation on_train = est.evaluate(train_set);
  EXPECT_GT(on_train.delay_r2, 0.8);
  const Evaluation on_test = est.evaluate(test_set);
  EXPECT_GT(on_test.delay_r2, 0.5);  // small data; just sanity

  const auto estimates = est.estimate(test_set[0].net, test_set[0].context);
  ASSERT_EQ(estimates.size(), test_set[0].net.sinks.size());
  for (const PathEstimate& pe : estimates) {
    EXPECT_GT(pe.delay, -1e-11);
    EXPECT_GT(pe.slew, 0.0);
  }
}

TEST(Estimator, TrainRejectsEmptyRecords) {
  EXPECT_THROW(WireTimingEstimator::train({}, quick_options()),
               std::invalid_argument);
}

TEST(Estimator, SaveLoadPreservesPredictions) {
  const auto recs = records(30, 53);
  const auto est = WireTimingEstimator::train(recs, quick_options());

  std::stringstream buf;
  est.save(buf);
  const auto loaded = WireTimingEstimator::load(buf);

  const auto a = est.estimate(recs[0].net, recs[0].context);
  const auto b = loaded.estimate(recs[0].net, recs[0].context);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_DOUBLE_EQ(a[q].delay, b[q].delay);
    EXPECT_DOUBLE_EQ(a[q].slew, b[q].slew);
  }
}

TEST(Estimator, FileRoundTripAndMissingFileError) {
  const auto recs = records(12, 59);
  const auto est = WireTimingEstimator::train(recs, quick_options());
  const std::string path = std::filesystem::temp_directory_path() /
                           "gnntrans_estimator_test.bin";
  est.save_file(path);
  const auto loaded = WireTimingEstimator::load_file(path);
  EXPECT_EQ(loaded.model().kind(), nn::ModelKind::kGnnTrans);
  std::remove(path.c_str());
  EXPECT_THROW(WireTimingEstimator::load_file(path), std::runtime_error);
}

TEST(Estimator, WorksForEveryModelKind) {
  const auto recs = records(20, 61);
  for (nn::ModelKind kind :
       {nn::ModelKind::kGraphSage, nn::ModelKind::kGcnii, nn::ModelKind::kGat,
        nn::ModelKind::kGraphTransformer}) {
    WireTimingEstimator::Options opt = quick_options();
    opt.kind = kind;
    opt.train.epochs = 3;
    const auto est = WireTimingEstimator::train(recs, opt);
    const auto pred = est.estimate(recs[0].net, recs[0].context);
    EXPECT_EQ(pred.size(), recs[0].net.sinks.size());
  }
}

// ---- STA integration ----

TEST(EstimatorWireSourceTest, DrivesStaEndToEnd) {
  const auto lib = cell::CellLibrary::make_default();
  netlist::DesignGenConfig dcfg;
  dcfg.startpoints = 4;
  dcfg.levels = 3;
  dcfg.cells_per_level = 6;
  dcfg.seed = 67;
  const netlist::Design design = netlist::generate_design(dcfg, lib, "d");

  sim::TransientConfig tc;
  tc.steps = 300;
  sim::GoldenTimer timer(tc);
  const auto recs = features::records_from_design(design, lib, timer);
  const auto est = WireTimingEstimator::train(recs, quick_options());

  EstimatorWireSource source(est, design, lib);
  const netlist::StaResult predicted = netlist::run_sta(design, lib, source);
  netlist::GoldenWireSource golden(tc);
  const netlist::StaResult reference = netlist::run_sta(design, lib, golden);

  ASSERT_EQ(predicted.endpoint_arrival.size(), reference.endpoint_arrival.size());
  // Trained on this very design: endpoint arrivals must track closely.
  const double r2 =
      r2_score(predicted.endpoint_arrival, reference.endpoint_arrival);
  EXPECT_GT(r2, 0.9);
}

}  // namespace
