/// \file stats.hpp
/// Per-net and per-collection structural statistics (Fig. 2(b), Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::rcnet {

/// Structural summary of one net.
struct NetStats {
  std::size_t node_count = 0;
  std::size_t resistor_count = 0;
  std::size_t sink_count = 0;
  std::size_t coupling_count = 0;
  std::uint64_t simple_path_count = 0;
  bool is_tree = false;
  double total_ground_cap = 0.0;  ///< farads
  double total_resistance = 0.0;  ///< ohms
};

/// Computes the structural summary of \p net.
[[nodiscard]] NetStats compute_stats(const RcNet& net);

/// Aggregate over a collection of nets.
struct CollectionStats {
  std::size_t net_count = 0;
  std::size_t non_tree_count = 0;
  std::uint64_t max_simple_paths = 0;
  double mean_simple_paths = 0.0;
  std::size_t max_nodes = 0;
  double mean_nodes = 0.0;
  /// Histogram of simple path counts with bucket width \c path_bucket_width.
  std::vector<std::size_t> path_histogram;
  std::uint64_t path_bucket_width = 10;
};

/// Aggregates statistics over \p nets.
[[nodiscard]] CollectionStats aggregate_stats(const std::vector<RcNet>& nets,
                                              std::uint64_t path_bucket_width = 10);

}  // namespace gnntrans::rcnet
