file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_core.dir/estimator.cpp.o"
  "CMakeFiles/gnntrans_core.dir/estimator.cpp.o.d"
  "CMakeFiles/gnntrans_core.dir/metrics.cpp.o"
  "CMakeFiles/gnntrans_core.dir/metrics.cpp.o.d"
  "CMakeFiles/gnntrans_core.dir/parallel.cpp.o"
  "CMakeFiles/gnntrans_core.dir/parallel.cpp.o.d"
  "CMakeFiles/gnntrans_core.dir/trainer.cpp.o"
  "CMakeFiles/gnntrans_core.dir/trainer.cpp.o.d"
  "libgnntrans_core.a"
  "libgnntrans_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
