#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/telemetry/metrics.hpp"
#include "core/telemetry/net_io.hpp"
#include "core/telemetry/trace.hpp"

namespace gnntrans::serve {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// gnntrans_client_* observability, registered once (idempotent by name).
struct ClientMetrics {
  telemetry::Counter reconnects = telemetry::MetricsRegistry::global().counter(
      "gnntrans_client_reconnects_total",
      "Connections re-established after a transport failure");
  telemetry::Counter retries = telemetry::MetricsRegistry::global().counter(
      "gnntrans_client_retries_total", "Request attempts beyond the first");
  telemetry::Counter retries_transport =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_client_retries_transport_total",
          "Retries caused by connect/send/recv/EOF/timeout failures");
  telemetry::Counter retries_overload =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_client_retries_overload_total",
          "Retries caused by typed kOverloaded rejects");
  telemetry::Counter retries_malformed =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_client_retries_malformed_total",
          "Retries caused by typed kMalformedFrame rejects");
  telemetry::Counter backoff_ms = telemetry::MetricsRegistry::global().counter(
      "gnntrans_client_backoff_ms_total",
      "Cumulative milliseconds slept in retry backoff");

  static const ClientMetrics& get() {
    static const ClientMetrics metrics;
    return metrics;
  }
};

}  // namespace

NetClient::NetClient(NetClientConfig config) : config_(std::move(config)) {}

NetClient::~NetClient() { disconnect(); }

void NetClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  read_buffer_.clear();
}

bool NetClient::ensure_connected() {
  if (fd_ >= 0) return true;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.addr.c_str(), &sa.sin_addr) != 1)
    return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  // Non-blocking connect so the connect timeout is enforceable; the socket
  // stays non-blocking afterwards (send_all/recv_some poll as needed).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, config_.connect_timeout_ms) <= 0) {
      ::close(fd);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  read_buffer_.clear();
  if (ever_connected_) ClientMetrics::get().reconnects.inc();
  ever_connected_ = true;
  return true;
}

bool NetClient::read_response(std::uint64_t request_id,
                              ResponseFrame* response) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  for (;;) {
    std::string payload;
    const FrameStatus fs =
        try_extract_frame(read_buffer_, &payload, kDefaultMaxFrameBytes);
    if (fs == FrameStatus::kOversize) return false;  // stream unrecoverable
    if (fs == FrameStatus::kFrame) {
      if (!decode_response(payload, response).ok()) return false;
      if (response->request_id == request_id || response->request_id == 0)
        return true;  // id 0 = connection-level reject, addressed to us too
      continue;  // stale answer to an attempt we already gave up on
    }
    const int wait = remaining_ms(deadline);
    if (wait == 0) return false;
    char buf[4096];
    std::size_t got = 0;
    switch (telemetry::recv_some(fd_, buf, sizeof(buf), wait, &got)) {
      case telemetry::IoResult::kOk:
        read_buffer_.append(buf, got);
        break;
      case telemetry::IoResult::kEof:
      case telemetry::IoResult::kTimeout:
      case telemetry::IoResult::kError:
        return false;
    }
  }
}

NetClient::Result NetClient::estimate(const rcnet::RcNet& net,
                                      const features::NetContext& context,
                                      std::uint32_t deadline_us) {
  const ClientMetrics& metrics = ClientMetrics::get();
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
  Result result;
  RequestFrame request;
  request.request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 32) | next_seq_++;
  request.deadline_us = deadline_us;
  request.net = net;
  request.context = context;
  // Head-sampling decision: pure hash of request_id, so the retry loop and
  // the server agree without coordination. Purely telemetry — the request
  // content and the estimate are identical either way.
  const telemetry::TraceContext trace =
      recorder.head_sample(request.request_id);
  request.trace = trace;
  result.trace_id = trace.trace_id;

  const std::int64_t lane_begin_ns = trace.sampled ? recorder.now_ns() : 0;
  bool flow_started = false;
  // Closes the request's trace: 'f' terminates the flow arrows and the async
  // 'b'/'e' lane spans the whole client-side request including retries.
  const auto finish_trace = [&] {
    if (!trace.sampled || !recorder.enabled()) return;
    if (flow_started)
      recorder.record_flow(telemetry::TracePhase::kFlowEnd, "client_done",
                           "request", trace.trace_id);
    recorder.record_event("request", "request", lane_begin_ns,
                          recorder.now_ns(), telemetry::TracePhase::kAsync,
                          trace.trace_id);
  };
  // Failure statuses carry the trace_id, so "why was this slow/failed" has a
  // handle into /tracez and the Chrome trace.
  const auto with_trace = [&trace](std::string message) {
    if (trace.valid()) {
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), " [trace_id=0x%016llx]",
                    static_cast<unsigned long long>(trace.trace_id));
      message += suffix;
    }
    return message;
  };

  enum class Reason { kNone, kTransport, kOverload, kMalformed };
  Reason last_failure = Reason::kNone;
  int backoff_ms = config_.backoff_initial_ms;
  const int total_attempts = 1 + std::max(0, config_.max_retries);
  for (int attempt = 0; attempt < total_attempts; ++attempt) {
    if (attempt > 0) {
      metrics.retries.inc();
      switch (last_failure) {
        case Reason::kTransport: metrics.retries_transport.inc(); break;
        case Reason::kOverload: metrics.retries_overload.inc(); break;
        case Reason::kMalformed: metrics.retries_malformed.inc(); break;
        case Reason::kNone: break;
      }
      metrics.backoff_ms.inc(static_cast<std::uint64_t>(backoff_ms));
      {
        const telemetry::TraceSpan backoff_span("backoff", "request", trace);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
    }
    ++result.attempts;
    // The wire carries the attempt number: deterministic fault injection
    // keys on it, so a retry re-rolls its fault dice instead of hitting the
    // same injected failure forever.
    request.attempt = static_cast<std::uint32_t>(attempt);
    // Attempt-linked child span: each retry is its own span on the request's
    // flow lane, so the Chrome trace shows where the attempts went.
    const telemetry::TraceSpan attempt_span("attempt", "request", trace);

    if (!ensure_connected()) {
      ++result.transport_failures;
      last_failure = Reason::kTransport;
      continue;
    }
    if (trace.sampled && recorder.enabled()) {
      recorder.record_flow(
          flow_started ? telemetry::TracePhase::kFlowStep
                       : telemetry::TracePhase::kFlowStart,
          flow_started ? "client_resend" : "client_send", "request",
          trace.trace_id);
      flow_started = true;
    }
    if (!telemetry::send_all(fd_, encode_request(request),
                             config_.request_timeout_ms)) {
      ++result.transport_failures;
      last_failure = Reason::kTransport;
      disconnect();
      continue;
    }
    ResponseFrame response;
    if (!read_response(request.request_id, &response)) {
      ++result.transport_failures;
      last_failure = Reason::kTransport;
      disconnect();  // a late answer must not bleed into the next request
      continue;
    }

    switch (response.status) {
      case core::ErrorCode::kOverloaded:
        ++result.overload_rejects;
        last_failure = Reason::kOverload;
        if (config_.retry_overloaded) continue;  // shed: back off and retry
        break;                                   // caller wants the reject
      case core::ErrorCode::kMalformedFrame:
        // Transient by construction here: our frames are well-formed, so
        // this is an injected decode fault (or corruption) — retry.
        last_failure = Reason::kMalformed;
        continue;
      default:
        break;
    }
    // Terminal: served (kOk or a degraded ladder status with paths) or a
    // typed reject retrying cannot fix (kShuttingDown, kDeadlineExceeded…).
    result.status = core::Status(
        response.status, response.status == core::ErrorCode::kOk
                             ? std::move(response.message)
                             : with_trace(std::move(response.message)));
    result.provenance = response.provenance;
    result.paths = std::move(response.paths);
    finish_trace();
    return result;
  }
  result.status = core::Status(
      core::ErrorCode::kTimeout,
      with_trace("no response after " + std::to_string(result.attempts) +
                 " attempts"));
  finish_trace();
  return result;
}

}  // namespace gnntrans::serve
