/// \file reduce.hpp
/// RC network reduction (TICER-style quick elimination).
///
/// Extraction tools emit far more RC nodes than timing needs; reduction
/// shrinks nets while preserving their low-frequency (delay-relevant)
/// behaviour. Two passes are provided:
///  - parallel merge: resistors sharing both endpoints combine conductances;
///  - series elimination: an internal degree-2 node (not source, not sink,
///    no coupling) is removed, its resistors summed, and its grounded cap
///    redistributed to the neighbours proportionally to conductance —
///    exactly TICER's "quick" rule, which preserves the Elmore delay seen
///    from the source.
///
/// Used by the feature pipeline to bound graph sizes and tested against the
/// golden simulator (reduced nets must time within tight tolerance).
#pragma once

#include <cstdint>
#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::rcnet {

/// Outcome of a reduction pass.
struct ReductionResult {
  RcNet net;
  /// Maps original node ids to ids in the reduced net; eliminated nodes map
  /// to kEliminated.
  std::vector<NodeId> node_map;
  std::size_t eliminated_nodes = 0;
  std::size_t merged_resistors = 0;

  static constexpr NodeId kEliminated = static_cast<NodeId>(-1);
};

/// Combines parallel resistors (same unordered endpoint pair).
[[nodiscard]] RcNet merge_parallel_resistors(const RcNet& net,
                                             std::size_t* merged = nullptr);

/// Runs parallel merge + repeated series elimination to a fixed point.
/// Source, sinks, coupled nodes, and junction nodes are always preserved.
[[nodiscard]] ReductionResult reduce_net(const RcNet& net);

}  // namespace gnntrans::rcnet
