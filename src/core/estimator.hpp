/// \file estimator.hpp
/// The library's headline deliverable: a trained, serializable wire timing
/// estimator that replaces sign-off wire timing inside STA.
///
/// Usage:
///   auto records = features::generate_wire_records(cfg, library);
///   auto estimator = core::WireTimingEstimator::train(records, options);
///   auto timing = estimator.estimate(net, context);       // per-path ps
///   estimator.save("model.bin");  // later: WireTimingEstimator::load(...)
///
/// Serving: estimate_batch() times many nets per call on a reusable
/// ThreadPool, with one scratch-arena Workspace per worker so the forward
/// pass recycles activation buffers instead of reallocating per net. Results
/// are bitwise-identical for any thread count. InferenceStats reports
/// throughput, per-net latency percentiles, and arena high-water marks.
///
/// Fault isolation: each net of a batch succeeds, degrades, or fails on its
/// own — a malformed net, a NaN escaping the forward pass, or an exception on
/// a worker never aborts the call. The degradation ladder is
///   model -> analytic baseline (Elmore/D2M) -> typed failure,
/// and every PathEstimate carries its provenance. Per-net outcomes, per-reason
/// fallback counters, a configurable batch deadline, and a slow-query WARN log
/// make degradations observable; core::FaultInjector drives every error branch
/// deterministically in tests.
///
/// EstimatorWireSource adapts a trained estimator to the STA engine, enabling
/// the paper's Table V flow (gate NLDM + learned wire timing); it implements
/// the batched WireTimingSource::time_nets hook, so full-design STA amortizes
/// inference across every net of a topological level.
#pragma once

#include <array>
#include <iosfwd>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/autoscaler.hpp"
#include "core/status.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/quality.hpp"
#include "core/telemetry/trace.hpp"
#include "core/thread_pool.hpp"
#include "core/trainer.hpp"
#include "features/dataset.hpp"
#include "netlist/sta.hpp"
#include "nn/models.hpp"

namespace gnntrans::core {

class EstimateCache;         // core/estimate_cache.hpp
struct EstimateCacheConfig;  // core/estimate_cache.hpp

/// Which rung of the degradation ladder produced an estimate.
enum class EstimateProvenance : std::uint8_t {
  kModel = 0,             ///< learned model forward pass
  kBaselineFallback = 1,  ///< analytic Elmore/D2M baseline after a model fault
  kFailed = 2,            ///< no estimator applicable; values are zero
  /// Served from the content-addressed estimate cache: the stored bytes of a
  /// prior model pass over identical content — bitwise identical values,
  /// featurize+forward skipped.
  kCached = 3,
};

[[nodiscard]] constexpr const char* to_string(EstimateProvenance p) noexcept {
  switch (p) {
    case EstimateProvenance::kModel: return "model";
    case EstimateProvenance::kBaselineFallback: return "baseline_fallback";
    case EstimateProvenance::kFailed: return "failed";
    case EstimateProvenance::kCached: return "cached";
  }
  return "unknown";
}

/// Per-path estimate in seconds.
struct PathEstimate {
  rcnet::NodeId sink = 0;
  double slew = 0.0;
  double delay = 0.0;
  EstimateProvenance provenance = EstimateProvenance::kModel;
};

/// Per-net serving outcome (filled when BatchOptions::outcomes is set).
struct NetOutcome {
  EstimateProvenance provenance = EstimateProvenance::kModel;
  /// kOk when the model served the net; otherwise why it degraded/failed.
  ErrorCode error = ErrorCode::kOk;
  std::string message;
  bool slow = false;  ///< exceeded BatchOptions::slow_net_warn_seconds
  /// This net's wall time inside the batch and its stage shares, in seconds.
  /// Always filled; callers building per-request stage clocks (the network
  /// server's tail-latency attribution) read the model share from here so
  /// the estimator's internal stage breakdown stays private.
  double net_seconds = 0.0;
  double featurize_seconds = 0.0;
  double forward_seconds = 0.0;
  double fallback_seconds = 0.0;
};

/// Observability counters for batched inference. Per-net wall latencies are
/// tallied into a telemetry::HistogramData (fixed 1-2-5 buckets, 1 us..1 s);
/// p50/p99 are derived through its quantile API, which is well-defined on
/// empty and single-net batches (0 for empty, never NaN). merge() combines
/// calls exactly: histograms add bucket-wise, so merged percentiles are the
/// percentiles of the pooled sample rather than a conservative bound.
struct InferenceStats {
  std::size_t nets = 0;
  std::size_t paths = 0;
  std::size_t threads = 1;
  double wall_seconds = 0.0;
  double nets_per_second = 0.0;
  double p50_net_seconds = 0.0;  ///< latency.quantile(0.50)
  double p99_net_seconds = 0.0;  ///< latency.quantile(0.99)
  telemetry::HistogramData latency;      ///< per-net wall latency, seconds
  std::size_t arena_peak_bytes = 0;      ///< max per-worker high-water mark
  std::size_t arena_reused_buffers = 0;  ///< acquisitions served by the arenas
  std::size_t arena_fresh_allocs = 0;    ///< acquisitions that hit the heap

  // Degradation ladder counters (nets, not paths). Closed-form identity:
  //   model_nets + fallback_nets + failed_nets + cached_nets == nets.
  std::size_t model_nets = 0;     ///< served by the learned model
  std::size_t fallback_nets = 0;  ///< degraded to the analytic baseline
  std::size_t failed_nets = 0;    ///< no estimate possible (zeroed outputs)
  std::size_t cached_nets = 0;    ///< served from the estimate cache
  std::size_t slow_nets = 0;      ///< exceeded the slow-query latency budget
  /// Non-failed sinks whose slew was raised to the 1e-12 NLDM floor on the
  /// way into STA — a nonzero count means the model emitted a degenerate
  /// (<= 0) slew that the clamp would otherwise have masked silently.
  std::size_t slew_clamped = 0;
  /// Degraded (fallback or failed) nets by ErrorCode index.
  std::array<std::size_t, kErrorCodeCount> degraded_by_reason{};

  /// fallback_nets + failed_nets as a fraction of nets (0 on empty).
  [[nodiscard]] double degraded_fraction() const noexcept {
    return nets == 0 ? 0.0
                     : static_cast<double>(fallback_nets + failed_nets) /
                           static_cast<double>(nets);
  }

  void merge(const InferenceStats& other);
  [[nodiscard]] std::string summary() const;
};

/// One net of a batch, with the context it is timed under. Pointees must
/// outlive the estimate_batch call.
struct NetBatchItem {
  const rcnet::RcNet* net = nullptr;
  const features::NetContext* context = nullptr;
};

/// What to do when the model path fails on a net.
enum class FallbackPolicy : std::uint8_t {
  /// Degrade to the analytic Elmore/D2M baseline (default). Structurally
  /// invalid nets still fail (the analytic pass needs a valid net too).
  kAnalytic = 0,
  /// No degradation: failed nets return zeroed per-sink estimates with
  /// provenance kFailed.
  kNone = 1,
};

/// Serving knobs for estimate_batch.
struct BatchOptions {
  /// Worker count; 1 runs inline on the caller. Ignored when \p pool is set
  /// (the pool's size wins).
  std::size_t threads = 1;
  /// Optional externally owned pool, reused across calls to avoid re-spawning
  /// threads per batch.
  ThreadPool* pool = nullptr;
  /// Optional per-worker scratch workspaces, reused across calls so arenas
  /// stay warm between batches (grown to the worker count as needed).
  std::vector<nn::Workspace>* workspaces = nullptr;

  /// Degradation target for nets the model path cannot serve.
  FallbackPolicy fallback = FallbackPolicy::kAnalytic;
  /// Batch latency budget in seconds; nets *started* after the budget is
  /// spent skip the model and degrade directly (ErrorCode::kDeadlineExceeded).
  /// 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// Per-net latency budget in seconds; a net exceeding it is counted in
  /// InferenceStats::slow_nets and WARN-logged with its stage breakdown.
  /// 0 disables the slow-query log.
  double slow_net_warn_seconds = 0.0;
  /// Optional content-addressed estimate cache (caller-owned, must outlive
  /// the call; safe to share across concurrent batches). When set, each
  /// structurally valid net is content-hashed during validation, looked up
  /// before the model path, and model-served results are inserted after it.
  /// Hits return the stored bytes re-tagged kCached; fallback/failed results
  /// are never cached.
  EstimateCache* cache = nullptr;
  /// When set, resized to the batch and filled with one outcome per net.
  std::vector<NetOutcome>* outcomes = nullptr;
  /// Optional per-item trace contexts (parallel to the batch; size must
  /// match when set). Sampled items get their model work recorded as
  /// request-tagged spans plus a flow step, linking the batch span into each
  /// request's trace lane. Telemetry only — never affects estimates.
  const std::vector<telemetry::TraceContext>* traces = nullptr;
};

/// Thrown by WireTimingEstimator::load on a checkpoint whose format version
/// this build does not understand (e.g. a file written by a newer build).
/// Carries a typed core::Status (ErrorCode::kUnsupportedFormat) so callers
/// can branch on the failure class instead of matching exception strings.
class UnsupportedCheckpointError : public std::runtime_error {
 public:
  explicit UnsupportedCheckpointError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// A trained model + its standardizer, bundled for deployment.
class WireTimingEstimator {
 public:
  /// Training options.
  struct Options {
    nn::ModelKind kind = nn::ModelKind::kGnnTrans;
    nn::ModelConfig model;  ///< feature dims are filled in automatically
    TrainConfig train;
  };

  /// Fits the standardizer on \p records, instantiates the model, trains it.
  [[nodiscard]] static WireTimingEstimator train(
      const std::vector<features::WireRecord>& records, Options options);

  /// Per-path wire timing for one net (inference only, no golden timer).
  /// Throws std::invalid_argument on a structurally invalid net and
  /// std::runtime_error when the model path fails; batched serving callers
  /// wanting graceful degradation use estimate_batch instead.
  [[nodiscard]] std::vector<PathEstimate> estimate(
      const rcnet::RcNet& net, const features::NetContext& context) const;

  /// Per-path wire timing for a batch of nets; result[i] answers items[i].
  /// Nets are independent, so outputs are bitwise-identical for every thread
  /// count (each net's forward pass is a fixed arithmetic sequence). \p stats,
  /// when non-null, is overwritten with this call's counters.
  ///
  /// Never throws per-net: a net that the model cannot serve (invalid
  /// structure, non-finite activation, worker exception, deadline) degrades
  /// down the ladder set by options.fallback and the call still returns one
  /// entry per item, each path tagged with its provenance.
  [[nodiscard]] std::vector<std::vector<PathEstimate>> estimate_batch(
      std::span<const NetBatchItem> items, const BatchOptions& options = {},
      InferenceStats* stats = nullptr) const;

  /// Scores the estimator on labeled records (seconds-space R^2 / max error).
  [[nodiscard]] Evaluation evaluate(
      const std::vector<features::WireRecord>& records) const;

  /// Checkpoint format: "GNNTRANS_ESTIMATOR" v2 = standardizer + model + the
  /// per-feature quality baseline (telemetry::FeatureBaseline) built at
  /// train() time. load() also accepts v1 files (pre-quality; baseline stays
  /// empty and drift monitoring is simply unavailable) and throws a typed
  /// UnsupportedCheckpointError (ErrorCode::kUnsupportedFormat) on any other
  /// version instead of misparsing the stream.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static WireTimingEstimator load(std::istream& in);
  [[nodiscard]] static WireTimingEstimator load_file(const std::string& path);

  /// Training-time per-input-feature distribution profile (empty when loaded
  /// from a v1 checkpoint). install_quality_baseline() hands a copy to
  /// telemetry::QualityMonitor::global() so serving can compute feature PSI.
  [[nodiscard]] const telemetry::FeatureBaseline& feature_baseline() const noexcept {
    return baseline_;
  }
  void install_quality_baseline() const {
    if (!baseline_.empty())
      telemetry::QualityMonitor::global().install_baseline(baseline_);
  }

  [[nodiscard]] const nn::WireModel& model() const { return *model_; }
  [[nodiscard]] const features::Standardizer& standardizer() const {
    return standardizer_;
  }
  [[nodiscard]] const TrainReport& train_report() const noexcept {
    return train_report_;
  }

 private:
  WireTimingEstimator() = default;

  /// Wall seconds spent per stage of one net (slow-query log breakdown).
  struct StageSeconds {
    double featurize = 0.0;
    double forward = 0.0;
    double fallback = 0.0;
  };

  /// Model path for one *structurally valid* net: feature extraction +
  /// forward + unstandardize, with every failure mode (including injected
  /// ones) converted into a Status instead of escaping.
  [[nodiscard]] Expected<std::vector<PathEstimate>> run_model_path(
      const rcnet::RcNet& net, const features::NetContext& context,
      nn::Workspace* workspace, StageSeconds* stages) const;

  std::unique_ptr<nn::WireModel> model_;
  features::Standardizer standardizer_;
  TrainReport train_report_;
  telemetry::FeatureBaseline baseline_;  ///< training-time feature profile
};

/// Converts per-path estimates into the SinkTimings run_sta consumes. Paths
/// with kFailed provenance arrive *unsettled* with their raw (zero) values —
/// never a silent zero-delay arrival; STA flags everything downstream of
/// them. Non-failed paths get the 1e-12 slew floor that guards NLDM lookups,
/// and every clamp is tallied into \p clamped (when non-null) so a model
/// emitting degenerate slews is visible instead of silently masked.
[[nodiscard]] std::vector<sim::SinkTiming> to_sink_timings(
    const std::vector<PathEstimate>& estimates,
    std::size_t* clamped = nullptr);

/// Adapts a trained estimator (+ the cell library for load contexts) to the
/// STA engine's WireTimingSource interface. With threads > 1 the batched
/// time_nets entry point fans a level's nets out over a lazily created
/// ThreadPool; per-worker workspaces persist across batches, so arenas stay
/// warm for the whole STA run. stats() accumulates over all batches served.
///
/// With enable_autoscale, a PoolAutoscaler picks the worker count before
/// every batch from the offered level size and the observed latency
/// histogram; the pool and the per-worker workspace vector resize in
/// lockstep, and arrivals stay bitwise-identical across any resize schedule.
class EstimatorWireSource final : public netlist::WireTimingSource {
 public:
  EstimatorWireSource(const WireTimingEstimator& estimator,
                      const netlist::Design& design,
                      const cell::CellLibrary& library,
                      std::size_t threads = 1);
  ~EstimatorWireSource() override;

  /// Re-points this source at \p design and rebuilds the net-name -> net
  /// lookup behind context_for. ECO flows need this: IncrementalSta owns a
  /// *mutated copy* of the design (rerouted parasitics, spliced buffer nets),
  /// so the source must be rebound to sta.design() after construction and
  /// after every structural edit or new nets fall back to neutral contexts.
  /// \p design must outlive this source (or the next rebind).
  void rebind(const netlist::Design& design);

  /// Worker count used by time_nets; takes effect from the next batch.
  /// Shrinking also trims the per-worker workspaces above the new count, so
  /// their arenas are released instead of pinning peak memory forever.
  void set_threads(std::size_t threads);

  /// Turns on metrics-driven pool autoscaling: before each batched call the
  /// controller decides a worker count in [config.min_threads,
  /// config.max_threads] and this source applies it (set_threads semantics);
  /// after the call it feeds the batch's InferenceStats back to the
  /// controller. An explicit set_threads still works and becomes the
  /// controller's new starting point.
  void enable_autoscale(const AutoscalerConfig& config);

  /// The controller, or nullptr when autoscaling is off.
  [[nodiscard]] const PoolAutoscaler* autoscaler() const noexcept {
    return autoscaler_.get();
  }

  /// Attaches an owned content-addressed estimate cache used by every
  /// subsequent time_nets batch. ECO flows get invalidation for free: an
  /// edited net's parasitics hash to a new key, so only genuinely unchanged
  /// cones hit. Replaces any previous cache (dropping its entries).
  void enable_cache(const EstimateCacheConfig& config);

  /// The attached cache, or nullptr when caching is off.
  [[nodiscard]] const EstimateCache* cache() const noexcept {
    return cache_.get();
  }

  /// Current per-worker workspace count (grows with batches, trimmed on
  /// shrink — observability for the lockstep-resize invariant).
  [[nodiscard]] std::size_t workspace_count() const noexcept {
    return workspaces_.size();
  }

  /// Worker count the next batch will use.
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Degradation/deadline/slow-log knobs applied to every batched call.
  /// The threads/pool/workspaces/outcomes/cache fields of \p options are
  /// managed by this source and ignored (caching is enable_cache's job).
  void set_serving_options(const BatchOptions& options) {
    serving_options_ = options;
  }

  [[nodiscard]] std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew,
      double driver_resistance) override;

  [[nodiscard]] std::vector<std::vector<sim::SinkTiming>> time_nets(
      std::span<const netlist::WireTimingRequest> requests) override;

  /// Cumulative serving counters across every batch this source handled.
  [[nodiscard]] const InferenceStats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::string name() const override {
    return "Estimator(" + estimator_.model().name() + ")";
  }

 private:
  /// Derives the feature context (driver cell, load cells) of \p net.
  [[nodiscard]] features::NetContext context_for(const rcnet::RcNet& net,
                                                 double input_slew,
                                                 double driver_resistance) const;

  const WireTimingEstimator& estimator_;
  const netlist::Design* design_;  ///< re-pointable via rebind()
  const cell::CellLibrary& library_;
  std::unordered_map<std::string, std::size_t> net_by_name_;

  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;        ///< created on first batched call
  std::vector<nn::Workspace> workspaces_;   ///< per-worker, reused per batch
  std::unique_ptr<PoolAutoscaler> autoscaler_;  ///< set by enable_autoscale
  std::unique_ptr<EstimateCache> cache_;    ///< set by enable_cache
  BatchOptions serving_options_;            ///< degradation/deadline template
  InferenceStats stats_;
};

}  // namespace gnntrans::core
