#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "tensor/arena.hpp"

namespace gnntrans::tensor {

namespace {

thread_local bool g_grad_enabled = true;

/// Allocates an impl with a zeroed rows x cols value buffer. When a scratch
/// arena is active on this thread the buffer is drawn from it, and the impl's
/// deleter returns the buffer to that arena when the tensor dies (possibly on
/// another thread, possibly after the arena handle itself is gone — the shared
/// state keeps the pool alive).
std::shared_ptr<TensorImpl> new_impl(std::size_t rows, std::size_t cols) {
  std::shared_ptr<TensorImpl> impl;
  if (const auto& arena = detail::active_arena()) {
    impl = std::shared_ptr<TensorImpl>(
        new TensorImpl, [state = arena](TensorImpl* p) {
          detail::release_values(state, std::move(p->value));
          delete p;
        });
    impl->value = detail::acquire_values(arena, rows * cols);
  } else {
    impl = std::make_shared<TensorImpl>();
    impl->value.assign(rows * cols, 0.0f);
  }
  impl->rows = rows;
  impl->cols = cols;
  return impl;
}

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool grad_enabled() noexcept { return g_grad_enabled; }

Tensor::Tensor(std::size_t rows, std::size_t cols, bool requires_grad) {
  impl_ = new_impl(rows, cols);
  impl_->requires_grad = requires_grad;
}

Tensor Tensor::from_data(std::vector<float> data, std::size_t rows,
                         std::size_t cols, bool requires_grad) {
  if (data.size() != rows * cols)
    throw std::invalid_argument("Tensor::from_data: size mismatch");
  // Adopts external storage, so this deliberately bypasses any active scratch
  // arena: the buffer did not come from a pool and must not be parked in one.
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  t.impl_->rows = rows;
  t.impl_->cols = cols;
  t.impl_->value = std::move(data);
  t.impl_->requires_grad = requires_grad;
  return t;
}

Tensor make_op_result(std::size_t rows, std::size_t cols,
                      std::vector<std::shared_ptr<TensorImpl>> parents,
                      std::function<void(const TensorImpl&)> backward_fn) {
  auto impl = new_impl(rows, cols);

  const bool any_grad =
      grad_enabled() &&
      std::any_of(parents.begin(), parents.end(),
                  [](const auto& p) { return p->requires_grad; });
  if (any_grad) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

void Tensor::backward() {
  if (size() != 1)
    throw std::logic_error("Tensor::backward: only scalar roots supported");

  // Topological order via iterative DFS over the tape.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child++].get();
      if (child->backward_fn && !visited.contains(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->ensure_grad();
  impl_->grad[0] += 1.0f;

  // `order` is children-before-parents reversed; process root-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

}  // namespace gnntrans::tensor
