// Network serving front-end tests: the wire protocol (bitwise round-trips,
// bounds-checked decode, frame reassembly, the v2 trace-context block and v1
// compatibility), request tracing end to end (stage-clock telescoping, p99
// exemplar resolution on /tracez, bitwise non-intrusiveness, trace ids in
// failure statuses, gnntrans_client_* retry counters), the hardened admission
// path
// (typed kOverloaded load-shedding, per-request deadlines, kShuttingDown
// drain), malformed-frame survival (truncated prefixes, hostile lengths,
// garbage payloads, mid-frame disconnects), the EADDRINUSE bind retry — and
// the headline: a deterministic soak where 8 concurrent clients push 10k
// requests through a server with 5% injected socket faults, every request is
// accounted for in exactly one ledger bucket, the injected-fault counters
// match the injector exactly, and every served response is bitwise-identical
// to a direct estimate_batch call.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/estimate_cache.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/status.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/net_io.hpp"
#include "core/telemetry/trace.hpp"
#include "core/telemetry/tracez.hpp"
#include "features/dataset.hpp"
#include "rcnet/generate.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace gnntrans;
using core::ErrorCode;
using core::FaultInjector;
using core::FaultSite;
using Clock = std::chrono::steady_clock;

/// Disarms the global injector on scope exit so a failing soak cannot leak an
/// armed injector into later suites.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::global().disarm(); }
};

/// Enables request head sampling at the given rate for the test's scope and
/// restores the recorder to its defaults (disabled, default config, empty
/// rings) plus a clean RequestTraceStore on exit, so tracing state never
/// leaks into later tests even when assertions fail.
struct TraceGuard {
  explicit TraceGuard(double head_rate) {
    telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
    telemetry::TraceConfig cfg;
    // Effectively-unbounded overhead budget: these tests exercise the stage
    // clocks, not the controller, so adapt() must never scale the head rate.
    cfg.overhead_budget_pct = 1e9;
    cfg.head_sample_rate = head_rate;
    recorder.clear();
    recorder.configure(cfg);
    recorder.enable();
    telemetry::RequestTraceStore::global().clear();
  }
  ~TraceGuard() {
    telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
    recorder.disable();
    recorder.configure(telemetry::TraceConfig{});
    recorder.clear();
    telemetry::RequestTraceStore::global().clear();
  }
};

/// Current value of a named counter in the global registry (0 if absent).
std::uint64_t global_counter(std::string_view name) {
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  for (const telemetry::MetricsSnapshot::CounterValue& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Shared fixtures: one tiny trained estimator and one eval population for the
// whole file (training dominates the file's runtime; quality is irrelevant).

const cell::CellLibrary& shared_library() {
  static const cell::CellLibrary library = cell::CellLibrary::make_default();
  return library;
}

const core::WireTimingEstimator& shared_estimator() {
  static const core::WireTimingEstimator estimator = [] {
    features::WireDatasetConfig dcfg;
    dcfg.net_count = 16;
    dcfg.seed = 2026;
    dcfg.sim_config.steps = 150;
    const std::vector<features::WireRecord> records =
        features::generate_wire_records(dcfg, shared_library());
    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 2;
    return core::WireTimingEstimator::train(records, opt);
  }();
  return estimator;
}

struct EvalData {
  std::vector<rcnet::RcNet> nets;
  std::vector<features::NetContext> contexts;
  std::vector<core::NetBatchItem> items;
  /// Direct estimate_batch results — the bitwise reference for every served
  /// response in this file.
  std::vector<std::vector<core::PathEstimate>> reference;
};

const EvalData& shared_eval() {
  static const EvalData data = [] {
    EvalData d;
    std::mt19937_64 rng(99);
    rcnet::NetGenConfig cfg;
    constexpr std::size_t kCount = 32;
    while (d.nets.size() < kCount) {
      rcnet::RcNet net = rcnet::generate_net(
          cfg, rng, "serve" + std::to_string(d.nets.size()));
      if (!net.validate().empty()) continue;
      d.nets.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : d.nets)
      d.contexts.push_back(features::random_context(shared_library(), net, rng));
    d.items.resize(kCount);
    for (std::size_t i = 0; i < kCount; ++i)
      d.items[i] = {&d.nets[i], &d.contexts[i]};
    core::BatchOptions options;
    options.threads = 1;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;
    core::InferenceStats stats;
    d.reference = shared_estimator().estimate_batch(d.items, options, &stats);
    return d;
  }();
  return data;
}

bool paths_bitwise_equal(const std::vector<core::PathEstimate>& a,
                         const std::vector<core::PathEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Field-wise (struct padding is indeterminate); doubles as bit patterns
    // so -0.0 vs 0.0 or NaN payload differences still count as a diff.
    if (a[i].sink != b[i].sink || a[i].provenance != b[i].provenance ||
        std::memcmp(&a[i].delay, &b[i].delay, sizeof(double)) != 0 ||
        std::memcmp(&a[i].slew, &b[i].slew, sizeof(double)) != 0)
      return false;
  }
  return true;
}

// Values-only variant for cache-enabled runs: a kCached response carries the
// stored bytes of a prior model pass, so delay/slew/sink must match the
// kModel reference bit for bit while the provenance tag legitimately differs.
bool paths_values_bitwise_equal(const std::vector<core::PathEstimate>& a,
                                const std::vector<core::PathEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].sink != b[i].sink ||
        std::memcmp(&a[i].delay, &b[i].delay, sizeof(double)) != 0 ||
        std::memcmp(&a[i].slew, &b[i].slew, sizeof(double)) != 0)
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Raw-socket harness: drives the server below the NetClient abstraction so
// tests can send malformed bytes and observe the exact close behavior.

struct RawConn {
  int fd = -1;
  std::string buffer;
  bool eof = false;

  ~RawConn() { close(); }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  bool connect_to(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool send_bytes(std::string_view bytes) {
    return telemetry::send_all(fd, bytes, 2000);
  }

  /// Reads until \p want responses decoded (0 = until EOF/timeout). Sets
  /// `eof` when the server closed the connection.
  std::vector<serve::ResponseFrame> read_responses(std::size_t want,
                                                   int timeout_ms) {
    std::vector<serve::ResponseFrame> collected;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      for (;;) {
        std::string payload;
        const serve::FrameStatus fs =
            serve::try_extract_frame(buffer, &payload);
        if (fs != serve::FrameStatus::kFrame) break;
        serve::ResponseFrame response;
        if (serve::decode_response(payload, &response).ok())
          collected.push_back(std::move(response));
      }
      if (want > 0 && collected.size() >= want) return collected;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return collected;
      char buf[4096];
      std::size_t got = 0;
      switch (telemetry::recv_some(fd, buf, sizeof(buf),
                                   static_cast<int>(left.count()), &got)) {
        case telemetry::IoResult::kOk:
          buffer.append(buf, got);
          break;
        case telemetry::IoResult::kEof:
          eof = true;
          return collected;
        case telemetry::IoResult::kTimeout:
        case telemetry::IoResult::kError:
          return collected;
      }
    }
  }
};

std::string make_request_bytes(std::uint64_t id, std::size_t item,
                               std::uint32_t deadline_us = 0) {
  const EvalData& eval = shared_eval();
  serve::RequestFrame request;
  request.request_id = id;
  request.deadline_us = deadline_us;
  request.net = eval.nets[item % eval.nets.size()];
  request.context = eval.contexts[item % eval.contexts.size()];
  return serve::encode_request(request);
}

// ---------------------------------------------------------------------------
// Protocol: bitwise round-trips and bounds-checked decode.

TEST(ServeProtocol, RequestRoundTripIsBitwiseExact) {
  const EvalData& eval = shared_eval();
  serve::RequestFrame in;
  in.request_id = 0xDEADBEEFCAFE0001ull;
  in.attempt = 3;
  in.deadline_us = 1234567;
  in.net = eval.nets[0];
  in.context = eval.contexts[0];

  const std::string frame = serve::encode_request(in);
  std::string buffer = frame;
  std::string payload;
  ASSERT_EQ(serve::try_extract_frame(buffer, &payload),
            serve::FrameStatus::kFrame);
  EXPECT_TRUE(buffer.empty());

  serve::RequestFrame out;
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.attempt, in.attempt);
  EXPECT_EQ(out.deadline_us, in.deadline_us);
  EXPECT_EQ(out.net.name, in.net.name);
  EXPECT_EQ(out.net.source, in.net.source);
  EXPECT_EQ(out.net.sinks, in.net.sinks);
  ASSERT_EQ(out.net.ground_cap.size(), in.net.ground_cap.size());
  for (std::size_t i = 0; i < in.net.ground_cap.size(); ++i)
    EXPECT_EQ(std::memcmp(&out.net.ground_cap[i], &in.net.ground_cap[i],
                          sizeof(double)),
              0);
  ASSERT_EQ(out.net.resistors.size(), in.net.resistors.size());
  for (std::size_t i = 0; i < in.net.resistors.size(); ++i) {
    EXPECT_EQ(out.net.resistors[i].a, in.net.resistors[i].a);
    EXPECT_EQ(out.net.resistors[i].b, in.net.resistors[i].b);
    EXPECT_EQ(std::memcmp(&out.net.resistors[i].ohms, &in.net.resistors[i].ohms,
                          sizeof(double)),
              0);
  }
  ASSERT_EQ(out.net.couplings.size(), in.net.couplings.size());
  EXPECT_EQ(std::memcmp(&out.context.input_slew, &in.context.input_slew,
                        sizeof(double)),
            0);
  EXPECT_EQ(out.context.driver_strength, in.context.driver_strength);
  ASSERT_EQ(out.context.loads.size(), in.context.loads.size());
}

TEST(ServeProtocol, ResponseRoundTripIsBitwiseExact) {
  serve::ResponseFrame in;
  in.request_id = 42;
  in.attempt = 1;
  in.status = ErrorCode::kOk;
  in.provenance = core::EstimateProvenance::kModel;
  in.message = "fine";
  in.paths.push_back({7, 1.25e-10, -0.0, core::EstimateProvenance::kModel});
  in.paths.push_back(
      {9, 3.5e-11, 2.75e-10, core::EstimateProvenance::kBaselineFallback});

  std::string buffer = serve::encode_response(in);
  std::string payload;
  ASSERT_EQ(serve::try_extract_frame(buffer, &payload),
            serve::FrameStatus::kFrame);
  serve::ResponseFrame out;
  ASSERT_TRUE(serve::decode_response(payload, &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.provenance, in.provenance);
  EXPECT_EQ(out.message, in.message);
  EXPECT_TRUE(paths_bitwise_equal(out.paths, in.paths));
}

TEST(ServeProtocol, TruncatedPrefixNeedsMore) {
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    std::string buffer(len, '\x01');
    std::string payload;
    EXPECT_EQ(serve::try_extract_frame(buffer, &payload),
              serve::FrameStatus::kNeedMore);
    EXPECT_EQ(buffer.size(), len);  // untouched
  }
  // Complete prefix, partial payload.
  std::string buffer("\x10\x00\x00\x00half", 8);
  std::string payload;
  EXPECT_EQ(serve::try_extract_frame(buffer, &payload),
            serve::FrameStatus::kNeedMore);
}

TEST(ServeProtocol, OversizeDeclaredLengthDetected) {
  std::string buffer("\xFF\xFF\xFF\x7F", 4);  // declares ~2 GiB
  std::string payload;
  EXPECT_EQ(serve::try_extract_frame(buffer, &payload, 1 << 20),
            serve::FrameStatus::kOversize);
  EXPECT_EQ(buffer.size(), 4u);  // left for the caller to observe
}

TEST(ServeProtocol, GarbagePayloadIsTypedReject) {
  serve::RequestFrame out;
  EXPECT_EQ(serve::decode_request("not a frame at all", &out).code(),
            ErrorCode::kMalformedFrame);
  serve::ResponseFrame rout;
  EXPECT_EQ(serve::decode_response("junk", &rout).code(),
            ErrorCode::kMalformedFrame);
}

TEST(ServeProtocol, EveryStrictTruncationIsRejected) {
  // Every strict prefix of a valid payload must fail decode (counts are
  // declared before their items, so no prefix can parse as complete), and a
  // trailing byte after a well-formed body is itself malformed.
  const std::string frame = make_request_bytes(77, 0);
  const std::string payload = frame.substr(4);  // strip length prefix
  serve::RequestFrame out;
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_EQ(
        serve::decode_request(std::string_view(payload).substr(0, cut), &out)
            .code(),
        ErrorCode::kMalformedFrame)
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_EQ(serve::decode_request(payload + "x", &out).code(),
            ErrorCode::kMalformedFrame);
}

// ---------------------------------------------------------------------------
// Protocol v2: the optional trace-context block and v1 compatibility.
// Payload offsets: magic u32 | version u8 (4) | type u8 (5) | flags u16 (6)
// | request_id u64 | attempt u32 | [trace: u64 id | u64 span | u8 sampled
// at offset 36].

TEST(ServeProtocol, TraceContextRoundTrip) {
  const EvalData& eval = shared_eval();
  serve::RequestFrame in;
  in.request_id = 0x1122334455667788ull;
  in.attempt = 2;
  in.trace.trace_id = 0xABCDEF0123456789ull;
  in.trace.span_id = 0x42;
  in.trace.sampled = true;
  in.net = eval.nets[1];
  in.context = eval.contexts[1];

  const std::string payload = serve::encode_request(in).substr(4);
  // The v2 header announces the block: version byte 2, flags bit 0 set.
  EXPECT_EQ(static_cast<unsigned char>(payload[4]), serve::kVersion);
  EXPECT_EQ(static_cast<unsigned char>(payload[6]) & serve::kFlagTraceContext,
            serve::kFlagTraceContext);

  serve::RequestFrame out;
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());
  EXPECT_EQ(out.trace.trace_id, in.trace.trace_id);
  EXPECT_EQ(out.trace.span_id, in.trace.span_id);
  EXPECT_TRUE(out.trace.sampled);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.net.name, in.net.name);

  // A valid-but-unsampled context survives too (sampled byte 0).
  in.trace.sampled = false;
  serve::RequestFrame out2;
  ASSERT_TRUE(
      serve::decode_request(
          std::string_view(serve::encode_request(in)).substr(4), &out2)
          .ok());
  EXPECT_EQ(out2.trace.trace_id, in.trace.trace_id);
  EXPECT_FALSE(out2.trace.sampled);

  // An untraced request encodes with no block and no flag — v1-shaped bytes.
  serve::RequestFrame untraced = in;
  untraced.trace = telemetry::TraceContext{};
  const std::string plain = serve::encode_request(untraced).substr(4);
  EXPECT_EQ(static_cast<unsigned char>(plain[6]), 0u);
  EXPECT_EQ(plain.size() + 17, payload.size());
}

TEST(ServeProtocol, V1FrameDecodesWithTracingAbsent) {
  // An untraced v2 frame differs from a v1 frame only in the version byte;
  // patching it down must still decode — tracing is simply absent.
  std::string payload = make_request_bytes(123, 2).substr(4);
  payload[4] = '\x01';
  serve::RequestFrame out;
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());
  EXPECT_EQ(out.request_id, 123u);
  EXPECT_FALSE(out.trace.valid());
  EXPECT_FALSE(out.trace.sampled);

  // v1 predates the flags field (the bytes were "reserved"): nonzero bits
  // are ignored, not malformed, and never imply a trace block.
  payload[6] = '\x03';
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());
  EXPECT_FALSE(out.trace.valid());

  // Below kMinVersion is a typed reject.
  payload[4] = '\x00';
  EXPECT_EQ(serve::decode_request(payload, &out).code(),
            ErrorCode::kMalformedFrame);
}

TEST(ServeProtocol, TraceBlockTruncationAndGarbageAreMalformed) {
  const EvalData& eval = shared_eval();
  serve::RequestFrame in;
  in.request_id = 9;
  in.trace = {0x1111111111111111ull, 0x2222ull, true};
  in.net = eval.nets[0];
  in.context = eval.contexts[0];
  const std::string payload = serve::encode_request(in).substr(4);

  serve::RequestFrame out;
  ASSERT_TRUE(serve::decode_request(payload, &out).ok());

  // Every strict prefix of the traced payload fails typed — this sweeps
  // every truncation point inside the 17-byte trace block along the way.
  for (std::size_t cut = 0; cut < payload.size(); ++cut)
    EXPECT_EQ(
        serve::decode_request(std::string_view(payload).substr(0, cut), &out)
            .code(),
        ErrorCode::kMalformedFrame)
        << "prefix of " << cut << " bytes decoded";

  // Garbage sampled byte (only 0/1 are defined).
  std::string garbled = payload;
  garbled[36] = '\x07';
  EXPECT_EQ(serve::decode_request(garbled, &out).code(),
            ErrorCode::kMalformedFrame);

  // Unknown v2 flag bits are malformed, not silently ignored.
  garbled = payload;
  garbled[6] = '\x03';
  EXPECT_EQ(serve::decode_request(garbled, &out).code(),
            ErrorCode::kMalformedFrame);

  // The trace block rides requests only; a response announcing one is
  // malformed.
  serve::ResponseFrame rin;
  rin.request_id = 9;
  std::string rpayload = serve::encode_response(rin).substr(4);
  rpayload[6] = '\x01';
  serve::ResponseFrame rout;
  EXPECT_EQ(serve::decode_response(rpayload, &rout).code(),
            ErrorCode::kMalformedFrame);
}

// ---------------------------------------------------------------------------
// bind_listener: ephemeral ports and the EADDRINUSE retry.

TEST(ServeBind, EphemeralPortIsResolved) {
  std::uint16_t port = 0;
  std::string error;
  const int fd = telemetry::bind_listener("127.0.0.1", 0, 8, &port, &error);
  ASSERT_GE(fd, 0) << error;
  EXPECT_GT(port, 0);
  ::close(fd);
}

TEST(ServeBind, RetriesUntilPortFrees) {
  std::uint16_t port = 0;
  std::string error;
  const int blocker = telemetry::bind_listener("127.0.0.1", 0, 8, &port, &error);
  ASSERT_GE(blocker, 0) << error;

  // A single attempt against an actively-listening port fails typed.
  std::uint16_t scratch = 0;
  EXPECT_LT(telemetry::bind_listener("127.0.0.1", port, 8, &scratch, &error,
                                     /*attempts=*/1, /*backoff_initial_ms=*/1),
            0);
  EXPECT_FALSE(error.empty());

  // With retries, the bind lands once the blocker releases the port.
  std::thread releaser([blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ::close(blocker);
  });
  std::uint16_t bound = 0;
  const int fd = telemetry::bind_listener("127.0.0.1", port, 8, &bound, &error,
                                          /*attempts=*/8,
                                          /*backoff_initial_ms=*/25);
  releaser.join();
  ASSERT_GE(fd, 0) << error;
  EXPECT_EQ(bound, port);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// End-to-end: served responses are bitwise-identical to direct estimate_batch.

TEST(NetServe, EndToEndBitwiseIdenticalToDirectBatch) {
  const EvalData& eval = shared_eval();
  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 1e-3;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.client_id = 1;
  serve::NetClient client(ccfg);
  for (std::size_t i = 0; i < eval.items.size(); ++i) {
    const serve::NetClient::Result result =
        client.estimate(eval.nets[i], eval.contexts[i]);
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_EQ(result.provenance, core::EstimateProvenance::kModel);
    EXPECT_TRUE(paths_bitwise_equal(result.paths, eval.reference[i]))
        << "net " << i << " differs from direct estimate_batch";
  }
  server.stop();
  EXPECT_EQ(server.ledger().served.load(), eval.items.size());
  EXPECT_EQ(server.ledger().rejected_total(), 0u);

  // The gnntrans_net_* surface made it to the registry.
  const std::string text =
      telemetry::MetricsRegistry::global().prometheus_text();
  EXPECT_NE(text.find("gnntrans_net_served_total"), std::string::npos);
  EXPECT_NE(text.find("gnntrans_net_batch_size"), std::string::npos);
  EXPECT_NE(text.find("gnntrans_net_queue_depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request tracing end to end: head-sampled requests get a complete stage
// breakdown whose clock telescopes to the wall time, the p99 exemplar
// resolves on /tracez, and tracing stays bitwise non-intrusive.

TEST(NetServe, TracedRequestsBitwiseIdenticalWithFullStageBreakdown) {
  const EvalData& eval = shared_eval();
  TraceGuard tracing(/*head_rate=*/1.0);  // every request head-sampled

  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 1e-3;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.client_id = 21;
  serve::NetClient client(ccfg);
  for (std::size_t i = 0; i < eval.items.size(); ++i) {
    const serve::NetClient::Result result =
        client.estimate(eval.nets[i], eval.contexts[i]);
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_NE(result.trace_id, 0u);  // rate-1.0 head sampling
    // Tracing must be bitwise non-intrusive: the reference was computed by a
    // direct, untraced estimate_batch call.
    EXPECT_TRUE(paths_bitwise_equal(result.paths, eval.reference[i]))
        << "net " << i << " differs under tracing";
  }
  server.stop();  // joins the delivery threads: every stage clock is closed

  telemetry::RequestTraceStore& store = telemetry::RequestTraceStore::global();
  EXPECT_EQ(store.recorded_count(), eval.items.size());
  const std::vector<telemetry::RequestTrace> traces = store.snapshot();
  ASSERT_EQ(traces.size(), eval.items.size());  // 32 requests fit 64 slots
  for (const telemetry::RequestTrace& t : traces) {
    EXPECT_NE(t.trace_id, 0u);
    EXPECT_GE(t.batch_size, 1u);
    EXPECT_STREQ(t.provenance, "model");
    EXPECT_GT(t.wall_seconds, 0.0);
    // Every stage is non-negative and bounded by the wall clock.
    for (const double stage :
         {t.queue_seconds, t.batch_wait_seconds, t.model_seconds,
          t.serialize_seconds, t.write_seconds}) {
      EXPECT_GE(stage, 0.0);
      EXPECT_LE(stage, t.wall_seconds + 1e-4);
    }
    // The model shares sum into the model stage.
    EXPECT_LE(t.featurize_seconds + t.forward_seconds + t.fallback_seconds,
              t.model_seconds + 1e-6);
    // The stage clock telescopes: adjacent boundaries share clock reads, so
    // the sum tracks the wall within 5% (plus a floor for scheduler noise).
    const double slack = std::max(0.05 * t.wall_seconds, 2e-4);
    EXPECT_NEAR(t.stage_sum_seconds(), t.wall_seconds, slack)
        << "trace 0x" << std::hex << t.trace_id;
  }

  // The request_seconds p99 exemplar resolves to a retained /tracez record
  // (keep-max: it is the slowest request, which the store must have kept).
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  bool exemplar_checked = false;
  for (const telemetry::MetricsSnapshot::HistogramValue& h : snap.histograms) {
    if (h.name != "gnntrans_net_request_seconds") continue;
    ASSERT_TRUE(h.has_exemplar);
    EXPECT_NE(h.exemplar_trace_id, 0u);
    telemetry::RequestTrace resolved;
    EXPECT_TRUE(store.find(h.exemplar_trace_id, &resolved));
    EXPECT_EQ(std::string(resolved.net), h.exemplar_label);
    exemplar_checked = true;
  }
  EXPECT_TRUE(exemplar_checked);
  // And it reaches the Prometheus exposition as an OpenMetrics-style suffix.
  EXPECT_NE(telemetry::MetricsRegistry::global().prometheus_text().find(
                "# {trace_id=\"0x"),
            std::string::npos);
}

TEST(NetServe, FailureStatusCarriesTraceId) {
  TraceGuard tracing(/*head_rate=*/1.0);
  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 0.05;  // 50 ms queue dwell >> 1 ms budget
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.max_retries = 0;
  serve::NetClient client(ccfg);
  const serve::NetClient::Result result = client.estimate(
      shared_eval().nets[0], shared_eval().contexts[0], /*deadline_us=*/1000);
  server.stop();

  EXPECT_EQ(result.status.code(), ErrorCode::kDeadlineExceeded);
  ASSERT_NE(result.trace_id, 0u);
  // The typed failure carries the trace handle for /tracez correlation.
  char expect[32];
  std::snprintf(expect, sizeof(expect), "[trace_id=0x%016llx]",
                static_cast<unsigned long long>(result.trace_id));
  EXPECT_NE(result.status.to_string().find(expect), std::string::npos)
      << result.status.to_string();
}

TEST(NetServe, ClientRetryCountersTrackInjectedFaults) {
  const EvalData& eval = shared_eval();
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::global();
  FaultInjector::Config fcfg;
  fcfg.seed = 777;
  fcfg.probability = 0.2;
  fcfg.site_mask = core::kNetworkSiteMask;
  injector.configure(fcfg);

  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 1e-3;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  const std::uint64_t retries0 = global_counter("gnntrans_client_retries_total");
  const std::uint64_t transport0 =
      global_counter("gnntrans_client_retries_transport_total");
  const std::uint64_t overload0 =
      global_counter("gnntrans_client_retries_overload_total");
  const std::uint64_t malformed0 =
      global_counter("gnntrans_client_retries_malformed_total");
  const std::uint64_t reconnects0 =
      global_counter("gnntrans_client_reconnects_total");
  const std::uint64_t backoff0 =
      global_counter("gnntrans_client_backoff_ms_total");

  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.client_id = 31;
  ccfg.max_retries = 6;
  ccfg.backoff_initial_ms = 1;
  ccfg.backoff_max_ms = 4;
  serve::NetClient client(ccfg);
  std::size_t served = 0;
  std::uint64_t transport_failures = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const serve::NetClient::Result result =
        client.estimate(eval.nets[i % eval.nets.size()],
                        eval.contexts[i % eval.contexts.size()]);
    if (result.served()) ++served;
    transport_failures += result.transport_failures;
  }
  server.stop();
  injector.disarm();

  EXPECT_GT(served, 0u);
  ASSERT_GT(transport_failures, 0u);  // 20% fault odds over 64 requests

  const std::uint64_t retries =
      global_counter("gnntrans_client_retries_total") - retries0;
  const std::uint64_t transport =
      global_counter("gnntrans_client_retries_transport_total") - transport0;
  const std::uint64_t overload =
      global_counter("gnntrans_client_retries_overload_total") - overload0;
  const std::uint64_t malformed =
      global_counter("gnntrans_client_retries_malformed_total") - malformed0;
  const std::uint64_t reconnects =
      global_counter("gnntrans_client_reconnects_total") - reconnects0;
  const std::uint64_t backoff =
      global_counter("gnntrans_client_backoff_ms_total") - backoff0;

  // Every retry is classified by the failure that caused it — the by-reason
  // counters partition the total exactly.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(transport, 0u);
  EXPECT_EQ(retries, transport + overload + malformed);
  // Connection-killing faults force reconnects, and every retry slept at
  // least backoff_initial_ms (1 ms) before resending.
  EXPECT_GT(reconnects, 0u);
  EXPECT_GE(backoff, retries);
}

// ---------------------------------------------------------------------------
// Malformed frames over the wire: typed rejects and clean closes, never a
// crash or a hang.

TEST(NetServe, GarbagePayloadRejectedConnectionSurvives) {
  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 1e-3;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(server.port()));
  // A well-framed garbage payload: framing survives, so the connection does.
  const std::string junk = "this is not a request payload at all......";
  std::string frame(4, '\0');
  const std::uint32_t len = static_cast<std::uint32_t>(junk.size());
  std::memcpy(frame.data(), &len, 4);  // test runs little-endian (x86/arm)
  frame += junk;
  ASSERT_TRUE(conn.send_bytes(frame));
  std::vector<serve::ResponseFrame> responses = conn.read_responses(1, 2000);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ErrorCode::kMalformedFrame);

  // Same connection, now a valid request: served.
  ASSERT_TRUE(conn.send_bytes(make_request_bytes(7, 0)));
  responses = conn.read_responses(1, 2000);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 7u);
  EXPECT_EQ(responses[0].status, ErrorCode::kOk);

  server.stop();
  EXPECT_EQ(server.ledger().rejected_malformed.load(), 1u);
  EXPECT_EQ(server.ledger().served.load(), 1u);
}

TEST(NetServe, OversizeDeclaredLengthRejectedAndClosed) {
  serve::NetServerConfig scfg;
  scfg.max_frame_bytes = 4096;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(server.port()));
  std::string prefix(4, '\0');
  const std::uint32_t declared = 100000;  // > max_frame_bytes
  std::memcpy(prefix.data(), &declared, 4);
  ASSERT_TRUE(conn.send_bytes(prefix));
  const std::vector<serve::ResponseFrame> responses =
      conn.read_responses(0, 2000);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ErrorCode::kMalformedFrame);
  EXPECT_EQ(responses[0].request_id, 0u);  // connection-level reject
  EXPECT_TRUE(conn.eof);                   // stream unrecoverable: closed

  server.stop();
  EXPECT_EQ(server.ledger().rejected_malformed.load(), 1u);
}

TEST(NetServe, TruncatedPrefixAndMidFrameDisconnectAreClean) {
  serve::NetServerConfig scfg;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  {
    // Two bytes of length prefix, then gone.
    RawConn conn;
    ASSERT_TRUE(conn.connect_to(server.port()));
    ASSERT_TRUE(conn.send_bytes(std::string_view("\x10\x00", 2)));
    conn.close();
  }
  {
    // Valid prefix, half the payload, then gone.
    const std::string frame = make_request_bytes(11, 1);
    RawConn conn;
    ASSERT_TRUE(conn.connect_to(server.port()));
    ASSERT_TRUE(conn.send_bytes(
        std::string_view(frame).substr(0, 4 + (frame.size() - 4) / 2)));
    conn.close();
  }
  ASSERT_TRUE(wait_until(
      [&] { return server.ledger().connections_accepted.load() >= 2; }, 2000));
  // The torn streams never produced a frame — and the server still serves.
  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  serve::NetClient client(ccfg);
  const serve::NetClient::Result result =
      client.estimate(shared_eval().nets[0], shared_eval().contexts[0]);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  server.stop();
  EXPECT_EQ(server.ledger().frames.load(), 1u);  // only the healthy request
  EXPECT_EQ(server.ledger().rejected_malformed.load(), 0u);
}

TEST(NetServe, HalfOpenPartialFrameTimesOut) {
  serve::NetServerConfig scfg;
  scfg.read_timeout_ms = 100;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(server.port()));
  ASSERT_TRUE(conn.send_bytes(std::string_view("\x10\x00", 2)));
  // The server must close the half-open connection on its own.
  (void)conn.read_responses(0, 3000);
  EXPECT_TRUE(conn.eof);
  server.stop();
}

// ---------------------------------------------------------------------------
// Admission: bounded queue load-shedding, deadlines, graceful drain.

TEST(NetServe, QueueFullShedsLoadWithTypedReject) {
  serve::NetServerConfig scfg;
  scfg.queue_capacity = 2;
  scfg.batch_max = 1024;
  scfg.flush_age_seconds = 10.0;  // batcher holds: the queue must fill
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(server.port()));
  for (std::uint64_t id = 1; id <= 3; ++id)
    ASSERT_TRUE(conn.send_bytes(make_request_bytes(id, id)));
  ASSERT_TRUE(wait_until(
      [&] { return server.ledger().rejected_overload.load() == 1; }, 2000));
  EXPECT_EQ(server.ledger().requests_decoded.load(), 3u);

  server.stop();  // drains the two admitted requests
  const std::vector<serve::ResponseFrame> responses =
      conn.read_responses(3, 2000);
  ASSERT_EQ(responses.size(), 3u);
  std::size_t ok = 0, overloaded = 0;
  for (const serve::ResponseFrame& r : responses) {
    if (r.status == ErrorCode::kOk) ++ok;
    if (r.status == ErrorCode::kOverloaded) {
      ++overloaded;
      EXPECT_EQ(r.request_id, 3u);  // the third frame, in arrival order
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(overloaded, 1u);
  EXPECT_EQ(server.ledger().served.load(), 2u);
}

TEST(NetServe, ExpiredDeadlineRejectedAtTriage) {
  serve::NetServerConfig scfg;
  scfg.flush_age_seconds = 0.05;  // 50 ms queue dwell >> 1 ms budget
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  serve::NetClientConfig ccfg;
  ccfg.port = server.port();
  ccfg.max_retries = 0;
  serve::NetClient client(ccfg);
  const serve::NetClient::Result result = client.estimate(
      shared_eval().nets[0], shared_eval().contexts[0], /*deadline_us=*/1000);
  EXPECT_EQ(result.status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(result.served());
  server.stop();
  EXPECT_EQ(server.ledger().rejected_deadline.load(), 1u);
  EXPECT_EQ(server.ledger().served.load(), 0u);
}

TEST(NetServe, GracefulDrainServesQueuedAndRejectsNew) {
  serve::NetServerConfig scfg;
  scfg.batch_max = 1024;
  scfg.queue_capacity = 4096;
  scfg.flush_age_seconds = 10.0;  // nothing flushes until the drain
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  constexpr std::uint64_t kQueued = 120;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(server.port()));
  for (std::uint64_t id = 1; id <= kQueued; ++id)
    ASSERT_TRUE(conn.send_bytes(make_request_bytes(id, id)));
  ASSERT_TRUE(wait_until(
      [&] { return server.ledger().requests_decoded.load() == kQueued; },
      5000));

  std::thread stopper([&] { server.stop(); });
  // Give stop() a beat to set draining, then poke it with new requests: every
  // one that still reaches admission must get a typed kShuttingDown.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (!conn.send_bytes(make_request_bytes(1000 + i, i))) break;
    if (server.ledger().rejected_shutdown.load() >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stopper.join();

  const std::vector<serve::ResponseFrame> responses =
      conn.read_responses(0, 3000);
  std::size_t ok = 0, shutdown = 0, other = 0;
  for (const serve::ResponseFrame& r : responses) {
    if (r.status == ErrorCode::kOk)
      ++ok;
    else if (r.status == ErrorCode::kShuttingDown)
      ++shutdown;
    else
      ++other;
  }
  // Drain guarantee: everything queued before the drain is served; everything
  // admitted after is a typed reject; nothing vanishes without an answer.
  EXPECT_EQ(ok, kQueued);
  EXPECT_EQ(other, 0u);
  EXPECT_GE(shutdown, 1u);
  EXPECT_EQ(ok, server.ledger().served.load());
  EXPECT_EQ(shutdown, server.ledger().rejected_shutdown.load());
  EXPECT_EQ(ok + shutdown, server.ledger().requests_decoded.load());
}

// ---------------------------------------------------------------------------
// The soak: 8 concurrent clients, 10k requests, 5% injected socket faults.
// Zero crashes/hangs, an exact reject/served ledger, and bitwise identity
// with the direct batch path on every served response.

TEST(NetServeSoak, SurvivesInjectedNetworkFaults) {
  const EvalData& eval = shared_eval();
  InjectorGuard guard;
  // Default-rate head sampling stays on for the whole soak: the bitwise
  // checks below double as proof that tracing is non-intrusive under faults,
  // retries and concurrency.
  TraceGuard tracing(/*head_rate=*/1.0 / 64.0);
  FaultInjector& injector = FaultInjector::global();
  FaultInjector::Config fcfg;
  fcfg.seed = 20260807;
  fcfg.probability = 0.05;
  fcfg.site_mask = core::kNetworkSiteMask;  // model path stays fault-free
  injector.configure(fcfg);

  serve::NetServerConfig scfg;
  scfg.batch_max = 32;
  scfg.flush_age_seconds = 1e-3;
  scfg.queue_capacity = 4096;
  // Caching on: the soak's 10k requests cycle over 32 distinct nets, so the
  // bulk of the traffic must be served from the content-addressed cache —
  // with the exact same bitwise-identity guarantee as the model path.
  scfg.cache_bytes = 32ull << 20;
  serve::NetServer server(shared_estimator(), scfg);
  server.start();

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 1250;  // 10k total
  struct Tally {
    std::uint64_t served = 0;
    std::uint64_t timeouts = 0;       ///< retries exhausted (kTimeout)
    std::uint64_t typed_other = 0;    ///< any other terminal status (bug)
    std::uint64_t transport_failures = 0;
    std::uint64_t attempts = 0;
    std::uint64_t mismatches = 0;     ///< served but not bitwise-identical
    std::uint64_t bad_provenance = 0; ///< served but neither model nor cached
    std::uint64_t cached = 0;         ///< served with kCached provenance
  };
  std::vector<Tally> tallies(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::NetClientConfig ccfg;
      ccfg.port = server.port();
      ccfg.client_id = static_cast<std::uint32_t>(c + 1);
      ccfg.max_retries = 6;
      ccfg.backoff_initial_ms = 1;
      ccfg.backoff_max_ms = 8;
      ccfg.request_timeout_ms = 5000;
      serve::NetClient client(ccfg);
      Tally& tally = tallies[c];
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t idx = (i * kClients + c) % eval.items.size();
        const serve::NetClient::Result result =
            client.estimate(eval.nets[idx], eval.contexts[idx]);
        tally.attempts += result.attempts;
        tally.transport_failures += result.transport_failures;
        if (result.served()) {
          ++tally.served;
          const bool is_cached =
              result.provenance == core::EstimateProvenance::kCached;
          if (is_cached) ++tally.cached;
          if ((result.provenance != core::EstimateProvenance::kModel &&
               !is_cached) ||
              !result.status.ok())
            ++tally.bad_provenance;
          if (!paths_values_bitwise_equal(result.paths, eval.reference[idx]))
            ++tally.mismatches;
        } else if (result.status.code() == ErrorCode::kTimeout) {
          ++tally.timeouts;
        } else {
          ++tally.typed_other;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  injector.disarm();

  Tally total;
  for (const Tally& t : tallies) {
    total.served += t.served;
    total.timeouts += t.timeouts;
    total.typed_other += t.typed_other;
    total.transport_failures += t.transport_failures;
    total.attempts += t.attempts;
    total.mismatches += t.mismatches;
    total.bad_provenance += t.bad_provenance;
    total.cached += t.cached;
  }
  const serve::NetServerLedger& ledger = server.ledger();
  const std::uint64_t faults_accept = ledger.faults_accept.load();
  const std::uint64_t faults_read = ledger.faults_read.load();
  const std::uint64_t faults_write = ledger.faults_write.load();
  const std::uint64_t faults_decode = ledger.faults_decode.load();

  // Every request resolved to exactly one classified outcome — no hangs, no
  // silent drops. (With 7 attempts at ~15% per-attempt fault odds, retries
  // exhaust with probability ~2e-6 per request; a handful of kTimeout
  // outcomes is legal, unclassified outcomes are not.)
  EXPECT_EQ(total.served + total.timeouts + total.typed_other,
            kClients * kPerClient);
  EXPECT_EQ(total.typed_other, 0u);
  EXPECT_LT(total.timeouts, 10u);

  // Served responses: model or cached provenance only, values
  // bitwise-identical to the direct (uncached) estimate_batch reference — a
  // cache hit must be indistinguishable from recomputation except for its
  // tag.
  EXPECT_EQ(total.mismatches, 0u);
  EXPECT_EQ(total.bad_provenance, 0u);

  // The cache did the heavy lifting (32 distinct nets under 10k requests),
  // and its counters reconcile exactly with the inference stats: every net
  // the batcher timed did exactly one lookup, every hit was served kCached,
  // every miss ran the model. The four-way provenance identity holds.
  const core::InferenceStats inference = server.stats();
  ASSERT_NE(server.cache(), nullptr);
  const core::EstimateCacheStats cstats = server.cache()->stats();
  EXPECT_GT(total.cached, 0u);
  EXPECT_GT(cstats.hits, cstats.misses);
  EXPECT_EQ(cstats.hits + cstats.misses, inference.nets);
  EXPECT_EQ(cstats.hits, inference.cached_nets);
  EXPECT_EQ(cstats.misses, inference.model_nets);
  EXPECT_EQ(inference.model_nets + inference.fallback_nets +
                inference.failed_nets + inference.cached_nets,
            inference.nets);
  EXPECT_EQ(inference.fallback_nets, 0u);
  EXPECT_EQ(inference.failed_nets, 0u);

  // The soak actually injected faults at a ~5% rate somewhere.
  EXPECT_GT(faults_accept + faults_read + faults_write + faults_decode, 100u);

  // Ledger identities — every frame and every decoded request lands in
  // exactly one bucket.
  EXPECT_EQ(ledger.frames.load(), ledger.requests_decoded.load() + faults_read);
  EXPECT_EQ(ledger.requests_decoded.load(),
            ledger.served.load() + faults_write + faults_decode);
  EXPECT_EQ(ledger.rejected_malformed.load(), faults_decode);
  EXPECT_EQ(ledger.rejected_overload.load(), 0u);  // blocking clients: ≤ 8 deep
  EXPECT_EQ(ledger.rejected_shutdown.load(), 0u);
  EXPECT_EQ(ledger.rejected_deadline.load(), 0u);
  EXPECT_EQ(ledger.undeliverable.load(), 0u);

  // The injector's own counters match the ledger site by site, and the model
  // ladder never fired.
  EXPECT_EQ(injector.injected_at(FaultSite::kAccept), faults_accept);
  EXPECT_EQ(injector.injected_at(FaultSite::kNetRead), faults_read);
  EXPECT_EQ(injector.injected_at(FaultSite::kNetWrite), faults_write);
  EXPECT_EQ(injector.injected_at(FaultSite::kNetDecode), faults_decode);
  for (const FaultSite site :
       {FaultSite::kValidate, FaultSite::kFeaturize, FaultSite::kForward,
        FaultSite::kNonFinite, FaultSite::kDeadline})
    EXPECT_EQ(injector.injected_at(site), 0u) << to_string(site);

  // Client-observed transport failures are exactly the connection-killing
  // faults (accept/read/write); decode faults surface as typed rejects.
  EXPECT_EQ(total.transport_failures,
            faults_accept + faults_read + faults_write);
  // Every attempt either produced a frame or died at an injected accept.
  EXPECT_EQ(total.attempts, ledger.frames.load() + faults_accept);

  // Head sampling at 1/64 over 10k requests: a healthy population of stage
  // breakdowns was retained, and every one of them — assembled under faults,
  // retries and 8-way concurrency — satisfies the stage-clock invariants.
  telemetry::RequestTraceStore& store = telemetry::RequestTraceStore::global();
  EXPECT_GT(store.recorded_count(), 0u);
  for (const telemetry::RequestTrace& t : store.snapshot()) {
    EXPECT_NE(t.trace_id, 0u);
    EXPECT_GT(t.wall_seconds, 0.0);
    for (const double stage :
         {t.queue_seconds, t.batch_wait_seconds, t.model_seconds,
          t.serialize_seconds, t.write_seconds})
      EXPECT_GE(stage, 0.0);
    const double slack = std::max(0.05 * t.wall_seconds, 2e-4);
    EXPECT_NEAR(t.stage_sum_seconds(), t.wall_seconds, slack)
        << "trace 0x" << std::hex << t.trace_id;
  }
}

}  // namespace
