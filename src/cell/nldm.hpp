/// \file nldm.hpp
/// Non-Linear Delay Model lookup tables (Liberty-style).
///
/// Gate timing in the paper comes from "interpolating look-up tables in cell
/// libraries"; this is that machinery: 2-D tables indexed by input slew and
/// output load capacitance, evaluated by bilinear interpolation with clamped
/// extrapolation outside the characterized grid (matching common STA tools).
#pragma once

#include <functional>
#include <vector>

namespace gnntrans::cell {

/// One characterized 2-D table: rows = input slew axis, cols = load cap axis.
class NldmTable {
 public:
  NldmTable() = default;

  /// Builds a table by sampling \p fn on the axis grid.
  /// Axes must be strictly increasing with at least 2 points each.
  static NldmTable characterize(std::vector<double> slew_axis,
                                std::vector<double> cap_axis,
                                const std::function<double(double, double)>& fn);

  /// Bilinear interpolation; queries outside the grid clamp to the border
  /// cell and extrapolate linearly along the in-range axis.
  [[nodiscard]] double lookup(double input_slew, double load_cap) const;

  [[nodiscard]] const std::vector<double>& slew_axis() const noexcept { return slew_axis_; }
  [[nodiscard]] const std::vector<double>& cap_axis() const noexcept { return cap_axis_; }
  [[nodiscard]] double at(std::size_t slew_idx, std::size_t cap_idx) const {
    return values_[slew_idx * cap_axis_.size() + cap_idx];
  }

 private:
  std::vector<double> slew_axis_;
  std::vector<double> cap_axis_;
  std::vector<double> values_;  ///< row-major [slew][cap]
};

/// Delay + output-slew table pair for a timing arc.
struct TimingArc {
  NldmTable delay;
  NldmTable output_slew;
};

}  // namespace gnntrans::cell
