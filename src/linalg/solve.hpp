/// \file solve.hpp
/// Direct linear solvers for the MNA timing engines.
///
/// The conductance matrix G of a grounded RC net is symmetric positive
/// definite, so Cholesky (LLt) is the workhorse; LU with partial pivoting is
/// provided for general systems (e.g. trapezoidal companion matrices with
/// asymmetric stamping, cross-checks in tests).
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace gnntrans::linalg {

/// LU factorization with partial pivoting of a square matrix.
///
/// Factors P*A = L*U in place. Use solve() repeatedly for multiple RHS.
class LuFactor {
 public:
  /// Factors \p a. Returns std::nullopt if the matrix is numerically singular.
  [[nodiscard]] static std::optional<LuFactor> factor(Matrix a);

  /// Solves A x = b for x. Requires b.size() == dimension of A.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  LuFactor(Matrix lu, std::vector<std::size_t> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}

  Matrix lu_;                      ///< packed L (unit diag, below) and U (on/above diag)
  std::vector<std::size_t> perm_;  ///< row permutation: row i of PA is row perm_[i] of A
};

/// Cholesky (L*Lt) factorization of a symmetric positive definite matrix.
class CholeskyFactor {
 public:
  /// Factors \p a (only the lower triangle is read). Returns std::nullopt if
  /// the matrix is not positive definite within roundoff.
  [[nodiscard]] static std::optional<CholeskyFactor> factor(const Matrix& a);

  /// Solves A x = b for x.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

 private:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}

  Matrix l_;  ///< lower-triangular Cholesky factor
};

}  // namespace gnntrans::linalg
