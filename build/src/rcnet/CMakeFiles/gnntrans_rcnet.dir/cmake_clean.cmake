file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_rcnet.dir/generate.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/generate.cpp.o.d"
  "CMakeFiles/gnntrans_rcnet.dir/paths.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/paths.cpp.o.d"
  "CMakeFiles/gnntrans_rcnet.dir/rcnet.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/rcnet.cpp.o.d"
  "CMakeFiles/gnntrans_rcnet.dir/reduce.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/reduce.cpp.o.d"
  "CMakeFiles/gnntrans_rcnet.dir/spef.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/spef.cpp.o.d"
  "CMakeFiles/gnntrans_rcnet.dir/stats.cpp.o"
  "CMakeFiles/gnntrans_rcnet.dir/stats.cpp.o.d"
  "libgnntrans_rcnet.a"
  "libgnntrans_rcnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_rcnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
