file(REMOVE_RECURSE
  "libgnntrans_features.a"
)
