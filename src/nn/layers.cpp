#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/init.hpp"
#include "tensor/serialize.hpp"

namespace gnntrans::nn {

using tensor::Tensor;

// ---- Linear ----

Linear::Linear(std::size_t in_dim, std::size_t out_dim, std::mt19937_64& rng)
    : weight_(tensor::xavier_uniform(in_dim, out_dim, rng)),
      bias_(tensor::zeros_param(1, out_dim)) {}

Tensor Linear::forward(const Tensor& x) const {
  return tensor::add_row_broadcast(tensor::matmul(x, weight_), bias_);
}

void Linear::collect_parameters(std::vector<Tensor>& out) const {
  out.push_back(weight_);
  out.push_back(bias_);
}

void Linear::save(std::ostream& out) const {
  tensor::write_tensor(out, weight_);
  tensor::write_tensor(out, bias_);
}

void Linear::load(std::istream& in) {
  weight_ = tensor::read_tensor(in);
  bias_ = tensor::read_tensor(in);
}

// ---- Mlp ----

Mlp::Mlp(const std::vector<std::size_t>& dims, std::mt19937_64& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least {in, out}");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = tensor::relu(h);
  }
  return h;
}

void Mlp::collect_parameters(std::vector<Tensor>& out) const {
  for (const Linear& l : layers_) l.collect_parameters(out);
}

void Mlp::save(std::ostream& out) const {
  for (const Linear& l : layers_) l.save(out);
}

void Mlp::load(std::istream& in) {
  for (Linear& l : layers_) l.load(in);
}

// ---- SageConv ----

SageConv::SageConv(std::size_t in_dim, std::size_t out_dim, std::mt19937_64& rng)
    : w_self_(tensor::xavier_uniform(in_dim, out_dim, rng)),
      w_neigh_(tensor::xavier_uniform(in_dim, out_dim, rng)) {}

Tensor SageConv::forward(const Tensor& x, const tensor::GraphMatrix& agg) const {
  const Tensor own = tensor::matmul(x, w_self_);
  const Tensor neigh = tensor::matmul(tensor::spmm(agg, x), w_neigh_);
  return tensor::relu(tensor::add(own, neigh));
}

void SageConv::collect_parameters(std::vector<Tensor>& out) const {
  out.push_back(w_self_);
  out.push_back(w_neigh_);
}

void SageConv::save(std::ostream& out) const {
  tensor::write_tensor(out, w_self_);
  tensor::write_tensor(out, w_neigh_);
}

void SageConv::load(std::istream& in) {
  w_self_ = tensor::read_tensor(in);
  w_neigh_ = tensor::read_tensor(in);
}

// ---- GcniiLayer ----

GcniiLayer::GcniiLayer(std::size_t dim, float alpha, float beta,
                       std::mt19937_64& rng)
    : weight_(tensor::xavier_uniform(dim, dim, rng)), alpha_(alpha), beta_(beta) {}

Tensor GcniiLayer::forward(const Tensor& x, const Tensor& x0,
                           const tensor::GraphMatrix& prop) const {
  // z = (1-alpha) P x + alpha x0
  const Tensor z = tensor::add(tensor::scale(tensor::spmm(prop, x), 1.0f - alpha_),
                               tensor::scale(x0, alpha_));
  // z ((1-beta) I + beta W) = (1-beta) z + beta (z W)
  const Tensor mixed = tensor::add(tensor::scale(z, 1.0f - beta_),
                                   tensor::scale(tensor::matmul(z, weight_), beta_));
  return tensor::relu(mixed);
}

void GcniiLayer::collect_parameters(std::vector<Tensor>& out) const {
  out.push_back(weight_);
}

void GcniiLayer::save(std::ostream& out) const { tensor::write_tensor(out, weight_); }

void GcniiLayer::load(std::istream& in) { weight_ = tensor::read_tensor(in); }

// ---- GatLayer ----

GatLayer::GatLayer(std::size_t in_dim, std::size_t out_dim, std::size_t heads,
                   std::mt19937_64& rng) {
  if (heads == 0) throw std::invalid_argument("GatLayer: heads must be > 0");
  const std::size_t dk = std::max<std::size_t>(1, out_dim / heads);
  heads_.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    Head head;
    head.weight = tensor::xavier_uniform(in_dim, dk, rng);
    head.attn_l = tensor::xavier_uniform(dk, 1, rng);
    head.attn_r = tensor::xavier_uniform(dk, 1, rng);
    heads_.push_back(std::move(head));
  }
  out_proj_ = tensor::xavier_uniform(heads * dk, out_dim, rng);
}

Tensor GatLayer::forward(const Tensor& x, const std::vector<std::uint8_t>& mask) const {
  std::vector<Tensor> outputs;
  outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    const Tensor wh = tensor::matmul(x, head.weight);        // [N, dk]
    const Tensor s = tensor::matmul(wh, head.attn_l);        // [N, 1]
    const Tensor t = tensor::matmul(wh, head.attn_r);        // [N, 1]
    const Tensor e = tensor::leaky_relu(tensor::outer_sum(s, t), 0.2f);
    const Tensor attn = tensor::masked_softmax_rows(e, mask);  // [N, N]
    outputs.push_back(tensor::matmul(attn, wh));              // [N, dk]
  }
  const Tensor cat = outputs.size() == 1 ? outputs.front() : tensor::concat_cols(outputs);
  return tensor::relu(tensor::matmul(cat, out_proj_));
}

void GatLayer::collect_parameters(std::vector<Tensor>& out) const {
  for (const Head& h : heads_) {
    out.push_back(h.weight);
    out.push_back(h.attn_l);
    out.push_back(h.attn_r);
  }
  out.push_back(out_proj_);
}

void GatLayer::save(std::ostream& out) const {
  for (const Head& h : heads_) {
    tensor::write_tensor(out, h.weight);
    tensor::write_tensor(out, h.attn_l);
    tensor::write_tensor(out, h.attn_r);
  }
  tensor::write_tensor(out, out_proj_);
}

void GatLayer::load(std::istream& in) {
  for (Head& h : heads_) {
    h.weight = tensor::read_tensor(in);
    h.attn_l = tensor::read_tensor(in);
    h.attn_r = tensor::read_tensor(in);
  }
  out_proj_ = tensor::read_tensor(in);
}

// ---- SelfAttentionLayer ----

SelfAttentionLayer::SelfAttentionLayer(std::size_t dim, std::size_t heads,
                                       std::mt19937_64& rng) {
  if (heads == 0 || dim % heads != 0)
    throw std::invalid_argument("SelfAttentionLayer: dim must divide by heads");
  const std::size_t dk = dim / heads;
  inv_sqrt_dk_ = 1.0f / std::sqrt(static_cast<float>(dk));
  heads_.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    Head head;
    head.wq = tensor::xavier_uniform(dim, dk, rng);
    head.wk = tensor::xavier_uniform(dim, dk, rng);
    head.wv = tensor::xavier_uniform(dim, dk, rng);
    heads_.push_back(std::move(head));
  }
  w3_ = tensor::xavier_uniform(dim, dim, rng);
}

Tensor SelfAttentionLayer::forward(const Tensor& x,
                                   const std::vector<std::uint8_t>& mask) const {
  std::vector<Tensor> outputs;
  outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    const Tensor q = tensor::matmul(x, head.wq);  // [N, dk]
    const Tensor k = tensor::matmul(x, head.wk);  // [N, dk]
    const Tensor v = tensor::matmul(x, head.wv);  // [N, dk]
    // Eq. (2): scaled dot-product attention map.
    const Tensor scores = tensor::scale(tensor::matmul_nt(q, k), inv_sqrt_dk_);
    const Tensor attn = mask.empty() ? tensor::softmax_rows(scores)
                                     : tensor::masked_softmax_rows(scores, mask);
    outputs.push_back(tensor::matmul(attn, v));
  }
  // Eq. (3): residual + W3 over the concatenated heads.
  const Tensor cat = outputs.size() == 1 ? outputs.front() : tensor::concat_cols(outputs);
  return tensor::add(x, tensor::matmul(cat, w3_));
}

void SelfAttentionLayer::collect_parameters(std::vector<Tensor>& out) const {
  for (const Head& h : heads_) {
    out.push_back(h.wq);
    out.push_back(h.wk);
    out.push_back(h.wv);
  }
  out.push_back(w3_);
}

void SelfAttentionLayer::save(std::ostream& out) const {
  for (const Head& h : heads_) {
    tensor::write_tensor(out, h.wq);
    tensor::write_tensor(out, h.wk);
    tensor::write_tensor(out, h.wv);
  }
  tensor::write_tensor(out, w3_);
}

void SelfAttentionLayer::load(std::istream& in) {
  for (Head& h : heads_) {
    h.wq = tensor::read_tensor(in);
    h.wk = tensor::read_tensor(in);
    h.wv = tensor::read_tensor(in);
  }
  w3_ = tensor::read_tensor(in);
}

// ---- FeedForward ----

FeedForward::FeedForward(std::size_t dim, std::size_t hidden, std::mt19937_64& rng)
    : up_(dim, hidden, rng), down_(hidden, dim, rng) {}

Tensor FeedForward::forward(const Tensor& x) const {
  return tensor::add(x, down_.forward(tensor::relu(up_.forward(x))));
}

void FeedForward::collect_parameters(std::vector<Tensor>& out) const {
  up_.collect_parameters(out);
  down_.collect_parameters(out);
}

void FeedForward::save(std::ostream& out) const {
  up_.save(out);
  down_.save(out);
}

void FeedForward::load(std::istream& in) {
  up_.load(in);
  down_.load(in);
}

}  // namespace gnntrans::nn
