#include "support.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/telemetry/log.hpp"

namespace gnntrans::bench {

Scale Scale::from_env() {
  Scale s;
  if (const char* env = std::getenv("GNNTRANS_BENCH_SCALE")) {
    const double f = std::atof(env);
    if (f > 0.0) s.factor = f;
  }
  auto scaled = [&](std::size_t base) {
    return std::max<std::size_t>(10, static_cast<std::size_t>(base * s.factor));
  };
  s.train_nets_per_design = scaled(s.train_nets_per_design);
  s.test_nets_per_design = scaled(s.test_nets_per_design);
  return s;
}

std::vector<BenchmarkData> build_wire_datasets(const Scale& scale,
                                               const cell::CellLibrary& library) {
  std::vector<BenchmarkData> out;
  std::uint64_t seed = 20230100;
  for (netlist::BenchmarkSpec& spec : netlist::paper_benchmarks(scale.factor)) {
    BenchmarkData data;
    features::WireDatasetConfig cfg;
    cfg.net_count = spec.training ? scale.train_nets_per_design
                                  : scale.test_nets_per_design;
    cfg.net_config = spec.config.net_config;
    cfg.sim_config.steps = scale.sim_steps;
    cfg.seed = ++seed * 104729;
    data.records = features::generate_wire_records(cfg, library);
    data.spec = std::move(spec);
    out.push_back(std::move(data));
  }
  return out;
}

std::vector<features::WireRecord> pool_training_records(
    const std::vector<BenchmarkData>& datasets) {
  std::vector<features::WireRecord> pool;
  for (const BenchmarkData& data : datasets)
    if (data.spec.training)
      pool.insert(pool.end(), data.records.begin(), data.records.end());
  return pool;
}

std::vector<features::WireRecord> non_tree_only(
    const std::vector<features::WireRecord>& records) {
  std::vector<features::WireRecord> out;
  for (const features::WireRecord& rec : records)
    if (rec.non_tree) out.push_back(rec);
  return out;
}

namespace {

/// Neural zoo member backed by WireTimingEstimator.
class NeuralEntry final : public ZooEntry {
 public:
  NeuralEntry(std::string name, core::WireTimingEstimator estimator)
      : name_(std::move(name)), estimator_(std::move(estimator)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  std::pair<double, double> evaluate(
      const std::vector<features::WireRecord>& records) const override {
    const core::Evaluation eval = estimator_.evaluate(records);
    return {eval.slew_r2, eval.delay_r2};
  }

 private:
  std::string name_;
  core::WireTimingEstimator estimator_;
};

/// DAC'20 zoo member.
class Dac20Entry final : public ZooEntry {
 public:
  explicit Dac20Entry(baseline::Dac20Estimator estimator)
      : estimator_(std::move(estimator)) {}

  [[nodiscard]] std::string name() const override { return "DAC20"; }

  std::pair<double, double> evaluate(
      const std::vector<features::WireRecord>& records) const override {
    std::vector<double> slew_pred, slew_true, delay_pred, delay_true;
    for (const features::WireRecord& rec : records) {
      const auto pred = estimator_.estimate(rec.net, rec.context);
      for (std::size_t q = 0; q < pred.size(); ++q) {
        slew_pred.push_back(pred[q].slew);
        delay_pred.push_back(pred[q].delay);
        slew_true.push_back(rec.slew_labels[q]);
        delay_true.push_back(rec.delay_labels[q]);
      }
    }
    if (slew_true.empty()) return {0.0, 0.0};
    return {core::r2_score(slew_pred, slew_true),
            core::r2_score(delay_pred, delay_true)};
  }

 private:
  baseline::Dac20Estimator estimator_;
};

core::WireTimingEstimator::Options neural_options(const Scale& scale,
                                                  nn::ModelKind kind) {
  core::WireTimingEstimator::Options opt;
  opt.kind = kind;
  opt.model.hidden_dim = scale.hidden_dim;
  opt.model.heads = scale.heads;
  opt.model.mlp_hidden = scale.mlp_hidden;
  if (kind == nn::ModelKind::kGnnTrans) {
    opt.model.gnn_layers = scale.gnn_layers;
    opt.model.transformer_layers = scale.transformer_layers;
  } else {
    opt.model.gnn_layers = scale.baseline_layers;
  }
  opt.train.epochs = scale.epochs;
  return opt;
}

}  // namespace

std::vector<std::unique_ptr<ZooEntry>> train_zoo(
    const Scale& scale, const std::vector<features::WireRecord>& train_records,
    bool verbose) {
  std::vector<std::unique_ptr<ZooEntry>> zoo;

  if (verbose)
    GNNTRANS_LOG_INFO("bench", "training DAC20 (GBDT + loop breaking)...");
  baseline::Dac20Estimator dac;
  baseline::GbdtConfig gcfg;
  gcfg.trees = 120;
  dac.train(train_records, gcfg);
  zoo.push_back(std::make_unique<Dac20Entry>(std::move(dac)));

  const std::pair<nn::ModelKind, const char*> neural[] = {
      {nn::ModelKind::kGcnii, "GCNII"},
      {nn::ModelKind::kGraphSage, "GraphSage"},
      {nn::ModelKind::kGat, "GAT"},
      {nn::ModelKind::kGraphTransformer, "Trans."},
      {nn::ModelKind::kGnnTrans, "GNNTrans"},
  };
  for (const auto& [kind, label] : neural) {
    if (verbose) GNNTRANS_LOG_INFO("bench", "training %s...", label);
    auto est = core::WireTimingEstimator::train(train_records,
                                                neural_options(scale, kind));
    zoo.push_back(std::make_unique<NeuralEntry>(label, std::move(est)));
  }
  return zoo;
}

core::WireTimingEstimator train_gnntrans(
    const Scale& scale, const std::vector<features::WireRecord>& train_records,
    std::size_t l1, std::size_t l2, nn::ModelConfig overrides) {
  core::WireTimingEstimator::Options opt =
      neural_options(scale, nn::ModelKind::kGnnTrans);
  opt.model.gnn_layers = l1;
  opt.model.transformer_layers = l2;
  opt.model.use_edge_weights = overrides.use_edge_weights;
  opt.model.global_attention = overrides.global_attention;
  opt.model.use_path_features = overrides.use_path_features;
  opt.model.cascade_delay_head = overrides.cascade_delay_head;
  return core::WireTimingEstimator::train(train_records, opt);
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::print_header() const {
  for (std::size_t i = 0; i < headers_.size(); ++i)
    std::printf("%-*s", widths_[i], headers_[i].c_str());
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i)
    std::printf("%-*s", widths_[i], cells[i].c_str());
  std::printf("\n");
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::fmt_pair(double a, double b, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f/%.*f", precision, a, precision, b);
  return buf;
}

}  // namespace gnntrans::bench
