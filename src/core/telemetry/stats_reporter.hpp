/// \file stats_reporter.hpp
/// Periodic serving-stats reporter: a background thread that logs snapshot
/// *deltas* of the serving metrics — nets/s, fallback %, p50/p99 over the
/// interval, the effective trace sample rate — every N seconds, so a
/// long-running predict/sta/train shows a heartbeat in the log stream (and
/// in --log-json) without anyone scraping the HTTP endpoint.
///
/// Percentiles are computed from the *difference* of consecutive latency
/// histogram snapshots, i.e. they describe the interval, not the process
/// lifetime — a latency regression shows up in the next line, not diluted
/// into hours of history.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/telemetry/metrics.hpp"

namespace gnntrans::telemetry {

struct StatsReporterConfig {
  double interval_seconds = 10.0;
};

class StatsReporter {
 public:
  explicit StatsReporter(StatsReporterConfig config = {});
  ~StatsReporter();
  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Spawns the reporting thread (idempotent).
  void start();
  /// Stops and joins (idempotent; also called by the destructor).
  void stop();

  /// Emits one report now, against the previous snapshot. Called by the
  /// thread every interval; public so tests can drive it deterministically.
  void tick();

  [[nodiscard]] std::uint64_t reports_emitted() const noexcept {
    return reports_.load(std::memory_order_relaxed);
  }

 private:
  StatsReporterConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> reports_{0};
  std::mutex mutex_;                ///< guards prev_* and the cv
  std::condition_variable cv_;
  std::thread thread_;

  // Previous snapshot (delta baseline).
  std::uint64_t prev_nets_ = 0;
  std::uint64_t prev_fallback_ = 0;
  std::uint64_t prev_failed_ = 0;
  std::uint64_t prev_slow_ = 0;
  HistogramData prev_latency_;
  std::chrono::steady_clock::time_point prev_time_;
  bool have_prev_ = false;
};

}  // namespace gnntrans::telemetry
