#include "sim/golden.hpp"

namespace gnntrans::sim {

TransientResult GoldenTimer::time_net(const rcnet::RcNet& net, double input_slew,
                                      double driver_resistance) {
  const auto start = std::chrono::steady_clock::now();
  TransientResult result = simulate(net, config_, input_slew, driver_resistance);
  const auto end = std::chrono::steady_clock::now();

  ++stats_.nets_timed;
  stats_.solver_steps += result.steps_executed;
  stats_.wall_seconds += std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace gnntrans::sim
