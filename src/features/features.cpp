#include "features/features.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gnntrans::features {

using rcnet::NodeId;

std::uint64_t content_hash(const NetContext& context) noexcept {
  // Same FNV-1a + splitmix64 idiom as rcnet::validate()'s net hash. Doubles
  // fold by bit pattern: a one-ULP slew change must be a cache miss because
  // hits are required to be bitwise identical to recomputation.
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t word) { h = (h ^ word) * kFnvPrime; };
  fold(std::bit_cast<std::uint64_t>(context.input_slew));
  fold(std::bit_cast<std::uint64_t>(context.driver_resistance));
  fold((static_cast<std::uint64_t>(context.driver_strength) << 32) |
       static_cast<std::uint64_t>(context.driver_function));
  fold(static_cast<std::uint64_t>(context.loads.size()));
  for (const SinkLoad& load : context.loads) {
    fold((static_cast<std::uint64_t>(load.drive_strength) << 32) |
         static_cast<std::uint64_t>(load.function));
    fold(std::bit_cast<std::uint64_t>(load.input_cap));
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

NetContext random_context(const cell::CellLibrary& library,
                          const rcnet::RcNet& net, std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> cell_pick(0, library.size() - 1);
  std::normal_distribution<double> gauss(0.0, 0.22);

  NetContext ctx;
  // Synthesis-like driver sizing: real flows size the driver to its load, so
  // the (invisible) drive resistance correlates with the (visible) net
  // capacitance. Aim for a driver RC near a target transition window and pick
  // the library cell whose drive resistance comes closest.
  const double c_total = net.total_ground_cap() + net.total_coupling_cap();
  const double rc_target = 5.5e-11 * std::exp(1.6 * gauss(rng));
  const double r_target = rc_target / c_total;
  std::size_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < library.size(); ++i) {
    const double err =
        std::abs(std::log(library.at(i).drive_resistance / r_target));
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  const cell::Cell& driver = library.at(best);
  ctx.driver_resistance = driver.drive_resistance;
  ctx.driver_strength = driver.drive_strength;
  ctx.driver_function = static_cast<std::uint32_t>(driver.function);
  // Input slew: lognormal around 40ps (typical post-route transition). The
  // spread is moderate, as in a closed-timing design: propagated slews
  // correlate with drive strength and load rather than being free noise.
  ctx.input_slew = 4.0e-11 * std::exp(gauss(rng));

  ctx.loads.reserve(net.sinks.size());
  for (std::size_t i = 0; i < net.sinks.size(); ++i) {
    const cell::Cell& load = library.at(cell_pick(rng));
    ctx.loads.push_back({load.drive_strength,
                         static_cast<std::uint32_t>(load.function),
                         load.input_cap});
  }
  return ctx;
}

RawFeatures extract_features(const rcnet::RcNet& net, const NetContext& context) {
  if (context.loads.size() != net.sinks.size())
    throw std::invalid_argument("extract_features: context.loads misaligned");

  RawFeatures rf;
  rf.analysis = sim::analyze_wire(net);
  const sim::WireAnalysis& wa = rf.analysis;
  const std::size_t n = net.node_count();

  // Scale factors keeping raw features in O(1) ranges before standardization
  // (fF, ps, kOhm) so float32 accumulation stays well-conditioned.
  constexpr double kF = 1e15;   // farads -> fF
  constexpr double kS = 1e12;   // seconds -> ps
  constexpr double kR = 1e-3;   // ohms -> kOhm

  const rcnet::Adjacency adj = rcnet::build_adjacency(net);
  rf.x.assign(n * kNodeFeatureCount, 0.0f);
  for (NodeId v = 0; v < n; ++v) {
    float* row = rf.x.data() + v * kNodeFeatureCount;
    double in_cap = 0.0, out_cap = 0.0, in_res = 0.0, out_res = 0.0;
    std::uint32_t in_nodes = 0, out_nodes = 0;
    for (const rcnet::Neighbor& nb : adj[v]) {
      const double r = net.resistors[nb.resistor_index].ohms;
      // Orientation: neighbors nearer the source are inputs (stage view).
      const bool is_input = wa.sp_tree.distance[nb.node] < wa.sp_tree.distance[v];
      if (is_input) {
        ++in_nodes;
        in_cap += net.ground_cap[nb.node];
        in_res += r;
      } else {
        ++out_nodes;
        out_cap += net.ground_cap[nb.node];
        out_res += r;
      }
    }
    row[kCapValue] = static_cast<float>(net.ground_cap[v] * kF);
    row[kNumInputNodes] = static_cast<float>(in_nodes);
    row[kNumOutputNodes] = static_cast<float>(out_nodes);
    row[kTotInputCap] = static_cast<float>(in_cap * kF);
    row[kTotOutputCap] = static_cast<float>(out_cap * kF);
    row[kNumConnectedRes] = static_cast<float>(adj[v].size());
    row[kTotInputRes] = static_cast<float>(in_res * kR);
    row[kTotOutputRes] = static_cast<float>(out_res * kR);
    row[kDownstreamCap] = static_cast<float>(wa.downstream_cap[v] * kF);
    row[kStageDelay] = static_cast<float>(wa.stage_delay[v] * kS);
  }

  const std::size_t p = wa.paths.size();
  rf.h.assign(p * kPathFeatureCount, 0.0f);
  for (std::size_t q = 0; q < p; ++q) {
    float* row = rf.h.data() + q * kPathFeatureCount;
    const NodeId sink = wa.paths[q].sink;
    const SinkLoad& load = context.loads[q];
    row[kInputSlew] = static_cast<float>(context.input_slew * kS);
    row[kDriveStrength] = static_cast<float>(context.driver_strength);
    row[kDriveFunction] = static_cast<float>(context.driver_function);
    row[kLoadStrength] = static_cast<float>(load.drive_strength);
    row[kLoadFunction] = static_cast<float>(load.function);
    row[kLoadCeff] = static_cast<float>(load.input_cap * kF);
    row[kElmoreDelay] = static_cast<float>(wa.moments.m1[sink] * kS);
    row[kD2mDelay] = static_cast<float>(wa.d2m[sink] * kS);
    const double m1 = wa.moments.m1[sink];
    const double spread2 = 2.0 * wa.moments.m2[sink] - m1 * m1;
    row[kImpulseSpread] =
        static_cast<float>(std::sqrt(std::max(0.0, spread2)) * kS);
  }
  return rf;
}

const std::vector<std::string>& quality_feature_names() {
  static const std::vector<std::string> names = {
      // Node features, column order of NodeFeature.
      "node_cap_value",
      "node_num_input_nodes",
      "node_num_output_nodes",
      "node_tot_input_cap",
      "node_tot_output_cap",
      "node_num_connected_res",
      "node_tot_input_res",
      "node_tot_output_res",
      "node_downstream_cap",
      "node_stage_delay",
      // Path features, column order of PathFeature.
      "path_input_slew",
      "path_drive_strength",
      "path_drive_function",
      "path_load_strength",
      "path_load_function",
      "path_load_ceff",
      "path_elmore_delay",
      "path_d2m_delay",
      "path_impulse_spread",
  };
  static_assert(kNodeFeatureCount == 10 && kPathFeatureCount == 9,
                "update quality_feature_names when feature columns change");
  return names;
}

}  // namespace gnntrans::features
