file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_sim.dir/awe.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/awe.cpp.o.d"
  "CMakeFiles/gnntrans_sim.dir/ceff.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/ceff.cpp.o.d"
  "CMakeFiles/gnntrans_sim.dir/golden.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/golden.cpp.o.d"
  "CMakeFiles/gnntrans_sim.dir/moments.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/moments.cpp.o.d"
  "CMakeFiles/gnntrans_sim.dir/transient.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/transient.cpp.o.d"
  "CMakeFiles/gnntrans_sim.dir/wire_analysis.cpp.o"
  "CMakeFiles/gnntrans_sim.dir/wire_analysis.cpp.o.d"
  "libgnntrans_sim.a"
  "libgnntrans_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
