#include "tensor/arena.hpp"

#include <algorithm>
#include <mutex>

namespace gnntrans::tensor {

namespace detail {

struct ArenaState {
  mutable std::mutex mutex;
  std::vector<std::vector<float>> pool;
  ScratchArena::Stats stats;
};

namespace {
thread_local std::shared_ptr<ArenaState> g_active;
}  // namespace

const std::shared_ptr<ArenaState>& active_arena() noexcept { return g_active; }

std::vector<float> acquire_values(const std::shared_ptr<ArenaState>& state,
                                  std::size_t n) {
  std::vector<float> buffer;
  {
    std::scoped_lock lock(state->mutex);
    // Best fit: smallest pooled buffer whose capacity covers n, so large
    // buffers stay available for large requests.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t best = kNone;
    for (std::size_t i = 0; i < state->pool.size(); ++i) {
      const std::size_t cap = state->pool[i].capacity();
      if (cap < n) continue;
      if (best == kNone || cap < state->pool[best].capacity()) best = i;
    }
    if (best != kNone) {
      buffer = std::move(state->pool[best]);
      state->pool.erase(state->pool.begin() +
                        static_cast<std::ptrdiff_t>(best));
      ++state->stats.reused;
    } else {
      ++state->stats.allocated;
    }
    state->stats.live_bytes += n * sizeof(float);
    state->stats.peak_bytes =
        std::max(state->stats.peak_bytes, state->stats.live_bytes);
  }
  buffer.assign(n, 0.0f);
  return buffer;
}

void release_values(const std::shared_ptr<ArenaState>& state,
                    std::vector<float>&& buffer) noexcept {
  try {
    std::scoped_lock lock(state->mutex);
    const std::size_t bytes = buffer.size() * sizeof(float);
    state->stats.live_bytes -= std::min(bytes, state->stats.live_bytes);
    state->pool.push_back(std::move(buffer));
  } catch (...) {
    // Pool growth failed: drop the buffer (plain deallocation) rather than
    // propagate out of a destructor path.
  }
}

}  // namespace detail

ScratchArena::ScratchArena() : state_(std::make_shared<detail::ArenaState>()) {}

ScratchArena::Stats ScratchArena::stats() const {
  std::scoped_lock lock(state_->mutex);
  Stats out = state_->stats;
  out.pooled_buffers = state_->pool.size();
  return out;
}

ScratchArena::Scope::Scope(ScratchArena& arena)
    : previous_(std::move(detail::g_active)) {
  detail::g_active = arena.state_;
}

ScratchArena::Scope::~Scope() { detail::g_active = std::move(previous_); }

}  // namespace gnntrans::tensor
