#include "nn/models.hpp"

#include <stdexcept>

#include "core/telemetry/trace.hpp"
#include "nn/guard.hpp"
#include "tensor/serialize.hpp"

namespace gnntrans::nn {

using tensor::Tensor;

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGnnTrans: return "GNNTrans";
    case ModelKind::kGraphSage: return "GraphSage";
    case ModelKind::kGcnii: return "GCNII";
    case ModelKind::kGat: return "GAT";
    case ModelKind::kGraphTransformer: return "GraphTransformer";
  }
  return "unknown";
}

std::size_t WireModel::parameter_count() const {
  std::size_t total = 0;
  for (const Tensor& p : parameters()) total += p.size();
  return total;
}

WirePrediction WireModel::forward(const GraphSample& sample,
                                  Workspace* workspace) const {
  WirePrediction pred;
  if (!workspace) {
    pred = run_forward(sample);
  } else {
    tensor::ScratchArena::Scope scope(workspace->arena);
    pred = run_forward(sample);
  }
  // Final boundary guard for every architecture: predictions are [P,1], so
  // this scan is negligible next to the forward pass it protects.
  guard_finite(pred.slew, "slew_head");
  guard_finite(pred.delay, "delay_head");
  return pred;
}

namespace {

/// Shared slew/delay MLP heads (paper Eq. 5-6).
class PredictionHeads {
 public:
  PredictionHeads() = default;
  PredictionHeads(std::size_t repr_dim, std::size_t mlp_hidden, bool cascade,
                  std::mt19937_64& rng)
      : cascade_(cascade),
        slew_head_({repr_dim, mlp_hidden, mlp_hidden, 1}, rng),
        delay_head_({repr_dim + (cascade ? 1u : 0u), mlp_hidden, mlp_hidden, 1},
                    rng) {}

  [[nodiscard]] WirePrediction predict(const Tensor& repr) const {
    WirePrediction pred;
    pred.slew = slew_head_.forward(repr);  // Eq. (5)
    const Tensor delay_in =
        cascade_ ? tensor::concat_cols({repr, pred.slew}) : repr;
    pred.delay = delay_head_.forward(delay_in);  // Eq. (6)
    return pred;
  }

  void collect_parameters(std::vector<Tensor>& out) const {
    slew_head_.collect_parameters(out);
    delay_head_.collect_parameters(out);
  }
  void save(std::ostream& out) const {
    slew_head_.save(out);
    delay_head_.save(out);
  }
  void load(std::istream& in) {
    slew_head_.load(in);
    delay_head_.load(in);
  }

 private:
  bool cascade_ = true;
  Mlp slew_head_;
  Mlp delay_head_;
};

/// The paper's architecture (Fig. 4): L1 weighted-Sage GNN layers, L2 global
/// self-attention layers, path pooling with raw path features, MLP heads.
class GnnTransModel final : public WireModel {
 public:
  explicit GnnTransModel(const ModelConfig& config) : WireModel(config) {
    std::mt19937_64 rng(config.seed);
    gnn_.reserve(config.gnn_layers);
    for (std::size_t l = 0; l < config.gnn_layers; ++l)
      gnn_.emplace_back(l == 0 ? config.node_feature_dim : config.hidden_dim,
                        config.hidden_dim, rng);
    attention_.reserve(config.transformer_layers);
    for (std::size_t l = 0; l < config.transformer_layers; ++l)
      attention_.emplace_back(config.hidden_dim, config.heads, rng);
    const std::size_t repr_dim =
        config.hidden_dim +
        (config.use_path_features ? config.path_feature_dim : 0u);
    heads_ = PredictionHeads(repr_dim, config.mlp_hidden,
                             config.cascade_delay_head, rng);
  }

  [[nodiscard]] WirePrediction run_forward(const GraphSample& sample) const override {
    const tensor::GraphMatrix& agg =
        config_.use_edge_weights ? sample.weighted_adj : sample.mean_adj;
    Tensor x = sample.x;
    guard_finite(x, "input");
    {
      const telemetry::TraceSpan span("gnn_forward", "model");
      for (const SageConv& layer : gnn_) x = layer.forward(x, agg);  // Eq. (1)
      guard_finite(x, "gnn_forward");
    }
    static const std::vector<std::uint8_t> kNoMask;
    {
      const telemetry::TraceSpan span("attention", "model");
      for (const SelfAttentionLayer& layer : attention_)
        x = layer.forward(x,
                          config_.global_attention ? kNoMask : sample.attn_mask);
      guard_finite(x, "attention");
    }
    const telemetry::TraceSpan span("heads", "model");
    Tensor pooled = tensor::spmm(sample.path_pool, x);  // Eq. (4) mean part
    if (config_.use_path_features)
      pooled = tensor::concat_cols({pooled, sample.h});  // Eq. (4) concat part
    return heads_.predict(pooled);
  }

  [[nodiscard]] std::vector<Tensor> parameters() const override {
    std::vector<Tensor> out;
    for (const SageConv& l : gnn_) l.collect_parameters(out);
    for (const SelfAttentionLayer& l : attention_) l.collect_parameters(out);
    heads_.collect_parameters(out);
    return out;
  }

  [[nodiscard]] ModelKind kind() const override { return ModelKind::kGnnTrans; }

  void save_parameters(std::ostream& out) const override {
    for (const SageConv& l : gnn_) l.save(out);
    for (const SelfAttentionLayer& l : attention_) l.save(out);
    heads_.save(out);
  }
  void load_parameters(std::istream& in) override {
    for (SageConv& l : gnn_) l.load(in);
    for (SelfAttentionLayer& l : attention_) l.load(in);
    heads_.load(in);
  }

 private:
  std::vector<SageConv> gnn_;
  std::vector<SelfAttentionLayer> attention_;
  PredictionHeads heads_;
};

/// GraphSage baseline: mean aggregation, depth L, mean pooling (no H).
class GraphSageModel final : public WireModel {
 public:
  explicit GraphSageModel(const ModelConfig& config) : WireModel(config) {
    std::mt19937_64 rng(config.seed);
    layers_.reserve(config.gnn_layers);
    for (std::size_t l = 0; l < config.gnn_layers; ++l)
      layers_.emplace_back(l == 0 ? config.node_feature_dim : config.hidden_dim,
                           config.hidden_dim, rng);
    heads_ = PredictionHeads(config.hidden_dim, config.mlp_hidden,
                             config.cascade_delay_head, rng);
  }

  [[nodiscard]] WirePrediction run_forward(const GraphSample& sample) const override {
    Tensor x = sample.x;
    for (const SageConv& layer : layers_) x = layer.forward(x, sample.mean_adj);
    return heads_.predict(tensor::spmm(sample.path_pool, x));
  }

  [[nodiscard]] std::vector<Tensor> parameters() const override {
    std::vector<Tensor> out;
    for (const SageConv& l : layers_) l.collect_parameters(out);
    heads_.collect_parameters(out);
    return out;
  }

  [[nodiscard]] ModelKind kind() const override { return ModelKind::kGraphSage; }

  void save_parameters(std::ostream& out) const override {
    for (const SageConv& l : layers_) l.save(out);
    heads_.save(out);
  }
  void load_parameters(std::istream& in) override {
    for (SageConv& l : layers_) l.load(in);
    heads_.load(in);
  }

 private:
  std::vector<SageConv> layers_;
  PredictionHeads heads_;
};

/// GCNII baseline: residual + identity mapping to fight over-smoothing.
class GcniiModel final : public WireModel {
 public:
  explicit GcniiModel(const ModelConfig& config) : WireModel(config) {
    std::mt19937_64 rng(config.seed);
    input_ = Linear(config.node_feature_dim, config.hidden_dim, rng);
    layers_.reserve(config.gnn_layers);
    for (std::size_t l = 0; l < config.gnn_layers; ++l) {
      // beta_l = lambda / l with lambda = 0.5 (paper [17]'s recommended decay).
      const float beta = 0.5f / static_cast<float>(l + 1);
      layers_.emplace_back(config.hidden_dim, /*alpha=*/0.1f, beta, rng);
    }
    heads_ = PredictionHeads(config.hidden_dim, config.mlp_hidden,
                             config.cascade_delay_head, rng);
  }

  [[nodiscard]] WirePrediction run_forward(const GraphSample& sample) const override {
    const Tensor x0 = tensor::relu(input_.forward(sample.x));
    Tensor x = x0;
    for (const GcniiLayer& layer : layers_)
      x = layer.forward(x, x0, sample.gcnii_adj);
    return heads_.predict(tensor::spmm(sample.path_pool, x));
  }

  [[nodiscard]] std::vector<Tensor> parameters() const override {
    std::vector<Tensor> out;
    input_.collect_parameters(out);
    for (const GcniiLayer& l : layers_) l.collect_parameters(out);
    heads_.collect_parameters(out);
    return out;
  }

  [[nodiscard]] ModelKind kind() const override { return ModelKind::kGcnii; }

  void save_parameters(std::ostream& out) const override {
    input_.save(out);
    for (const GcniiLayer& l : layers_) l.save(out);
    heads_.save(out);
  }
  void load_parameters(std::istream& in) override {
    input_.load(in);
    for (GcniiLayer& l : layers_) l.load(in);
    heads_.load(in);
  }

 private:
  Linear input_;
  std::vector<GcniiLayer> layers_;
  PredictionHeads heads_;
};

/// GAT baseline: multi-head additive attention over neighbors.
class GatModel final : public WireModel {
 public:
  explicit GatModel(const ModelConfig& config) : WireModel(config) {
    std::mt19937_64 rng(config.seed);
    layers_.reserve(config.gnn_layers);
    for (std::size_t l = 0; l < config.gnn_layers; ++l)
      layers_.emplace_back(l == 0 ? config.node_feature_dim : config.hidden_dim,
                           config.hidden_dim, config.heads, rng);
    heads_ = PredictionHeads(config.hidden_dim, config.mlp_hidden,
                             config.cascade_delay_head, rng);
  }

  [[nodiscard]] WirePrediction run_forward(const GraphSample& sample) const override {
    Tensor x = sample.x;
    for (const GatLayer& layer : layers_) x = layer.forward(x, sample.attn_mask);
    return heads_.predict(tensor::spmm(sample.path_pool, x));
  }

  [[nodiscard]] std::vector<Tensor> parameters() const override {
    std::vector<Tensor> out;
    for (const GatLayer& l : layers_) l.collect_parameters(out);
    heads_.collect_parameters(out);
    return out;
  }

  [[nodiscard]] ModelKind kind() const override { return ModelKind::kGat; }

  void save_parameters(std::ostream& out) const override {
    for (const GatLayer& l : layers_) l.save(out);
    heads_.save(out);
  }
  void load_parameters(std::istream& in) override {
    for (GatLayer& l : layers_) l.load(in);
    heads_.load(in);
  }

 private:
  std::vector<GatLayer> layers_;
  PredictionHeads heads_;
};

/// Graph transformer baseline [19]: neighbor-masked attention + feed-forward.
class GraphTransformerModel final : public WireModel {
 public:
  explicit GraphTransformerModel(const ModelConfig& config) : WireModel(config) {
    std::mt19937_64 rng(config.seed);
    input_ = Linear(config.node_feature_dim, config.hidden_dim, rng);
    attention_.reserve(config.gnn_layers);
    ffn_.reserve(config.gnn_layers);
    for (std::size_t l = 0; l < config.gnn_layers; ++l) {
      attention_.emplace_back(config.hidden_dim, config.heads, rng);
      ffn_.emplace_back(config.hidden_dim, config.hidden_dim * 2, rng);
    }
    heads_ = PredictionHeads(config.hidden_dim, config.mlp_hidden,
                             config.cascade_delay_head, rng);
  }

  [[nodiscard]] WirePrediction run_forward(const GraphSample& sample) const override {
    Tensor x = tensor::relu(input_.forward(sample.x));
    for (std::size_t l = 0; l < attention_.size(); ++l) {
      x = attention_[l].forward(x, sample.attn_mask);
      x = ffn_[l].forward(x);
    }
    return heads_.predict(tensor::spmm(sample.path_pool, x));
  }

  [[nodiscard]] std::vector<Tensor> parameters() const override {
    std::vector<Tensor> out;
    input_.collect_parameters(out);
    for (std::size_t l = 0; l < attention_.size(); ++l) {
      attention_[l].collect_parameters(out);
      ffn_[l].collect_parameters(out);
    }
    heads_.collect_parameters(out);
    return out;
  }

  [[nodiscard]] ModelKind kind() const override {
    return ModelKind::kGraphTransformer;
  }

  void save_parameters(std::ostream& out) const override {
    input_.save(out);
    for (std::size_t l = 0; l < attention_.size(); ++l) {
      attention_[l].save(out);
      ffn_[l].save(out);
    }
    heads_.save(out);
  }
  void load_parameters(std::istream& in) override {
    input_.load(in);
    for (std::size_t l = 0; l < attention_.size(); ++l) {
      attention_[l].load(in);
      ffn_[l].load(in);
    }
    heads_.load(in);
  }

 private:
  Linear input_;
  std::vector<SelfAttentionLayer> attention_;
  std::vector<FeedForward> ffn_;
  PredictionHeads heads_;
};

constexpr char kModelMagic[] = "GNNTRANS_MODEL";
constexpr std::uint32_t kModelVersion = 1;

}  // namespace

std::unique_ptr<WireModel> make_model(ModelKind kind, const ModelConfig& config) {
  if (config.node_feature_dim == 0)
    throw std::invalid_argument("make_model: node_feature_dim required");
  switch (kind) {
    case ModelKind::kGnnTrans:
      if (config.use_path_features && config.path_feature_dim == 0)
        throw std::invalid_argument("make_model: GNNTrans needs path_feature_dim");
      return std::make_unique<GnnTransModel>(config);
    case ModelKind::kGraphSage: return std::make_unique<GraphSageModel>(config);
    case ModelKind::kGcnii: return std::make_unique<GcniiModel>(config);
    case ModelKind::kGat: return std::make_unique<GatModel>(config);
    case ModelKind::kGraphTransformer:
      return std::make_unique<GraphTransformerModel>(config);
  }
  throw std::invalid_argument("make_model: unknown kind");
}

void save_model(std::ostream& out, const WireModel& model) {
  tensor::write_header(out, kModelMagic, kModelVersion);
  tensor::write_u32(out, static_cast<std::uint32_t>(model.kind()));
  const ModelConfig& c = model.config();
  for (std::size_t v : {c.node_feature_dim, c.path_feature_dim, c.hidden_dim,
                        c.gnn_layers, c.transformer_layers, c.heads, c.mlp_hidden})
    tensor::write_u32(out, static_cast<std::uint32_t>(v));
  tensor::write_u32(out, static_cast<std::uint32_t>(c.seed));
  std::uint32_t flags = 0;
  if (c.use_edge_weights) flags |= 1u;
  if (c.global_attention) flags |= 2u;
  if (c.use_path_features) flags |= 4u;
  if (c.cascade_delay_head) flags |= 8u;
  tensor::write_u32(out, flags);
  model.save_parameters(out);
}

std::unique_ptr<WireModel> load_model(std::istream& in) {
  tensor::check_header(in, kModelMagic, kModelVersion);
  const auto kind = static_cast<ModelKind>(tensor::read_u32(in));
  ModelConfig c;
  c.node_feature_dim = tensor::read_u32(in);
  c.path_feature_dim = tensor::read_u32(in);
  c.hidden_dim = tensor::read_u32(in);
  c.gnn_layers = tensor::read_u32(in);
  c.transformer_layers = tensor::read_u32(in);
  c.heads = tensor::read_u32(in);
  c.mlp_hidden = tensor::read_u32(in);
  c.seed = tensor::read_u32(in);
  const std::uint32_t flags = tensor::read_u32(in);
  c.use_edge_weights = (flags & 1u) != 0;
  c.global_attention = (flags & 2u) != 0;
  c.use_path_features = (flags & 4u) != 0;
  c.cascade_delay_head = (flags & 8u) != 0;

  std::unique_ptr<WireModel> model = make_model(kind, c);
  model->load_parameters(in);
  return model;
}

}  // namespace gnntrans::nn
