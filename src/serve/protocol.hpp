/// \file protocol.hpp
/// The wire protocol of the network serving front-end: length-prefixed binary
/// frames carrying packed RC-graph timing requests and typed responses.
///
/// Layout (everything little-endian; doubles are raw IEEE-754 bits, so a
/// request/response round-trip is bitwise-exact — the determinism invariant of
/// estimate_batch survives the network hop):
///
///   frame    := u32 payload_length | payload          (length excludes itself)
///   payload  := header | [trace] | body
///   header   := u32 magic 'GNTR' | u8 version | u8 type | u16 flags
///             | u64 request_id | u32 attempt
///   trace    := u64 trace_id | u64 parent_span_id | u8 sampled
///               (present iff flags bit 0 is set; requests only; v2+)
///   request  := u32 deadline_us | rcnet | context     (type = 1)
///   rcnet    := u16 name_len | name bytes
///             | u32 node_count | u32 source
///             | u32 sink_count | u32 sink[]
///             | f64 ground_cap[node_count]
///             | u32 resistor_count | { u32 a | u32 b | f64 ohms }[]
///             | u32 coupling_count | { u32 victim | f64 farads | u64 seed }[]
///   context  := f64 input_slew | f64 driver_resistance
///             | u32 driver_strength | u32 driver_function
///             | u32 load_count | { u32 strength | u32 function | f64 cap }[]
///   response := u8 status | u8 provenance | u16 message_len | message bytes
///             | u32 path_count | { u32 sink | u8 provenance
///                                | f64 delay | f64 slew }[]    (type = 2)
///
/// The response status byte is exactly a core::ErrorCode, so the server's
/// admission decisions (kOverloaded, kShuttingDown, kDeadlineExceeded,
/// kMalformedFrame) and the estimator's degradation reasons share one
/// taxonomy end to end.
///
/// Decoding is fully bounds-checked: every declared count is validated
/// against the bytes actually remaining before any allocation sized from it,
/// and trailing garbage after a well-formed body is itself a malformed frame.
/// A hostile or corrupted peer gets a typed kMalformedFrame, never UB.
///
/// Versioning: v2 added the optional trace-context block, carried only when
/// the header flags announce it. v1 frames (no trace block, flags were
/// "reserved" and are ignored) still decode — tracing is simply absent. A v2
/// frame with unknown flag bits, a truncated trace block, or a sampled byte
/// other than 0/1 is a typed kMalformedFrame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.hpp"
#include "core/status.hpp"
#include "core/telemetry/trace.hpp"
#include "features/features.hpp"
#include "rcnet/rcnet.hpp"

namespace gnntrans::serve {

inline constexpr std::uint32_t kMagic = 0x474E5452;  // 'GNTR'
inline constexpr std::uint8_t kVersion = 2;
/// Oldest version this build still decodes (pre-tracing frames).
inline constexpr std::uint8_t kMinVersion = 1;
inline constexpr std::uint8_t kTypeEstimateRequest = 1;
inline constexpr std::uint8_t kTypeEstimateResponse = 2;
/// Header flag: a 17-byte trace-context block follows the header.
inline constexpr std::uint16_t kFlagTraceContext = 1u << 0;

/// Default ceiling on one frame's payload. A 1 MiB frame holds an RC net of
/// ~40k resistors — far beyond any net the extractor emits — while bounding
/// what a hostile length prefix can make the server allocate.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// One timing request as it travels the wire.
struct RequestFrame {
  /// Client-chosen correlation id, echoed verbatim in the response. The
  /// bundled client packs its client_id into the high bits so ids stay
  /// process-unique across concurrent connections.
  std::uint64_t request_id = 0;
  /// Delivery attempt (0 = first). Echoed in the response; also the retry
  /// discriminator for deterministic fault injection — site keys include the
  /// attempt, so a retried request re-rolls its fault dice instead of
  /// deterministically failing forever.
  std::uint32_t attempt = 0;
  /// Per-request latency budget in microseconds from server admission;
  /// 0 = none. Propagated into BatchOptions::deadline_seconds.
  std::uint32_t deadline_us = 0;
  /// Request-scoped trace identity (v2 trace block). Encoded only when
  /// valid(); absent (all zero) when decoding a v1 frame or an untraced v2
  /// frame. The sampled flag tells the server whether to record stage spans
  /// and retain the stage breakdown for this request.
  telemetry::TraceContext trace;
  rcnet::RcNet net;
  features::NetContext context;
};

/// One timing response as it travels the wire.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  std::uint32_t attempt = 0;
  /// kOk when paths carry an estimate; otherwise the typed reject/degrade
  /// reason (kOverloaded, kShuttingDown, kMalformedFrame, kDeadlineExceeded,
  /// or a ladder code from the estimator's NetOutcome).
  core::ErrorCode status = core::ErrorCode::kOk;
  /// Which ladder rung produced the paths (net-level; per-path provenance
  /// rides each PathEstimate).
  core::EstimateProvenance provenance = core::EstimateProvenance::kModel;
  std::string message;
  std::vector<core::PathEstimate> paths;
};

/// Encodes a full frame (length prefix included), ready for send_all.
[[nodiscard]] std::string encode_request(const RequestFrame& request);
[[nodiscard]] std::string encode_response(const ResponseFrame& response);

/// Decodes one payload (the bytes *after* the length prefix). On failure the
/// Status is kMalformedFrame with a human-readable reason and \p out is
/// unspecified.
[[nodiscard]] core::Status decode_request(std::string_view payload,
                                          RequestFrame* out);
[[nodiscard]] core::Status decode_response(std::string_view payload,
                                           ResponseFrame* out);

/// Outcome of trying to peel one frame off a reassembly buffer.
enum class FrameStatus : std::uint8_t {
  kNeedMore = 0,  ///< buffer holds a partial length prefix or partial payload
  kFrame = 1,     ///< one complete payload extracted and consumed
  kOversize = 2,  ///< declared length exceeds max_frame_bytes: protocol abuse
};

/// Peels the first complete frame off \p buffer (erasing its bytes) into
/// \p payload. kOversize leaves the buffer untouched — the connection is
/// beyond recovery (the stream cannot be resynchronized) and must be closed.
[[nodiscard]] FrameStatus try_extract_frame(
    std::string& buffer, std::string* payload,
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace gnntrans::serve
