file(REMOVE_RECURSE
  "CMakeFiles/bench_oversmoothing.dir/bench_oversmoothing.cpp.o"
  "CMakeFiles/bench_oversmoothing.dir/bench_oversmoothing.cpp.o.d"
  "bench_oversmoothing"
  "bench_oversmoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oversmoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
