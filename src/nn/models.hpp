/// \file models.hpp
/// The wire timing model zoo: GNNTrans (the paper's contribution) plus the
/// four graph-learning baselines it is compared against in Tables III-V.
///
/// All models share the same contract: consume a GraphSample, emit
/// standardized per-path slew and delay ([P,1] each). GNNTrans additionally
/// consumes the path feature matrix H in its pooling module (Eq. 4); the
/// baselines mean-pool node representations only, exactly as the paper's
/// experimental setup describes.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/graph_sample.hpp"
#include "nn/layers.hpp"
#include "nn/workspace.hpp"

namespace gnntrans::nn {

/// Which architecture a model instance implements.
enum class ModelKind : std::uint32_t {
  kGnnTrans = 0,
  kGraphSage = 1,
  kGcnii = 2,
  kGat = 3,
  kGraphTransformer = 4,
};

/// Returns the canonical display name ("GNNTrans", "GraphSage", ...).
[[nodiscard]] std::string to_string(ModelKind kind);

/// Hyperparameters shared by the zoo. For GNNTrans, gnn_layers is the paper's
/// L1 and transformer_layers is L2; baselines use gnn_layers as their total
/// depth L (the paper fixes L = 20 for all baselines).
struct ModelConfig {
  std::size_t node_feature_dim = 0;   ///< dx (required)
  std::size_t path_feature_dim = 0;   ///< dh (required for GNNTrans)
  std::size_t hidden_dim = 16;
  std::size_t gnn_layers = 4;
  std::size_t transformer_layers = 2;
  std::size_t heads = 4;
  std::size_t mlp_hidden = 32;
  std::uint64_t seed = 1;

  // Ablation switches (GNNTrans only; defaults reproduce the paper).
  bool use_edge_weights = true;    ///< Eq. (1) resistance weights vs mean agg
  bool global_attention = true;    ///< Eq. (2-3) global vs neighbor-masked
  bool use_path_features = true;   ///< Eq. (4) concat h_q vs mean-pool only
  bool cascade_delay_head = true;  ///< Eq. (6) delay head sees predicted slew
};

/// Abstract wire timing model.
class WireModel {
 public:
  virtual ~WireModel() = default;

  /// Predicts standardized slew/delay for every path of \p sample. When
  /// \p workspace is non-null, intermediate activations are drawn from its
  /// scratch arena and recycled across calls instead of hitting the heap —
  /// numerics are identical either way. The workspace must not be shared by
  /// concurrent callers; use one per thread.
  [[nodiscard]] WirePrediction forward(const GraphSample& sample,
                                       Workspace* workspace = nullptr) const;

  /// All trainable parameters (stable order).
  [[nodiscard]] virtual std::vector<tensor::Tensor> parameters() const = 0;

  [[nodiscard]] virtual ModelKind kind() const = 0;
  [[nodiscard]] std::string name() const { return to_string(kind()); }
  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }

  /// Writes/reads parameter payload (config handled by save_model/load_model).
  virtual void save_parameters(std::ostream& out) const = 0;
  virtual void load_parameters(std::istream& in) = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t parameter_count() const;

 protected:
  explicit WireModel(ModelConfig config) : config_(config) {}

  /// Architecture-specific forward pass; the allocation policy (scratch arena
  /// vs heap) is handled by the public forward() wrapper.
  [[nodiscard]] virtual WirePrediction run_forward(
      const GraphSample& sample) const = 0;

  ModelConfig config_;
};

/// Instantiates a model with freshly initialized parameters.
[[nodiscard]] std::unique_ptr<WireModel> make_model(ModelKind kind,
                                                    const ModelConfig& config);

/// Serializes kind + config + parameters.
void save_model(std::ostream& out, const WireModel& model);

/// Restores a model saved by save_model. Throws std::runtime_error on a
/// malformed stream.
[[nodiscard]] std::unique_ptr<WireModel> load_model(std::istream& in);

}  // namespace gnntrans::nn
