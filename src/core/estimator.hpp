/// \file estimator.hpp
/// The library's headline deliverable: a trained, serializable wire timing
/// estimator that replaces sign-off wire timing inside STA.
///
/// Usage:
///   auto records = features::generate_wire_records(cfg, library);
///   auto estimator = core::WireTimingEstimator::train(records, options);
///   auto timing = estimator.estimate(net, context);       // per-path ps
///   estimator.save("model.bin");  // later: WireTimingEstimator::load(...)
///
/// EstimatorWireSource adapts a trained estimator to the STA engine, enabling
/// the paper's Table V flow (gate NLDM + learned wire timing).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/trainer.hpp"
#include "features/dataset.hpp"
#include "netlist/sta.hpp"
#include "nn/models.hpp"

namespace gnntrans::core {

/// Per-path estimate in seconds.
struct PathEstimate {
  rcnet::NodeId sink = 0;
  double slew = 0.0;
  double delay = 0.0;
};

/// A trained model + its standardizer, bundled for deployment.
class WireTimingEstimator {
 public:
  /// Training options.
  struct Options {
    nn::ModelKind kind = nn::ModelKind::kGnnTrans;
    nn::ModelConfig model;  ///< feature dims are filled in automatically
    TrainConfig train;
  };

  /// Fits the standardizer on \p records, instantiates the model, trains it.
  [[nodiscard]] static WireTimingEstimator train(
      const std::vector<features::WireRecord>& records, Options options);

  /// Per-path wire timing for one net (inference only, no golden timer).
  [[nodiscard]] std::vector<PathEstimate> estimate(
      const rcnet::RcNet& net, const features::NetContext& context) const;

  /// Scores the estimator on labeled records (seconds-space R^2 / max error).
  [[nodiscard]] Evaluation evaluate(
      const std::vector<features::WireRecord>& records) const;

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static WireTimingEstimator load(std::istream& in);
  [[nodiscard]] static WireTimingEstimator load_file(const std::string& path);

  [[nodiscard]] const nn::WireModel& model() const { return *model_; }
  [[nodiscard]] const features::Standardizer& standardizer() const {
    return standardizer_;
  }
  [[nodiscard]] const TrainReport& train_report() const noexcept {
    return train_report_;
  }

 private:
  WireTimingEstimator() = default;

  std::unique_ptr<nn::WireModel> model_;
  features::Standardizer standardizer_;
  TrainReport train_report_;
};

/// Adapts a trained estimator (+ the cell library for load contexts) to the
/// STA engine's WireTimingSource interface.
class EstimatorWireSource final : public netlist::WireTimingSource {
 public:
  EstimatorWireSource(const WireTimingEstimator& estimator,
                      const netlist::Design& design,
                      const cell::CellLibrary& library);

  [[nodiscard]] std::vector<sim::SinkTiming> time_net(
      const rcnet::RcNet& net, double input_slew,
      double driver_resistance) override;

  [[nodiscard]] std::string name() const override {
    return "Estimator(" + estimator_.model().name() + ")";
  }

 private:
  const WireTimingEstimator& estimator_;
  const netlist::Design& design_;
  const cell::CellLibrary& library_;
  std::unordered_map<std::string, std::size_t> net_by_name_;
};

}  // namespace gnntrans::core
