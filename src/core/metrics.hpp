/// \file metrics.hpp
/// Evaluation metrics used throughout the paper: R^2 score and maximum
/// absolute error (MAE in the paper's Table V nomenclature).
#pragma once

#include <span>

namespace gnntrans::core {

/// Coefficient of determination: 1 - SS_res / SS_tot. Returns 1.0 on a
/// perfect fit; can be negative for models worse than the mean predictor.
/// Requires equal non-empty spans.
[[nodiscard]] double r2_score(std::span<const double> prediction,
                              std::span<const double> truth);

/// Maximum absolute error.
[[nodiscard]] double max_abs_error(std::span<const double> prediction,
                                   std::span<const double> truth);

/// Mean absolute error.
[[nodiscard]] double mean_abs_error(std::span<const double> prediction,
                                    std::span<const double> truth);

}  // namespace gnntrans::core
