/// \file optim.hpp
/// Adam optimizer and gradient clipping over a flat parameter list.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace gnntrans::tensor {

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  struct Config {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;  ///< decoupled (AdamW-style) when > 0
  };

  /// Registers the parameters to optimize; their impls must outlive the
  /// optimizer. Tensors without requires_grad are rejected.
  Adam(std::vector<Tensor> parameters, Config config);
  explicit Adam(std::vector<Tensor> parameters)
      : Adam(std::move(parameters), Config{}) {}

  /// Applies one update from the gradients currently stored on the parameters.
  /// Parameters whose grad buffer is still unallocated are skipped.
  void step();

  /// Zeroes every registered parameter's gradient.
  void zero_grad() noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;  ///< first-moment state per parameter
  std::vector<std::vector<float>> v_;  ///< second-moment state per parameter
  Config config_;
  long step_count_ = 0;
};

/// Scales gradients so their global L2 norm is at most \p max_norm.
/// Returns the pre-clip norm.
double clip_grad_norm(std::vector<Tensor>& parameters, double max_norm);

}  // namespace gnntrans::tensor
