#include "sim/golden.hpp"

#include "core/telemetry/telemetry.hpp"

namespace gnntrans::sim {

namespace {

/// Golden-timer metrics: how much sign-off simulation work the process has
/// paid (the cost the learned estimator exists to eliminate).
struct GoldenMetrics {
  telemetry::Counter nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_golden_nets_timed_total",
      "Nets timed by the golden transient simulator");
  telemetry::Counter steps = telemetry::MetricsRegistry::global().counter(
      "gnntrans_golden_solver_steps_total",
      "Transient solver steps executed by the golden timer");

  static const GoldenMetrics& get() {
    static const GoldenMetrics metrics;
    return metrics;
  }
};

}  // namespace

TransientResult GoldenTimer::time_net(const rcnet::RcNet& net, double input_slew,
                                      double driver_resistance) {
  const telemetry::TraceSpan span("golden_time_net", "sim");
  const auto start = std::chrono::steady_clock::now();
  TransientResult result = simulate(net, config_, input_slew, driver_resistance);
  const auto end = std::chrono::steady_clock::now();

  ++stats_.nets_timed;
  stats_.solver_steps += result.steps_executed;
  stats_.wall_seconds += std::chrono::duration<double>(end - start).count();
  GoldenMetrics::get().nets.inc();
  GoldenMetrics::get().steps.inc(result.steps_executed);
  return result;
}

}  // namespace gnntrans::sim
