file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_features.dir/dataset.cpp.o"
  "CMakeFiles/gnntrans_features.dir/dataset.cpp.o.d"
  "CMakeFiles/gnntrans_features.dir/features.cpp.o"
  "CMakeFiles/gnntrans_features.dir/features.cpp.o.d"
  "libgnntrans_features.a"
  "libgnntrans_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
