# Empty dependencies file for test_report_incremental.
# This may be replaced when dependencies are built.
