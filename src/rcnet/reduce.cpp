#include "rcnet/reduce.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace gnntrans::rcnet {

RcNet merge_parallel_resistors(const RcNet& net, std::size_t* merged) {
  // Sum conductances per unordered endpoint pair.
  std::map<std::pair<NodeId, NodeId>, double> conductance;
  for (const Resistor& r : net.resistors)
    conductance[std::minmax(r.a, r.b)] += 1.0 / r.ohms;

  RcNet out = net;
  out.resistors.clear();
  out.resistors.reserve(conductance.size());
  for (const auto& [pair, g] : conductance)
    out.resistors.push_back({pair.first, pair.second, 1.0 / g});
  if (merged) *merged = net.resistors.size() - out.resistors.size();
  return out;
}

namespace {

/// One pass of series elimination. On success, replaces \p net, fills
/// \p pass_map (old id -> new id, kEliminated for removed nodes), and returns
/// the number of nodes removed.
std::size_t eliminate_series_once(RcNet& net, std::vector<NodeId>& pass_map) {
  const std::size_t n = net.node_count();
  const Adjacency adj = build_adjacency(net);

  std::set<NodeId> protected_nodes{net.source};
  protected_nodes.insert(net.sinks.begin(), net.sinks.end());
  for (const CouplingCap& c : net.couplings) protected_nodes.insert(c.victim_node);

  // Pick removable degree-2 nodes; greedy non-adjacent selection keeps the
  // resistor rewiring of each elimination local to untouched neighbours.
  std::vector<bool> removed(n, false);
  std::vector<bool> touched(n, false);
  struct Elimination {
    NodeId node, left, right;
    double r_total;
  };
  std::vector<Elimination> eliminations;
  for (NodeId v = 0; v < n; ++v) {
    if (adj[v].size() != 2 || protected_nodes.contains(v)) continue;
    const Neighbor& a = adj[v][0];
    const Neighbor& b = adj[v][1];
    if (a.node == b.node) continue;  // both edges to the same neighbour
    if (touched[v] || touched[a.node] || touched[b.node]) continue;
    touched[v] = touched[a.node] = touched[b.node] = true;
    removed[v] = true;
    eliminations.push_back({v, a.node, b.node,
                            net.resistors[a.resistor_index].ohms +
                                net.resistors[b.resistor_index].ohms});
  }
  if (eliminations.empty()) return 0;

  // TICER quick rule: split the eliminated node's cap by conductance share.
  for (const Elimination& e : eliminations) {
    const Neighbor& a = adj[e.node][0];
    const Neighbor& b = adj[e.node][1];
    const double ga = 1.0 / net.resistors[a.resistor_index].ohms;
    const double gb = 1.0 / net.resistors[b.resistor_index].ohms;
    const double cap = net.ground_cap[e.node];
    net.ground_cap[a.node] += cap * ga / (ga + gb);
    net.ground_cap[b.node] += cap * gb / (ga + gb);
  }

  pass_map.assign(n, ReductionResult::kEliminated);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v)
    if (!removed[v]) pass_map[v] = next++;

  RcNet out;
  out.name = net.name;
  out.ground_cap.resize(next);
  for (NodeId v = 0; v < n; ++v)
    if (!removed[v]) out.ground_cap[pass_map[v]] = net.ground_cap[v];
  out.source = pass_map[net.source];
  for (NodeId s : net.sinks) out.sinks.push_back(pass_map[s]);
  for (const CouplingCap& c : net.couplings)
    out.couplings.push_back({pass_map[c.victim_node], c.farads, c.aggressor_seed});

  std::set<std::size_t> dropped_resistors;
  for (const Elimination& e : eliminations) {
    dropped_resistors.insert(adj[e.node][0].resistor_index);
    dropped_resistors.insert(adj[e.node][1].resistor_index);
  }
  for (std::size_t i = 0; i < net.resistors.size(); ++i) {
    if (dropped_resistors.contains(i)) continue;
    const Resistor& r = net.resistors[i];
    out.resistors.push_back({pass_map[r.a], pass_map[r.b], r.ohms});
  }
  for (const Elimination& e : eliminations)
    out.resistors.push_back({pass_map[e.left], pass_map[e.right], e.r_total});

  net = std::move(out);
  return eliminations.size();
}

}  // namespace

ReductionResult reduce_net(const RcNet& net) {
  ReductionResult result;
  std::size_t merged = 0;
  result.net = merge_parallel_resistors(net, &merged);
  result.merged_resistors = merged;

  result.node_map.resize(net.node_count());
  std::iota(result.node_map.begin(), result.node_map.end(), NodeId{0});

  std::vector<NodeId> pass_map;
  while (true) {
    const std::size_t removed = eliminate_series_once(result.net, pass_map);
    if (removed == 0) break;
    for (NodeId& m : result.node_map)
      if (m != ReductionResult::kEliminated) m = pass_map[m];
    result.eliminated_nodes += removed;
    // New parallel pairs can appear when a loop collapses; re-merge.
    std::size_t merged_now = 0;
    result.net = merge_parallel_resistors(result.net, &merged_now);
    result.merged_resistors += merged_now;
  }
  return result;
}

}  // namespace gnntrans::rcnet
