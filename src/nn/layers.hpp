/// \file layers.hpp
/// Neural layers: the building blocks of GNNTrans (paper Sec. III) and of the
/// baseline model zoo (GCNII, GraphSage, GAT, Graph Transformer).
///
/// Every layer owns its parameters, exposes them via collect_parameters(),
/// and (de)serializes them in a fixed order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace gnntrans::nn {

/// Fully connected layer: y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in_dim, std::size_t out_dim, std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  tensor::Tensor weight_;  ///< [in, out]
  tensor::Tensor bias_;    ///< [1, out]
};

/// Multilayer perceptron with ReLU hidden activations and linear output
/// (the paper's MLP heads, Eq. 5-6).
class Mlp {
 public:
  Mlp() = default;
  /// \p dims is {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<Linear> layers_;
};

/// Paper Eq. (1): x_i' = ReLU(W1 x_i + W2 * sum_u a_iu x_u).
///
/// The aggregation matrix carries the resistance weights a_iu (or plain mean
/// weights for the unweighted ablation); it is part of the sample, not the layer.
class SageConv {
 public:
  SageConv() = default;
  SageConv(std::size_t in_dim, std::size_t out_dim, std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x,
                                       const tensor::GraphMatrix& agg) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  tensor::Tensor w_self_;   ///< W1
  tensor::Tensor w_neigh_;  ///< W2
};

/// GCNII layer (Chen et al., ICML'20) with residual connection to the initial
/// representation and identity mapping:
///   x' = ReLU(((1-alpha) P x + alpha x0) ((1-beta) I + beta W)).
class GcniiLayer {
 public:
  GcniiLayer() = default;
  GcniiLayer(std::size_t dim, float alpha, float beta, std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x,
                                       const tensor::Tensor& x0,
                                       const tensor::GraphMatrix& prop) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  tensor::Tensor weight_;
  float alpha_ = 0.1f;
  float beta_ = 0.5f;
};

/// Multi-head graph attention layer (Velickovic et al.): additive attention
/// over neighbors (self loop included), heads concatenated.
class GatLayer {
 public:
  GatLayer() = default;
  GatLayer(std::size_t in_dim, std::size_t out_dim, std::size_t heads,
           std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x,
                                       const std::vector<std::uint8_t>& mask) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  struct Head {
    tensor::Tensor weight;  ///< [in, dk]
    tensor::Tensor attn_l;  ///< [dk, 1]
    tensor::Tensor attn_r;  ///< [dk, 1]
  };
  std::vector<Head> heads_;
  tensor::Tensor out_proj_;  ///< mixes concatenated heads back to out_dim
};

/// Multi-head self-attention with residual (paper Eq. 2-3 when the mask is
/// empty = fully global; Dwivedi-Bresson graph transformer when the mask
/// restricts attention to graph neighbors).
class SelfAttentionLayer {
 public:
  SelfAttentionLayer() = default;
  /// \p dim must be divisible by \p heads.
  SelfAttentionLayer(std::size_t dim, std::size_t heads, std::mt19937_64& rng);

  /// \p mask empty = global attention over all nodes (GNNTrans Eq. 2-3);
  /// otherwise an N*N neighbor mask (graph transformer baseline).
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x,
                                       const std::vector<std::uint8_t>& mask) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  struct Head {
    tensor::Tensor wq;  ///< [dim, dk]
    tensor::Tensor wk;  ///< [dim, dk]
    tensor::Tensor wv;  ///< [dim, dk]
  };
  std::vector<Head> heads_;
  tensor::Tensor w3_;  ///< [dim, dim], paper's W3 mixing the concatenated heads
  float inv_sqrt_dk_ = 1.0f;
};

/// Position-wise feed-forward block with residual (graph transformer baseline;
/// the paper's GNNTrans global-attention module does not use one).
class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(std::size_t dim, std::size_t hidden, std::mt19937_64& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x) const;
  void collect_parameters(std::vector<tensor::Tensor>& out) const;
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  Linear up_;
  Linear down_;
};

}  // namespace gnntrans::nn
