#include "core/telemetry/tracez.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "core/telemetry/log.hpp"

namespace gnntrans::telemetry {

RequestTraceStore& RequestTraceStore::global() {
  static RequestTraceStore* store = new RequestTraceStore();
  return *store;
}

void RequestTraceStore::record(const RequestTrace& trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (slowest_.size() < capacity_) {
    slowest_.push_back(trace);
    return;
  }
  auto fastest = std::min_element(
      slowest_.begin(), slowest_.end(),
      [](const RequestTrace& a, const RequestTrace& b) {
        return a.wall_seconds < b.wall_seconds;
      });
  if (fastest != slowest_.end() && fastest->wall_seconds < trace.wall_seconds)
    *fastest = trace;
}

std::vector<RequestTrace> RequestTraceStore::snapshot() const {
  std::vector<RequestTrace> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = slowest_;
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  return out;
}

bool RequestTraceStore::find(std::uint64_t trace_id, RequestTrace* out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const RequestTrace& trace : slowest_) {
    if (trace.trace_id != trace_id) continue;
    if (out) *out = trace;
    return true;
  }
  return false;
}

void RequestTraceStore::write_json(std::ostream& out,
                                   std::size_t limit) const {
  std::vector<RequestTrace> traces = snapshot();
  if (limit > 0 && traces.size() > limit) traces.resize(limit);
  out << "{\"retained\":" << traces.size() << ",\"traces\":[";
  bool first = true;
  char buf[512];
  for (const RequestTrace& t : traces) {
    if (!first) out << ",";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "{\"trace_id\":\"0x%016llx\",\"request_id\":%llu,\"attempt\":%u,"
        "\"batch_size\":%u,\"wall_us\":%.3f,\"queue_us\":%.3f,"
        "\"batch_wait_us\":%.3f,\"model_us\":%.3f,\"featurize_us\":%.3f,"
        "\"forward_us\":%.3f,\"fallback_us\":%.3f,\"serialize_us\":%.3f,"
        "\"write_us\":%.3f,\"slow\":%s,\"degraded\":%s",
        static_cast<unsigned long long>(t.trace_id),
        static_cast<unsigned long long>(t.request_id), t.attempt, t.batch_size,
        t.wall_seconds * 1e6, t.queue_seconds * 1e6,
        t.batch_wait_seconds * 1e6, t.model_seconds * 1e6,
        t.featurize_seconds * 1e6, t.forward_seconds * 1e6,
        t.fallback_seconds * 1e6, t.serialize_seconds * 1e6,
        t.write_seconds * 1e6, t.slow ? "true" : "false",
        t.degraded ? "true" : "false");
    out << buf << ",\"net\":\"" << json_escape(t.net)
        << "\",\"provenance\":\"" << json_escape(t.provenance) << "\"}";
  }
  out << "]}";
}

std::uint64_t RequestTraceStore::recorded_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void RequestTraceStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  slowest_.clear();
  recorded_ = 0;
}

void RequestTraceStore::set_capacity(std::size_t slots) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, slots);
  if (slowest_.size() > capacity_) {
    std::sort(slowest_.begin(), slowest_.end(),
              [](const RequestTrace& a, const RequestTrace& b) {
                return a.wall_seconds > b.wall_seconds;
              });
    slowest_.resize(capacity_);
  }
}

}  // namespace gnntrans::telemetry
