
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/generate.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/generate.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/generate.cpp.o.d"
  "/root/repo/src/netlist/incremental.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/incremental.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/incremental.cpp.o.d"
  "/root/repo/src/netlist/report.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/report.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/report.cpp.o.d"
  "/root/repo/src/netlist/sta.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/sta.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/sta.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/gnntrans_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/gnntrans_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rcnet/CMakeFiles/gnntrans_rcnet.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/gnntrans_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gnntrans_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnntrans_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
