/// \file workspace.hpp
/// Reusable inference scratch for WireModel forward passes.
///
/// A Workspace owns the scratch arena that recycles activation buffers across
/// nets: pass one to WireModel::forward (or hold one per serving thread — see
/// core::WireTimingEstimator::estimate_batch) and the forward pass stops
/// paying a heap allocation per intermediate tensor. A Workspace must not be
/// used by two threads at the same time; create one per worker instead.
#pragma once

#include "tensor/arena.hpp"

namespace gnntrans::nn {

struct Workspace {
  tensor::ScratchArena arena;

  /// Buffer-reuse / memory counters for this workspace's arena.
  [[nodiscard]] tensor::ScratchArena::Stats arena_stats() const {
    return arena.stats();
  }
};

}  // namespace gnntrans::nn
