// Serving benchmark for the batched inference engine: throughput vs thread
// count, scratch-arena effectiveness, and per-net latency percentiles.
//
// Protocol: train a tiny GNNTrans estimator (quality is irrelevant here — the
// forward-pass cost is what serving pays), generate an eval population of RC
// nets with random contexts, then time estimate_batch at T in {1, 2, 4, 8}
// workers over the same batch. A separate pass times the legacy per-net
// estimate() path (no arena) so the buffer-reuse win is visible in isolation.
//
// Scaling is hardware-bound: speedup at T workers approaches min(T, cores).
// On a single-core container every T reports ~1x — run on a multicore host
// to see the fan-out.
//
// Flags: --obs-port P [--obs-addr A] serves live /metrics etc. while the
// bench runs; --flight-out FILE dumps the flight recorder at exit. A
// machine-readable summary always lands in BENCH_serving.json (override the
// path with --json-out).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/autoscaler.hpp"
#include "core/estimate_cache.hpp"
#include "core/estimator.hpp"
#include "core/fault_injector.hpp"
#include "core/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "rcnet/generate.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support.hpp"

using namespace gnntrans;

namespace {

using Clock = std::chrono::steady_clock;

core::WireTimingEstimator train_tiny(const cell::CellLibrary& library) {
  features::WireDatasetConfig dcfg;
  dcfg.net_count = 24;
  dcfg.seed = 2026;
  dcfg.sim_config.steps = 200;
  const std::vector<features::WireRecord> records =
      features::generate_wire_records(dcfg, library);

  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 8;
  opt.model.gnn_layers = 2;
  opt.model.transformer_layers = 1;
  opt.model.heads = 2;
  opt.model.mlp_hidden = 16;
  opt.model.seed = 7;
  opt.train.epochs = 4;
  return core::WireTimingEstimator::train(records, opt);
}

struct EvalSet {
  std::vector<rcnet::RcNet> nets;
  std::vector<features::NetContext> contexts;
  std::vector<core::NetBatchItem> items;
};

EvalSet build_eval_set(const cell::CellLibrary& library, std::size_t count) {
  EvalSet set;
  std::mt19937_64 rng(99);
  rcnet::NetGenConfig cfg;
  set.nets.reserve(count);
  while (set.nets.size() < count) {
    rcnet::RcNet net =
        rcnet::generate_net(cfg, rng, "serve" + std::to_string(set.nets.size()));
    if (!net.validate().empty()) continue;
    set.nets.push_back(std::move(net));
  }
  set.contexts.reserve(count);
  for (const rcnet::RcNet& net : set.nets)
    set.contexts.push_back(features::random_context(library, net, rng));
  set.items.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    set.items[i] = {&set.nets[i], &set.contexts[i]};
  return set;
}

/// One offered-rate step of the network load sweep.
struct NetRateRow {
  double offered_rps = 0.0;   ///< aggregate send rate across all clients
  double achieved_rps = 0.0;  ///< served responses / wall
  double p50_us = 0.0;        ///< end-to-end (client clock), served only
  double p99_us = 0.0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;  ///< typed kOverloaded answers
  std::uint64_t timeouts = 0;  ///< transport failures / client timeouts
};

/// The numbers BENCH_serving.json records so the perf trajectory is
/// comparable across commits.
struct BenchSummary {
  double nets_per_second = 0.0;  ///< T=1 steady state (arenas warm)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double tracing_overhead_pct = 0.0;           ///< full tracing (1-in-1)
  double tracing_overhead_adaptive_pct = 0.0;  ///< after the controller
  std::size_t effective_sample_every = 1;
  double fallback_overhead_pct = 0.0;  ///< 1% injection vs disarmed
  // Shadow-scoring overhead vs a disarmed monitor, pinned rates (no backoff).
  double shadow_overhead_pct_rate1 = 0.0;   ///< 1% of nets shadowed
  double shadow_overhead_pct_rate5 = 0.0;   ///< 5% (the default shadow rate)
  double shadow_overhead_pct_rate25 = 0.0;  ///< 25%
  double shadow_overhead_budget_pct = 5.0;  ///< acceptance bound for rate5
  bool shadow_under_budget = false;
  // Autoscaling over the bursty level trace vs the best pinned thread count.
  double autoscale_nets_per_second = 0.0;
  double autoscale_worker_seconds = 0.0;
  std::size_t autoscale_resizes = 0;
  bool autoscale_bitwise_identical = false;  ///< vs the pinned T=1 trace
  double pinned_best_nets_per_second = 0.0;
  double pinned_best_worker_seconds = 0.0;
  std::size_t pinned_best_threads = 1;
  // Content-addressed estimate cache: repeat-traffic sweep at T=1. Each row
  // replays a stream whose repeat fraction is fixed by construction (every
  // distinct net requested r times → (r-1)/r repeats); speedup is the
  // uncached steady-state per-net cost over the cached stream's per-net cost.
  struct CacheRateRow {
    double repeat_pct = 0.0;    ///< repeat fraction of the request stream
    double hit_rate_pct = 0.0;  ///< measured cache hit rate over the stream
    double nets_per_second = 0.0;
    double per_net_us = 0.0;
    double speedup = 0.0;
  };
  std::vector<CacheRateRow> cache_rows;
  double cache_uncached_nets_per_second = 0.0;
  double cache_speedup_95_repeat = 0.0;
  double cache_speedup_target = 5.0;      ///< acceptance bound at 95% repeat
  bool cache_speedup_target_met = false;
  // Network front-end: many-client open-loop sweep over the socket path.
  std::size_t net_clients = 0;
  std::vector<NetRateRow> net_rows;
  /// Saturation knee: last offered rate still achieving >= 90% of offered.
  double net_knee_offered_rps = 0.0;
  /// Server-side stage clock over the whole sweep, from the
  /// gnntrans_net_stage_* histograms (where did a request's time go).
  struct NetStageRow {
    std::string stage;
    double p50_us = 0.0;
    double p99_us = 0.0;
  };
  std::vector<NetStageRow> net_stage_rows;
  /// Closed-loop nets/s cost of request tracing at the default head-sampling
  /// rate (1/64) vs tracing disabled; the acceptance budget is <= 1%.
  double net_request_tracing_overhead_pct = 0.0;
};

void write_summary_json(const std::string& path, const BenchSummary& s) {
  std::ofstream out(path);
  if (!out) {
    GNNTRANS_LOG_ERROR("bench", "cannot open %s for write", path.c_str());
    return;
  }
  std::ostringstream json;
  json.setf(std::ios::fixed);
  auto num = [&json](const char* key, double v, int prec) {
    json << "  \"" << key << "\": " << std::setprecision(prec) << v << ",\n";
  };
  auto count = [&json](const char* key, std::uint64_t v) {
    json << "  \"" << key << "\": " << v << ",\n";
  };
  auto flag = [&json](const char* key, bool v) {
    json << "  \"" << key << "\": " << (v ? "true" : "false") << ",\n";
  };
  json << "{\n";
  num("nets_per_second", s.nets_per_second, 1);
  num("p50_us", s.p50_us, 2);
  num("p99_us", s.p99_us, 2);
  num("tracing_overhead_pct", s.tracing_overhead_pct, 3);
  num("tracing_overhead_adaptive_pct", s.tracing_overhead_adaptive_pct, 3);
  count("effective_sample_every", s.effective_sample_every);
  num("fallback_overhead_pct", s.fallback_overhead_pct, 3);
  num("shadow_overhead_pct_rate1", s.shadow_overhead_pct_rate1, 3);
  num("shadow_overhead_pct_rate5", s.shadow_overhead_pct_rate5, 3);
  num("shadow_overhead_pct_rate25", s.shadow_overhead_pct_rate25, 3);
  num("shadow_overhead_budget_pct", s.shadow_overhead_budget_pct, 1);
  flag("shadow_under_budget", s.shadow_under_budget);
  num("autoscale_nets_per_second", s.autoscale_nets_per_second, 1);
  num("autoscale_worker_seconds", s.autoscale_worker_seconds, 4);
  count("autoscale_resizes", s.autoscale_resizes);
  flag("autoscale_bitwise_identical", s.autoscale_bitwise_identical);
  num("pinned_best_nets_per_second", s.pinned_best_nets_per_second, 1);
  num("pinned_best_worker_seconds", s.pinned_best_worker_seconds, 4);
  count("pinned_best_threads", s.pinned_best_threads);
  json << "  \"cache\": {\n"
       << "    \"uncached_nets_per_second\": " << std::setprecision(1)
       << s.cache_uncached_nets_per_second << ",\n"
       << "    \"speedup_95_repeat\": " << std::setprecision(2)
       << s.cache_speedup_95_repeat << ",\n"
       << "    \"speedup_target\": " << std::setprecision(1)
       << s.cache_speedup_target << ",\n"
       << "    \"speedup_target_met\": "
       << (s.cache_speedup_target_met ? "true" : "false") << ",\n"
       << "    \"rows\": [\n";
  for (std::size_t i = 0; i < s.cache_rows.size(); ++i) {
    const BenchSummary::CacheRateRow& r = s.cache_rows[i];
    json << "      {\"repeat_pct\": " << std::setprecision(1) << r.repeat_pct
         << ", \"hit_rate_pct\": " << r.hit_rate_pct
         << ", \"nets_per_second\": " << r.nets_per_second
         << ", \"per_net_us\": " << std::setprecision(2) << r.per_net_us
         << ", \"speedup\": " << r.speedup << "}"
         << (i + 1 < s.cache_rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n";
  json << "  \"serving_net\": {\n"
       << "    \"clients\": " << s.net_clients << ",\n"
       << "    \"knee_offered_rps\": " << std::setprecision(1)
       << s.net_knee_offered_rps << ",\n"
       << "    \"request_tracing_overhead_pct\": " << std::setprecision(3)
       << s.net_request_tracing_overhead_pct << ",\n"
       << "    \"stage_latency_us\": {";
  for (std::size_t i = 0; i < s.net_stage_rows.size(); ++i) {
    const BenchSummary::NetStageRow& r = s.net_stage_rows[i];
    json << (i ? ", " : "") << "\"" << r.stage
         << "\": {\"p50\": " << std::setprecision(2) << r.p50_us
         << ", \"p99\": " << r.p99_us << "}";
  }
  json << "},\n"
       << "    \"rows\": [\n";
  for (std::size_t i = 0; i < s.net_rows.size(); ++i) {
    const NetRateRow& r = s.net_rows[i];
    json << "      {\"offered_rps\": " << std::setprecision(1) << r.offered_rps
         << ", \"achieved_rps\": " << r.achieved_rps
         << ", \"p50_us\": " << std::setprecision(2) << r.p50_us
         << ", \"p99_us\": " << r.p99_us << ", \"served\": " << r.served
         << ", \"rejected\": " << r.rejected
         << ", \"timeouts\": " << r.timeouts << "}"
         << (i + 1 < s.net_rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";
  out << json.str();
  GNNTRANS_LOG_INFO("bench", "wrote %s", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serving.json";
  telemetry::ObsServerConfig obs_cfg;
  bool want_obs = false;
  std::string flight_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--obs-port") == 0) {
      obs_cfg.port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
      want_obs = true;
    } else if (std::strcmp(argv[i], "--obs-addr") == 0) {
      obs_cfg.addr = argv[i + 1];
    } else if (std::strcmp(argv[i], "--flight-out") == 0) {
      flight_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--json-out") == 0) {
      json_path = argv[i + 1];
    }
  }
  std::unique_ptr<telemetry::ObsServer> obs;
  if (want_obs) {
    obs = std::make_unique<telemetry::ObsServer>(obs_cfg);
    obs->start();
  }

  std::printf("=== Serving throughput: batched inference engine ===\n\n");
  const auto library = cell::CellLibrary::make_default();

  std::printf("training tiny estimator...\n");
  const core::WireTimingEstimator estimator = train_tiny(library);

  const std::size_t kNets = 256;
  const EvalSet set = build_eval_set(library, kNets);
  std::printf("eval set: %zu nets; hardware threads: %u\n\n", set.nets.size(),
              std::thread::hardware_concurrency());

  // Legacy path first: per-net estimate(), fresh heap tensors every net.
  {
    const auto t0 = Clock::now();
    std::size_t paths = 0;
    for (std::size_t i = 0; i < set.items.size(); ++i)
      paths += estimator.estimate(set.nets[i], set.contexts[i]).size();
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("no-arena baseline (estimate() loop): %zu nets (%zu paths) in "
                "%.3f s — %.0f nets/s\n\n",
                set.items.size(), paths, secs,
                static_cast<double>(set.items.size()) / secs);
  }

  bench::TablePrinter table({"threads", "nets/s", "speedup", "p50(us)",
                             "p99(us)", "arena reuse", "peak KiB"},
                            {8, 10, 8, 9, 9, 12, 9});
  table.print_header();

  BenchSummary summary;
  double base_rate = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::BatchOptions options;
    options.threads = threads;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;

    // Warm-up pass populates the arenas; the measured pass reuses them,
    // which is the steady-state serving regime.
    core::InferenceStats stats;
    (void)estimator.estimate_batch(set.items, options, &stats);
    (void)estimator.estimate_batch(set.items, options, &stats);

    if (threads == 1) {
      base_rate = stats.nets_per_second;
      summary.nets_per_second = stats.nets_per_second;
      summary.p50_us = stats.p50_net_seconds * 1e6;
      summary.p99_us = stats.p99_net_seconds * 1e6;
    }
    const std::size_t acq = stats.arena_reused_buffers + stats.arena_fresh_allocs;
    table.print_row(
        {std::to_string(threads), bench::TablePrinter::fmt(stats.nets_per_second, 0),
         bench::TablePrinter::fmt(stats.nets_per_second / base_rate, 2),
         bench::TablePrinter::fmt(stats.p50_net_seconds * 1e6, 1),
         bench::TablePrinter::fmt(stats.p99_net_seconds * 1e6, 1),
         bench::TablePrinter::fmt(
             acq ? 100.0 * static_cast<double>(stats.arena_reused_buffers) /
                       static_cast<double>(acq)
                 : 0.0,
             1) + "%",
         bench::TablePrinter::fmt(
             static_cast<double>(stats.arena_peak_bytes) / 1024.0, 1)});
    std::printf("  T=%zu summary: %s\n", threads, stats.summary().c_str());
  }

  // Content-addressed estimate cache: repeat-traffic sweep. A stream where
  // every distinct (net, context) is requested r times has a repeat fraction
  // of (r-1)/r by construction — r=1 is all-cold (pure miss/insert overhead),
  // r=2 is 50% repeats, r=20 is the 95%-repeat regime of an ECO loop
  // re-timing a design after small edits. The acceptance bound: at 95%
  // repeats the cached stream's per-net cost must beat the uncached
  // steady-state by >= 5x (hits skip featurize + forward entirely).
  std::printf("\n=== Estimate cache: repeat-traffic sweep, T=1 ===\n\n");
  {
    core::BatchOptions options;
    options.threads = 1;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;
    constexpr std::size_t kSubset = 128;
    const std::span<const core::NetBatchItem> subset(set.items.data(), kSubset);

    // Uncached steady state (arenas warm): the denominator of every speedup.
    core::InferenceStats warm;
    (void)estimator.estimate_batch(subset, options, &warm);
    const auto u0 = Clock::now();
    (void)estimator.estimate_batch(subset, options, &warm);
    const double uncached_secs =
        std::chrono::duration<double>(Clock::now() - u0).count();
    const double uncached_per_net =
        uncached_secs / static_cast<double>(kSubset);
    summary.cache_uncached_nets_per_second =
        static_cast<double>(kSubset) / uncached_secs;

    bench::TablePrinter cache_table(
        {"repeats", "hit rate", "nets/s", "per-net(us)", "speedup"},
        {8, 9, 10, 12, 8});
    cache_table.print_header();
    for (const std::size_t repeats : {1u, 2u, 20u}) {
      core::EstimateCache cache;  // fresh per row: hit rate is by construction
      options.cache = &cache;
      core::InferenceStats stats;
      const auto t0 = Clock::now();
      for (std::size_t pass = 0; pass < repeats; ++pass)
        (void)estimator.estimate_batch(subset, options, &stats);
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      const double nets = static_cast<double>(kSubset * repeats);

      BenchSummary::CacheRateRow row;
      row.repeat_pct = 100.0 * static_cast<double>(repeats - 1) /
                       static_cast<double>(repeats);
      row.hit_rate_pct = 100.0 * cache.stats().hit_rate();
      row.nets_per_second = nets / secs;
      row.per_net_us = secs / nets * 1e6;
      row.speedup = uncached_per_net / (secs / nets);
      summary.cache_rows.push_back(row);
      if (repeats == 20) summary.cache_speedup_95_repeat = row.speedup;
      cache_table.print_row(
          {std::to_string(repeats),
           bench::TablePrinter::fmt(row.hit_rate_pct, 1) + "%",
           bench::TablePrinter::fmt(row.nets_per_second, 0),
           bench::TablePrinter::fmt(row.per_net_us, 1),
           bench::TablePrinter::fmt(row.speedup, 2) + "x"});
    }
    options.cache = nullptr;
    summary.cache_speedup_target_met =
        summary.cache_speedup_95_repeat >= summary.cache_speedup_target;
    std::printf("\n95%%-repeat per-net speedup %.2fx vs %.1fx target: %s "
                "(uncached steady state %.0f nets/s)\n",
                summary.cache_speedup_95_repeat, summary.cache_speedup_target,
                summary.cache_speedup_target_met ? "MET" : "MISSED",
                summary.cache_uncached_nets_per_second);
  }

  // Telemetry overhead: metrics publication is unconditional, so the contrast
  // is tracing disabled (one relaxed atomic load per span site) vs tracing
  // enabled (clock reads + ring writes). The disabled delta is the cost every
  // serving deployment pays; the budget is < 2%.
  std::printf("\n=== Telemetry overhead: estimate_batch, T=1 ===\n\n");
  {
    core::BatchOptions options;
    options.threads = 1;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;
    auto timed_passes = [&](int passes) {
      core::InferenceStats stats;
      const auto t0 = Clock::now();
      for (int p = 0; p < passes; ++p)
        (void)estimator.estimate_batch(set.items, options, &stats);
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    constexpr int kPasses = 3;
    auto& recorder = telemetry::TraceRecorder::global();
    recorder.disable();
    (void)timed_passes(1);  // warm-up
    const double off_secs = timed_passes(kPasses);

    // Full tracing: a 100% overhead budget keeps the controller at 1-in-1,
    // so this measures the unthrottled cost of every span.
    recorder.configure({1, 100.0});
    recorder.enable();
    const double on_secs = timed_passes(kPasses);
    const double rate_off =
        static_cast<double>(kNets * kPasses) / off_secs;
    const double rate_on = static_cast<double>(kNets * kPasses) / on_secs;
    summary.tracing_overhead_pct = 100.0 * (on_secs - off_secs) / off_secs;
    std::printf("tracing off: %.0f nets/s   tracing on: %.0f nets/s   "
                "enabled-path overhead: %.2f%% (%zu spans recorded)\n",
                rate_off, rate_on, summary.tracing_overhead_pct,
                recorder.event_count());

    // Adaptive sampling: a 2% budget lets the controller raise the effective
    // 1-in-N from the measured span cost; estimate_batch feeds it per batch.
    recorder.configure({1, 2.0});
    (void)timed_passes(1);  // let the controller converge
    const double adaptive_secs = timed_passes(kPasses);
    recorder.disable();
    const double rate_adaptive =
        static_cast<double>(kNets * kPasses) / adaptive_secs;
    summary.tracing_overhead_adaptive_pct =
        100.0 * (adaptive_secs - off_secs) / off_secs;
    summary.effective_sample_every = recorder.effective_sample_every();
    std::printf("adaptive (2%% budget): %.0f nets/s   overhead: %.2f%%   "
                "effective sampling 1/%zu   measured span cost %.0f ns\n",
                rate_adaptive, summary.tracing_overhead_adaptive_pct,
                recorder.effective_sample_every(),
                recorder.measured_span_cost_ns());
    recorder.configure({1, 2.0});
    recorder.clear();
  }

  // Fault-tolerance overhead: the degradation ladder costs two branches and a
  // validate() per net when nothing fails. The contrast below is injection
  // disarmed (the production configuration) vs 1% of (site, net) decisions
  // injected, where each degraded net additionally pays the analytic
  // baseline. The disarmed delta vs the table above is the robustness tax.
  std::printf("\n=== Fault-tolerance overhead: estimate_batch, T=1 ===\n\n");
  {
    core::BatchOptions options;
    options.threads = 1;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;
    auto timed_passes = [&](int passes, core::InferenceStats* total) {
      const auto t0 = Clock::now();
      for (int p = 0; p < passes; ++p) {
        core::InferenceStats stats;
        (void)estimator.estimate_batch(set.items, options, &stats);
        if (total) total->merge(stats);
      }
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    constexpr int kPasses = 3;
    auto& injector = core::FaultInjector::global();
    injector.disarm();
    (void)timed_passes(1, nullptr);  // warm-up
    core::InferenceStats off_stats;
    const double off_secs = timed_passes(kPasses, &off_stats);

    core::FaultInjector::Config cfg;
    cfg.probability = 0.01;
    cfg.seed = 42;
    injector.configure(cfg);
    core::InferenceStats on_stats;
    const double on_secs = timed_passes(kPasses, &on_stats);
    injector.disarm();

    const double rate_off = static_cast<double>(kNets * kPasses) / off_secs;
    const double rate_on = static_cast<double>(kNets * kPasses) / on_secs;
    summary.fallback_overhead_pct = 100.0 * (on_secs - off_secs) / off_secs;
    std::printf("injection off: %.0f nets/s (%zu degraded)\n", rate_off,
                off_stats.fallback_nets + off_stats.failed_nets);
    std::printf("injection 1%%:  %.0f nets/s (%zu degraded, %.2f%% of nets, "
                "%zu triggers) — overhead %.2f%%\n",
                rate_on, on_stats.fallback_nets + on_stats.failed_nets,
                100.0 * on_stats.degraded_fraction(),
                injector.injected_total(),
                summary.fallback_overhead_pct);
    std::printf("injected summary: %s\n", on_stats.summary().c_str());
  }

  // Shadow-scoring overhead: a shadowed net pays a second featurization plus
  // the analytic Elmore/D2M re-time. Rates are pinned (budget 0, controller
  // off) so each row measures the true cost of that sampling fraction; the
  // acceptance bound is the rate-5% row against a 5% wall-time budget.
  std::printf("\n=== Shadow-scoring overhead: estimate_batch, T=1 ===\n\n");
  {
    core::BatchOptions options;
    options.threads = 1;
    std::vector<nn::Workspace> workspaces;
    options.workspaces = &workspaces;
    auto& quality = telemetry::QualityMonitor::global();
    estimator.install_quality_baseline();

    // Round-robin best-of-N: one pass per configuration per round, so a slow
    // phase of a shared box penalizes every rate equally instead of whichever
    // configuration it happened to coincide with.
    const std::vector<double> rates = {0.0, 0.01, 0.05, 0.25};
    std::vector<double> best(rates.size(), 1e300);
    std::vector<std::uint64_t> shadowed(rates.size(), 0);
    constexpr int kRepeats = 5;
    telemetry::QualityConfig off_cfg;
    off_cfg.shadow_rate = 0.0;
    quality.configure(off_cfg);
    {
      core::InferenceStats stats;  // warm-up (arenas)
      (void)estimator.estimate_batch(set.items, options, &stats);
    }
    for (int r = 0; r < kRepeats; ++r) {
      for (std::size_t i = 0; i < rates.size(); ++i) {
        telemetry::QualityConfig qcfg;
        qcfg.shadow_rate = rates[i];
        qcfg.shadow_seed = 1;
        qcfg.overhead_budget_pct = 0.0;  // pinned: measure the raw cost
        quality.configure(qcfg);
        core::InferenceStats stats;
        const auto t0 = Clock::now();
        (void)estimator.estimate_batch(set.items, options, &stats);
        best[i] = std::min(
            best[i], std::chrono::duration<double>(Clock::now() - t0).count());
        shadowed[i] = quality.shadowed_nets();
      }
    }
    const double off_secs = best[0];

    bench::TablePrinter shadow_table(
        {"rate", "nets/s", "shadowed", "overhead"}, {8, 10, 10, 10});
    shadow_table.print_header();
    for (std::size_t i = 1; i < rates.size(); ++i) {
      const double overhead =
          std::max(0.0, 100.0 * (best[i] - off_secs) / off_secs);
      if (rates[i] == 0.01) summary.shadow_overhead_pct_rate1 = overhead;
      if (rates[i] == 0.05) summary.shadow_overhead_pct_rate5 = overhead;
      if (rates[i] == 0.25) summary.shadow_overhead_pct_rate25 = overhead;
      shadow_table.print_row(
          {bench::TablePrinter::fmt(100.0 * rates[i], 0) + "%",
           bench::TablePrinter::fmt(static_cast<double>(kNets) / best[i], 0),
           std::to_string(shadowed[i]),
           bench::TablePrinter::fmt(overhead, 2) + "%"});
    }
    quality.configure(off_cfg);
    summary.shadow_under_budget = summary.shadow_overhead_pct_rate5 <=
                                  summary.shadow_overhead_budget_pct;
    std::printf("\ndefault-rate (5%%) shadow overhead %.2f%% vs %.1f%% budget: "
                "%s\n",
                summary.shadow_overhead_pct_rate5,
                summary.shadow_overhead_budget_pct,
                summary.shadow_under_budget ? "UNDER" : "OVER");
  }

  // Pool autoscaling: replay a bursty level-size trace (the STA regime —
  // tiny levels interleaved with wide ones) autoscaled vs pinned at each
  // fixed thread count. The autoscaler should land within a few percent of
  // the best pinned throughput while charging fewer worker-seconds
  // (sum of threads x batch wall), because small levels run on a small pool.
  std::printf("\n=== Pool autoscaling: bursty level trace ===\n\n");
  {
    const std::vector<std::size_t> trace = {4, 256, 8,   224, 2, 192,
                                            16, 256, 4,  160, 2, 256};
    std::size_t trace_nets = 0;
    for (const std::size_t level : trace) trace_nets += level;

    // Replays the trace; returns wall seconds. Batches are prefix spans of
    // the eval set so every run times identical nets.
    auto run_trace = [&](core::BatchOptions& options, core::ThreadPool* pool,
                         core::PoolAutoscaler* scaler, double* worker_seconds,
                         std::vector<core::PathEstimate>* collect) {
      std::vector<nn::Workspace> workspaces;
      options.workspaces = &workspaces;
      double ws = 0.0;
      const auto t0 = Clock::now();
      for (const std::size_t level : trace) {
        if (scaler) {
          const core::AutoscaleDecision d =
              scaler->decide(level, options.threads);
          if (d.resized()) {
            options.threads = d.target;
            pool->resize(d.target);
            if (workspaces.size() > d.target) workspaces.resize(d.target);
            options.pool = d.target > 1 ? pool : nullptr;
          }
        }
        const auto b0 = Clock::now();
        core::InferenceStats stats;
        const auto out = estimator.estimate_batch(
            std::span<const core::NetBatchItem>(set.items.data(), level),
            options, &stats);
        ws += std::chrono::duration<double>(Clock::now() - b0).count() *
              static_cast<double>(options.threads);
        if (scaler) scaler->observe(stats);
        if (collect)
          for (const auto& paths : out)
            collect->insert(collect->end(), paths.begin(), paths.end());
      }
      *worker_seconds = ws;
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    std::vector<core::PathEstimate> reference;  // pinned T=1 estimates
    bench::TablePrinter table(
        {"mode", "nets/s", "wall(ms)", "worker-s", "resizes"},
        {12, 10, 10, 10, 8});
    table.print_header();
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      core::ThreadPool pool(threads);
      core::BatchOptions options;
      options.threads = threads;
      options.pool = threads > 1 ? &pool : nullptr;
      double worker_seconds = 0.0;
      double secs = run_trace(options, &pool, nullptr, &worker_seconds,
                              threads == 1 ? &reference : nullptr);
      if (threads == 1) {  // warmed second pass, like the sweep above
        reference.clear();
        secs = run_trace(options, &pool, nullptr, &worker_seconds, &reference);
      }
      const double rate = static_cast<double>(trace_nets) / secs;
      if (rate > summary.pinned_best_nets_per_second) {
        summary.pinned_best_nets_per_second = rate;
        summary.pinned_best_worker_seconds = worker_seconds;
        summary.pinned_best_threads = threads;
      }
      table.print_row({"pinned T=" + std::to_string(threads),
                       bench::TablePrinter::fmt(rate, 0),
                       bench::TablePrinter::fmt(secs * 1e3, 1),
                       bench::TablePrinter::fmt(worker_seconds, 4), "0"});
    }
    {
      core::AutoscalerConfig acfg;
      acfg.max_threads = 8;
      core::PoolAutoscaler scaler(acfg);
      core::ThreadPool pool(1);
      core::BatchOptions options;
      options.threads = 1;
      options.pool = nullptr;
      double worker_seconds = 0.0;
      std::vector<core::PathEstimate> scaled;
      // One warm pass (arena + EWMA), then the measured pass.
      double secs =
          run_trace(options, &pool, &scaler, &worker_seconds, nullptr);
      secs = run_trace(options, &pool, &scaler, &worker_seconds, &scaled);
      summary.autoscale_nets_per_second =
          static_cast<double>(trace_nets) / secs;
      summary.autoscale_worker_seconds = worker_seconds;
      summary.autoscale_resizes = scaler.resize_count();
      summary.autoscale_bitwise_identical = scaled.size() == reference.size();
      for (std::size_t i = 0;
           summary.autoscale_bitwise_identical && i < scaled.size(); ++i)
        // Field-wise (struct padding is indeterminate); doubles compared as
        // bit patterns so -0.0 vs 0.0 or NaN would still count as a diff.
        summary.autoscale_bitwise_identical =
            scaled[i].sink == reference[i].sink &&
            scaled[i].provenance == reference[i].provenance &&
            std::memcmp(&scaled[i].delay, &reference[i].delay,
                        sizeof(double)) == 0 &&
            std::memcmp(&scaled[i].slew, &reference[i].slew,
                        sizeof(double)) == 0;
      table.print_row({"autoscaled",
                       bench::TablePrinter::fmt(
                           summary.autoscale_nets_per_second, 0),
                       bench::TablePrinter::fmt(secs * 1e3, 1),
                       bench::TablePrinter::fmt(worker_seconds, 4),
                       std::to_string(summary.autoscale_resizes)});
      std::printf(
          "\nautoscaled vs pinned-best (T=%zu): %.1f%% throughput, %.2fx "
          "worker-seconds, outputs bitwise %s\n",
          summary.pinned_best_threads,
          100.0 * summary.autoscale_nets_per_second /
              summary.pinned_best_nets_per_second,
          summary.pinned_best_worker_seconds > 0.0
              ? summary.autoscale_worker_seconds /
                    summary.pinned_best_worker_seconds
              : 0.0,
          summary.autoscale_bitwise_identical ? "identical" : "DIFFERENT");
    }
  }

  // Network front-end: the same estimator behind serve::NetServer, driven by
  // 8 concurrent clients over real sockets. Each client fires on a fixed
  // schedule derived from the offered rate; when it falls behind (previous
  // request still in flight) it fires again immediately, so past saturation
  // the achieved/offered gap and the latency percentiles carry the signal
  // (in-flight load is bounded at one request per client, so the bounded
  // admission queue is exercised by the soak test, not here). Offered rates
  // are multiples of the measured T=1 in-process capacity, so the saturation
  // knee (last rate with achieved >= 90% of offered) always lands inside the
  // sweep. Retries are disabled: every request resolves to exactly one of
  // served / typed kOverloaded reject / timeout.
  std::printf("\n=== Network serving: open-loop load sweep (8 clients) ===\n\n");
  {
    constexpr std::size_t kClients = 8;
    serve::NetServerConfig scfg;
    scfg.port = 0;  // ephemeral
    scfg.threads = 1;
    scfg.batch_max = 32;
    scfg.flush_age_seconds = 1e-3;
    scfg.queue_capacity = 256;
    serve::NetServer server(estimator, scfg);
    server.start();

    struct ClientTally {
      std::vector<double> lat_us;
      std::uint64_t served = 0, rejected = 0, timeouts = 0;
    };
    summary.net_clients = kClients;
    const std::vector<double> load_factors = {0.25, 0.5, 1.0, 1.5, 2.0};
    bench::TablePrinter net_table({"offered/s", "achieved/s", "p50(us)",
                                   "p99(us)", "served", "rejected", "timeout"},
                                  {10, 11, 9, 10, 8, 9, 8});
    net_table.print_header();
    for (std::size_t step = 0; step < load_factors.size(); ++step) {
      const double offered = load_factors[step] * summary.nets_per_second;
      const double period_s = static_cast<double>(kClients) / offered;
      const std::size_t per_client = std::clamp<std::size_t>(
          static_cast<std::size_t>(offered * 0.5 / kClients), 24, 400);
      std::vector<ClientTally> tallies(kClients);
      const auto sweep_t0 = Clock::now();
      std::vector<std::thread> workers;
      workers.reserve(kClients);
      for (std::size_t c = 0; c < kClients; ++c) {
        workers.emplace_back([&, c] {
          serve::NetClientConfig ccfg;
          ccfg.port = server.port();
          ccfg.request_timeout_ms = 2000;
          ccfg.max_retries = 0;
          ccfg.retry_overloaded = false;
          ccfg.client_id = static_cast<std::uint32_t>(step * 100 + c + 1);
          serve::NetClient client(ccfg);
          ClientTally& tally = tallies[c];
          const auto start = Clock::now();
          for (std::size_t i = 0; i < per_client; ++i) {
            std::this_thread::sleep_until(
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(i) * period_s)));
            const std::size_t idx = (c + i * kClients) % set.items.size();
            const auto t0 = Clock::now();
            const serve::NetClient::Result res =
                client.estimate(set.nets[idx], set.contexts[idx]);
            if (res.served()) {
              ++tally.served;
              tally.lat_us.push_back(
                  std::chrono::duration<double, std::micro>(Clock::now() - t0)
                      .count());
            } else if (res.status.code() == core::ErrorCode::kOverloaded) {
              ++tally.rejected;
            } else {
              ++tally.timeouts;
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double wall =
          std::chrono::duration<double>(Clock::now() - sweep_t0).count();

      NetRateRow row;
      row.offered_rps = offered;
      std::vector<double> lat;
      for (const ClientTally& tally : tallies) {
        row.served += tally.served;
        row.rejected += tally.rejected;
        row.timeouts += tally.timeouts;
        lat.insert(lat.end(), tally.lat_us.begin(), tally.lat_us.end());
      }
      std::sort(lat.begin(), lat.end());
      if (!lat.empty()) {
        row.p50_us = lat[lat.size() / 2];
        row.p99_us = lat[(lat.size() * 99) / 100];
      }
      row.achieved_rps = wall > 0.0 ? static_cast<double>(row.served) / wall : 0.0;
      if (row.achieved_rps >= 0.9 * row.offered_rps)
        summary.net_knee_offered_rps = row.offered_rps;
      summary.net_rows.push_back(row);
      net_table.print_row(
          {bench::TablePrinter::fmt(row.offered_rps, 0),
           bench::TablePrinter::fmt(row.achieved_rps, 0),
           bench::TablePrinter::fmt(row.p50_us, 1),
           bench::TablePrinter::fmt(row.p99_us, 1),
           std::to_string(row.served), std::to_string(row.rejected),
           std::to_string(row.timeouts)});
    }
    // Request-tracing overhead: a closed-loop burst (8 clients back-to-back,
    // no pacing, so the server is the bottleneck and wall time carries the
    // signal) with tracing off vs on at the default head-sampling rate. The
    // acceptance budget is <= 1% of nets/s; reported, not asserted, since a
    // shared box adds noise at this scale.
    {
      auto closed_loop_rps = [&](std::uint32_t id_base) {
        constexpr std::size_t kPerClient = 320;
        std::vector<std::uint64_t> served(kClients, 0);
        std::vector<std::thread> workers;
        workers.reserve(kClients);
        const auto t0 = Clock::now();
        for (std::size_t c = 0; c < kClients; ++c) {
          workers.emplace_back([&, c] {
            serve::NetClientConfig ccfg;
            ccfg.port = server.port();
            ccfg.request_timeout_ms = 2000;
            ccfg.max_retries = 2;
            ccfg.client_id = id_base + static_cast<std::uint32_t>(c);
            serve::NetClient client(ccfg);
            for (std::size_t i = 0; i < kPerClient; ++i) {
              const std::size_t idx = (c + i * kClients) % set.items.size();
              if (client.estimate(set.nets[idx], set.contexts[idx]).served())
                ++served[c];
            }
          });
        }
        for (std::thread& w : workers) w.join();
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        std::uint64_t total = 0;
        for (const std::uint64_t s : served) total += s;
        return wall > 0.0 ? static_cast<double>(total) / wall : 0.0;
      };
      // Interleave off/on reps and take the best of each arm: the server is
      // the bottleneck, so max rps is the least-interference estimate, and
      // alternating arms cancels slow container/thermal drift that would
      // otherwise masquerade as tracing cost.
      auto& recorder = telemetry::TraceRecorder::global();
      const telemetry::TraceConfig default_cfg;  // head rate 1/64
      recorder.disable();
      (void)closed_loop_rps(9000);  // warm-up
      double off_rps = 0.0;
      double on_rps = 0.0;
      for (std::uint32_t rep = 0; rep < 3; ++rep) {
        recorder.disable();
        off_rps = std::max(off_rps, closed_loop_rps(9100 + rep * 16));
        recorder.configure(default_cfg);
        recorder.enable();
        on_rps = std::max(on_rps, closed_loop_rps(9200 + rep * 16));
      }
      recorder.disable();
      summary.net_request_tracing_overhead_pct =
          off_rps > 0.0 ? std::max(0.0, 100.0 * (off_rps - on_rps) / off_rps)
                        : 0.0;
      std::printf(
          "\nrequest tracing at default rate (1/64): %.0f nets/s off, %.0f "
          "nets/s on — overhead %.2f%% (budget 1%%)\n",
          off_rps, on_rps, summary.net_request_tracing_overhead_pct);
    }
    server.stop();

    // Where did a request's time go: the server-side stage clock over every
    // request of the sweep, scraped from the stage histograms.
    {
      const telemetry::MetricsSnapshot snap =
          telemetry::MetricsRegistry::global().snapshot();
      const auto stage_row = [&snap](const char* stage, const char* metric) {
        BenchSummary::NetStageRow row;
        row.stage = stage;
        for (const auto& h : snap.histograms)
          if (h.name == metric) {
            row.p50_us = h.data.quantile(0.5) * 1e6;
            row.p99_us = h.data.quantile(0.99) * 1e6;
            break;
          }
        return row;
      };
      summary.net_stage_rows = {
          stage_row("queue", "gnntrans_net_stage_queue_seconds"),
          stage_row("batch_wait", "gnntrans_net_stage_batch_wait_seconds"),
          stage_row("model", "gnntrans_net_stage_model_seconds"),
          stage_row("serialize", "gnntrans_net_stage_serialize_seconds"),
          stage_row("write", "gnntrans_net_stage_write_seconds"),
      };
      bench::TablePrinter stage_table({"stage", "p50(us)", "p99(us)"},
                                      {12, 9, 10});
      std::printf("\nper-stage latency attribution (server stage clock):\n");
      stage_table.print_header();
      for (const BenchSummary::NetStageRow& r : summary.net_stage_rows)
        stage_table.print_row({r.stage, bench::TablePrinter::fmt(r.p50_us, 1),
                               bench::TablePrinter::fmt(r.p99_us, 1)});
    }

    const auto& ledger = server.ledger();
    std::printf(
        "\nsaturation knee: %.0f req/s offered (last rate with achieved >= "
        "90%% of offered)\nserver ledger: %llu frames, %llu served, %llu "
        "rejected (%llu overload), %llu batches\n",
        summary.net_knee_offered_rps,
        static_cast<unsigned long long>(ledger.frames.load()),
        static_cast<unsigned long long>(ledger.served.load()),
        static_cast<unsigned long long>(ledger.rejected_total()),
        static_cast<unsigned long long>(ledger.rejected_overload.load()),
        static_cast<unsigned long long>(ledger.batches.load()));
  }

  // Metrics snapshot: everything the run above published to the global
  // registry, in Prometheus text form (what --metrics-out writes).
  std::printf("\n=== Metrics snapshot (Prometheus text) ===\n\n%s",
              telemetry::MetricsRegistry::global().prometheus_text().c_str());

  write_summary_json(json_path, summary);
  if (!flight_path.empty()) {
    std::ofstream out(flight_path);
    if (!out) {
      GNNTRANS_LOG_ERROR("bench", "cannot open %s for write",
                         flight_path.c_str());
    } else {
      telemetry::FlightRecorder::global().write_json(out);
      GNNTRANS_LOG_INFO("bench", "wrote flight records to %s",
                        flight_path.c_str());
    }
  }
  return 0;
}
