#include "baseline/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace gnntrans::baseline {

namespace {

double mean_of(const std::vector<double>& y, const std::vector<std::uint32_t>& index,
               std::size_t begin, std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) acc += y[index[i]];
  return acc / static_cast<double>(end - begin);
}

}  // namespace

void RegressionTree::fit(const std::vector<std::vector<float>>& x,
                         const std::vector<double>& y, std::size_t max_depth,
                         std::size_t min_samples_leaf) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("RegressionTree::fit: bad inputs");
  nodes_.clear();
  std::vector<std::uint32_t> index(x.size());
  std::iota(index.begin(), index.end(), 0u);
  build(x, y, index, 0, index.size(), 0, max_depth, min_samples_leaf);
}

std::size_t RegressionTree::build(const std::vector<std::vector<float>>& x,
                                  const std::vector<double>& y,
                                  std::vector<std::uint32_t>& index,
                                  std::size_t begin, std::size_t end,
                                  std::size_t depth, std::size_t max_depth,
                                  std::size_t min_samples_leaf) {
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();
  const std::size_t count = end - begin;
  nodes_[node_id].value = mean_of(y, index, begin, end);

  if (depth >= max_depth || count < 2 * min_samples_leaf) return node_id;

  // Exact greedy split: for each feature, sort the segment and scan prefixes.
  const std::size_t dim = x[index[begin]].size();
  double best_gain = 1e-24;
  std::int32_t best_feature = -1;
  float best_threshold = 0.0f;

  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    total_sum += y[index[i]];
    total_sq += y[index[i]] * y[index[i]];
  }
  const double parent_sse = total_sq - total_sum * total_sum / count;

  std::vector<std::uint32_t> scratch(index.begin() + begin, index.begin() + end);
  for (std::size_t f = 0; f < dim; ++f) {
    std::sort(scratch.begin(), scratch.end(), [&](std::uint32_t a, std::uint32_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
      const double v = y[scratch[i]];
      left_sum += v;
      left_sq += v * v;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < min_samples_leaf || right_n < min_samples_leaf) continue;
      // No split between equal feature values.
      if (x[scratch[i]][f] >= x[scratch[i + 1]][f]) continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_n) +
                         (right_sq - right_sum * right_sum / right_n);
      const double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = 0.5f * (x[scratch[i]][f] + x[scratch[i + 1]][f]);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition the segment in place.
  const auto mid_it = std::stable_partition(
      index.begin() + begin, index.begin() + end, [&](std::uint32_t i) {
        return x[i][static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - index.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::size_t left_id =
      build(x, y, index, begin, mid, depth + 1, max_depth, min_samples_leaf);
  const std::size_t right_id =
      build(x, y, index, mid, end, depth + 1, max_depth, min_samples_leaf);
  nodes_[node_id].left = static_cast<std::int32_t>(left_id);
  nodes_[node_id].right = static_cast<std::int32_t>(right_id);
  return node_id;
}

double RegressionTree::predict(std::span<const float> features) const {
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = static_cast<std::size_t>(
        features[f] <= nodes_[node].threshold ? nodes_[node].left : nodes_[node].right);
  }
  return nodes_[node].value;
}

void RegressionTree::save(std::ostream& out) const {
  tensor::write_u32(out, static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    tensor::write_u32(out, static_cast<std::uint32_t>(n.feature));
    tensor::write_u32(out, static_cast<std::uint32_t>(n.left));
    tensor::write_u32(out, static_cast<std::uint32_t>(n.right));
    tensor::write_doubles(out, {static_cast<double>(n.threshold), n.value});
  }
}

void RegressionTree::load(std::istream& in) {
  const std::uint32_t count = tensor::read_u32(in);
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    n.feature = static_cast<std::int32_t>(tensor::read_u32(in));
    n.left = static_cast<std::int32_t>(tensor::read_u32(in));
    n.right = static_cast<std::int32_t>(tensor::read_u32(in));
    const auto vals = tensor::read_doubles(in);
    if (vals.size() != 2) throw std::runtime_error("RegressionTree: bad node");
    n.threshold = static_cast<float>(vals[0]);
    n.value = vals[1];
  }
}

void GbdtRegressor::fit(const std::vector<std::vector<float>>& x,
                        const std::vector<double>& y, const GbdtConfig& config) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("GbdtRegressor::fit: bad inputs");
  learning_rate_ = config.learning_rate;
  base_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());

  std::vector<double> residual(y.size());
  std::vector<double> current(y.size(), base_);
  trees_.clear();
  trees_.reserve(config.trees);
  for (std::size_t t = 0; t < config.trees; ++t) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - current[i];
    RegressionTree tree;
    tree.fit(x, residual, config.max_depth, config.min_samples_leaf);
    for (std::size_t i = 0; i < y.size(); ++i)
      current[i] += learning_rate_ * tree.predict(x[i]);
    trees_.push_back(std::move(tree));
  }
}

double GbdtRegressor::predict(std::span<const float> features) const {
  double acc = base_;
  for (const RegressionTree& tree : trees_)
    acc += learning_rate_ * tree.predict(features);
  return acc;
}

void GbdtRegressor::save(std::ostream& out) const {
  tensor::write_doubles(out, {base_, learning_rate_});
  tensor::write_u32(out, static_cast<std::uint32_t>(trees_.size()));
  for (const RegressionTree& t : trees_) t.save(out);
}

void GbdtRegressor::load(std::istream& in) {
  const auto header = tensor::read_doubles(in);
  if (header.size() != 2) throw std::runtime_error("GbdtRegressor: bad header");
  base_ = header[0];
  learning_rate_ = header[1];
  trees_.assign(tensor::read_u32(in), RegressionTree{});
  for (RegressionTree& t : trees_) t.load(in);
}

}  // namespace gnntrans::baseline
