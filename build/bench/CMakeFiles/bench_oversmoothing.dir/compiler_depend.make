# Empty compiler generated dependencies file for bench_oversmoothing.
# This may be replaced when dependencies are built.
