file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_linalg.dir/matrix.cpp.o"
  "CMakeFiles/gnntrans_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/gnntrans_linalg.dir/solve.cpp.o"
  "CMakeFiles/gnntrans_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/gnntrans_linalg.dir/sparse.cpp.o"
  "CMakeFiles/gnntrans_linalg.dir/sparse.cpp.o.d"
  "libgnntrans_linalg.a"
  "libgnntrans_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
