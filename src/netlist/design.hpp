/// \file design.hpp
/// Gate-level design representation: instances, logical nets with attached RC
/// parasitics, timing startpoints and endpoints.
///
/// The model is deliberately timing-oriented: every non-endpoint instance
/// drives exactly one net; a net's sinks map 1:1 onto load instances. This is
/// the view an STA engine needs and the granularity the paper's Table V
/// experiment (path arrival time) operates at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::netlist {

using InstanceId = std::uint32_t;

/// One placed cell instance.
struct Instance {
  std::uint32_t cell_index = 0;  ///< into the CellLibrary
  std::uint32_t level = 0;       ///< topological level (0 = startpoints)
};

/// A logical net with extracted parasitics.
///
/// rc.sinks[i] is the RC node where load instance loads[i] connects, so the
/// two arrays are index-aligned.
struct DesignNet {
  rcnet::RcNet rc;
  InstanceId driver = 0;
  std::vector<InstanceId> loads;
};

/// A full design.
struct Design {
  std::string name;
  std::vector<Instance> instances;
  std::vector<DesignNet> nets;
  std::vector<InstanceId> startpoints;  ///< FF outputs / primary inputs
  std::vector<InstanceId> endpoints;    ///< FF data inputs (timing endpoints)

  /// Index of the net driven by each instance (kNoNet for endpoints).
  std::vector<std::uint32_t> driven_net;
  static constexpr std::uint32_t kNoNet = static_cast<std::uint32_t>(-1);

  [[nodiscard]] std::size_t cell_count() const noexcept { return instances.size(); }
  [[nodiscard]] std::size_t net_count() const noexcept { return nets.size(); }
  /// Number of non-tree RC nets.
  [[nodiscard]] std::size_t non_tree_net_count() const;
  /// Structural sanity check; empty result means consistent.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Summary row matching the paper's Table II columns.
struct DesignStats {
  std::string name;
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::size_t non_tree_nets = 0;
  std::size_t ffs = 0;
  std::size_t constrained_paths = 0;  ///< "#CPs": timing endpoints
};

/// Computes Table II statistics for \p design (ffs counted via \p seq_flags,
/// the per-instance "is sequential" mask).
[[nodiscard]] DesignStats compute_design_stats(const Design& design,
                                               const std::vector<bool>& seq_flags);

}  // namespace gnntrans::netlist
