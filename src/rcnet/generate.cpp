#include "rcnet/generate.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace gnntrans::rcnet {

namespace {

/// Lognormal sample with the given linear-space mean and log-space sigma.
double lognormal(std::mt19937_64& rng, double mean, double sigma) {
  std::normal_distribution<double> gauss(0.0, sigma);
  // exp(mu + sigma^2/2) == mean  =>  mu = ln(mean) - sigma^2/2.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + gauss(rng));
}

std::uint32_t uniform_u32(std::mt19937_64& rng, std::uint32_t lo, std::uint32_t hi) {
  std::uniform_int_distribution<std::uint32_t> dist(lo, hi);
  return dist(rng);
}

double uniform_real(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(rng);
}

/// Grows a random route-like spanning tree of \p n nodes rooted at node 0.
/// Returns the (parent) edge list; node i>0 connects to tree[i-1].first.
std::vector<NodeId> grow_tree(std::mt19937_64& rng, std::uint32_t n,
                              double chain_bias) {
  std::vector<NodeId> parent(n, 0);
  NodeId tip = 0;  // current branch tip, extended with probability chain_bias
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (NodeId v = 1; v < n; ++v) {
    NodeId attach = tip;
    if (coin(rng) >= chain_bias) attach = uniform_u32(rng, 0, v - 1);
    parent[v] = attach;
    tip = v;
  }
  return parent;
}

void add_loop_edges(const NetGenConfig& config, std::mt19937_64& rng, RcNet& net) {
  const auto n = static_cast<std::uint32_t>(net.node_count());
  if (n < 4) return;
  std::set<std::pair<NodeId, NodeId>> existing;
  for (const Resistor& r : net.resistors)
    existing.insert(std::minmax(r.a, r.b));

  const std::uint32_t extra = uniform_u32(rng, 1, config.max_extra_edges);
  for (std::uint32_t k = 0; k < extra; ++k) {
    // A handful of attempts to find a fresh pair; give up quietly otherwise.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const NodeId a = uniform_u32(rng, 0, n - 1);
      const NodeId b = uniform_u32(rng, 0, n - 1);
      if (a == b) continue;
      const auto key = std::minmax(a, b);
      if (existing.contains(key)) continue;
      existing.insert(key);
      // Loop resistors model redundant route segments: same R distribution.
      net.resistors.push_back(
          {key.first, key.second, lognormal(rng, config.r_per_seg_mean, config.r_spread)});
      break;
    }
  }
}

void add_couplings(const NetGenConfig& config, std::mt19937_64& rng, RcNet& net) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) >= config.coupling_prob) return;
  for (NodeId v = 0; v < net.node_count(); ++v) {
    if (v == net.source) continue;
    if (coin(rng) < config.coupling_density) {
      CouplingCap c;
      c.victim_node = v;
      c.farads = lognormal(rng, config.coupling_cap_mean, 0.5);
      c.aggressor_seed = rng();
      net.couplings.push_back(c);
    }
  }
}

RcNet generate_with_counts(const NetGenConfig& config, std::mt19937_64& rng,
                           std::string name, std::uint32_t n_nodes,
                           std::uint32_t n_sinks) {
  RcNet net;
  net.name = std::move(name);
  net.source = 0;
  net.ground_cap.resize(n_nodes);
  for (double& c : net.ground_cap)
    c = lognormal(rng, config.c_per_node_mean, config.c_spread);

  const std::vector<NodeId> parent = grow_tree(rng, n_nodes, config.chain_bias);
  net.resistors.reserve(n_nodes - 1);
  for (NodeId v = 1; v < n_nodes; ++v)
    net.resistors.push_back(
        {parent[v], v, lognormal(rng, config.r_per_seg_mean, config.r_spread)});

  // Sinks prefer leaves (real loads terminate routes); fall back to any
  // non-source node when the tree has too few leaves.
  std::vector<bool> has_child(n_nodes, false);
  for (NodeId v = 1; v < n_nodes; ++v) has_child[parent[v]] = true;
  std::vector<NodeId> leaves;
  for (NodeId v = 1; v < n_nodes; ++v)
    if (!has_child[v]) leaves.push_back(v);
  std::shuffle(leaves.begin(), leaves.end(), rng);

  const std::uint32_t want =
      std::min<std::uint32_t>(n_sinks, std::max<std::uint32_t>(1, n_nodes - 1));
  std::set<NodeId> chosen(leaves.begin(),
                          leaves.begin() + std::min<std::size_t>(want, leaves.size()));
  while (chosen.size() < want) {
    const NodeId v = uniform_u32(rng, 1, n_nodes - 1);
    chosen.insert(v);
  }
  net.sinks.assign(chosen.begin(), chosen.end());
  for (NodeId s : net.sinks)
    net.ground_cap[s] +=
        uniform_real(rng, config.sink_pin_cap_min, config.sink_pin_cap_max);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < config.non_tree_fraction) add_loop_edges(config, rng, net);
  add_couplings(config, rng, net);
  return net;
}

}  // namespace

RcNet generate_net(const NetGenConfig& config, std::mt19937_64& rng,
                   std::string name) {
  const std::uint32_t n_nodes =
      uniform_u32(rng, config.min_nodes, config.max_nodes);
  const std::uint32_t max_sinks_here = std::min<std::uint32_t>(
      config.max_sinks, std::max<std::uint32_t>(1, n_nodes / 4));
  const std::uint32_t n_sinks = uniform_u32(
      rng, std::min(config.min_sinks, max_sinks_here), max_sinks_here);
  return generate_with_counts(config, rng, std::move(name), n_nodes, n_sinks);
}

RcNet generate_net_for_fanout(const NetGenConfig& config, std::mt19937_64& rng,
                              std::string name, std::uint32_t fanout) {
  const std::uint32_t sinks = std::max<std::uint32_t>(1, fanout);
  // Route length (and thus cap count) mirrors standalone nets: a body drawn
  // from the configured size range plus a few segments per sink, so design
  // nets carry the same wire-delay weight as the Table III/IV population.
  const std::uint32_t base = uniform_u32(rng, config.min_nodes, config.max_nodes);
  const std::uint32_t n_nodes =
      std::max<std::uint32_t>(sinks + 2, base / 2 + 3 * sinks);
  return generate_with_counts(config, rng, std::move(name), n_nodes, sinks);
}

}  // namespace gnntrans::rcnet
