#include "netlist/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace gnntrans::netlist {

IncrementalSta::IncrementalSta(Design design, const cell::CellLibrary& library,
                               WireTimingSource& wire_source, StaConfig config)
    : design_(std::move(design)),
      library_(library),
      wire_source_(wire_source),
      config_(config) {
  // Seed all state from a full pass.
  result_ = run_sta(design_, library_, wire_source_, config_);

  const std::size_t n = design_.instances.size();
  in_arrival_.assign(n, -1.0);
  in_slew_.assign(n, config_.launch_slew);
  fanin_pins_.assign(n, {});
  net_contrib_.assign(design_.nets.size(), {});

  // Rebuild per-pin contributions by re-timing every net once with the
  // already-known driver timing (the wire source is deterministic).
  for (std::uint32_t net_idx = 0; net_idx < design_.nets.size(); ++net_idx) {
    const DesignNet& net = design_.nets[net_idx];
    const cell::Cell& driver = library_.at(design_.instances[net.driver].cell_index);
    const std::vector<sim::SinkTiming> sinks =
        wire_source_.time_net(net.rc, result_.slew[net.driver],
                              driver.drive_resistance);
    net_contrib_[net_idx].resize(net.loads.size());
    for (std::size_t s = 0; s < net.loads.size() && s < sinks.size(); ++s) {
      net_contrib_[net_idx][s].arrival =
          result_.arrival[net.driver] + sinks[s].delay;
      net_contrib_[net_idx][s].slew = sinks[s].slew;
      fanin_pins_[net.loads[s]].push_back(
          {net_idx, static_cast<std::uint32_t>(s)});
    }
  }
  for (InstanceId v = 0; v < n; ++v) refresh_input(v);
}

void IncrementalSta::refresh_input(InstanceId load) {
  double best = -1.0;
  double best_slew = config_.launch_slew;
  std::uint32_t best_net = StaResult::kNone;
  double best_wire = 0.0;
  for (const FaninPin& pin : fanin_pins_[load]) {
    const Contribution& c = net_contrib_[pin.net][pin.sink];
    if (c.arrival > best) {
      best = c.arrival;
      best_slew = c.slew;
      best_net = pin.net;
      best_wire = c.arrival - result_.arrival[design_.nets[pin.net].driver];
    }
  }
  in_arrival_[load] = best;
  in_slew_[load] = best_slew;
  result_.critical_net[load] = best_net;
  result_.critical_wire_delay[load] = best_wire;
}

bool IncrementalSta::reevaluate(InstanceId v) {
  ++total_reevaluations_;
  const cell::Cell& c = library_.at(design_.instances[v].cell_index);
  const std::uint32_t net_idx = design_.driven_net[v];

  double new_arrival, new_slew, new_gate;
  if (net_idx == Design::kNoNet) {
    // Endpoint.
    new_arrival = std::max(0.0, in_arrival_[v]);
    new_slew = in_slew_[v];
    new_gate = 0.0;
  } else {
    const DesignNet& net = design_.nets[net_idx];
    const bool is_startpoint = in_arrival_[v] < 0.0 && fanin_pins_[v].empty();
    const double pin_slew = is_startpoint ? config_.launch_slew : in_slew_[v];
    const double load_cap =
        nldm_load_cap(design_, library_, net, c, pin_slew, config_);
    const double pin_arrival = is_startpoint ? 0.0 : std::max(0.0, in_arrival_[v]);
    new_gate = c.arc.delay.lookup(pin_slew, load_cap);
    new_arrival = pin_arrival + new_gate;
    new_slew = c.arc.output_slew.lookup(pin_slew, load_cap);
  }

  const bool changed = std::abs(new_arrival - result_.arrival[v]) > kTolerance ||
                       std::abs(new_slew - result_.slew[v]) > kTolerance;
  result_.arrival[v] = new_arrival;
  result_.slew[v] = new_slew;
  result_.gate_delay[v] = new_gate;

  if (net_idx != Design::kNoNet && changed) {
    const DesignNet& net = design_.nets[net_idx];
    const std::vector<sim::SinkTiming> sinks =
        wire_source_.time_net(net.rc, new_slew, c.drive_resistance);
    for (std::size_t s = 0; s < net.loads.size() && s < sinks.size(); ++s) {
      net_contrib_[net_idx][s].arrival = new_arrival + sinks[s].delay;
      net_contrib_[net_idx][s].slew = sinks[s].slew;
    }
  }
  return changed;
}

std::size_t IncrementalSta::swap_cell(InstanceId instance,
                                      std::uint32_t new_cell_index) {
  if (instance >= design_.instances.size())
    throw std::invalid_argument("swap_cell: instance out of range");
  if (new_cell_index >= library_.size())
    throw std::invalid_argument("swap_cell: cell index out of range");
  design_.instances[instance].cell_index = new_cell_index;

  // Level-ordered worklist over the affected cone. The swapped instance's
  // input cap changed too, so the *driver* of every net feeding it sees a
  // different load — start from those drivers.
  auto level_of = [&](InstanceId v) { return design_.instances[v].level; };
  using Entry = std::pair<std::uint32_t, InstanceId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::vector<bool> queued(design_.instances.size(), false);
  auto push = [&](InstanceId v) {
    if (!queued[v]) {
      queued[v] = true;
      queue.emplace(level_of(v), v);
    }
  };
  push(instance);
  for (const FaninPin& pin : fanin_pins_[instance])
    push(design_.nets[pin.net].driver);

  std::size_t processed = 0;
  while (!queue.empty()) {
    const InstanceId v = queue.top().second;
    queue.pop();
    queued[v] = false;
    refresh_input(v);
    ++processed;
    if (!reevaluate(v)) continue;
    const std::uint32_t net_idx = design_.driven_net[v];
    if (net_idx == Design::kNoNet) continue;
    for (InstanceId load : design_.nets[net_idx].loads) push(load);
  }

  // Refresh the endpoint summary.
  result_.endpoint_arrival.clear();
  for (InstanceId e : design_.endpoints)
    result_.endpoint_arrival.push_back(result_.arrival[e]);
  return processed;
}

double IncrementalSta::worst_arrival() const {
  double worst = 0.0;
  for (double a : result_.endpoint_arrival) worst = std::max(worst, a);
  return worst;
}

}  // namespace gnntrans::netlist
