#include "sim/wire_analysis.hpp"

#include <algorithm>

namespace gnntrans::sim {

using rcnet::NodeId;

WireAnalysis analyze_wire(const rcnet::RcNet& net) {
  WireAnalysis wa;
  wa.moments = compute_moments(net);
  wa.d2m = d2m_from_moments(wa.moments);
  wa.sp_tree = rcnet::shortest_path_tree(net);
  wa.paths = rcnet::enumerate_paths(net);

  const std::size_t n = net.node_count();

  // Downstream cap: accumulate each node's cap into its SP-tree ancestors by
  // walking the settle order backwards (children settle after parents).
  wa.downstream_cap.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) wa.downstream_cap[v] = net.ground_cap[v];
  for (const rcnet::CouplingCap& cc : net.couplings)
    wa.downstream_cap[cc.victim_node] += cc.farads;
  for (std::size_t i = wa.sp_tree.order.size(); i-- > 1;) {
    const NodeId v = wa.sp_tree.order[i];
    const NodeId p = wa.sp_tree.parent[v];
    if (p != rcnet::ShortestPathTree::kNoParent && p != v)
      wa.downstream_cap[p] += wa.downstream_cap[v];
  }

  // Stage delay: Elmore increment along the SP-tree edge into each node.
  wa.stage_delay.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = wa.sp_tree.parent[v];
    if (p == rcnet::ShortestPathTree::kNoParent || p == v) continue;
    wa.stage_delay[v] = std::max(0.0, wa.moments.m1[v] - wa.moments.m1[p]);
  }
  return wa;
}

}  // namespace gnntrans::sim
