// SPEF-driven flow: how an external user plugs extracted parasitics into the
// estimator.
//
// The example writes a SPEF file for a batch of routed nets (standing in for
// StarRC output), parses it back, and runs wire timing estimation on the
// parsed nets — comparing the analytical Elmore/D2M metrics, the trained
// GNNTrans estimator, and the golden simulator on each path.
//
//   $ ./examples/spef_flow
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "core/estimator.hpp"
#include "features/dataset.hpp"
#include "rcnet/spef.hpp"
#include "sim/wire_analysis.hpp"

using namespace gnntrans;

int main() {
  const cell::CellLibrary library = cell::CellLibrary::make_default();

  // Train a small estimator.
  features::WireDatasetConfig data_cfg;
  data_cfg.net_count = 200;
  data_cfg.seed = 77;
  std::printf("Training estimator on %zu synthetic nets...\n",
              data_cfg.net_count);
  const auto records = features::generate_wire_records(data_cfg, library);
  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 16;
  opt.model.gnn_layers = 4;
  opt.model.transformer_layers = 2;
  opt.train.epochs = 25;
  const auto estimator = core::WireTimingEstimator::train(records, opt);

  // "Extraction": write a SPEF file for a fresh batch of nets.
  std::mt19937_64 rng(123);
  rcnet::NetGenConfig gen;
  gen.non_tree_fraction = 0.5;
  std::vector<rcnet::RcNet> extracted;
  for (int i = 0; i < 5; ++i)
    extracted.push_back(rcnet::generate_net(gen, rng, "u_core/n" + std::to_string(i)));

  const auto spef_path =
      std::filesystem::temp_directory_path() / "gnntrans_example.spef";
  {
    std::ofstream out(spef_path);
    out.precision(17);
    rcnet::write_spef(out, extracted);
  }
  std::printf("Wrote %zu nets to %s\n", extracted.size(), spef_path.c_str());

  // Consumption: parse the SPEF and time every net three ways.
  std::ifstream in(spef_path);
  const rcnet::SpefParseResult parsed = rcnet::parse_spef(in);
  for (const std::string& warning : parsed.warnings)
    std::printf("  [spef warning] %s\n", warning.c_str());

  sim::GoldenTimer golden{sim::TransientConfig{}};
  for (const rcnet::RcNet& net : parsed.nets) {
    const features::NetContext ctx = features::random_context(library, net, rng);
    const sim::WireAnalysis analysis = sim::analyze_wire(net);
    const auto predictions = estimator.estimate(net, ctx);
    const sim::TransientResult reference =
        golden.time_net(net, ctx.input_slew, ctx.driver_resistance);

    std::printf("\nnet %-12s (%zu caps, %zu resistors, %s)\n", net.name.c_str(),
                net.node_count(), net.resistors.size(),
                net.is_tree() ? "tree" : "non-tree");
    std::printf("  %-6s %10s %10s %10s %10s\n", "sink", "Elmore", "D2M",
                "GNNTrans", "golden");
    for (std::size_t q = 0; q < predictions.size(); ++q) {
      const rcnet::NodeId sink = predictions[q].sink;
      std::printf("  %-6u %8.2fps %8.2fps %8.2fps %8.2fps\n", sink,
                  analysis.moments.m1[sink] * 1e12, analysis.d2m[sink] * 1e12,
                  predictions[q].delay * 1e12, reference.sinks[q].delay * 1e12);
    }
  }
  std::printf("\nGolden timer spent %.3f s on %llu nets; the estimator answers "
              "from the learned model alone.\n",
              golden.stats().wall_seconds,
              static_cast<unsigned long long>(golden.stats().nets_timed));
  return 0;
}
