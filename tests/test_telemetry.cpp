// Tests for the telemetry subsystem: structured logging (levels, sinks,
// JSON-lines output), the sharded metrics registry (counters / gauges /
// histograms, exactness under a ThreadPool hammer, Prometheus and JSON
// exports), and trace-span recording (Chrome trace JSON well-formedness).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/telemetry/telemetry.hpp"
#include "core/thread_pool.hpp"

using namespace gnntrans;
using namespace gnntrans::telemetry;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (no values built, just a full parse).
// Enough of RFC 8259 to validate the trace / metrics / log-line exports.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

// ---------------------------------------------------------------------------
// HistogramData

TEST(HistogramData, EmptyQuantilesAreZeroNotNaN) {
  const HistogramData h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramData, SingleObservationQuantilesAreFinite) {
  HistogramData h;
  h.observe(3e-6);
  EXPECT_EQ(h.count(), 1u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(v == v) << "NaN at q=" << q;  // NaN != NaN
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5e-6);  // within the covering 1-2-5 bucket
  }
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(HistogramData, BucketPlacementUsesLeSemantics) {
  HistogramData h({1.0, 2.0, 5.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // exactly on a bound counts in that bucket (le)
  h.observe(1.5);   // le=2
  h.observe(4.0);   // le=5
  h.observe(100.0); // overflow
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramData, QuantileInterpolatesAndOverflowReportsLastBound) {
  HistogramData h({1.0, 2.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);  // all in the first bucket
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  HistogramData overflow({1.0, 2.0});
  overflow.observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 2.0);
}

TEST(HistogramData, MergeAddsAndSelfMergePreservesQuantiles) {
  HistogramData a, b;
  for (int i = 0; i < 32; ++i) a.observe(1e-6 * (i + 1));
  for (int i = 0; i < 16; ++i) b.observe(5e-4);
  const double p50_before = a.quantile(0.5);
  const double p99_before = a.quantile(0.99);

  HistogramData doubled = a;
  doubled.merge(a);  // doubling every bucket leaves quantiles untouched
  EXPECT_DOUBLE_EQ(doubled.quantile(0.5), p50_before);
  EXPECT_DOUBLE_EQ(doubled.quantile(0.99), p99_before);
  EXPECT_EQ(doubled.count(), 2 * a.count());

  HistogramData pooled = a;
  pooled.merge(b);
  EXPECT_EQ(pooled.count(), a.count() + b.count());
  EXPECT_DOUBLE_EQ(pooled.sum(), a.sum() + b.sum());
}

TEST(HistogramData, MergeIntoEmptyAdoptsBoundsAndMismatchThrows) {
  HistogramData custom({1.0, 2.0});
  custom.observe(1.5);
  HistogramData empty({7.0});  // never observed: adopts the other's bounds
  empty.merge(custom);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.bounds(), custom.bounds());

  HistogramData incompatible({42.0});
  incompatible.observe(1.0);
  EXPECT_THROW(incompatible.merge(custom), std::invalid_argument);
}

TEST(HistogramData, MergeOfEmptyOtherIsANoopForAnyBounds) {
  // The reverse adoption direction: a populated histogram absorbing a
  // never-observed one keeps its own bounds and tallies, regardless of what
  // bounds the empty side was constructed with.
  HistogramData populated({1.0, 2.0});
  populated.observe(1.5);
  HistogramData empty({42.0});
  populated.merge(empty);
  EXPECT_EQ(populated.count(), 1u);
  EXPECT_DOUBLE_EQ(populated.sum(), 1.5);
  ASSERT_EQ(populated.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(populated.bounds()[0], 1.0);

  // Empty-into-empty with mismatched bounds: also fine, still empty. This is
  // the InferenceStats::merge cold-start path (default-constructed stats
  // merging a batch whose histogram never observed anything).
  HistogramData lhs({1.0});
  HistogramData rhs({2.0});
  lhs.merge(rhs);
  EXPECT_EQ(lhs.count(), 0u);
}

TEST(HistogramData, AllMassInOverflowBucketIsStable) {
  // Every observation beyond the last bound: quantiles at any q must report
  // the last finite bound (never interpolate past the array, never NaN).
  HistogramData h({1.0, 2.0, 5.0});
  for (int i = 0; i < 1000; ++i) h.observe(1e6);
  EXPECT_EQ(h.count(), 1000u);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 5.0) << q;
}

TEST(HistogramData, MergeThenQuantileMatchesSingleStream) {
  // Shard-merge plumbing must not perturb quantiles: one stream observed into
  // three shards and merged gives the same answers as the unsharded
  // histogram. Power-of-two values keep the sums exactly representable, so
  // the sum comparison is legitimately bitwise.
  HistogramData whole;
  HistogramData shards[3];
  for (int i = 0; i < 300; ++i) {
    const double v = std::ldexp(1.0, -(i % 20));  // 1 down to ~1e-6
    whole.observe(v);
    shards[i % 3].observe(v);
  }
  HistogramData merged = shards[0];
  merged.merge(shards[1]);
  merged.merge(shards[2]);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.bucket_counts(), whole.bucket_counts());
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << q;
}

TEST(HistogramData, DefaultLatencyBoundsAre125Ladder) {
  const std::vector<double> bounds = HistogramData::default_latency_bounds();
  ASSERT_GE(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 1.0);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_GT(bounds[i], bounds[i - 1]);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter c = registry.counter("requests_total", "Requests");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge g = registry.gauge("depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.set_max(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 10.0);

  EXPECT_EQ(registry.metric_count(), 2u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter a = registry.counter("dup_total");
  Counter b = registry.counter("dup_total");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);  // same underlying metric
  EXPECT_EQ(registry.metric_count(), 1u);
  EXPECT_THROW((void)registry.gauge("dup_total"), std::invalid_argument);
  EXPECT_THROW(
      (void)registry.histogram("dup_total", HistogramData::default_latency_bounds()),
      std::invalid_argument);
}

TEST(MetricsRegistry, HistogramHandleObservesAndSnapshots) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("latency_seconds", {1.0, 2.0, 5.0}, "Lat");
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const HistogramData data = h.snapshot();
  EXPECT_EQ(data.count(), 3u);
  EXPECT_DOUBLE_EQ(data.sum(), 11.0);
  ASSERT_EQ(data.bucket_counts().size(), 4u);
  EXPECT_EQ(data.bucket_counts()[0], 1u);
  EXPECT_EQ(data.bucket_counts()[1], 1u);
  EXPECT_EQ(data.bucket_counts()[3], 1u);
}

TEST(MetricsRegistry, ResetZeroesInPlaceAndHandlesStayValid) {
  MetricsRegistry registry;
  Counter c = registry.counter("c_total");
  Histogram h = registry.histogram("h", {1.0});
  c.inc(7);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// The load-bearing concurrency property: per-thread shard cells make
// concurrent increments contention-free AND exact — totals must match the
// arithmetic sum, not merely land close.
TEST(MetricsRegistry, ShardedCountersExactUnderThreadPoolHammer) {
  MetricsRegistry registry;
  Counter hits = registry.counter("hammer_hits_total");
  Histogram lat = registry.histogram("hammer_latency", {1.0, 2.0, 5.0});
  Gauge peak = registry.gauge("hammer_peak");

  core::ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncrementsPerTask = 5000;
  pool.parallel_for(kTasks, [&](std::size_t index, std::size_t) {
    for (std::size_t i = 0; i < kIncrementsPerTask; ++i) {
      hits.inc();
      lat.observe(static_cast<double>(i % 7));
      peak.set_max(static_cast<double>(index));
    }
  });

  EXPECT_EQ(hits.value(), kTasks * kIncrementsPerTask);
  const HistogramData data = lat.snapshot();
  EXPECT_EQ(data.count(), kTasks * kIncrementsPerTask);
  // i%7 in [0,6]: per task 5000 observations summing to sum(0..6)*714 + r.
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kIncrementsPerTask; ++i)
    expected_sum += static_cast<double>(i % 7);
  EXPECT_DOUBLE_EQ(data.sum(), expected_sum * kTasks);
  EXPECT_DOUBLE_EQ(peak.value(), static_cast<double>(kTasks - 1));
}

TEST(MetricsRegistry, PrometheusExportGolden) {
  MetricsRegistry registry;
  Counter c = registry.counter("nets_total", "Nets served");
  c.inc(3);
  Gauge g = registry.gauge("pool_threads");
  g.set(4.0);
  Histogram h = registry.histogram("lat_seconds", {1.0, 2.0}, "Latency");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string expected =
      "# HELP nets_total Nets served\n"
      "# TYPE nets_total counter\n"
      "nets_total 3\n"
      "# TYPE pool_threads gauge\n"
      "pool_threads 4\n"
      "# HELP lat_seconds Latency\n"
      "# TYPE lat_seconds histogram\n"
      "lat_seconds_bucket{le=\"1\"} 2\n"
      "lat_seconds_bucket{le=\"2\"} 3\n"
      "lat_seconds_bucket{le=\"+Inf\"} 4\n"
      "lat_seconds_sum 11.5\n"
      "lat_seconds_count 4\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(MetricsRegistry, JsonExportGoldenAndWellFormed) {
  MetricsRegistry registry;
  Counter c = registry.counter("nets_total");
  c.inc(2);
  Gauge g = registry.gauge("depth");
  g.set(1.5);
  Histogram h = registry.histogram("lat", {1.0});
  h.observe(0.25);

  const std::string json = registry.json_text();
  EXPECT_EQ(json,
            "{\"counters\":{\"nets_total\":2},"
            "\"gauges\":{\"depth\":1.5},"
            "\"histograms\":{\"lat\":{\"bounds\":[1],\"counts\":[1,0],"
            "\"sum\":0.25,\"count\":1}}}");
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(MetricsRegistry, HistogramExemplarKeepsMaxAndExports) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("lat_seconds", {1.0, 2.0}, "Latency");
  h.observe(0.5);
  h.observe(1.5);
  h.annotate_exemplar(0.5, 0x1111, "small_net");
  h.annotate_exemplar(1.5, 0x2222, "big_net");
  h.annotate_exemplar(0.7, 0x3333, "mid_net");  // smaller: kept out (keep-max)

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const MetricsSnapshot::HistogramValue& hv = snap.histograms[0];
  ASSERT_TRUE(hv.has_exemplar);
  EXPECT_DOUBLE_EQ(hv.exemplar_value, 1.5);
  EXPECT_EQ(hv.exemplar_trace_id, 0x2222u);
  EXPECT_EQ(hv.exemplar_label, "big_net");
  // Exemplars annotate, never observe: the distribution is untouched.
  EXPECT_EQ(hv.data.count(), 2u);

  // Prometheus: the exemplar rides the first bucket whose bound covers it.
  const std::string text = snap.to_prometheus();
  EXPECT_NE(
      text.find("lat_seconds_bucket{le=\"2\"} 2 "
                "# {trace_id=\"0x0000000000002222\",net=\"big_net\"} 1.5"),
      std::string::npos)
      << text;
  // The JSON export carries it too and stays parseable.
  const std::string json = snap.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
  EXPECT_NE(json.find("0x0000000000002222"), std::string::npos);

  // reset() clears the exemplar along with the buckets.
  registry.reset();
  const MetricsSnapshot after = registry.snapshot();
  ASSERT_EQ(after.histograms.size(), 1u);
  EXPECT_FALSE(after.histograms[0].has_exemplar);
}

TEST(MetricsRegistry, ExemplarAboveAllBoundsRidesInfBucket) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("over_seconds", {1.0});
  h.observe(9.0);
  h.annotate_exemplar(9.0, 0xBEEF, "tail_net");
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("over_seconds_bucket{le=\"+Inf\"} 1 "
                      "# {trace_id=\"0x000000000000beef\""),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, ExportSanitizesBadPrometheusNames) {
  MetricsRegistry registry;
  Counter c = registry.counter("bad name-with.dots");
  c.inc();
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("bad_name_with_dots 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging

TEST(Logger, LevelFilteringAndSinkFanOut) {
  Logger logger;
  std::ostringstream first, second;
  logger.add_sink(std::make_shared<StreamSink>(first));
  logger.add_sink(std::make_shared<StreamSink>(second));
  EXPECT_EQ(logger.sink_count(), 2u);

  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.should_log(LogLevel::kInfo));
  EXPECT_TRUE(logger.should_log(LogLevel::kWarn));
  EXPECT_TRUE(logger.should_log(LogLevel::kError));

  logger.logf(LogLevel::kWarn, "spef", "dangling node %s at line %d", "n42", 7);
  const std::string text = first.str();
  EXPECT_EQ(text, second.str());  // fan-out: both sinks get the record
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("[spef]"), std::string::npos);
  EXPECT_NE(text.find("dangling node n42 at line 7"), std::string::npos);

  logger.clear_sinks();
  EXPECT_EQ(logger.sink_count(), 0u);
}

TEST(Logger, JsonLinesSinkEmitsValidJsonPerLine) {
  Logger logger;
  std::ostringstream out;
  logger.add_sink(std::make_shared<JsonLinesSink>(out));
  logger.set_level(LogLevel::kDebug);
  logger.log(LogLevel::kInfo, "serving", "batch done");
  logger.logf(LogLevel::kWarn, "spef", "quote \" backslash \\ newline \n done");

  std::istringstream lines(out.str());
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    EXPECT_TRUE(JsonChecker(line).valid()) << "line " << line_count << ": " << line;
  }
  EXPECT_EQ(line_count, 2u);
  EXPECT_NE(out.str().find("\"component\":\"serving\""), std::string::npos);
  EXPECT_NE(out.str().find("\"level\":\"warn\""), std::string::npos);
}

TEST(Logger, ParseLogLevelRoundTrips) {
  bool ok = false;
  EXPECT_EQ(parse_log_level("trace", &ok), LogLevel::kTrace);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("debug", &ok), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", &ok), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", &ok), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", &ok), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", &ok), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", &ok), LogLevel::kOff);
  EXPECT_FALSE(ok);
  for (const LogLevel level : {LogLevel::kTrace, LogLevel::kDebug,
                               LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff})
    EXPECT_EQ(parse_log_level(to_string(level)), level);
}

TEST(Logger, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  const std::string escaped = json_escape(std::string("a\x01") + "b");
  EXPECT_TRUE(JsonChecker("\"" + escaped + "\"").valid());
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, SpansRecordOnlyWhenEnabledAndJsonRoundTrips) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.disable();
  { const TraceSpan ignored("invisible", "test"); }
  EXPECT_EQ(recorder.event_count(), 0u);

  recorder.enable();
  {
    const TraceSpan outer("outer_span", "test");
    const TraceSpan inner("inner_span", "test");
  }
  recorder.record("manual_span", "test", 100, 250);
  recorder.disable();
  EXPECT_EQ(recorder.event_count(), 3u);

  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"manual_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  // The manual span: 150 ns == 0.150 us.
  EXPECT_NE(json.find("\"dur\":0.150"), std::string::npos);

  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Trace, TransientAndOversizedNamesAreCopiedSafely) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.enable();
  {
    // Stack-built transient name (the sta_level_%u / train_epoch_%zu pattern).
    char name[32];
    std::snprintf(name, sizeof(name), "sta_level_%d", 7);
    recorder.record(name, "sta", 0, 10);
    std::snprintf(name, sizeof(name), "garbage");  // recorder copied already
  }
  {
    const std::string long_name(200, 'x');  // exceeds TraceEvent::name
    const TraceSpan span(long_name, "test");
  }
  recorder.disable();
  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"name\":\"sta_level_7\""), std::string::npos);
  EXPECT_EQ(json.find("garbage"), std::string::npos);
  recorder.clear();
}

TEST(Trace, RingWrapCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.set_ring_capacity(8);
  recorder.enable();
  for (int i = 0; i < 20; ++i) recorder.record("spin", "test", i, i + 1);
  recorder.disable();
  // This thread's ring existed before set_ring_capacity in earlier tests may
  // have created it, so only assert the weak invariant: everything recorded
  // is either retained or counted dropped.
  EXPECT_GE(recorder.event_count() + recorder.dropped_count(), 20u);
  std::ostringstream out;
  recorder.write_chrome_json(out);
  EXPECT_TRUE(JsonChecker(out.str()).valid());
  recorder.clear();
  recorder.set_ring_capacity(16384);
}

TEST(Trace, ParallelSpansFromPoolWorkersAllLand) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  recorder.enable();
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  pool.parallel_for(kTasks, [&](std::size_t, std::size_t) {
    const TraceSpan span("pool_task", "test");
  });
  recorder.disable();
  EXPECT_EQ(recorder.event_count(), kTasks);
  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(count_occurrences(json, "\"name\":\"pool_task\""), kTasks);
  recorder.clear();
}

TEST(Trace, HeadSamplingIsDeterministicPureHash) {
  TraceRecorder& recorder = TraceRecorder::global();
  TraceConfig cfg;
  cfg.head_sample_rate = 1.0;
  cfg.overhead_budget_pct = 100.0;
  recorder.configure(cfg);
  recorder.enable();

  const TraceContext a = recorder.head_sample(4711);
  const TraceContext b = recorder.head_sample(4711);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.sampled);
  EXPECT_NE(a.span_id, 0u);
  // A retry of the same request keeps its trace identity.
  EXPECT_EQ(a.trace_id, b.trace_id);
  // Distinct requests land on distinct traces.
  EXPECT_NE(recorder.head_sample(4712).trace_id, a.trace_id);

  // The trace_id is rate-independent (pure hash of seed and request_id);
  // only the sampling bit follows the rate.
  cfg.head_sample_rate = 0.0;
  recorder.configure(cfg);
  const TraceContext unsampled = recorder.head_sample(4711);
  EXPECT_EQ(unsampled.trace_id, a.trace_id);
  EXPECT_FALSE(unsampled.sampled);

  // A different seed relabels the population.
  cfg.head_sample_rate = 1.0;
  cfg.head_seed = 0xABCD;
  recorder.configure(cfg);
  EXPECT_NE(recorder.head_sample(4711).trace_id, a.trace_id);

  // Disabled recorder: no identity at all.
  recorder.disable();
  EXPECT_FALSE(recorder.head_sample(4711).valid());
  recorder.configure(TraceConfig{});
}

TEST(Trace, ParentedSpanBypassesSpanSamplerForSampledRequests) {
  TraceRecorder& recorder = TraceRecorder::global();
  recorder.clear();
  TraceConfig cfg;
  cfg.sample_every = 1u << 20;  // plain spans effectively never sample
  cfg.overhead_budget_pct = 100.0;
  recorder.configure(cfg);
  recorder.enable();

  TraceContext parent;
  parent.trace_id = 0xFEEDFACE;
  parent.span_id = 1;
  parent.sampled = true;
  {
    // A head-sampled request's stage span records regardless of the 1-in-N
    // span sampler — a sampled request always gets its full breakdown.
    const TraceSpan span("stage_x", "request", parent);
    EXPECT_TRUE(span.active());
  }
  TraceContext unsampled = parent;
  unsampled.sampled = false;
  {
    const TraceSpan span("stage_skipped", "request", unsampled);
    EXPECT_FALSE(span.active());
  }
  recorder.disable();

  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"name\":\"stage_x\""), std::string::npos);
  // The span is tagged with the trace_id as its flow id, so chrome's flow
  // arrows bind it into the request lane.
  EXPECT_NE(json.find("\"id\":\"0xfeedface\""), std::string::npos);
  EXPECT_EQ(json.find("stage_skipped"), std::string::npos);
  recorder.clear();
  recorder.configure(TraceConfig{});
}

}  // namespace
