/// \file log.hpp
/// Structured, leveled logging with pluggable sinks.
///
/// One process-global Logger (Logger::global()) fans each record out to a set of
/// sinks: human-readable text on stderr, JSON-lines to a file, or any custom
/// LogSink. Call sites use the GNNTRANS_LOG_* macros, which are filtered
/// twice: at compile time against GNNTRANS_MIN_LOG_LEVEL (records below it
/// cost literally nothing — the statement is discarded by `if constexpr`),
/// and at run time against Logger::level() *before* the message is formatted,
/// so a disabled level costs one relaxed atomic load.
///
///   GNNTRANS_LOG_WARN("spef", "line %zu: dangling node %s", line, name);
///
/// Formatting and sink fan-out are thread-safe; records from concurrent
/// threads never interleave within one sink.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gnntrans::telemetry {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-sensitive). Returns kOff and sets *ok=false on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       bool* ok = nullptr) noexcept;

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order);
/// stable for the thread's lifetime. Shared by log records and trace events.
[[nodiscard]] std::uint32_t this_thread_id() noexcept;

/// Escapes \p s for embedding inside a JSON string literal (quotes not
/// included). Shared by the JSON-lines sink and the metrics JSON export.
[[nodiscard]] std::string json_escape(std::string_view s);

/// One log record, fully formatted message included.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view component;  ///< subsystem tag, e.g. "spef", "serving"
  std::string_view message;
  std::chrono::system_clock::time_point time;
  std::uint32_t thread_id = 0;
};

/// Sink interface. write() is always invoked under the logger's sink mutex,
/// so implementations need no locking of their own.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Human-readable text to an arbitrary stream:
///   2026-08-06T12:00:00.123Z WARN  [spef] message
class StreamSink final : public LogSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(out) {}
  void write(const LogRecord& record) override;

 private:
  std::ostream& out_;
};

/// StreamSink bound to stderr (the default sink of Logger::global()).
class StderrSink final : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// One JSON object per line, machine-parseable:
///   {"ts":"...","level":"warn","component":"spef","thread":0,"msg":"..."}
class JsonLinesSink final : public LogSink {
 public:
  /// Appends to \p path; throws std::runtime_error if it cannot be opened.
  explicit JsonLinesSink(const std::string& path);
  /// Writes to an externally owned stream (tests).
  explicit JsonLinesSink(std::ostream& out) : out_(&out) {}
  void write(const LogRecord& record) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
};

/// Leveled logger with a sink registry.
class Logger {
 public:
  /// Starts with no sinks and level kInfo. The global() logger additionally
  /// gets a StderrSink installed on first use.
  Logger() = default;

  /// Process-wide logger used by the GNNTRANS_LOG_* macros.
  [[nodiscard]] static Logger& global();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool should_log(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void add_sink(std::shared_ptr<LogSink> sink);
  void clear_sinks();
  [[nodiscard]] std::size_t sink_count() const;

  /// Emits a pre-formatted message (no level check — callers go through
  /// should_log, the macros do this automatically).
  void log(LogLevel level, std::string_view component, std::string_view message);

  /// printf-style formatting; the message is formatted only after the level
  /// check made by the macros.
  [[gnu::format(printf, 4, 5)]] void logf(LogLevel level,
                                          const char* component,
                                          const char* format, ...);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

}  // namespace gnntrans::telemetry

/// Compile-time log floor: records below this level are discarded at compile
/// time. 0=trace ... 4=error, 5=off. Override with -DGNNTRANS_MIN_LOG_LEVEL=N.
#ifndef GNNTRANS_MIN_LOG_LEVEL
#define GNNTRANS_MIN_LOG_LEVEL 0
#endif

#define GNNTRANS_LOG_IMPL(level_const, level_int, component, ...)             \
  do {                                                                        \
    if constexpr ((level_int) >= GNNTRANS_MIN_LOG_LEVEL) {                    \
      auto& gnntrans_logger_ = ::gnntrans::telemetry::Logger::global();       \
      if (gnntrans_logger_.should_log(level_const))                           \
        gnntrans_logger_.logf(level_const, component, __VA_ARGS__);           \
    }                                                                         \
  } while (0)

#define GNNTRANS_LOG_TRACE(component, ...) \
  GNNTRANS_LOG_IMPL(::gnntrans::telemetry::LogLevel::kTrace, 0, component, __VA_ARGS__)
#define GNNTRANS_LOG_DEBUG(component, ...) \
  GNNTRANS_LOG_IMPL(::gnntrans::telemetry::LogLevel::kDebug, 1, component, __VA_ARGS__)
#define GNNTRANS_LOG_INFO(component, ...) \
  GNNTRANS_LOG_IMPL(::gnntrans::telemetry::LogLevel::kInfo, 2, component, __VA_ARGS__)
#define GNNTRANS_LOG_WARN(component, ...) \
  GNNTRANS_LOG_IMPL(::gnntrans::telemetry::LogLevel::kWarn, 3, component, __VA_ARGS__)
#define GNNTRANS_LOG_ERROR(component, ...) \
  GNNTRANS_LOG_IMPL(::gnntrans::telemetry::LogLevel::kError, 4, component, __VA_ARGS__)
