#include "cell/nldm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gnntrans::cell {

NldmTable NldmTable::characterize(std::vector<double> slew_axis,
                                  std::vector<double> cap_axis,
                                  const std::function<double(double, double)>& fn) {
  if (slew_axis.size() < 2 || cap_axis.size() < 2)
    throw std::invalid_argument("NldmTable: axes need at least 2 points");
  if (!std::is_sorted(slew_axis.begin(), slew_axis.end()) ||
      !std::is_sorted(cap_axis.begin(), cap_axis.end()))
    throw std::invalid_argument("NldmTable: axes must be increasing");

  NldmTable t;
  t.slew_axis_ = std::move(slew_axis);
  t.cap_axis_ = std::move(cap_axis);
  t.values_.reserve(t.slew_axis_.size() * t.cap_axis_.size());
  for (double s : t.slew_axis_)
    for (double c : t.cap_axis_) t.values_.push_back(fn(s, c));
  return t;
}

namespace {

/// Finds the cell index i such that axis[i] <= q <= axis[i+1], clamped.
std::size_t bracket(const std::vector<double>& axis, double q) {
  if (q <= axis.front()) return 0;
  if (q >= axis[axis.size() - 2]) return axis.size() - 2;
  const auto it = std::upper_bound(axis.begin(), axis.end(), q);
  return static_cast<std::size_t>(it - axis.begin()) - 1;
}

}  // namespace

double NldmTable::lookup(double input_slew, double load_cap) const {
  assert(!values_.empty());
  const std::size_t i = bracket(slew_axis_, input_slew);
  const std::size_t j = bracket(cap_axis_, load_cap);

  const double s0 = slew_axis_[i], s1 = slew_axis_[i + 1];
  const double c0 = cap_axis_[j], c1 = cap_axis_[j + 1];
  const double ts = (input_slew - s0) / (s1 - s0);
  const double tc = (load_cap - c0) / (c1 - c0);

  const double v00 = at(i, j), v01 = at(i, j + 1);
  const double v10 = at(i + 1, j), v11 = at(i + 1, j + 1);
  return v00 * (1 - ts) * (1 - tc) + v01 * (1 - ts) * tc + v10 * ts * (1 - tc) +
         v11 * ts * tc;
}

}  // namespace gnntrans::cell
