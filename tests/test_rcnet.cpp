// Tests for the RC-net representation, generator, path enumeration, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "rcnet/generate.hpp"
#include "rcnet/paths.hpp"
#include "rcnet/rcnet.hpp"
#include "rcnet/stats.hpp"

namespace {

using namespace gnntrans::rcnet;

/// Hand-built 4-node chain: 0 -1- 1 -2- 2 -3- 3, sinks {3}.
RcNet chain4() {
  RcNet net;
  net.name = "chain4";
  net.source = 0;
  net.sinks = {3};
  net.ground_cap = {1e-15, 1e-15, 1e-15, 2e-15};
  net.resistors = {{0, 1, 10.0}, {1, 2, 20.0}, {2, 3, 30.0}};
  return net;
}

/// Non-tree diamond: 0-1, 0-2, 1-3, 2-3, sinks {3}.
RcNet diamond() {
  RcNet net;
  net.name = "diamond";
  net.source = 0;
  net.sinks = {3};
  net.ground_cap = {1e-15, 1e-15, 1e-15, 1e-15};
  net.resistors = {{0, 1, 10.0}, {0, 2, 5.0}, {1, 3, 10.0}, {2, 3, 5.0}};
  return net;
}

TEST(RcNet, ChainIsValidTree) {
  const RcNet net = chain4();
  EXPECT_TRUE(net.validate().empty());
  EXPECT_TRUE(net.is_tree());
  EXPECT_TRUE(is_connected(net));
}

TEST(RcNet, DiamondIsValidNonTree) {
  const RcNet net = diamond();
  EXPECT_TRUE(net.validate().empty());
  EXPECT_FALSE(net.is_tree());
}

TEST(RcNet, TotalsSumComponents) {
  const RcNet net = chain4();
  EXPECT_DOUBLE_EQ(net.total_ground_cap(), 5e-15);
  EXPECT_DOUBLE_EQ(net.total_resistance(), 60.0);
  EXPECT_DOUBLE_EQ(net.total_coupling_cap(), 0.0);
}

TEST(RcNet, ValidateCatchesSelfLoop) {
  RcNet net = chain4();
  net.resistors.push_back({2, 2, 5.0});
  const auto errors = net.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("self loop"), std::string::npos);
}

TEST(RcNet, ValidateCatchesDisconnectedGraph) {
  RcNet net = chain4();
  net.resistors.pop_back();  // node 3 now isolated
  const auto errors = net.validate();
  ASSERT_FALSE(errors.empty());
}

TEST(RcNet, ValidateCatchesNonPositiveValues) {
  RcNet net = chain4();
  net.ground_cap[1] = 0.0;
  EXPECT_FALSE(net.validate().empty());

  RcNet net2 = chain4();
  net2.resistors[0].ohms = -1.0;
  EXPECT_FALSE(net2.validate().empty());
}

TEST(RcNet, ValidateCatchesSinkEqualsSource) {
  RcNet net = chain4();
  net.sinks.push_back(net.source);
  EXPECT_FALSE(net.validate().empty());
}

TEST(Adjacency, DegreesMatchResistors) {
  const RcNet net = chain4();
  const Adjacency adj = build_adjacency(net);
  EXPECT_EQ(adj[0].size(), 1u);
  EXPECT_EQ(adj[1].size(), 2u);
  EXPECT_EQ(adj[2].size(), 2u);
  EXPECT_EQ(adj[3].size(), 1u);
}

TEST(Paths, ChainPathVisitsAllNodesInOrder) {
  const auto paths = enumerate_paths(chain4());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].sink, 3u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(paths[0].resistor_indices.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].path_resistance(chain4()), 60.0);
}

TEST(Paths, DiamondTakesShortestResistancePath) {
  const auto paths = enumerate_paths(diamond());
  ASSERT_EQ(paths.size(), 1u);
  // Via node 2: 5 + 5 = 10 beats via node 1: 10 + 10 = 20.
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(paths[0].path_resistance(diamond()), 10.0);
}

TEST(Paths, ShortestPathTreeDistancesAreMonotone) {
  const ShortestPathTree t = shortest_path_tree(diamond());
  EXPECT_DOUBLE_EQ(t.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(t.distance[2], 5.0);
  EXPECT_DOUBLE_EQ(t.distance[3], 10.0);
  EXPECT_DOUBLE_EQ(t.distance[1], 10.0);
  // Settle order is non-decreasing in distance.
  for (std::size_t i = 1; i < t.order.size(); ++i)
    EXPECT_GE(t.distance[t.order[i]], t.distance[t.order[i - 1]]);
}

TEST(Paths, SimplePathCountOnTreeEqualsSinkCount) {
  RcNet net = chain4();
  net.sinks = {1, 3};
  EXPECT_EQ(count_simple_paths(net), 2u);
}

TEST(Paths, SimplePathCountOnDiamondCountsBothRoutes) {
  EXPECT_EQ(count_simple_paths(diamond()), 2u);
}

TEST(Paths, SimplePathCountSaturatesAtCap) {
  EXPECT_EQ(count_simple_paths(diamond(), 1), 1u);
}

// ---- Generator properties over seeds ----

class GeneratorSeeded : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSeeded, GeneratedNetsAreValid) {
  std::mt19937_64 rng(GetParam());
  NetGenConfig cfg;
  for (int i = 0; i < 20; ++i) {
    const RcNet net = generate_net(cfg, rng, "n");
    EXPECT_TRUE(net.validate().empty()) << "seed=" << GetParam() << " i=" << i;
    EXPECT_GE(net.node_count(), cfg.min_nodes);
    EXPECT_LE(net.node_count(), cfg.max_nodes);
    EXPECT_GE(net.sinks.size(), 1u);
  }
}

TEST_P(GeneratorSeeded, SinksAreDistinctAndNotSource) {
  std::mt19937_64 rng(GetParam() + 50);
  NetGenConfig cfg;
  for (int i = 0; i < 10; ++i) {
    const RcNet net = generate_net(cfg, rng, "n");
    std::set<NodeId> unique(net.sinks.begin(), net.sinks.end());
    EXPECT_EQ(unique.size(), net.sinks.size());
    EXPECT_FALSE(unique.contains(net.source));
  }
}

TEST_P(GeneratorSeeded, DeterministicForSameSeed) {
  NetGenConfig cfg;
  std::mt19937_64 rng1(GetParam()), rng2(GetParam());
  const RcNet a = generate_net(cfg, rng1, "x");
  const RcNet b = generate_net(cfg, rng2, "x");
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.resistors.size(), b.resistors.size());
  for (std::size_t i = 0; i < a.resistors.size(); ++i) {
    EXPECT_EQ(a.resistors[i].a, b.resistors[i].a);
    EXPECT_DOUBLE_EQ(a.resistors[i].ohms, b.resistors[i].ohms);
  }
}

TEST_P(GeneratorSeeded, FanoutRequestHonored) {
  std::mt19937_64 rng(GetParam() + 99);
  NetGenConfig cfg;
  for (std::uint32_t fanout : {1u, 3u, 8u, 20u}) {
    const RcNet net = generate_net_for_fanout(cfg, rng, "f", fanout);
    EXPECT_EQ(net.sinks.size(), fanout);
    EXPECT_TRUE(net.validate().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeded, ::testing::Range(1, 11));

TEST(Generator, NonTreeFractionRoughlyRespected) {
  std::mt19937_64 rng(7);
  NetGenConfig cfg;
  cfg.non_tree_fraction = 0.5;
  int non_tree = 0;
  const int total = 300;
  for (int i = 0; i < total; ++i)
    if (!generate_net(cfg, rng, "n").is_tree()) ++non_tree;
  // Loose band around 50% (some loop-add attempts fail on tiny nets).
  EXPECT_GT(non_tree, total / 4);
  EXPECT_LT(non_tree, 3 * total / 4);
}

TEST(Generator, ZeroNonTreeFractionYieldsOnlyTrees) {
  std::mt19937_64 rng(8);
  NetGenConfig cfg;
  cfg.non_tree_fraction = 0.0;
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(generate_net(cfg, rng, "n").is_tree());
}

TEST(Stats, ComputeStatsMatchesHandNet) {
  const NetStats s = compute_stats(diamond());
  EXPECT_EQ(s.node_count, 4u);
  EXPECT_EQ(s.resistor_count, 4u);
  EXPECT_EQ(s.sink_count, 1u);
  EXPECT_EQ(s.simple_path_count, 2u);
  EXPECT_FALSE(s.is_tree);
}

TEST(Stats, AggregateCountsNonTreeAndHistogram) {
  std::vector<RcNet> nets{chain4(), diamond(), chain4()};
  const CollectionStats agg = aggregate_stats(nets, 1);
  EXPECT_EQ(agg.net_count, 3u);
  EXPECT_EQ(agg.non_tree_count, 1u);
  EXPECT_EQ(agg.max_simple_paths, 2u);
  EXPECT_EQ(agg.max_nodes, 4u);
  // Histogram buckets of width 1: two nets with 1 path, one with 2.
  ASSERT_GE(agg.path_histogram.size(), 3u);
  EXPECT_EQ(agg.path_histogram[1], 2u);
  EXPECT_EQ(agg.path_histogram[2], 1u);
}

TEST(Stats, PathCountsStayBoundedLikeFig2b) {
  // The paper's Fig. 2(b): wire path counts stay small (max 49 at 200k nets).
  std::mt19937_64 rng(21);
  NetGenConfig cfg;
  std::vector<RcNet> nets;
  for (int i = 0; i < 200; ++i) nets.push_back(generate_net(cfg, rng, "n"));
  const CollectionStats agg = aggregate_stats(nets);
  EXPECT_LE(agg.max_simple_paths, 128u);
  EXPECT_GE(agg.mean_simple_paths, 1.0);
  EXPECT_LE(agg.mean_simple_paths, 30.0);
}

}  // namespace
