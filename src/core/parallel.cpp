#include "core/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <random>
#include <sstream>

#include "core/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/optim.hpp"

namespace gnntrans::core {

namespace {

/// Deep-copies a model through its serialized form.
std::unique_ptr<nn::WireModel> clone_model(const nn::WireModel& model) {
  std::stringstream buffer;
  nn::save_model(buffer, model);
  return nn::load_model(buffer);
}

/// Copies master parameter values into a replica (shapes always match).
void broadcast(const std::vector<tensor::Tensor>& master,
               std::vector<tensor::Tensor>& replica) {
  for (std::size_t i = 0; i < master.size(); ++i)
    std::copy(master[i].values().begin(), master[i].values().end(),
              replica[i].values().begin());
}

}  // namespace

TrainReport train_model_parallel(nn::WireModel& model,
                                 const std::vector<nn::GraphSample>& samples,
                                 const ParallelTrainConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  TrainReport report;
  if (samples.empty()) return report;
  const std::size_t workers = std::max<std::size_t>(1, config.workers);

  // Replicas (each with its own tape and gradient buffers).
  std::vector<std::unique_ptr<nn::WireModel>> replicas;
  std::vector<std::vector<tensor::Tensor>> replica_params;
  for (std::size_t w = 0; w < workers; ++w) {
    replicas.push_back(clone_model(model));
    replica_params.push_back(replicas.back()->parameters());
  }

  std::vector<tensor::Tensor> master_params = model.parameters();
  tensor::Adam::Config adam_cfg;
  adam_cfg.learning_rate = config.base.learning_rate;
  adam_cfg.weight_decay = config.base.weight_decay;
  tensor::Adam optimizer(master_params, adam_cfg);

  std::mt19937_64 rng(config.base.shuffle_seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  // One persistent pool for the whole run; workers are parked between
  // mini-batches instead of being respawned per batch.
  ThreadPool pool(workers);

  float lr = config.base.learning_rate;
  for (std::size_t epoch = 0; epoch < config.base.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;

    for (std::size_t batch = 0; batch < order.size(); batch += workers) {
      const std::size_t batch_size = std::min(workers, order.size() - batch);

      // Fan out: each shard computes gradients over one sample. Shard w uses
      // replica w exclusively, whichever pool thread picks it up.
      std::vector<double> worker_loss(batch_size, 0.0);
      pool.parallel_for(batch_size, [&](std::size_t w, std::size_t) {
        nn::WireModel& replica = *replicas[w];
        for (tensor::Tensor& p : replica_params[w]) p.zero_grad();
        const nn::GraphSample& sample = samples[order[batch + w]];
        const nn::WirePrediction pred = replica.forward(sample);
        tensor::Tensor loss = tensor::add(
            tensor::scale(tensor::mse_loss(pred.slew, sample.slew_label),
                          config.base.slew_loss_weight),
            tensor::scale(tensor::mse_loss(pred.delay, sample.delay_label),
                          config.base.delay_loss_weight));
        loss.backward();
        worker_loss[w] = loss.item();
      });

      // Reduce: sum shard gradients into the master (mean over the batch so
      // the effective step is comparable to the sequential trainer's).
      optimizer.zero_grad();
      const float inv_batch = 1.0f / static_cast<float>(batch_size);
      for (std::size_t i = 0; i < master_params.size(); ++i) {
        master_params[i].impl()->ensure_grad();
        auto grad = master_params[i].grad();
        for (std::size_t w = 0; w < batch_size; ++w) {
          const auto shard = replica_params[w][i].grad();
          if (shard.empty()) continue;
          for (std::size_t j = 0; j < grad.size(); ++j)
            grad[j] += shard[j] * inv_batch;
        }
      }
      clip_grad_norm(master_params, config.base.grad_clip);
      optimizer.step();

      // Broadcast updated weights to every replica.
      for (std::size_t w = 0; w < workers; ++w)
        broadcast(master_params, replica_params[w]);

      for (double l : worker_loss) loss_sum += l;
    }

    const double mean_loss = loss_sum / static_cast<double>(order.size());
    report.epoch_loss.push_back(mean_loss);
    if (config.base.on_epoch) config.base.on_epoch(epoch, mean_loss);
    lr *= config.base.lr_decay;
    optimizer.set_learning_rate(lr);
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

}  // namespace gnntrans::core
