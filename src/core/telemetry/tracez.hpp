/// \file tracez.hpp
/// Retained slowest-N request traces backing the obs server's /tracez
/// endpoint.
///
/// The TraceRecorder rings hold raw spans — good for a timeline, bad for
/// answering "where did request 4711's 12 ms go?" after the fact. This store
/// keeps the assembled per-request stage breakdown (queue wait, batch-
/// formation wait, model featurize/forward/fallback share, response
/// serialization, socket write) for the slowest N head-sampled requests, so
/// a p99 exemplar's trace_id scraped from /metrics resolves to a full stage
/// accounting on /tracez. Fixed memory: a mutex-guarded array of
/// trivially-copyable records, replaced by wall-time rank.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

namespace gnntrans::telemetry {

namespace detail {
inline void copy_field(char* dst, std::size_t cap, std::string_view src) noexcept {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}
}  // namespace detail

/// One completed, head-sampled request with its stage clock. Durations are
/// seconds; the stage sum telescopes to wall_seconds up to clock-read noise
/// (the server stamps adjacent boundaries with the same clock reads).
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint32_t attempt = 0;
  std::uint32_t batch_size = 0;
  char net[48] = {0};
  char provenance[16] = {0};
  double wall_seconds = 0.0;        ///< admission to socket-write completion
  double queue_seconds = 0.0;       ///< admission queue wait
  double batch_wait_seconds = 0.0;  ///< in-batch wait on peer nets
  double model_seconds = 0.0;       ///< this net's featurize+forward+fallback
  double featurize_seconds = 0.0;   ///< share of model_seconds
  double forward_seconds = 0.0;     ///< share of model_seconds
  double fallback_seconds = 0.0;    ///< share of model_seconds
  double serialize_seconds = 0.0;   ///< response frame encode
  double write_seconds = 0.0;       ///< outbox enqueue to send_all completion
  bool slow = false;
  bool degraded = false;

  void set_net(std::string_view name) noexcept {
    detail::copy_field(net, sizeof(net), name);
  }
  void set_provenance(std::string_view p) noexcept {
    detail::copy_field(provenance, sizeof(provenance), p);
  }

  /// Sum of the top-level stages (model subsumes its three shares).
  [[nodiscard]] double stage_sum_seconds() const noexcept {
    return queue_seconds + batch_wait_seconds + model_seconds +
           serialize_seconds + write_seconds;
  }
};

/// Process-global keeper of the slowest-N completed request traces.
/// Thread-safe; record() is called once per sampled request (not per net),
/// so a mutex is plenty.
class RequestTraceStore {
 public:
  RequestTraceStore() = default;
  RequestTraceStore(const RequestTraceStore&) = delete;
  RequestTraceStore& operator=(const RequestTraceStore&) = delete;

  [[nodiscard]] static RequestTraceStore& global();

  /// Retains the trace if it ranks among the slowest N by wall_seconds.
  void record(const RequestTrace& trace);

  /// Retained traces, slowest first.
  [[nodiscard]] std::vector<RequestTrace> snapshot() const;

  /// Looks up a retained trace by id (exemplar resolution). False if the
  /// trace was never retained or has been displaced by slower requests.
  [[nodiscard]] bool find(std::uint64_t trace_id, RequestTrace* out) const;

  /// {"traces":[...]} with stage durations in microseconds, slowest first;
  /// limit 0 = all retained.
  void write_json(std::ostream& out, std::size_t limit = 0) const;

  /// Total record() calls since the last clear (retained or not).
  [[nodiscard]] std::uint64_t recorded_count() const;

  void clear();

  /// Retention slots (default 64). Shrinking drops the fastest extras.
  void set_capacity(std::size_t slots);

 private:
  mutable std::mutex mutex_;
  std::vector<RequestTrace> slowest_;  ///< unsorted; sorted on read
  std::size_t capacity_ = 64;
  std::uint64_t recorded_ = 0;
};

}  // namespace gnntrans::telemetry
