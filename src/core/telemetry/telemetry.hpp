/// \file telemetry.hpp
/// Umbrella header for the observability subsystem: structured logging
/// (log.hpp), the sharded metrics registry (metrics.hpp), trace-span
/// profiling with adaptive sampling and request head sampling (trace.hpp),
/// retained slowest-N request traces for /tracez (tracez.hpp), the per-net
/// flight recorder (flight_recorder.hpp), the HTTP scrape server (obs_server.hpp),
/// the periodic stats reporter (stats_reporter.hpp), and the model-quality
/// monitor (quality.hpp: shadow scoring, feature drift, accuracy-aware
/// readiness). Zero external
/// dependencies; see DESIGN.md "Telemetry" for the architecture and
/// overhead budget.
#pragma once

#include "core/telemetry/flight_recorder.hpp"
#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/obs_server.hpp"
#include "core/telemetry/quality.hpp"
#include "core/telemetry/stats_reporter.hpp"
#include "core/telemetry/trace.hpp"
#include "core/telemetry/tracez.hpp"
