// Verilog-subset writer/parser round-trip tests, plus the combined
// Verilog + SPEF design-exchange flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/metrics.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "netlist/verilog.hpp"
#include "rcnet/spef.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::netlist;

Design make_design(std::uint64_t seed = 7) {
  DesignGenConfig cfg;
  cfg.startpoints = 5;
  cfg.levels = 4;
  cfg.cells_per_level = 7;
  cfg.seed = seed;
  const auto lib = cell::CellLibrary::make_default();
  return generate_design(cfg, lib, "rt_core");
}

TEST(Verilog, RoundTripPreservesStructure) {
  const auto lib = cell::CellLibrary::make_default();
  const Design original = make_design();
  std::istringstream in(to_verilog(original, lib));
  const VerilogParseResult parsed = parse_verilog(in, lib);
  for (const std::string& w : parsed.warnings) ADD_FAILURE() << w;

  EXPECT_EQ(parsed.design.name, original.name);
  EXPECT_EQ(parsed.design.cell_count(), original.cell_count());
  EXPECT_EQ(parsed.design.net_count(), original.net_count());
  EXPECT_EQ(parsed.design.startpoints.size(), original.startpoints.size());
  EXPECT_EQ(parsed.design.endpoints.size(), original.endpoints.size());
  EXPECT_TRUE(parsed.design.validate().empty());
}

TEST(Verilog, RoundTripPreservesCellBindings) {
  const auto lib = cell::CellLibrary::make_default();
  const Design original = make_design(9);
  std::istringstream in(to_verilog(original, lib));
  const Design parsed = parse_verilog(in, lib).design;
  ASSERT_EQ(parsed.cell_count(), original.cell_count());
  // Instances are emitted in id order, so bindings must match positionally.
  for (InstanceId u = 0; u < original.cell_count(); ++u)
    EXPECT_EQ(parsed.instances[u].cell_index, original.instances[u].cell_index)
        << "instance " << u;
}

TEST(Verilog, RoundTripPreservesConnectivity) {
  const auto lib = cell::CellLibrary::make_default();
  const Design original = make_design(11);
  std::istringstream in(to_verilog(original, lib));
  const Design parsed = parse_verilog(in, lib).design;
  ASSERT_EQ(parsed.net_count(), original.net_count());
  // Nets may be reordered (map by name); loads must match as multisets.
  std::map<std::string, std::vector<InstanceId>> original_loads;
  for (const DesignNet& net : original.nets) {
    auto loads = net.loads;
    std::sort(loads.begin(), loads.end());
    original_loads[net.rc.name] = loads;
  }
  for (const DesignNet& net : parsed.nets) {
    auto loads = net.loads;
    std::sort(loads.begin(), loads.end());
    ASSERT_TRUE(original_loads.count(net.rc.name)) << net.rc.name;
    EXPECT_EQ(loads, original_loads[net.rc.name]) << net.rc.name;
  }
}

TEST(Verilog, UnknownCellSkippedWithWarning) {
  const auto lib = cell::CellLibrary::make_default();
  std::istringstream in(
      "module m ();\n  wire a;\n  BOGUS_X9 u0 (.Y(a));\n  DFF_X1 u1 (.D(a));\n"
      "endmodule\n");
  const VerilogParseResult r = parse_verilog(in, lib);
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings.front().find("BOGUS_X9"), std::string::npos);
}

TEST(Verilog, CommentsIgnored) {
  const auto lib = cell::CellLibrary::make_default();
  std::istringstream in(
      "// top comment\nmodule m ();\n  wire w; // trailing\n"
      "  DFF_X1 u0 (.Q(w));\n  DFF_X1 u1 (.D(w));\nendmodule\n");
  const VerilogParseResult r = parse_verilog(in, lib);
  EXPECT_TRUE(r.warnings.empty());
  EXPECT_EQ(r.design.cell_count(), 2u);
  EXPECT_EQ(r.design.net_count(), 1u);
}

TEST(VerilogSpef, CombinedExchangeReproducesStaArrivals) {
  const auto lib = cell::CellLibrary::make_default();
  const Design original = make_design(13);

  // Handoff: write Verilog + SPEF.
  std::ostringstream verilog_out;
  write_verilog(verilog_out, original, lib);
  std::vector<rcnet::RcNet> rc_nets;
  for (const DesignNet& net : original.nets) rc_nets.push_back(net.rc);
  std::ostringstream spef_out;
  spef_out.precision(17);
  rcnet::write_spef(spef_out, rc_nets);

  // Consumption: parse both, join, and time.
  std::istringstream verilog_in(verilog_out.str());
  VerilogParseResult parsed = parse_verilog(verilog_in, lib);
  std::istringstream spef_in(spef_out.str());
  const rcnet::SpefParseResult spef = rcnet::parse_spef(spef_in);
  std::vector<std::string> warnings;
  attach_spef(parsed.design, spef.nets, &warnings);
  for (const std::string& w : warnings) ADD_FAILURE() << w;
  ASSERT_TRUE(parsed.design.validate().empty());

  sim::TransientConfig tc;
  tc.steps = 400;
  GoldenWireSource w1(tc), w2(tc);
  const StaResult ref = run_sta(original, lib, w1);
  const StaResult got = run_sta(parsed.design, lib, w2);
  ASSERT_EQ(ref.endpoint_arrival.size(), got.endpoint_arrival.size());
  // Endpoint sets may be ordered differently; compare as sorted multisets.
  auto a = ref.endpoint_arrival;
  auto b = got.endpoint_arrival;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 1e-15 + 1e-9 * a[i]) << "endpoint rank " << i;
}

TEST(VerilogSpef, MissingSpefNetKeepsFallbackWithWarning) {
  const auto lib = cell::CellLibrary::make_default();
  const Design original = make_design(17);
  std::istringstream verilog_in(to_verilog(original, lib));
  VerilogParseResult parsed = parse_verilog(verilog_in, lib);

  std::vector<std::string> warnings;
  attach_spef(parsed.design, {}, &warnings);  // empty SPEF
  EXPECT_EQ(warnings.size(), parsed.design.net_count());
  // Star fallbacks still produce a valid, timeable design.
  EXPECT_TRUE(parsed.design.validate().empty());
}

}  // namespace
