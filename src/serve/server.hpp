/// \file server.hpp
/// The hardened network serving front-end: NetServer.
///
/// Architecture (raw POSIX sockets, in the style of telemetry::ObsServer):
///
///   accept thread ──► per-connection threads ──► admission queue ──► batcher
///        │                  │  ▲                                       │
///        │                  │  └── outbox (encoded responses) ◄────────┘
///        └ self-pipe        └ wake pipe per connection
///
/// Connection threads reassemble length-prefixed frames, decode them, and run
/// the admission path: draining → typed kShuttingDown reject; bounded queue
/// full → typed kOverloaded reject (load is *shed*, never silently dropped);
/// otherwise the request is queued with its arrival time. The batcher
/// coalesces requests across clients and flushes on size-or-age (batch_max /
/// flush_age_seconds — the classic COMM_MIN/COMM_DELAY pair), expires
/// requests whose own deadline already passed (typed kDeadlineExceeded),
/// propagates the tightest remaining deadline into
/// BatchOptions::deadline_seconds, and serves the batch through one
/// estimate_batch call — so the estimator's thread pool, workspace arenas,
/// and degradation ladder are shared by every client. Responses are encoded
/// and handed back to the owning connection's outbox; the connection thread
/// writes them with a bounded send (slow clients time out, they do not wedge
/// the batcher).
///
/// Backpressure is observable end to end: queue depth and oldest-request age
/// feed the PoolAutoscaler's QueueSignal (demand grows with backlog, an aging
/// queue overrides grow hysteresis) and are exported as gnntrans_net_*
/// gauges; every reject increments a per-reason counter.
///
/// Shutdown is a graceful drain: stop() stops accepting, rejects new
/// admissions (kShuttingDown), lets the batcher flush everything in flight,
/// delivers the responses, then closes connections and joins every thread.
/// Every wait in the server is bounded (poll ticks + timeouts), so stop()
/// cannot hang on a stuck peer.
///
/// Fault injection: when core::FaultInjector::global() is armed with network
/// sites, the server consults kAccept (keyed "accept/<seq>"), kNetRead /
/// kNetWrite / kNetDecode (keyed "req/<id>/<attempt>") at the corresponding
/// pipeline points. Keys include the client's attempt counter, so a retry
/// re-rolls deterministically instead of failing forever. The soak test arms
/// only kNetworkSiteMask: the model path stays fault-free and served
/// responses stay bitwise-identical to a direct estimate_batch call.
///
/// Request tracing: every request carries a per-request stage clock —
/// admission, queue wait, batch-formation wait, model share (from
/// NetOutcome), response serialization, socket write — observed into the
/// gnntrans_net_stage_* histograms for all requests. Head-sampled requests
/// (protocol v2 trace block, TraceContext::sampled) additionally get
/// request-tagged trace spans + flow steps on every thread they cross, a
/// retained stage breakdown in telemetry::RequestTraceStore (/tracez), a
/// p99 exemplar on gnntrans_net_request_seconds, and — when slow or
/// degraded — a pinned flight-recorder entry. All of it is telemetry-only:
/// traced and untraced runs produce bitwise-identical estimates.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/autoscaler.hpp"
#include "core/estimator.hpp"
#include "core/telemetry/tracez.hpp"
#include "core/thread_pool.hpp"
#include "serve/protocol.hpp"

namespace gnntrans::serve {

struct NetServerConfig {
  std::string addr = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after start().
  std::uint16_t port = 0;
  int backlog = 64;
  /// Concurrent connections beyond this are answered with a connection-level
  /// kOverloaded response (request_id 0) and closed.
  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Admission queue bound: requests beyond this are load-shed with a typed
  /// kOverloaded reject. Never a silent drop.
  std::size_t queue_capacity = 1024;
  /// Flush the coalescing queue once this many requests are waiting…
  std::size_t batch_max = 64;
  /// …or once the oldest waiting request is this old, whichever first.
  double flush_age_seconds = 2e-3;

  /// A connection holding a *partial* frame longer than this is closed as
  /// half-open. Idle connections with no partial frame may stay.
  int read_timeout_ms = 5000;
  /// Bound on writing one response to a slow client; past it the connection
  /// is closed and the response counted undeliverable.
  int write_timeout_ms = 5000;

  /// Degradation/slow-log template for every batch. threads/pool/workspaces/
  /// outcomes/deadline_seconds/cache are managed by the server and ignored
  /// here (caching is cache_bytes's job).
  core::BatchOptions batch;
  /// Byte budget of the server-owned content-addressed estimate cache; 0
  /// disables caching. Repeat traffic (identical parasitics + context) is
  /// served from stored model results — bitwise-identical values, tagged
  /// kCached — without touching featurize/forward.
  std::size_t cache_bytes = 0;
  /// Worker count of the server-owned inference pool (start value when
  /// autoscaling).
  std::size_t threads = 1;
  /// Metrics-driven pool autoscaling with the queue signal folded in.
  bool enable_autoscale = false;
  core::AutoscalerConfig autoscale;
};

/// Exact request accounting, exposed for tests (the soak test proves every
/// request lands in exactly one of these buckets). All counts are cumulative
/// since start().
struct NetServerLedger {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected_overload{0};
  std::atomic<std::uint64_t> frames{0};          ///< complete frames read
  std::atomic<std::uint64_t> requests_decoded{0};///< frames that decoded OK
  std::atomic<std::uint64_t> served{0};          ///< responses handed to a live outbox
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_malformed{0};  ///< decode rejects (incl. injected)
  std::atomic<std::uint64_t> rejected_deadline{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> batches{0};
  /// Responses that could not be delivered: connection already gone or the
  /// bounded write failed/timed out after the response left the batcher.
  std::atomic<std::uint64_t> undeliverable{0};
  /// Injected network faults consumed, by site.
  std::atomic<std::uint64_t> faults_accept{0};
  std::atomic<std::uint64_t> faults_read{0};
  std::atomic<std::uint64_t> faults_write{0};
  std::atomic<std::uint64_t> faults_decode{0};

  [[nodiscard]] std::uint64_t rejected_total() const noexcept {
    return rejected_overload.load() + rejected_malformed.load() +
           rejected_deadline.load() + rejected_shutdown.load();
  }
};

/// The server. start()/stop() are not thread-safe against each other; every
/// other member is safe to read from any thread.
class NetServer {
 public:
  /// \p estimator must outlive the server.
  NetServer(const core::WireTimingEstimator& estimator, NetServerConfig config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds (EADDRINUSE retry + ephemeral-port support via bind_listener) and
  /// spawns the accept + batcher threads. Throws std::runtime_error on bind
  /// failure.
  void start();

  /// Graceful drain: stop accepting, reject new admissions (kShuttingDown),
  /// flush every queued request through the estimator, deliver the responses,
  /// then close all connections and join all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Port actually bound (resolves port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] const NetServerLedger& ledger() const noexcept {
    return ledger_;
  }
  /// Aggregated inference stats over every batch served.
  [[nodiscard]] core::InferenceStats stats() const;
  /// The server-owned estimate cache, or nullptr when cache_bytes == 0.
  [[nodiscard]] const core::EstimateCache* cache() const noexcept {
    return cache_.get();
  }
  [[nodiscard]] const NetServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Connection;
  struct Pending;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void batch_loop();

  /// Handles one complete frame payload on \p conn: fault gates, decode,
  /// admission. Returns false when the connection must be closed.
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    std::string payload);

  /// Encodes a typed reject and queues it on \p conn's outbox.
  void send_reject(const std::shared_ptr<Connection>& conn,
                   std::uint64_t request_id, std::uint32_t attempt,
                   core::ErrorCode code, const std::string& message);

  /// Queues an encoded frame on \p conn's outbox and wakes its thread.
  /// Returns false when the connection is already closing. \p trace, when
  /// set, is the partially-filled stage breakdown of a head-sampled request;
  /// the connection thread finalizes it (write stage + wall from
  /// \p admitted) after the socket write succeeds.
  bool enqueue_response(
      const std::shared_ptr<Connection>& conn, std::string frame,
      std::unique_ptr<telemetry::RequestTrace> trace = nullptr,
      std::chrono::steady_clock::time_point admitted = {});

  void reap_finished_connections();

  const core::WireTimingEstimator& estimator_;
  NetServerConfig config_;
  NetServerLedger ledger_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};   ///< admission closed (stop() entered)
  std::atomic<bool> closing_conns_{false};  ///< connection threads must exit
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  std::uint64_t accept_seq_ = 0;  ///< accept-loop only (fault keying)

  std::thread accept_thread_;
  std::thread batch_thread_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::atomic<std::size_t> active_conns_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  // Server-owned inference resources (batcher thread only after start).
  std::unique_ptr<core::ThreadPool> pool_;
  std::vector<nn::Workspace> workspaces_;
  std::unique_ptr<core::PoolAutoscaler> autoscaler_;
  std::unique_ptr<core::EstimateCache> cache_;  ///< set when cache_bytes > 0

  mutable std::mutex stats_mutex_;
  core::InferenceStats stats_;
};

}  // namespace gnntrans::serve
