/// \file wire_analysis.hpp
/// Analytical wire analysis bundle consumed by feature extraction (Table I).
///
/// Combines the moment engine, the D2M metric, and shortest-path-tree-based
/// downstream capacitance / stage delay into one pass over a net. All
/// quantities are well defined on both tree and non-tree nets: non-tree nets
/// use exact MNA moments and the Dijkstra shortest-path tree (the paper's
/// "wire path + branches" decomposition).
#pragma once

#include <vector>

#include "rcnet/paths.hpp"
#include "rcnet/rcnet.hpp"
#include "sim/moments.hpp"

namespace gnntrans::sim {

/// Per-node and per-path analytical results for one net.
struct WireAnalysis {
  Moments moments;                    ///< exact MNA moments (m1 = Elmore)
  std::vector<double> d2m;            ///< D2M delay metric per node
  std::vector<double> downstream_cap; ///< farads, on the shortest-path tree
  std::vector<double> stage_delay;    ///< m1[v] - m1[parent(v)], clamped at 0
  rcnet::ShortestPathTree sp_tree;
  std::vector<rcnet::WirePath> paths; ///< one timing path per sink
};

/// Runs the full analytical pass over \p net.
///
/// Precondition: net.validate() is empty.
[[nodiscard]] WireAnalysis analyze_wire(const rcnet::RcNet& net);

}  // namespace gnntrans::sim
