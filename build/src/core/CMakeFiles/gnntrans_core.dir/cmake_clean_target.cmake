file(REMOVE_RECURSE
  "libgnntrans_core.a"
)
