// Reproduces Table V: path arrival time accuracy (R^2 / max abs error) and
// runtime on the 7 test designs.
//
// Protocol (CPU-scaled from the paper):
//  1. Golden STA (transient wire timing with SI) over the 11 training designs
//     yields labeled nets under their true propagated slews.
//  2. Train DAC20 and GNNTrans under three layer plans:
//     PlanA (L1=5, L2=1), PlanB (4, 2), PlanC (3, 3) — the paper's 25/5,
//     20/10, 15/15 divided by the global depth scale of 5.
//  3. On each test design, run golden STA (reference; R^2 = 1 by definition)
//     and STA with each learned wire source; compare endpoint arrivals and
//     wall-clock split (gate vs wire).
#include <cstdio>
#include <unordered_map>

#include "core/metrics.hpp"
#include "support.hpp"

using namespace gnntrans;
using bench::TablePrinter;

namespace {

/// Adapts the DAC'20 estimator to the STA wire-timing interface.
class Dac20WireSource final : public netlist::WireTimingSource {
 public:
  Dac20WireSource(const baseline::Dac20Estimator& estimator,
                  const netlist::Design& design, const cell::CellLibrary& library)
      : estimator_(estimator), design_(design), library_(library) {
    for (std::size_t i = 0; i < design.nets.size(); ++i)
      net_by_name_.emplace(design.nets[i].rc.name, i);
  }

  std::vector<sim::SinkTiming> time_net(const rcnet::RcNet& net,
                                        double input_slew,
                                        double driver_resistance) override {
    features::NetContext ctx;
    ctx.input_slew = input_slew;
    ctx.driver_resistance = driver_resistance;
    const auto it = net_by_name_.find(net.name);
    if (it != net_by_name_.end()) {
      const netlist::DesignNet& dnet = design_.nets[it->second];
      const cell::Cell& driver =
          library_.at(design_.instances[dnet.driver].cell_index);
      ctx.driver_strength = driver.drive_strength;
      ctx.driver_function = static_cast<std::uint32_t>(driver.function);
      for (netlist::InstanceId load : dnet.loads) {
        const cell::Cell& lc = library_.at(design_.instances[load].cell_index);
        ctx.loads.push_back({lc.drive_strength,
                             static_cast<std::uint32_t>(lc.function), lc.input_cap});
      }
    } else {
      ctx.loads.assign(net.sinks.size(), features::SinkLoad{});
    }
    std::vector<sim::SinkTiming> out;
    for (const baseline::PathTiming& pt : estimator_.estimate(net, ctx)) {
      sim::SinkTiming st;
      st.sink = pt.sink;
      st.delay = pt.delay;
      st.slew = std::max(1e-12, pt.slew);
      st.settled = true;
      out.push_back(st);
    }
    return out;
  }

  [[nodiscard]] std::string name() const override { return "DAC20"; }

 private:
  const baseline::Dac20Estimator& estimator_;
  const netlist::Design& design_;
  const cell::CellLibrary& library_;
  std::unordered_map<std::string, std::size_t> net_by_name_;
};

struct ArrivalScore {
  double r2 = 0.0;
  double max_err_ps = 0.0;
};

ArrivalScore score(const std::vector<double>& pred,
                   const std::vector<double>& ref) {
  ArrivalScore s;
  s.r2 = core::r2_score(pred, ref);
  s.max_err_ps = core::max_abs_error(pred, ref) * 1e12;
  return s;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const auto lib = cell::CellLibrary::make_default();
  sim::TransientConfig tc;
  tc.steps = scale.sim_steps;

  std::printf("=== Table V reproduction: path arrival time accuracy & runtime ===\n\n");

  // ---- 1. Labeled training nets from the 11 training designs ----
  std::printf("[data] timing training designs with golden STA...\n");
  std::vector<features::WireRecord> train_records;
  for (const netlist::BenchmarkSpec& spec : netlist::paper_benchmarks(scale.factor)) {
    if (!spec.training) continue;
    const netlist::Design d = netlist::generate_design(spec.config, lib, spec.name);
    netlist::GoldenWireSource golden(tc);
    const netlist::StaResult sta = netlist::run_sta(d, lib, golden);
    sim::GoldenTimer timer(tc);
    auto recs = features::records_from_design(d, lib, timer, &sta.slew);
    std::move(recs.begin(), recs.end(), std::back_inserter(train_records));
  }
  std::printf("[data] %zu labeled training nets\n", train_records.size());

  // ---- 2. Train the estimators ----
  std::printf("[train] DAC20...\n");
  baseline::Dac20Estimator dac;
  baseline::GbdtConfig gcfg;
  gcfg.trees = 120;
  dac.train(train_records, gcfg);

  struct Plan {
    const char* name;
    std::size_t l1, l2;
    core::WireTimingEstimator estimator;
  };
  std::vector<Plan> plans;
  const std::tuple<const char*, std::size_t, std::size_t> plan_defs[] = {
      {"PlanA", 5, 1}, {"PlanB", 4, 2}, {"PlanC", 3, 3}};
  for (const auto& [name, l1, l2] : plan_defs) {
    std::printf("[train] GNNTrans %s (L1=%zu, L2=%zu)...\n", name, l1, l2);
    plans.push_back(
        {name, l1, l2, bench::train_gnntrans(scale, train_records, l1, l2)});
  }

  // ---- 3. Evaluate on the 7 test designs ----
  TablePrinter table({"Benchmark", "PrimeTime", "DAC20", "PlanA", "PlanB",
                      "PlanC", "STA-SI Full", "Gate(s)", "Wire(s)", "Total(s)"},
                     {12, 13, 15, 15, 15, 15, 13, 9, 9, 9});
  std::printf("\nPath arrival accuracy: R^2/MAE(ps); runtime in seconds\n");
  table.print_header();

  double sum_r2[4] = {0, 0, 0, 0};
  double sum_mae[4] = {0, 0, 0, 0};
  double sum_full = 0, sum_gate = 0, sum_wire = 0;
  std::size_t design_count = 0;

  for (const netlist::BenchmarkSpec& spec : netlist::paper_benchmarks(scale.factor)) {
    if (spec.training) continue;
    ++design_count;
    const netlist::Design d = netlist::generate_design(spec.config, lib, spec.name);

    netlist::GoldenWireSource golden(tc);
    const netlist::StaResult ref = netlist::run_sta(d, lib, golden);
    const double full_runtime = ref.gate_seconds + ref.wire_seconds;

    Dac20WireSource dac_source(dac, d, lib);
    const netlist::StaResult dac_sta = netlist::run_sta(d, lib, dac_source);
    const ArrivalScore dac_score =
        score(dac_sta.endpoint_arrival, ref.endpoint_arrival);

    ArrivalScore plan_scores[3];
    double gate_s = 0, wire_s = 0;
    for (std::size_t p = 0; p < plans.size(); ++p) {
      core::EstimatorWireSource source(plans[p].estimator, d, lib);
      const netlist::StaResult sta = netlist::run_sta(d, lib, source);
      plan_scores[p] = score(sta.endpoint_arrival, ref.endpoint_arrival);
      if (plans[p].name == std::string("PlanB")) {
        gate_s = sta.gate_seconds;
        wire_s = sta.wire_seconds;
      }
    }

    sum_r2[0] += dac_score.r2;
    sum_mae[0] += dac_score.max_err_ps;
    for (int p = 0; p < 3; ++p) {
      sum_r2[p + 1] += plan_scores[p].r2;
      sum_mae[p + 1] += plan_scores[p].max_err_ps;
    }
    sum_full += full_runtime;
    sum_gate += gate_s;
    sum_wire += wire_s;

    table.print_row(
        {spec.name, "1.000/0.00",
         TablePrinter::fmt(dac_score.r2) + "/" +
             TablePrinter::fmt(dac_score.max_err_ps, 2),
         TablePrinter::fmt(plan_scores[0].r2) + "/" +
             TablePrinter::fmt(plan_scores[0].max_err_ps, 2),
         TablePrinter::fmt(plan_scores[1].r2) + "/" +
             TablePrinter::fmt(plan_scores[1].max_err_ps, 2),
         TablePrinter::fmt(plan_scores[2].r2) + "/" +
             TablePrinter::fmt(plan_scores[2].max_err_ps, 2),
         TablePrinter::fmt(full_runtime, 2), TablePrinter::fmt(gate_s, 2),
         TablePrinter::fmt(wire_s, 2), TablePrinter::fmt(gate_s + wire_s, 2)});
  }

  const double n = static_cast<double>(design_count);
  table.print_row(
      {"Average", "1.000/0.00",
       TablePrinter::fmt(sum_r2[0] / n) + "/" + TablePrinter::fmt(sum_mae[0] / n, 2),
       TablePrinter::fmt(sum_r2[1] / n) + "/" + TablePrinter::fmt(sum_mae[1] / n, 2),
       TablePrinter::fmt(sum_r2[2] / n) + "/" + TablePrinter::fmt(sum_mae[2] / n, 2),
       TablePrinter::fmt(sum_r2[3] / n) + "/" + TablePrinter::fmt(sum_mae[3] / n, 2),
       TablePrinter::fmt(sum_full / n, 2), TablePrinter::fmt(sum_gate / n, 2),
       TablePrinter::fmt(sum_wire / n, 2),
       TablePrinter::fmt((sum_gate + sum_wire) / n, 2)});

  std::printf(
      "\nPaper averages (Table V): DAC20 0.648/74.59ps; PlanA 0.968/3.48ps; "
      "PlanB 0.985/1.93ps; PlanC 0.981/1.70ps.\nRuntime shape to hold: our "
      "wire timing is a small fraction of full STA-SI wall time\n(the paper's "
      "wire column is ~6x to 12x cheaper than full STA).\n");
  return 0;
}
