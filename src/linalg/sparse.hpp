/// \file sparse.hpp
/// Compressed-sparse-row matrix and conjugate-gradient solver.
///
/// Used for larger coupled systems (multi-net SI simulation) where dense
/// factorization would waste memory, and as an independent cross-check of the
/// dense solvers in tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gnntrans::linalg {

/// Coordinate-format entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR sparse matrix; duplicate triplets are summed at build time.
class CsrMatrix {
 public:
  /// Builds an n x n CSR matrix from (possibly duplicated) triplets.
  static CsrMatrix from_triplets(std::size_t n, std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x. Requires x.size() == size().
  [[nodiscard]] std::vector<double> matvec(std::span<const double> x) const;

  /// Copy of the diagonal (zero where absent); used by the Jacobi preconditioner.
  [[nodiscard]] std::vector<double> diagonal() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_starts_;
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

/// Result of a conjugate-gradient solve.
struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Jacobi-preconditioned conjugate gradient for SPD systems A x = b.
///
/// \param tol relative residual tolerance ||r|| <= tol * ||b||.
[[nodiscard]] CgResult conjugate_gradient(const CsrMatrix& a,
                                          std::span<const double> b,
                                          double tol = 1e-10,
                                          std::size_t max_iters = 10'000);

}  // namespace gnntrans::linalg
