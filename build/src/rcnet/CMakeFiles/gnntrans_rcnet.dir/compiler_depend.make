# Empty compiler generated dependencies file for gnntrans_rcnet.
# This may be replaced when dependencies are built.
