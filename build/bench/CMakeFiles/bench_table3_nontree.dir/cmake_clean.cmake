file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nontree.dir/bench_table3_nontree.cpp.o"
  "CMakeFiles/bench_table3_nontree.dir/bench_table3_nontree.cpp.o.d"
  "bench_table3_nontree"
  "bench_table3_nontree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nontree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
