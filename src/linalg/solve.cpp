#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gnntrans::linalg {

std::optional<LuFactor> LuFactor::factor(Matrix a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest entry in column k at or below row k.
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return std::nullopt;  // singular
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot, c));
      std::swap(perm[k], perm[pivot]);
    }
    const double inv_pivot = 1.0 / a(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a(r, k) * inv_pivot;
      a(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= factor * a(k, c);
    }
  }
  return LuFactor(std::move(a), std::move(perm));
}

std::vector<double> LuFactor::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  std::vector<double> x(n);
  // Forward substitution with permuted RHS: L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

std::optional<CholeskyFactor> CholeskyFactor::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) return std::nullopt;  // not positive definite
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return CholeskyFactor(std::move(l));
}

std::vector<double> CholeskyFactor::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  std::vector<double> x(n);
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * x[j];
    x[i] = acc / l_(i, i);
  }
  // Backward: Lt x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

}  // namespace gnntrans::linalg
