/// \file awe.hpp
/// Two-pole AWE (Asymptotic Waveform Evaluation) delay/slew metric.
///
/// The "complex timing model" family the paper's introduction says cannot
/// trade accuracy against runtime on large designs: match the first three
/// voltage-transfer moments (m1, m2, m3) at each node to a two-pole reduced
/// model and extract 50% delay and 20/80 slew from its step response. More
/// accurate than Elmore/D2M on resistively-shielded and non-tree nets, and
/// far cheaper than transient simulation — but, as the paper argues, still
/// an approximation the learned estimator beats at similar cost.
#pragma once

#include <vector>

#include "rcnet/rcnet.hpp"
#include "sim/moments.hpp"

namespace gnntrans::sim {

/// Per-node two-pole estimate.
struct AweTiming {
  double delay = 0.0;   ///< seconds, 50% crossing of the step response
  double slew = 0.0;    ///< seconds, (t80 - t20) / 0.6
  bool two_pole = false;  ///< false when the fit degenerated to one pole
};

/// Fits a two-pole model per node from \p moments and solves its threshold
/// crossings (bisection on the closed-form step response). Nodes with
/// degenerate moments (the source) yield zeros.
[[nodiscard]] std::vector<AweTiming> awe_two_pole(const Moments& moments);

/// Convenience: moments + AWE in one call.
[[nodiscard]] std::vector<AweTiming> awe_two_pole(const rcnet::RcNet& net);

}  // namespace gnntrans::sim
