// Tests for the two-pole AWE metric and RC network reduction: both must
// track the golden transient simulator closely on nets the cruder metrics
// (Elmore, D2M) misestimate.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "rcnet/generate.hpp"
#include "rcnet/reduce.hpp"
#include "sim/awe.hpp"
#include "sim/moments.hpp"
#include "sim/transient.hpp"

namespace {

using namespace gnntrans;
using rcnet::RcNet;

RcNet chain(std::size_t n, double r, double c) {
  RcNet net;
  net.name = "chain";
  net.source = 0;
  net.sinks = {static_cast<rcnet::NodeId>(n - 1)};
  net.ground_cap.assign(n, c);
  for (rcnet::NodeId v = 1; v < n; ++v)
    net.resistors.push_back({static_cast<rcnet::NodeId>(v - 1), v, r});
  return net;
}

sim::TransientConfig quiet() {
  sim::TransientConfig cfg;
  cfg.si.enabled = false;
  cfg.steps = 2000;
  return cfg;
}

TEST(Awe, SingleStageFallsBackToOnePoleExactly) {
  // Pure single-pole net: AWE must reproduce tau*ln2 / tau*ln4.
  const RcNet net = chain(2, 200.0, 10e-15);
  const auto awe = sim::awe_two_pole(net);
  const double tau = 200.0 * 10e-15;
  EXPECT_FALSE(awe[1].two_pole);
  EXPECT_NEAR(awe[1].delay, tau * std::log(2.0), tau * 1e-6);
  EXPECT_NEAR(awe[1].slew, tau * std::log(4.0) / 0.6, tau * 1e-6);
}

class AweSeeded : public ::testing::TestWithParam<int> {};

TEST_P(AweSeeded, TracksGoldenBetterThanElmoreAtFarSinks) {
  std::mt19937_64 rng(GetParam());
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  cfg.min_nodes = 30;
  const RcNet net = rcnet::generate_net(cfg, rng, "n");
  const sim::Moments moments = sim::compute_moments(net);
  const auto awe = sim::awe_two_pole(moments);
  // Near-step input, strong driver: golden ~ intrinsic wire step response.
  const auto golden = sim::simulate(net, quiet(), 1e-12, 1.0);

  double awe_err = 0.0, elmore_err = 0.0;
  for (const sim::SinkTiming& st : golden.sinks) {
    ASSERT_TRUE(st.settled);
    awe_err += std::abs(awe[st.sink].delay - st.delay);
    elmore_err += std::abs(moments.m1[st.sink] - st.delay);
  }
  EXPECT_LT(awe_err, elmore_err)
      << "two-pole AWE should beat raw Elmore on delay";
}

TEST_P(AweSeeded, DelayWithinTenPercentOfGoldenStep) {
  std::mt19937_64 rng(GetParam() + 200);
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  cfg.min_nodes = 20;
  const RcNet net = rcnet::generate_net(cfg, rng, "n");
  const auto awe = sim::awe_two_pole(net);
  const auto golden = sim::simulate(net, quiet(), 1e-12, 1.0);
  for (const sim::SinkTiming& st : golden.sinks) {
    if (st.delay < 2e-12) continue;  // sub-2ps sinks: absolute floor dominates
    EXPECT_NEAR(awe[st.sink].delay, st.delay, 0.12 * st.delay + 1e-12)
        << "sink " << st.sink;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AweSeeded, ::testing::Range(1, 9));

TEST(Awe, SourceNodeHasZeroTiming) {
  const auto awe = sim::awe_two_pole(chain(4, 50.0, 2e-15));
  EXPECT_DOUBLE_EQ(awe[0].delay, 0.0);
  EXPECT_DOUBLE_EQ(awe[0].slew, 0.0);
}

// ---- Reduction ----

TEST(Reduce, ParallelResistorsMergeToParallelValue) {
  RcNet net;
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {1e-15, 1e-15};
  net.resistors = {{0, 1, 100.0}, {0, 1, 100.0}};
  std::size_t merged = 0;
  const RcNet out = rcnet::merge_parallel_resistors(net, &merged);
  EXPECT_EQ(merged, 1u);
  ASSERT_EQ(out.resistors.size(), 1u);
  EXPECT_NEAR(out.resistors[0].ohms, 50.0, 1e-9);
}

TEST(Reduce, ChainCollapsesToSingleSegment) {
  const RcNet net = chain(10, 30.0, 2e-15);
  const rcnet::ReductionResult r = rcnet::reduce_net(net);
  EXPECT_TRUE(r.net.validate().empty());
  // Only source and sink survive; total R preserved.
  EXPECT_EQ(r.net.node_count(), 2u);
  EXPECT_EQ(r.eliminated_nodes, 8u);
  EXPECT_NEAR(r.net.total_resistance(), net.total_resistance(), 1e-9);
}

TEST(Reduce, TotalCapacitanceIsConserved) {
  std::mt19937_64 rng(3);
  rcnet::NetGenConfig cfg;
  for (int i = 0; i < 10; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const rcnet::ReductionResult r = rcnet::reduce_net(net);
    EXPECT_NEAR(r.net.total_ground_cap(), net.total_ground_cap(),
                1e-9 * net.total_ground_cap());
  }
}

TEST(Reduce, SourceSinksAndCouplingsSurvive) {
  std::mt19937_64 rng(5);
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 1.0;
  for (int i = 0; i < 10; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const rcnet::ReductionResult r = rcnet::reduce_net(net);
    EXPECT_TRUE(r.net.validate().empty());
    EXPECT_EQ(r.net.sinks.size(), net.sinks.size());
    EXPECT_EQ(r.net.couplings.size(), net.couplings.size());
    // node_map is consistent for every survivor the caller cares about.
    EXPECT_EQ(r.node_map[net.source], r.net.source);
    for (std::size_t s = 0; s < net.sinks.size(); ++s)
      EXPECT_EQ(r.node_map[net.sinks[s]], r.net.sinks[s]);
  }
}

class ReduceSeeded : public ::testing::TestWithParam<int> {};

TEST_P(ReduceSeeded, ElmoreAtSinksPreservedWithinTolerance) {
  std::mt19937_64 rng(GetParam());
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  const RcNet net = rcnet::generate_net(cfg, rng, "n");
  const rcnet::ReductionResult r = rcnet::reduce_net(net);
  ASSERT_GT(net.node_count(), r.net.node_count());

  const sim::Moments before = sim::compute_moments(net);
  const sim::Moments after = sim::compute_moments(r.net);
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const double orig = before.m1[net.sinks[s]];
    const double red = after.m1[r.net.sinks[s]];
    // TICER quick elimination perturbs Elmore slightly (cap redistribution);
    // it must stay within a few percent.
    EXPECT_NEAR(red, orig, 0.05 * orig + 1e-15) << "sink index " << s;
  }
}

TEST_P(ReduceSeeded, GoldenDelayPreservedWithinTolerance) {
  std::mt19937_64 rng(GetParam() + 80);
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  cfg.min_nodes = 24;
  const RcNet net = rcnet::generate_net(cfg, rng, "n");
  const rcnet::ReductionResult r = rcnet::reduce_net(net);
  const auto golden_before = sim::simulate(net, quiet(), 3e-11);
  const auto golden_after = sim::simulate(r.net, quiet(), 3e-11);
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const double before = golden_before.sinks[s].delay;
    const double after = golden_after.sinks[s].delay;
    EXPECT_NEAR(after, before, 0.06 * before + 5e-13) << "sink index " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceSeeded, ::testing::Range(1, 9));

TEST(Reduce, IdempotentOnFullyReducedNet) {
  const RcNet net = chain(6, 30.0, 2e-15);
  const rcnet::ReductionResult once = rcnet::reduce_net(net);
  const rcnet::ReductionResult twice = rcnet::reduce_net(once.net);
  EXPECT_EQ(twice.eliminated_nodes, 0u);
  EXPECT_EQ(twice.net.node_count(), once.net.node_count());
}

}  // namespace
