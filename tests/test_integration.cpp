// Cross-module integration tests: the paper's claims at miniature scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baseline/dac20.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "rcnet/spef.hpp"

namespace {

using namespace gnntrans;

std::vector<features::WireRecord> dataset(std::size_t n, std::uint64_t seed,
                                          double non_tree_fraction = 0.5) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = n;
  cfg.seed = seed;
  cfg.sim_config.steps = 400;
  cfg.net_config.non_tree_fraction = non_tree_fraction;
  return features::generate_wire_records(cfg, lib);
}

core::WireTimingEstimator::Options options(nn::ModelKind kind,
                                           std::size_t epochs = 25) {
  core::WireTimingEstimator::Options opt;
  opt.kind = kind;
  opt.model.hidden_dim = 16;
  opt.model.gnn_layers = 3;
  opt.model.transformer_layers = 2;
  opt.model.heads = 4;
  opt.train.epochs = epochs;
  return opt;
}

// The paper's core claim at miniature scale: GNNTrans generalizes to unseen
// nets with high R^2 on both targets.
TEST(EndToEnd, GnnTransGeneralizesToUnseenNets) {
  const auto recs = dataset(150, 101);
  const std::vector<features::WireRecord> train(recs.begin(), recs.begin() + 120);
  const std::vector<features::WireRecord> test(recs.begin() + 120, recs.end());

  const auto est = core::WireTimingEstimator::train(train,
                                                    options(nn::ModelKind::kGnnTrans));
  const core::Evaluation eval = est.evaluate(test);
  EXPECT_GT(eval.delay_r2, 0.9);
  EXPECT_GT(eval.slew_r2, 0.75);
}

// Table III's headline ordering: GNNTrans beats the DAC'20 baseline on
// non-tree nets (where loop-breaking hurts).
TEST(EndToEnd, GnnTransBeatsDac20OnNonTreeNets) {
  const auto recs = dataset(160, 103, /*non_tree_fraction=*/1.0);
  const std::vector<features::WireRecord> train(recs.begin(), recs.begin() + 128);
  const std::vector<features::WireRecord> test(recs.begin() + 128, recs.end());

  const auto gnn = core::WireTimingEstimator::train(
      train, options(nn::ModelKind::kGnnTrans, 30));
  const core::Evaluation gnn_eval = gnn.evaluate(test);

  baseline::Dac20Estimator dac;
  baseline::GbdtConfig gcfg;
  gcfg.trees = 80;
  dac.train(train, gcfg);
  std::vector<double> pred, truth;
  for (const auto& rec : test) {
    const auto p = dac.estimate(rec.net, rec.context);
    for (std::size_t q = 0; q < p.size(); ++q) {
      pred.push_back(p[q].delay);
      truth.push_back(rec.delay_labels[q]);
    }
  }
  const double dac_r2 = core::r2_score(pred, truth);
  EXPECT_GT(gnn_eval.delay_r2, dac_r2);
}

// SPEF in, timing out: the deployment path an external user would take.
TEST(EndToEnd, SpefRoundTripFeedsEstimator) {
  const auto recs = dataset(40, 107);
  const auto est =
      core::WireTimingEstimator::train(recs, options(nn::ModelKind::kGnnTrans, 10));

  // Export a net to SPEF, parse it back, estimate timing on the parsed net.
  const features::WireRecord& rec = recs.front();
  const auto parsed = rcnet::net_from_spef(rcnet::to_spef(rec.net));
  ASSERT_TRUE(parsed.has_value());
  const auto direct = est.estimate(rec.net, rec.context);
  const auto via_spef = est.estimate(*parsed, rec.context);
  ASSERT_EQ(direct.size(), via_spef.size());
  for (std::size_t q = 0; q < direct.size(); ++q)
    EXPECT_NEAR(direct[q].delay, via_spef[q].delay, 1e-13 + 1e-4 * std::abs(direct[q].delay));
}

// The estimator is inductive: trained on one family of designs, it transfers
// to nets generated with a different seed and different non-tree mix.
TEST(EndToEnd, InductiveAcrossGenerationSettings) {
  const auto train = dataset(120, 109, 0.3);
  const auto test = dataset(30, 991, 0.7);
  const auto est = core::WireTimingEstimator::train(
      train, options(nn::ModelKind::kGnnTrans, 25));
  const core::Evaluation eval = est.evaluate(test);
  EXPECT_GT(eval.delay_r2, 0.8);
}

// Runtime claim: inference must be far cheaper than golden simulation.
TEST(EndToEnd, InferenceFasterThanGoldenTiming) {
  const auto recs = dataset(60, 113);
  const auto est =
      core::WireTimingEstimator::train(recs, options(nn::ModelKind::kGnnTrans, 5));

  sim::GoldenTimer timer{sim::TransientConfig{}};
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& rec : recs) timer.time_net(rec.net, rec.context.input_slew,
                                              rec.context.driver_resistance);
  const double golden_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& rec : recs) est.estimate(rec.net, rec.context);
  const double inference_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  EXPECT_LT(inference_s, golden_s);
}

// Arrival-time composition (Table V mechanics): STA with golden wire timing
// equals itself, and the estimator's arrivals track it.
TEST(EndToEnd, ArrivalTimesTrackGoldenAcrossUnseenDesign) {
  const auto lib = cell::CellLibrary::make_default();

  // Train on nets pooled from several designs (the paper's protocol)...
  netlist::DesignGenConfig train_cfg;
  train_cfg.startpoints = 6;
  train_cfg.levels = 4;
  train_cfg.cells_per_level = 10;
  sim::TransientConfig tc;
  tc.steps = 400;
  sim::GoldenTimer timer(tc);
  std::vector<features::WireRecord> train_recs;
  for (std::uint64_t seed : {201u, 205u, 209u, 213u}) {
    train_cfg.seed = seed;
    const auto d = netlist::generate_design(train_cfg, lib, "train");
    // Contexts carry the true propagated slews from a golden STA pass so the
    // estimator trains on the distribution it later sees inside STA.
    netlist::GoldenWireSource gold(tc);
    const auto sta = netlist::run_sta(d, lib, gold);
    auto recs = features::records_from_design(d, lib, timer, &sta.slew);
    std::move(recs.begin(), recs.end(), std::back_inserter(train_recs));
  }
  const auto est = core::WireTimingEstimator::train(
      train_recs, options(nn::ModelKind::kGnnTrans, 25));

  // ...evaluate arrivals on a different, unseen design.
  netlist::DesignGenConfig test_cfg = train_cfg;
  test_cfg.seed = 202;
  const auto test_design = netlist::generate_design(test_cfg, lib, "test");

  netlist::GoldenWireSource golden(tc);
  const auto ref = netlist::run_sta(test_design, lib, golden);
  core::EstimatorWireSource source(est, test_design, lib);
  const auto pred = netlist::run_sta(test_design, lib, source);

  const double r2 = core::r2_score(pred.endpoint_arrival, ref.endpoint_arrival);
  EXPECT_GT(r2, 0.8);
  // And the estimator pass must be faster on the wire side.
  EXPECT_LT(pred.wire_seconds, ref.wire_seconds);
}

}  // namespace
