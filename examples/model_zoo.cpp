// Model zoo comparison on a single shared dataset — a miniature, fast
// version of the paper's Table III/IV protocol, handy for experimenting with
// architectures and hyperparameters.
//
//   $ ./examples/model_zoo
#include <chrono>
#include <cstdio>

#include "baseline/dac20.hpp"
#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "features/dataset.hpp"

using namespace gnntrans;

int main() {
  const cell::CellLibrary library = cell::CellLibrary::make_default();

  features::WireDatasetConfig cfg;
  cfg.net_count = 260;
  cfg.seed = 555;
  cfg.net_config.non_tree_fraction = 0.5;
  std::printf("Dataset: %zu nets (50%% non-tree target)...\n", cfg.net_count);
  const auto records = features::generate_wire_records(cfg, library);
  const std::vector<features::WireRecord> train(records.begin(),
                                                records.begin() + 200);
  const std::vector<features::WireRecord> test(records.begin() + 200,
                                               records.end());

  std::printf("%-18s %-12s %-12s %-10s %-10s\n", "model", "slew R^2",
              "delay R^2", "params", "train(s)");

  // DAC'20 baseline first.
  {
    const auto t0 = std::chrono::steady_clock::now();
    baseline::Dac20Estimator dac;
    dac.train(train);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::vector<double> sp, st, dp, dt;
    for (const auto& rec : test) {
      const auto pred = dac.estimate(rec.net, rec.context);
      for (std::size_t q = 0; q < pred.size(); ++q) {
        sp.push_back(pred[q].slew);
        dp.push_back(pred[q].delay);
        st.push_back(rec.slew_labels[q]);
        dt.push_back(rec.delay_labels[q]);
      }
    }
    std::printf("%-18s %-12.3f %-12.3f %-10s %-10.1f\n", "DAC20(GBDT)",
                core::r2_score(sp, st), core::r2_score(dp, dt), "-", seconds);
  }

  // The five neural architectures under one scaled budget.
  const std::pair<nn::ModelKind, const char*> zoo[] = {
      {nn::ModelKind::kGcnii, "GCNII"},
      {nn::ModelKind::kGraphSage, "GraphSage"},
      {nn::ModelKind::kGat, "GAT"},
      {nn::ModelKind::kGraphTransformer, "GraphTransformer"},
      {nn::ModelKind::kGnnTrans, "GNNTrans"},
  };
  for (const auto& [kind, label] : zoo) {
    core::WireTimingEstimator::Options opt;
    opt.kind = kind;
    opt.model.hidden_dim = 16;
    opt.model.gnn_layers = 4;
    opt.model.transformer_layers = 2;
    opt.train.epochs = 25;
    const auto estimator = core::WireTimingEstimator::train(train, opt);
    const core::Evaluation eval = estimator.evaluate(test);
    std::printf("%-18s %-12.3f %-12.3f %-10zu %-10.1f\n", label, eval.slew_r2,
                eval.delay_r2, estimator.model().parameter_count(),
                estimator.train_report().wall_seconds);
  }

  std::printf("\nExpected: GNNTrans leads on both targets (it alone sees the "
              "per-path features of Table I).\n");
  return 0;
}
