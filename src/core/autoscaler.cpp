#include "core/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/estimator.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/thread_pool.hpp"

namespace gnntrans::core {

namespace {

/// Autoscale observability, registered once. The registry has no label
/// support, so the {direction} breakdown follows the repo convention of one
/// suffixed counter per value (like gnntrans_serving_degraded_*_total).
struct AutoscaleMetrics {
  telemetry::Gauge target = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_serving_pool_target_threads",
      "Worker count the autoscaler wants for the next batch");
  telemetry::Counter grow = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_autoscale_decisions_grow_total",
      "Autoscale decisions that grew the pool");
  telemetry::Counter shrink = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_autoscale_decisions_shrink_total",
      "Autoscale decisions that shrank the pool");
  telemetry::Counter hold = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_autoscale_decisions_hold_total",
      "Autoscale decisions that kept the pool size");

  static const AutoscaleMetrics& get() {
    static const AutoscaleMetrics metrics;
    return metrics;
  }
};

std::size_t ceil_positive(double x) {
  return static_cast<std::size_t>(std::ceil(std::max(0.0, x)));
}

}  // namespace

PoolAutoscaler::PoolAutoscaler(AutoscalerConfig config) : config_(config) {
  config_.min_threads = std::max<std::size_t>(1, config_.min_threads);
  if (config_.max_threads == 0)
    config_.max_threads = ThreadPool::hardware_threads();
  config_.max_threads = std::max(config_.max_threads, config_.min_threads);
  config_.ewma_alpha = std::clamp(config_.ewma_alpha, 0.0, 1.0);
}

void PoolAutoscaler::observe(const InferenceStats& batch) {
  if (batch.nets == 0) return;
  // latency.sum() is the exact serial work of the batch (every per-net wall
  // latency is observed into the histogram), so sum/nets is the mean service
  // time and sum/(wall*threads) is the busy fraction of the pool.
  const double serial_seconds = batch.latency.sum();
  const double per_net = serial_seconds / static_cast<double>(batch.nets);
  ewma_net_seconds_ =
      warm_ ? config_.ewma_alpha * per_net +
                  (1.0 - config_.ewma_alpha) * ewma_net_seconds_
            : per_net;
  warm_ = true;
  if (batch.wall_seconds > 0.0 && batch.threads > 0)
    utilization_ = std::clamp(
        serial_seconds /
            (batch.wall_seconds * static_cast<double>(batch.threads)),
        0.0, 1.0);
}

AutoscaleDecision PoolAutoscaler::decide(std::size_t offered,
                                         std::size_t current,
                                         const QueueSignal& queue) {
  current = std::max<std::size_t>(1, current);
  // Backlogged requests are demand just as real as the offered batch, and a
  // queue aging past twice the drain budget means the pool is losing ground
  // *now* — that urgency overrides the damping (deadband, idle-pool guard,
  // cooldown) whose whole purpose is to ignore transient wiggles.
  const std::size_t effective = offered + queue.depth;
  const bool urgent =
      queue.oldest_age_seconds > 2.0 * config_.target_batch_seconds;

  AutoscaleDecision d;
  d.previous = current;
  d.target = current;
  d.utilization = utilization_;
  d.predicted_seconds = static_cast<double>(effective) * ewma_net_seconds_;

  const std::size_t lo = config_.min_threads;
  // Never more workers than work items: extra workers can only idle.
  const std::size_t hi =
      std::max(lo, std::min(config_.max_threads,
                            effective > 0 ? effective : std::size_t{1}));

  // Demand: workers needed to drain the offered load within the batch budget.
  std::size_t demand = current;
  if (warm_ && config_.target_batch_seconds > 0.0)
    demand = std::max<std::size_t>(
        1, ceil_positive(d.predicted_seconds / config_.target_batch_seconds));
  // Capacity: growth is capped by the workers that were provably busy last
  // batch (times the probe headroom), so one decision at most roughly
  // doubles a saturated pool and never grows an idle one.
  const std::size_t capacity = std::max<std::size_t>(
      1, ceil_positive(utilization_ * static_cast<double>(current) *
                       config_.grow_headroom));
  std::size_t ideal =
      demand > current ? std::min(demand, std::max(current, capacity)) : demand;
  ideal = std::clamp(ideal, lo, hi);
  d.ideal = ideal;

  if (current < lo || current > hi) {
    // Hard bounds beat hysteresis: a pool outside [lo, hi] moves immediately.
    d.target = std::clamp(current, lo, hi);
    d.reason = "bounds";
  } else if (!warm_) {
    d.reason = "cold";
  } else if (cooldown_left_ > 0 && !(urgent && ideal > current)) {
    --cooldown_left_;
    d.reason = "cooldown";
  } else if (ideal > current) {
    if (urgent) {
      d.target = ideal;
      d.reason = "urgent";
    } else if (utilization_ < config_.min_grow_utilization) {
      d.reason = "idle-pool";
    } else if (static_cast<double>(ideal) <
               static_cast<double>(current) * config_.grow_deadband) {
      d.reason = "deadband";
    } else {
      d.target = ideal;
    }
  } else if (ideal < current) {
    if (static_cast<double>(ideal) >
        static_cast<double>(current) * config_.shrink_deadband) {
      d.reason = "deadband";
    } else {
      d.target = ideal;
    }
  } else {
    d.reason = "steady";
  }

  if (d.target > d.previous) {
    d.direction = ScaleDirection::kGrow;
  } else if (d.target < d.previous) {
    d.direction = ScaleDirection::kShrink;
  }
  if (d.resized()) {
    if (d.reason[0] == '\0') d.reason = to_string(d.direction);
    cooldown_left_ = config_.cooldown_batches;
    ++resizes_;
  }

  const AutoscaleMetrics& metrics = AutoscaleMetrics::get();
  metrics.target.set(static_cast<double>(d.target));
  switch (d.direction) {
    case ScaleDirection::kGrow: metrics.grow.inc(); break;
    case ScaleDirection::kShrink: metrics.shrink.inc(); break;
    case ScaleDirection::kHold: metrics.hold.inc(); break;
  }

  if (d.resized()) {
    telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
    if (flight.enabled()) {
      telemetry::FlightRecord fr;
      fr.set_net("pool_autoscale");
      fr.set_outcome(to_string(d.direction));
      char transition[24];
      std::snprintf(transition, sizeof(transition), "%zu->%zu", d.previous,
                    d.target);
      fr.set_error(transition);  // repurposed detail field, like train epochs
      fr.total_us = static_cast<float>(d.predicted_seconds * 1e6);
      flight.record(fr);
    }
    GNNTRANS_LOG_DEBUG(
        "autoscale",
        "%s %zu -> %zu (offered load %.1f ms predicted, utilization %.0f%%)",
        to_string(d.direction), d.previous, d.target,
        d.predicted_seconds * 1e3, 100.0 * d.utilization);
  }
  return d;
}

}  // namespace gnntrans::core
