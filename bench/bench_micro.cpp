// Micro-benchmarks (google-benchmark) for the substrate throughput numbers
// behind the paper's runtime story: golden transient sim vs analytical
// metrics vs feature extraction vs model inference.
#include <benchmark/benchmark.h>

#include <random>

#include "core/estimator.hpp"
#include "features/dataset.hpp"
#include "rcnet/generate.hpp"
#include "sim/moments.hpp"
#include "sim/transient.hpp"
#include "sim/wire_analysis.hpp"

using namespace gnntrans;

namespace {

rcnet::RcNet make_net(std::size_t nodes, std::uint64_t seed = 9) {
  std::mt19937_64 rng(seed);
  rcnet::NetGenConfig cfg;
  cfg.min_nodes = static_cast<std::uint32_t>(nodes);
  cfg.max_nodes = static_cast<std::uint32_t>(nodes);
  return rcnet::generate_net(cfg, rng, "bench");
}

void BM_GoldenTransient(benchmark::State& state) {
  const rcnet::RcNet net = make_net(state.range(0));
  sim::TransientConfig cfg;
  cfg.steps = 800;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(net, cfg, 4e-11));
  state.SetLabel(std::to_string(net.node_count()) + " nodes");
}
BENCHMARK(BM_GoldenTransient)->Arg(16)->Arg(40)->Arg(80)->Arg(160);

void BM_MomentsMna(benchmark::State& state) {
  const rcnet::RcNet net = make_net(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::compute_moments(net));
}
BENCHMARK(BM_MomentsMna)->Arg(16)->Arg(40)->Arg(80)->Arg(160);

void BM_ElmoreTree(benchmark::State& state) {
  std::mt19937_64 rng(10);
  rcnet::NetGenConfig cfg;
  cfg.min_nodes = cfg.max_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.non_tree_fraction = 0.0;
  const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "t");
  for (auto _ : state) benchmark::DoNotOptimize(sim::elmore_tree(net));
}
BENCHMARK(BM_ElmoreTree)->Arg(40)->Arg(160);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto lib = cell::CellLibrary::make_default();
  const rcnet::RcNet net = make_net(state.range(0));
  std::mt19937_64 rng(11);
  const features::NetContext ctx = features::random_context(lib, net, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(features::extract_features(net, ctx));
}
BENCHMARK(BM_FeatureExtraction)->Arg(40)->Arg(160);

/// Shared trained estimator for the inference benchmarks (built once).
const core::WireTimingEstimator& trained_estimator() {
  static const core::WireTimingEstimator estimator = [] {
    const auto lib = cell::CellLibrary::make_default();
    features::WireDatasetConfig cfg;
    cfg.net_count = 60;
    cfg.sim_config.steps = 300;
    cfg.seed = 12;
    const auto records = features::generate_wire_records(cfg, lib);
    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 16;
    opt.model.gnn_layers = 4;
    opt.model.transformer_layers = 2;
    opt.train.epochs = 5;
    return core::WireTimingEstimator::train(records, opt);
  }();
  return estimator;
}

void BM_GnnTransInference(benchmark::State& state) {
  const auto& est = trained_estimator();
  const auto lib = cell::CellLibrary::make_default();
  const rcnet::RcNet net = make_net(state.range(0), 21);
  std::mt19937_64 rng(13);
  const features::NetContext ctx = features::random_context(lib, net, rng);
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(net, ctx));
  state.SetLabel(std::to_string(net.sinks.size()) + " paths");
}
BENCHMARK(BM_GnnTransInference)->Arg(16)->Arg(40)->Arg(80)->Arg(160);

void BM_TrainStep(benchmark::State& state) {
  // One forward+backward+step over a single net sample.
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = 4;
  cfg.sim_config.steps = 300;
  cfg.seed = 14;
  const auto records = features::generate_wire_records(cfg, lib);
  features::Standardizer std_;
  std_.fit(records);
  const auto samples = features::make_samples(records, std_);
  nn::ModelConfig mc;
  mc.node_feature_dim = features::kNodeFeatureCount;
  mc.path_feature_dim = features::kPathFeatureCount;
  mc.hidden_dim = 16;
  mc.gnn_layers = 4;
  mc.transformer_layers = 2;
  auto model = nn::make_model(nn::ModelKind::kGnnTrans, mc);
  core::TrainConfig tc;
  tc.epochs = 1;
  for (auto _ : state) benchmark::DoNotOptimize(core::train_model(*model, samples, tc));
}
BENCHMARK(BM_TrainStep);

}  // namespace

BENCHMARK_MAIN();
