/// \file client.hpp
/// Blocking client for the network serving front-end.
///
/// One NetClient owns one connection (re-established transparently after any
/// transport failure) and runs one request at a time: encode, send, then read
/// frames until the response whose request_id/attempt matches. Retry policy:
///
///   transport failure (connect/send/recv/EOF)  -> reconnect + retry
///   client-side timeout waiting for the answer -> reconnect + retry
///   typed kOverloaded / kMalformedFrame reject -> retry (connection reused;
///       kOverloaded only while config.retry_overloaded)
///   any other typed status                     -> terminal, returned as-is
///
/// Retries use exponential backoff (backoff_initial_ms doubling up to
/// backoff_max_ms) and carry an incremented `attempt` counter on the wire, so
/// a deterministically injected fault re-rolls on retry instead of repeating
/// forever. When every attempt is exhausted the result is a typed
/// ErrorCode::kTimeout — the caller always gets exactly one classified
/// outcome per request.
///
/// request_ids are (client_id << 32) | sequence, so ids from concurrent
/// clients never collide and the server's fault keys stay process-unique.
///
/// Tracing: every request is offered to TraceRecorder::head_sample (a pure
/// hash of the request_id, so the decision is stable across retries) and a
/// sampled request's TraceContext rides the v2 trace block to the server.
/// The client records the request's async lane plus per-attempt and backoff
/// spans linked by trace_id, and failure Statuses carry the trace_id so a
/// slow or failed request can be looked up on /tracez. Retry behavior is
/// exported as gnntrans_client_* counters (reconnects, retries by reason,
/// cumulative backoff).
///
/// Not thread-safe: one NetClient per thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/status.hpp"
#include "features/features.hpp"
#include "rcnet/rcnet.hpp"
#include "serve/protocol.hpp"

namespace gnntrans::serve {

struct NetClientConfig {
  std::string addr = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Budget for one attempt: send + wait for the matching response.
  int request_timeout_ms = 5000;
  /// Additional attempts after the first (0 = never retry).
  int max_retries = 3;
  int backoff_initial_ms = 5;
  int backoff_max_ms = 500;
  /// Retry typed kOverloaded rejects (with backoff) instead of returning
  /// them; kShuttingDown and ladder statuses are always terminal.
  bool retry_overloaded = true;
  /// Packed into the high 32 bits of every request_id.
  std::uint32_t client_id = 0;
};

class NetClient {
 public:
  /// One request's classified outcome plus its retry telemetry.
  struct Result {
    /// kOk (paths valid), a typed server status (reject or ladder failure),
    /// or kTimeout when every attempt was exhausted.
    core::Status status;
    core::EstimateProvenance provenance = core::EstimateProvenance::kFailed;
    std::vector<core::PathEstimate> paths;
    std::uint32_t attempts = 0;            ///< attempts actually made
    std::uint32_t transport_failures = 0;  ///< connect/send/recv/EOF failures
    std::uint32_t overload_rejects = 0;    ///< typed kOverloaded answers seen
    /// Head-sampling identity of this request (0 when the recorder is
    /// disabled). Nonzero even for unsampled requests, so failures are
    /// correlatable; resolves on /tracez only when the request was sampled.
    std::uint64_t trace_id = 0;

    [[nodiscard]] bool served() const noexcept {
      return provenance != core::EstimateProvenance::kFailed;
    }
  };

  explicit NetClient(NetClientConfig config);
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Times one net. \p deadline_us is the per-request budget the server
  /// enforces from admission (0 = none).
  [[nodiscard]] Result estimate(const rcnet::RcNet& net,
                                const features::NetContext& context,
                                std::uint32_t deadline_us = 0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const NetClientConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] bool ensure_connected();
  void disconnect();
  /// Reads frames until the response matching \p request_id arrives or the
  /// per-attempt deadline passes. Returns false on transport failure/timeout.
  [[nodiscard]] bool read_response(std::uint64_t request_id,
                                   ResponseFrame* response);

  NetClientConfig config_;
  int fd_ = -1;
  bool ever_connected_ = false;  ///< distinguishes reconnects from first dial
  std::uint64_t next_seq_ = 0;
  std::string read_buffer_;
};

}  // namespace gnntrans::serve
