// Quality-observability benchmark: does the drift detector actually fire?
//
// Protocol: train a tiny GNNTrans estimator (its checkpoint carries the
// per-feature baseline sketches), then serve two workloads with shadow
// scoring at rate 1.0:
//
//   in-distribution  — nets from the same rcgen configuration and seed family
//                      as training; PSI should stay low and /readyz-style
//                      degradation must NOT trip,
//   skewed           — rcgen with segment R, node C, and topology pushed far
//                      off the training distribution; several feature PSIs
//                      must cross the 0.25 alert and degrade readiness.
//
// The summary (worst PSI per workload, top drifted features, residual
// quantiles, degradation verdicts) lands in BENCH_quality.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/estimator.hpp"
#include "core/telemetry/telemetry.hpp"
#include "features/dataset.hpp"
#include "support.hpp"

using namespace gnntrans;

namespace {

core::WireTimingEstimator train_tiny(const cell::CellLibrary& library,
                                     const features::WireDatasetConfig& dcfg) {
  const std::vector<features::WireRecord> records =
      features::generate_wire_records(dcfg, library);
  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 8;
  opt.model.gnn_layers = 2;
  opt.model.transformer_layers = 1;
  opt.model.heads = 2;
  opt.model.mlp_hidden = 16;
  opt.model.seed = 7;
  opt.train.epochs = 4;
  return core::WireTimingEstimator::train(records, opt);
}

/// Serves \p records through estimate_batch with everything shadowed and
/// returns the monitor's resulting state. configure() first, so live sketches
/// start empty per workload.
telemetry::QualityState serve_and_measure(
    const core::WireTimingEstimator& estimator,
    const std::vector<features::WireRecord>& records) {
  telemetry::QualityConfig qcfg;
  qcfg.shadow_rate = 1.0;
  qcfg.min_samples = 128;
  // The bench model is deliberately tiny (4 epochs), so its residual vs the
  // analytic baseline would trip the 50% p99 alert on ANY workload. Residual
  // quantiles are still recorded and reported; only the readiness verdict is
  // confined to PSI so the in-distribution-vs-skewed contrast isolates drift.
  qcfg.residual_alert_pct = 0.0;
  telemetry::QualityMonitor::global().configure(qcfg);
  estimator.install_quality_baseline();

  std::vector<core::NetBatchItem> items(records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    items[i] = {&records[i].net, &records[i].context};
  core::BatchOptions options;
  options.threads = 1;
  (void)estimator.estimate_batch(items, options);
  return telemetry::QualityMonitor::global().compute_state();
}

void print_state(const char* label, const telemetry::QualityState& state) {
  std::printf("%s: %llu nets / %llu sinks shadowed, worst PSI %.3f (%s), "
              "delay residual p50 %.1f%% p99 %.1f%%, %s\n",
              label, static_cast<unsigned long long>(state.shadowed_nets),
              static_cast<unsigned long long>(state.shadowed_sinks),
              state.worst_psi,
              state.worst_feature.empty() ? "-" : state.worst_feature.c_str(),
              state.delay_p50_pct, state.delay_p99_pct,
              state.degraded ? ("DEGRADED: " + state.degraded_reason).c_str()
                             : "ready");
}

/// Top \p n features by PSI, descending.
std::vector<telemetry::FeatureDrift> top_drifted(
    const telemetry::QualityState& state, std::size_t n) {
  std::vector<telemetry::FeatureDrift> sorted = state.features;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.psi > b.psi; });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

void write_summary_json(const std::string& path,
                        const telemetry::QualityState& in_dist,
                        const telemetry::QualityState& skewed) {
  std::ofstream out(path);
  if (!out) {
    GNNTRANS_LOG_ERROR("bench", "cannot open %s for write", path.c_str());
    return;
  }
  char buf[512];
  out << "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"in_distribution\": {\"worst_psi\": %.4f, "
                "\"degraded\": %s, \"delay_p99_pct\": %.2f},\n",
                in_dist.worst_psi, in_dist.degraded ? "true" : "false",
                in_dist.delay_p99_pct);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"skewed\": {\"worst_psi\": %.4f, \"worst_feature\": "
                "\"%s\", \"degraded\": %s, \"delay_p99_pct\": %.2f},\n",
                skewed.worst_psi, skewed.worst_feature.c_str(),
                skewed.degraded ? "true" : "false", skewed.delay_p99_pct);
  out << buf;
  out << "  \"skewed_top_drifted\": [";
  bool first = true;
  for (const auto& drift : top_drifted(skewed, 5)) {
    std::snprintf(buf, sizeof(buf), "%s\n    {\"feature\": \"%s\", \"psi\": %.4f}",
                  first ? "" : ",", drift.name.c_str(), drift.psi);
    out << buf;
    first = false;
  }
  out << "\n  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"drift_detected\": %s\n}\n",
                (!in_dist.degraded && skewed.degraded) ? "true" : "false");
  out << buf;
  GNNTRANS_LOG_INFO("bench", "wrote %s", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_quality.json";
  for (int i = 1; i + 1 < argc; i += 2)
    if (std::strcmp(argv[i], "--json-out") == 0) json_path = argv[i + 1];

  std::printf("=== Model-quality observability: PSI drift response ===\n\n");
  const auto library = cell::CellLibrary::make_default();

  // PSI over log2 buckets needs a few hundred per-path observations before
  // sampling noise settles under the 0.25 alert, so the workloads are sized
  // well past that (~5 paths per net).
  features::WireDatasetConfig train_cfg;
  train_cfg.net_count = 128;
  train_cfg.seed = 2026;
  train_cfg.sim_config.steps = 200;
  std::printf("training tiny estimator (with feature baseline)...\n");
  const core::WireTimingEstimator estimator = train_tiny(library, train_cfg);

  // In-distribution serving: identical generator configuration, fresh seed.
  // (The golden-timer labels are discarded; only nets + contexts serve.)
  features::WireDatasetConfig in_cfg = train_cfg;
  in_cfg.seed = 777;
  const auto in_records = features::generate_wire_records(in_cfg, library);

  // Skewed serving: resistances 32x, node caps 16x, longer chains, all nets
  // coupled — the traffic a router change or a new corner would produce.
  features::WireDatasetConfig skew_cfg = train_cfg;
  skew_cfg.seed = 778;
  skew_cfg.net_config.r_per_seg_mean *= 32.0;
  skew_cfg.net_config.c_per_node_mean *= 16.0;
  skew_cfg.net_config.min_nodes = 40;
  skew_cfg.net_config.max_nodes = 160;
  skew_cfg.net_config.coupling_prob = 1.0;
  const auto skew_records = features::generate_wire_records(skew_cfg, library);
  std::printf("workloads: %zu in-distribution nets, %zu skewed nets\n\n",
              in_records.size(), skew_records.size());

  const telemetry::QualityState in_state =
      serve_and_measure(estimator, in_records);
  print_state("in-distribution", in_state);

  const telemetry::QualityState skew_state =
      serve_and_measure(estimator, skew_records);
  print_state("skewed         ", skew_state);

  std::printf("\ntop drifted features (skewed workload):\n");
  bench::TablePrinter table({"feature", "psi", "live n"}, {24, 9, 8});
  table.print_header();
  for (const auto& drift : top_drifted(skew_state, 5))
    table.print_row({drift.name, bench::TablePrinter::fmt(drift.psi, 3),
                     std::to_string(drift.live_count)});

  const bool detected = !in_state.degraded && skew_state.degraded;
  std::printf("\ndrift detection: %s (in-distribution %s, skewed %s)\n",
              detected ? "OK" : "FAILED",
              in_state.degraded ? "degraded (!)" : "ready",
              skew_state.degraded ? "degraded" : "ready (!)");

  write_summary_json(json_path, in_state, skew_state);

  telemetry::QualityConfig off;
  off.shadow_rate = 0.0;
  telemetry::QualityMonitor::global().configure(off);
  return detected ? 0 : 1;
}
